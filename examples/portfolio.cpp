/**
 * @file
 * Extension example: a user-defined problem outside the benchmark suite.
 *
 * Cardinality-constrained portfolio selection [6]: pick exactly K of N
 * assets maximizing expected return minus pairwise risk, with a sector
 * parity constraint (equal picks from two sectors) — a mixed-sign row
 * that only the commute-Hamiltonian encoding handles as a hard
 * constraint. Demonstrates the public API end to end on a quadratic
 * objective.
 */

#include <algorithm>
#include <iostream>

#include "core/chocoq_solver.hpp"
#include "metrics/stats.hpp"
#include "model/exact.hpp"

int
main()
{
    using namespace chocoq;

    constexpr int kAssets = 8;
    constexpr int kPick = 4;
    Rng rng(4242);

    model::Problem problem(kAssets, model::Sense::Maximize, "portfolio");
    model::Polynomial objective;
    for (int i = 0; i < kAssets; ++i)
        objective.addTerm({i}, rng.intIn(4, 9)); // expected return
    for (int i = 0; i < kAssets; ++i)
        for (int j = i + 1; j < kAssets; ++j)
            if (rng.chance(0.4))
                objective.addTerm({i, j}, -rng.intIn(1, 3)); // covariance
    problem.setObjective(std::move(objective));

    // Cardinality: pick exactly kPick assets (summation format).
    problem.addEquality(std::vector<int>(kAssets, 1), kPick);
    // Sector parity: assets 0..3 vs 4..7 balanced (mixed signs!).
    std::vector<int> parity(kAssets, 1);
    for (int i = kAssets / 2; i < kAssets; ++i)
        parity[i] = -1;
    problem.addEquality(std::move(parity), 0);
    std::cout << problem.str() << "\n";

    const auto exact = model::solveExact(problem);
    std::cout << "optimal portfolio value " << exact.optimumRaw << " at "
              << bitString(exact.optima.front(), kAssets) << " ("
              << exact.feasibleCount << " feasible portfolios)\n\n";

    core::ChocoQOptions options;
    options.layers = 2; // a second layer helps on quadratic objectives
    options.eliminate = 1;
    const core::ChocoQSolver solver(options);
    const auto run = solver.solve(problem);
    const auto stats =
        metrics::computeStats(problem, run.distribution, exact);

    std::cout << "Choco-Q: success " << stats.successRate * 100
              << " %, in-constraints " << stats.inConstraintsRate * 100
              << " %, ARG " << stats.arg << "\n";
    std::cout << "circuit: " << run.qubitsUsed << " qubits, depth "
              << run.basisDepth << "\n\ntop portfolios:\n";
    std::vector<std::pair<double, Basis>> ranked;
    for (const auto &[state, prob] : run.distribution)
        ranked.emplace_back(prob, state);
    std::sort(ranked.rbegin(), ranked.rend());
    for (std::size_t i = 0; i < ranked.size() && i < 3; ++i)
        std::cout << "  " << bitString(ranked[i].second, kAssets)
                  << "  p=" << ranked[i].first << "  value="
                  << problem.objectiveOf(ranked[i].second) << "\n";
    return 0;
}
