/**
 * @file
 * Quickstart: define a small constrained binary optimization problem,
 * solve it with Choco-Q, and inspect the output distribution.
 *
 * This reproduces the paper's running example (Fig. 2a):
 *
 *     max 3 x1 + 2 x2 + x3 + x4
 *     s.t. x1 - x3 = 0
 *          x1 + x2 + x4 = 1
 *
 * whose optimal assignment is {1, 0, 1, 0}.
 */

#include <iostream>

#include "core/chocoq_solver.hpp"
#include "metrics/stats.hpp"
#include "model/exact.hpp"

int
main()
{
    using namespace chocoq;

    // 1. Define the problem: four binary variables, two equalities.
    model::Problem problem(4, model::Sense::Maximize, "fig2-example");
    model::Polynomial objective;
    objective.addTerm({0}, 3.0); // 3 x1
    objective.addTerm({1}, 2.0); // 2 x2
    objective.addTerm({2}, 1.0); // x3
    objective.addTerm({3}, 1.0); // x4
    problem.setObjective(std::move(objective));
    problem.addEquality({1, 0, -1, 0}, 0); // x1 - x3 = 0
    problem.addEquality({1, 1, 0, 1}, 1);  // x1 + x2 + x4 = 1
    std::cout << problem.str() << "\n";

    // 2. Classical ground truth (for the report below).
    const auto exact = model::solveExact(problem);
    std::cout << "classical optimum: " << exact.optimumRaw << " at "
              << bitString(exact.optima.front(), problem.numVars())
              << "\n\n";

    // 3. Solve with Choco-Q (1 layer, 1 eliminated variable — the
    //    deployment configuration of the paper's Table II).
    core::ChocoQOptions options;
    options.layers = 1;
    options.eliminate = 1;
    const core::ChocoQSolver solver(options);
    const auto run = solver.solve(problem);

    // 4. Inspect the outcome.
    std::cout << "Choco-Q finished after " << run.iterations
              << " optimizer iterations\n";
    std::cout << "circuit: " << run.qubitsUsed << " qubits, depth "
              << run.basisDepth << " after transpilation\n\n";
    std::cout << "output distribution (every state satisfies the "
                 "constraints):\n";
    for (const auto &[state, prob] : run.distribution) {
        if (prob < 1e-3)
            continue;
        std::cout << "  |" << bitString(state, problem.numVars())
                  << ">  p=" << prob
                  << "  objective=" << problem.objectiveOf(state)
                  << (problem.isFeasible(state) ? "" : "  INFEASIBLE")
                  << "\n";
    }

    const auto stats = metrics::computeStats(problem, run.distribution,
                                             exact);
    std::cout << "\nsuccess rate:        " << stats.successRate * 100
              << " %\n";
    std::cout << "in-constraints rate: " << stats.inConstraintsRate * 100
              << " %\n";
    return 0;
}
