/**
 * @file
 * Facility location with Choco-Q vs the penalty baseline.
 *
 * Builds a 3-facility / 2-demand instance (15 binary variables: open
 * flags, assignment flags, and slack variables linearizing the
 * "serve only from an open facility" inequalities), solves it with both
 * designs, and compares the two key metrics of the paper.
 */

#include <iostream>

#include "core/chocoq_solver.hpp"
#include "metrics/stats.hpp"
#include "model/exact.hpp"
#include "problems/flp.hpp"
#include "solvers/penalty.hpp"

int
main()
{
    using namespace chocoq;

    // Seeded generator: facility opening costs and service costs.
    Rng rng(2026);
    problems::FlpConfig config;
    config.facilities = 3;
    config.demands = 2;
    const model::Problem problem = problems::makeFlp(config, rng);
    std::cout << problem.str() << "\n";

    const auto exact = model::solveExact(problem);
    const problems::FlpLayout layout{config.facilities, config.demands};
    std::cout << "optimal cost " << exact.optimumRaw << "; open facilities:";
    for (int i = 0; i < config.facilities; ++i)
        if (getBit(exact.optima.front(), layout.y(i)))
            std::cout << " F" << i;
    std::cout << "\n\n";

    // Choco-Q: hard constraints via the commute Hamiltonian.
    core::ChocoQOptions choco_options;
    choco_options.eliminate = 1;
    const core::ChocoQSolver choco(choco_options);
    const auto choco_run = choco.solve(problem);
    const auto choco_stats =
        metrics::computeStats(problem, choco_run.distribution, exact);

    // Penalty QAOA: soft constraints, 7 layers (the paper's setting).
    solvers::PenaltyOptions penalty_options;
    penalty_options.engine.opt.maxIterations = 60;
    const solvers::PenaltyQaoaSolver penalty(penalty_options);
    const auto penalty_run = penalty.solve(problem);
    const auto penalty_stats =
        metrics::computeStats(problem, penalty_run.distribution, exact);

    std::cout << "                      Choco-Q    Penalty QAOA\n";
    std::cout << "success rate (%)      "
              << choco_stats.successRate * 100 << "       "
              << penalty_stats.successRate * 100 << "\n";
    std::cout << "in-constraints (%)    "
              << choco_stats.inConstraintsRate * 100 << "       "
              << penalty_stats.inConstraintsRate * 100 << "\n";
    std::cout << "circuit depth         " << choco_run.basisDepth
              << "        " << penalty_run.basisDepth << "\n";
    std::cout << "\nThe x_ij - y_i + s_ij = 0 rows mix +1 and -1 "
                 "coefficients, which soft penalties only discourage and "
                 "the cyclic Hamiltonian cannot encode at all — the "
                 "commute Hamiltonian covers them exactly.\n";
    return 0;
}
