/**
 * @file
 * Balanced k-partition: the benchmark family where the cyclic-Hamiltonian
 * baseline is strongest — and still loses to Choco-Q.
 *
 * All KPP constraints are in summation format, so the XY mixer of [47]
 * can encode them; but the balance rows share variables with the one-hot
 * rows, which makes its chains interfere. Choco-Q's commute Hamiltonian
 * treats both row types uniformly.
 */

#include <iostream>

#include "core/chocoq_solver.hpp"
#include "metrics/stats.hpp"
#include "model/exact.hpp"
#include "problems/kpp.hpp"
#include "solvers/cyclic.hpp"

int
main()
{
    using namespace chocoq;

    Rng rng(99);
    problems::KppConfig config;
    config.vertices = 4;
    config.blocks = 2;
    config.edgeCount = 4;
    config.balanced = true;
    const model::Problem problem = problems::makeKpp(config, rng);
    std::cout << problem.str() << "\n";

    const auto exact = model::solveExact(problem);
    std::cout << "minimum cut weight: " << exact.optimumRaw << " ("
              << exact.optima.size() << " optimal partitions)\n\n";

    // Cyclic-Hamiltonian baseline.
    solvers::CyclicOptions cyclic_options;
    cyclic_options.engine.opt.maxIterations = 60;
    const solvers::CyclicQaoaSolver cyclic(cyclic_options);
    const auto cyclic_run = cyclic.solve(problem);
    const auto cyclic_stats =
        metrics::computeStats(problem, cyclic_run.distribution, exact);

    // Choco-Q.
    core::ChocoQOptions choco_options;
    choco_options.eliminate = 1;
    const core::ChocoQSolver choco(choco_options);
    const auto choco_run = choco.solve(problem);
    const auto choco_stats =
        metrics::computeStats(problem, choco_run.distribution, exact);

    std::cout << "                      Cyclic     Choco-Q\n";
    std::cout << "success rate (%)      "
              << cyclic_stats.successRate * 100 << "      "
              << choco_stats.successRate * 100 << "\n";
    std::cout << "in-constraints (%)    "
              << cyclic_stats.inConstraintsRate * 100 << "      "
              << choco_stats.inConstraintsRate * 100 << "\n";

    std::cout << "\nbest partition found by Choco-Q:\n";
    Basis best = 0;
    double best_prob = -1.0;
    for (const auto &[state, prob] : choco_run.distribution) {
        if (problem.isFeasible(state) && prob > best_prob) {
            best_prob = prob;
            best = state;
        }
    }
    const problems::KppLayout layout{config.vertices, config.blocks};
    for (int b = 0; b < config.blocks; ++b) {
        std::cout << "  block " << b << ":";
        for (int v = 0; v < config.vertices; ++v)
            if (getBit(best, layout.x(v, b)))
                std::cout << " v" << v;
        std::cout << "\n";
    }
    return 0;
}
