/**
 * @file
 * Library-level use of the concurrent solve service: submit a batch of
 * jobs that repeat a few problem structures, let the compilation cache
 * and worker pool do their thing, and inspect per-job results plus
 * cache statistics. The JSONL-speaking equivalent is the chocoq_serve
 * binary (tools/chocoq_serve.cpp).
 */

#include <cstdio>

#include "service/service.hpp"

int
main()
{
    using namespace chocoq;

    service::ServiceOptions options;
    options.workers = 2;
    service::SolveService svc(options);

    // Nine jobs over three distinct structures: each structure compiles
    // once, every repeat reuses the shared artifacts.
    std::vector<service::SolveJob> jobs;
    for (const char *scale : {"F1", "K1", "G1"}) {
        for (std::uint64_t seed : {7ull, 8ull, 9ull}) {
            service::SolveJob job;
            job.id = std::string(scale) + "@" + std::to_string(seed);
            job.scale = scale;
            job.seed = seed;
            job.maxIterations = 20;
            job.keepStarts = 2; // batched multi-start screening
            jobs.push_back(std::move(job));
        }
    }

    const auto results = svc.solveAll(jobs);
    for (const auto &r : results)
        std::printf("%-8s %-16s best=%-10.4f top p=%.3f feasible=%s "
                    "cache=%s %.2f ms on worker %d\n",
                    r.id.c_str(), r.problem.c_str(), r.bestCost,
                    r.topProbability, r.topFeasible ? "yes" : "no",
                    r.cacheHit ? "hit" : "miss", r.solveMs, r.worker);

    const auto cache = svc.cacheStats();
    std::printf("cache: %llu hits, %llu misses, %zu entries\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses),
                cache.entries);
    return 0;
}
