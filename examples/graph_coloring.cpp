/**
 * @file
 * Graph coloring: inspect the Choco-Q compilation pipeline.
 *
 * Rather than just solving, this example walks the paper's Section IV
 * flow on a triangle-free 3-vertex graph: move-basis computation,
 * commute-term construction, the Lemma-2 circuit of a single term, the
 * effect of variable elimination on depth, and finally a solve.
 */

#include <iostream>

#include "circuit/transpile.hpp"
#include "core/chocoq_solver.hpp"
#include "core/circuits.hpp"
#include "core/movebasis.hpp"
#include "metrics/stats.hpp"
#include "model/exact.hpp"
#include "problems/gcp.hpp"

int
main()
{
    using namespace chocoq;

    Rng rng(7);
    problems::GcpConfig config;
    config.vertices = 3;
    config.colors = 3;
    config.edges = {{0, 1}};
    const model::Problem problem = problems::makeGcp(config, rng);
    std::cout << problem.str() << "\n";

    // Step 1: the move basis (nullspace of C over {-1,0,1}).
    const auto basis = core::computeMoveBasis(problem);
    std::cout << "constraint rank " << basis.rank << ", move basis size "
              << basis.moves.size() << ":\n";
    for (const auto &u : basis.moves) {
        std::cout << "  u = [";
        for (std::size_t i = 0; i < u.size(); ++i)
            std::cout << (i ? "," : "") << u[i];
        std::cout << "]\n";
    }

    // Step 2: one commute term and its Lemma-2 circuit.
    const auto terms = core::makeCommuteTerms(basis.moves);
    const auto &term = terms.front();
    circuit::Circuit term_circuit =
        core::commuteTermCircuit(term, problem.numVars(), 0.7);
    const auto lowered = circuit::transpile(term_circuit);
    std::cout << "\nfirst term acts on " << term.support.size()
              << " qubits; exp(-i b Hc(u)) lowers to depth "
              << lowered.depth() << " over " << lowered.numQubits()
              << " qubits (incl. ancillas)\n";

    // Step 3: variable elimination shrinks the whole ansatz.
    for (int e = 0; e <= 2; ++e) {
        core::ChocoQOptions options;
        options.eliminate = e;
        options.engine.opt.maxIterations = 2;
        const auto run = core::ChocoQSolver(options).solve(problem);
        std::cout << "eliminate " << e << ": depth " << run.basisDepth
                  << ", " << run.circuitsPerIteration
                  << " circuit(s) per iteration\n";
    }

    // Step 4: solve for real.
    const auto exact = model::solveExact(problem);
    core::ChocoQOptions options;
    options.eliminate = 1;
    const auto run = core::ChocoQSolver(options).solve(problem);
    const auto stats =
        metrics::computeStats(problem, run.distribution, exact);
    std::cout << "\nsolved: success " << stats.successRate * 100
              << " %, in-constraints " << stats.inConstraintsRate * 100
              << " % (optimal coloring cost " << exact.optimumRaw
              << ")\n";
    return 0;
}
