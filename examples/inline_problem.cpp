/**
 * @file
 * End-to-end inline problem definition: write a model as the wire-level
 * spec JSON (docs/protocol.md), parse + canonicalize it with src/spec,
 * solve it through the concurrent service, then solve it again by
 * problem_ref — no matrix resent, compilation shared via the canonical
 * content hash.
 *
 * The model is a tiny facility-location instance written by hand, the
 * same shape a user would POST to chocoq_serve: open cost per facility,
 * serving cost per (facility, demand) pair, one-facility-per-demand
 * equalities, and open-before-serve rows with slack variables.
 */

#include <cstdio>

#include "service/service.hpp"
#include "spec/spec.hpp"

int
main()
{
    using namespace chocoq;

    // 2 facilities (y0, y1), 1 demand served by exactly one of them
    // (x2, x3), slacks s4, s5 for the open-before-serve inequalities:
    //   min 3 y0 + 7 y1 + 2 x2 + 1 x3
    //   s.t. x2 + x3 = 1, x2 - y0 + s4 = 0, x3 - y1 + s5 = 0
    const char *spec_text = R"({
      "vars": 6,
      "sense": "min",
      "objective": [3, 7, 2, 1, 0, 0],
      "constraints": {
        "A": [[0, 0, 1, 1, 0, 0],
              [-1, 0, 1, 0, 1, 0],
              [0, -1, 0, 1, 0, 1]],
        "b": [1, 0, 0]
      }
    })";

    const auto parsed = spec::parseProblemSpec(
        service::Json::parse(spec_text));
    std::printf("canonical hash: %s\n%s\n", parsed.hashHex.c_str(),
                parsed.lower().str().c_str());

    service::ServiceOptions options;
    options.workers = 2;
    service::SolveService svc(options);

    // First submission: the full inline spec.
    service::SolveJob job;
    job.id = "inline";
    job.problem = std::make_shared<const spec::ProblemSpec>(parsed);
    job.seed = 7;
    job.maxIterations = 30;

    // Run the full submission to completion first: a problem_ref only
    // resolves once the inline spec has been registered (a remote
    // client reads the hash back from the result's "problem_ref").
    auto results = svc.solveAll({job});

    std::vector<service::SolveJob> refs;
    for (std::uint64_t seed : {8ull, 9ull, 10ull}) {
        service::SolveJob ref;
        ref.id = "ref@" + std::to_string(seed);
        ref.problemRef = parsed.hashHex;
        ref.seed = seed;
        ref.maxIterations = 30;
        refs.push_back(std::move(ref));
    }
    for (auto &r : svc.solveAll(refs))
        results.push_back(std::move(r));

    for (const auto &r : results) {
        if (r.status != "ok") {
            std::printf("%-8s FAILED: %s\n", r.id.c_str(), r.error.c_str());
            continue;
        }
        std::printf("%-8s %-24s best=%-8.3f top p=%.3f feasible=%s "
                    "compile=%s\n",
                    r.id.c_str(), r.problem.c_str(), r.bestCost,
                    r.topProbability, r.topFeasible ? "yes" : "no",
                    r.cacheHit ? "shared" : "fresh");
    }

    const auto reg = svc.registryStats();
    const auto cache = svc.cacheStats();
    std::printf("registry: %llu registered, %llu ref hits; compile cache: "
                "%llu hits / %llu misses\n",
                static_cast<unsigned long long>(reg.inserted),
                static_cast<unsigned long long>(reg.refHits),
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses));
    return 0;
}
