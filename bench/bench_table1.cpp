/**
 * @file
 * Table I: the headline comparison on a 15-qubit graph-coloring problem
 * (G2): constraint-encoding universality, in-constraints rate, success
 * rate, and end-to-end latency (compile + iterative execution on the
 * IBM Fez model, without data communication).
 *
 * Expected shape (paper): penalty-based designs near zero on both rates;
 * cyclic slightly better; Choco-Q 100% in-constraints, ~2/3 success,
 * and roughly half the latency of the baselines (fewer iterations).
 */

#include "common.hpp"

using namespace chocoq;
using namespace chocoq::bench;

int
main(int argc, char **argv)
{
    const BenchConfig cfg =
        parseArgs(argc, argv, "bench_table1",
                  "Table I: 15-qubit GCP summary comparison");
    banner("Table I (graph coloring, 15 qubits)", cfg);

    const auto dev = device::fez();
    Table table({"Design", "Constraint encoding", "In-constraints (%)",
                 "Success (%)", "End-to-end latency (s)"});

    const auto describe = [](const std::string &name) {
        if (name == "penalty")
            return "soft constraints (penalty term)";
        if (name == "cyclic")
            return "hard, summation-format only";
        if (name == "hea")
            return "soft constraints (penalty term)";
        return "hard, arbitrary linear (commute Hamiltonian)";
    };

    std::vector<metrics::RunStats> acc[4];
    device::LatencyEstimate lat[4];
    const char *labels[4] = {"Penalty (FrozenQubits+Red-QAOA)",
                             "Cyclic Hamiltonian", "HEA",
                             "Choco-Q (commute Hamiltonian)"};
    const char *names[4] = {"penalty", "cyclic", "hea", "choco-q"};

    for (unsigned idx = 0; idx < cfg.cases; ++idx) {
        const auto p = problems::makeCase(problems::Scale::G2, idx);
        const auto exact = model::solveExact(p);
        if (!exact.feasible)
            continue;
        auto pen_opts = penaltyOptions(cfg);
        pen_opts.engine.opt.maxIterations = latencyBaselineIters(cfg);
        auto cyc_opts = cyclicOptions(cfg);
        cyc_opts.engine.opt.maxIterations = latencyBaselineIters(cfg);
        auto hea_opts = heaOptions(cfg);
        hea_opts.engine.opt.maxIterations = latencyBaselineIters(cfg);
        const solvers::PenaltyQaoaSolver penalty(pen_opts);
        const solvers::CyclicQaoaSolver cyclic(cyc_opts);
        const solvers::HeaSolver hea(hea_opts);
        const core::ChocoQSolver choco(chocoLatencyOptions(cfg));
        const core::Solver *solver_list[4] = {&penalty, &cyclic, &hea,
                                              &choco};
        for (int s = 0; s < 4; ++s) {
            const auto r = runCase(*solver_list[s], p, exact);
            acc[s].push_back(r.stats);
            lat[s] = device::estimateLatency(
                dev, r.outcome.basisDepth, r.outcome.iterations,
                r.outcome.circuitsPerIteration, cfg.shots,
                r.outcome.compileSeconds, r.outcome.classicalSeconds);
        }
    }

    for (int s = 0; s < 4; ++s) {
        const auto avg = metrics::averageStats(acc[s]);
        table.addRow({labels[s], describe(names[s]),
                      fmtPct(avg.inConstraintsRate, 2),
                      fmtPct(avg.successRate, 2),
                      fmtNum(lat[s].total(), 2)});
    }
    table.print();
    return 0;
}
