/**
 * @file
 * Open-loop load harness for the socket front-end, following the HPC
 * AI500 metrics-under-load methodology: arrivals follow a fixed,
 * seed-derived schedule and are sent at their scheduled wall-clock
 * times whether or not earlier responses came back. A closed-loop
 * (request-response) client self-throttles the moment the server slows
 * down and so can never observe queueing collapse; the open-loop
 * schedule keeps offering load, which is what makes the p99/p99.9
 * numbers honest (coordinated-omission-free).
 *
 * Per stage (64/256/1024 connections by default) the harness walks a
 * ladder of offered rates and reports the highest rung the server
 * sustained — achieved >= 90% of offered with zero error lines — plus
 * p50/p99/p99.9 end-to-end latency at that rung, measured from the
 * *scheduled* send time (so client-side send backlog counts against
 * the server, as it would for a real caller). Server-side stage
 * breakdowns come from a {"type":"stats"} probe on the same wire the
 * jobs used. Results mirror to BENCH_load.json (schema:
 * docs/benchmarks.md; checked by tools/check_bench_schema.py).
 *
 * Modes:
 *  - in-process (default): a fresh SolveService + Server per stage,
 *    event-loop front-end unless --front-end thread is given.
 *  - --port P: drive an external chocoq_serve --listen (the soak test
 *    and the CI load-smoke job use this). Counter assertions use
 *    before/after deltas so prior traffic on the server is fine.
 *
 * --check turns protocol violations into a nonzero exit: malformed
 * response lines, cross-connection leakage (every id encodes its
 * connection), non-monotonic per-connection sequence numbers, lost or
 * duplicated responses, and a failed final counter reconciliation.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/timer.hpp"
#include "service/server.hpp"
#include "service/service.hpp"

using namespace chocoq;
using Clock = std::chrono::steady_clock;

namespace
{

struct Config
{
    std::vector<int> connections = {64, 256, 1024};
    /** Offered-rate ladder in jobs/sec, walked per stage. */
    std::vector<double> rates = {100.0, 200.0, 400.0};
    double durationSeconds = 3.0;
    std::uint64_t seed = 42;
    int workers = 2;
    bool eventLoop = true;
    int shards = 2;
    /** External server port; 0 = in-process per stage. */
    int port = 0;
    bool check = false;
    std::string outPath = "BENCH_load.json";
};

/** splitmix64: the deterministic jitter source (same seed, same
 * schedule, byte for byte — the soak test depends on it). */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** @p sorted ascending. */
double
percentile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

/** One scheduled request: send at @p atSeconds on connection @p conn. */
struct Arrival
{
    double atSeconds = 0.0;
    int conn = 0;
    long seq = 0;
    std::string line; // request bytes incl. newline
};

/**
 * The fixed open-loop schedule: K = rate * duration arrivals, evenly
 * spaced with +-20% seeded jitter, assigned round-robin to
 * connections. Job bodies are tiny F1 solves (single structure: after
 * the first compile the service is pure dispatch + simulate, which is
 * what a front-end benchmark should measure).
 */
std::vector<Arrival>
makeSchedule(double rate, double duration, int conns, std::uint64_t seed)
{
    const long total = std::max(1L, static_cast<long>(rate * duration));
    std::vector<Arrival> schedule;
    schedule.reserve(static_cast<std::size_t>(total));
    std::vector<long> seq(static_cast<std::size_t>(conns), 0);
    const double spacing = duration / static_cast<double>(total);
    for (long k = 0; k < total; ++k) {
        Arrival a;
        const double jitter =
            (static_cast<double>(mix64(seed ^ static_cast<std::uint64_t>(k))
                                 & 0xffffffu)
                 / double(0xffffffu)
             - 0.5)
            * 0.4 * spacing;
        a.atSeconds = static_cast<double>(k) * spacing + jitter;
        if (a.atSeconds < 0.0)
            a.atSeconds = 0.0;
        a.conn = static_cast<int>(k % conns);
        a.seq = seq[static_cast<std::size_t>(a.conn)]++;
        service::SolveJob job;
        job.id = "c" + std::to_string(a.conn) + "-" + std::to_string(a.seq);
        job.scale = "F1";
        job.seed = seed * 1000003ull + static_cast<std::uint64_t>(k);
        job.maxIterations = 3;
        job.keepStarts = 1;
        a.line = service::jobToJsonRequest(job).dump() + "\n";
        schedule.push_back(std::move(a));
    }
    return schedule;
}

/** Violation counters one rung accumulates (see --check). */
struct RungResult
{
    double offered = 0.0;
    double achieved = 0.0;
    long sent = 0;
    long responses = 0;
    long errorLines = 0;     // status error/rejected/cancelled/expired
    long malformedLines = 0; // not parseable JSON
    long misdelivered = 0;   // id names a different connection
    long outOfOrder = 0;     // per-connection seq went backwards
    long duplicates = 0;
    double wallSeconds = 0.0;
    std::vector<double> latenciesMs;
};

/** Client-side state of one open connection. */
struct ClientConn
{
    int fd = -1;
    service::LineFramer framer{1 << 20};
    long lastSeq = -1;
    std::vector<bool> seen; // seq -> response arrived
    /** Bytes the kernel would not take yet (open-loop: never block the
     * schedule on one backpressured connection). */
    std::string pendingOut;
};

int
connectLoopback(int port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof addr)
        != 0) {
        ::close(fd);
        return -1;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    return fd;
}

/**
 * Run one rung: open @p conns connections, fire the schedule, read
 * responses until complete (or a post-schedule grace timeout), close.
 * Client work is spread over a small fixed thread pool, each thread
 * owning a disjoint connection subset — the client must not itself be
 * a thread-per-connection design or 1024 connections would measure
 * the harness.
 */
RungResult
runRung(int port, int conns, double rate, double duration,
        std::uint64_t seed)
{
    RungResult result;
    result.offered = rate;

    auto schedule = makeSchedule(rate, duration, conns, seed);
    const long perConn = (static_cast<long>(schedule.size())
                          + conns - 1)
                         / conns;

    std::vector<ClientConn> table(static_cast<std::size_t>(conns));
    for (auto &c : table) {
        c.seen.assign(static_cast<std::size_t>(perConn), false);
        c.fd = connectLoopback(port);
        if (c.fd < 0) {
            std::cerr << "bench_load: connect failed: " << std::strerror(errno)
                      << "\n";
            for (auto &cc : table)
                if (cc.fd >= 0)
                    ::close(cc.fd);
            result.malformedLines = static_cast<long>(schedule.size());
            return result;
        }
    }

    const int threads = std::max(
        2, std::min(8, static_cast<int>(std::thread::hardware_concurrency())));
    std::mutex mu; // guards the merged counters below
    std::atomic<long> sent{0}, responses{0};

    const auto t0 = Clock::now();
    const auto elapsed = [&t0] {
        return std::chrono::duration<double>(Clock::now() - t0).count();
    };

    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            // This thread's connections and arrivals, in time order.
            std::vector<int> mine;
            for (int c = t; c < conns; c += threads)
                mine.push_back(c);
            std::vector<const Arrival *> arrivals;
            for (const auto &a : schedule)
                if (a.conn % threads == t)
                    arrivals.push_back(&a);
            // id -> scheduled time, for latency without a global map.
            std::map<std::string, double> sched_at;
            for (const auto *a : arrivals)
                sched_at.emplace("c" + std::to_string(a->conn) + "-"
                                     + std::to_string(a->seq),
                                 a->atSeconds);

            RungResult local;
            std::size_t next = 0;
            long expect = static_cast<long>(arrivals.size());
            long got = 0;
            std::vector<pollfd> pfds(mine.size());
            const double grace = 30.0;
            double done_at = -1.0;

            while (got < expect) {
                const double now = elapsed();
                // Open loop: send everything due, schedule time rules.
                while (next < arrivals.size()
                       && arrivals[next]->atSeconds <= now) {
                    const Arrival &a = *arrivals[next];
                    auto &c = table[static_cast<std::size_t>(a.conn)];
                    c.pendingOut += a.line;
                    ++next;
                    sent.fetch_add(1, std::memory_order_relaxed);
                }
                if (next == arrivals.size() && done_at < 0.0)
                    done_at = now;
                if (done_at >= 0.0 && now - done_at > grace)
                    break; // responses lost; counted below

                for (std::size_t i = 0; i < mine.size(); ++i) {
                    auto &c = table[static_cast<std::size_t>(mine[i])];
                    pfds[i].fd = c.fd;
                    pfds[i].events = static_cast<short>(
                        POLLIN | (c.pendingOut.empty() ? 0 : POLLOUT));
                    pfds[i].revents = 0;
                }
                double wait_ms = 2.0;
                if (next < arrivals.size())
                    wait_ms = std::min(
                        wait_ms,
                        std::max(0.0,
                                 (arrivals[next]->atSeconds - now) * 1000.0));
                ::poll(pfds.data(), pfds.size(),
                       std::max(0, static_cast<int>(wait_ms)));

                for (std::size_t i = 0; i < mine.size(); ++i) {
                    auto &c = table[static_cast<std::size_t>(mine[i])];
                    if (c.fd < 0)
                        continue;
                    if ((pfds[i].revents & POLLOUT)
                        && !c.pendingOut.empty()) {
                        const auto n = ::send(c.fd, c.pendingOut.data(),
                                              c.pendingOut.size(),
                                              MSG_NOSIGNAL);
                        if (n > 0)
                            c.pendingOut.erase(
                                0, static_cast<std::size_t>(n));
                    }
                    if (!(pfds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                        continue;
                    char buf[16384];
                    for (;;) {
                        const auto n = ::recv(c.fd, buf, sizeof buf, 0);
                        if (n <= 0)
                            break; // EAGAIN, or close handled via grace
                        c.framer.feed(buf, static_cast<std::size_t>(n));
                        const double recv_at = elapsed();
                        service::LineFramer::Line ln;
                        while (c.framer.next(ln)) {
                            ++got;
                            ++local.responses;
                            std::string id, status;
                            try {
                                const auto v =
                                    service::Json::parse(ln.text);
                                id = v.getString("id", "");
                                status = v.getString("status", "");
                            } catch (...) {
                                ++local.malformedLines;
                                continue;
                            }
                            if (status != "ok")
                                ++local.errorLines;
                            const std::string prefix =
                                "c" + std::to_string(mine[i]) + "-";
                            if (id.compare(0, prefix.size(), prefix)
                                != 0) {
                                ++local.misdelivered;
                                continue;
                            }
                            const long seq = std::atol(
                                id.c_str() + prefix.size());
                            if (seq < 0 || seq >= perConn) {
                                ++local.malformedLines;
                                continue;
                            }
                            if (c.seen[static_cast<std::size_t>(seq)])
                                ++local.duplicates;
                            c.seen[static_cast<std::size_t>(seq)] = true;
                            if (seq <= c.lastSeq)
                                ++local.outOfOrder;
                            c.lastSeq = std::max(c.lastSeq, seq);
                            const auto it = sched_at.find(id);
                            if (it != sched_at.end())
                                local.latenciesMs.push_back(
                                    (recv_at - it->second) * 1000.0);
                        }
                        if (static_cast<std::size_t>(n) < sizeof buf)
                            break;
                    }
                }
            }
            responses.fetch_add(local.responses,
                                std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(mu);
            result.errorLines += local.errorLines;
            result.malformedLines += local.malformedLines;
            result.misdelivered += local.misdelivered;
            result.outOfOrder += local.outOfOrder;
            result.duplicates += local.duplicates;
            result.latenciesMs.insert(result.latenciesMs.end(),
                                      local.latenciesMs.begin(),
                                      local.latenciesMs.end());
        });
    }
    for (auto &t : pool)
        t.join();
    result.wallSeconds = elapsed();
    for (auto &c : table)
        if (c.fd >= 0)
            ::close(c.fd);

    result.sent = sent.load();
    result.responses = responses.load();
    result.achieved = result.wallSeconds > 0.0
                          ? static_cast<double>(result.responses)
                                / result.wallSeconds
                          : 0.0;
    std::sort(result.latenciesMs.begin(), result.latenciesMs.end());
    return result;
}

/** One {"type":"stats"} probe; empty Json on failure. */
service::Json
probeStats(int port)
{
    try {
        service::JsonlClient probe(port);
        probe.sendLine(R"({"type":"stats"})");
        std::string line;
        if (!probe.readLine(line, 30000))
            return service::Json();
        return service::Json::parse(line);
    } catch (...) {
        return service::Json();
    }
}

double
counterOf(const service::Json &stats, const char *name)
{
    const auto *counters = stats.find("counters");
    return counters ? counters->getNumber(name, 0.0) : 0.0;
}

struct StageReport
{
    int connections = 0;
    RungResult best;       // highest sustained rung (or last attempted)
    bool sustainedAny = false;
    std::vector<RungResult> rungs;
    double acceptMsAvg = 0.0;
    /** Client connect-to-send turnaround — open-loop clients hold
     * connections idle, so this is large by design and kept separate
     * from the server-latency first_byte_ms. */
    double idleBeforeFirstRequestMsAvg = 0.0;
    double firstByteMsAvg = 0.0;
    double queueMsP50 = 0.0;
    double solveMsP50 = 0.0;
    double partialWrites = 0.0;
    bool reconciled = true;
};

double
histField(const service::Json &stats, const char *hist, const char *field)
{
    const auto *hists = stats.find("histograms");
    if (hists == nullptr)
        return 0.0;
    const auto *h = hists->find(hist);
    return h ? h->getNumber(field, 0.0) : 0.0;
}

StageReport
runStage(const Config &cfg, int conns)
{
    StageReport report;
    report.connections = conns;

    // In-process mode: a fresh service + server per stage so counters
    // start at zero and the cache is cold exactly once.
    std::unique_ptr<service::SolveService> svc;
    std::unique_ptr<service::Server> server;
    int port = cfg.port;
    if (port == 0) {
        service::ServiceOptions so;
        so.workers = cfg.workers;
        svc = std::make_unique<service::SolveService>(so);
        service::ServerOptions opts;
        opts.eventLoop = cfg.eventLoop;
        opts.eventLoopShards = cfg.shards;
        opts.maxConnections = 0;
        opts.maxInflight = 4096; // overload shows up as rejected lines
        server = std::make_unique<service::Server>(*svc, opts);
        server->start();
        port = server->port();
    }

    const auto before = probeStats(port);
    long total_sent = 0;
    for (const double rate : cfg.rates) {
        RungResult rung = runRung(port, conns, rate, cfg.durationSeconds,
                                  cfg.seed
                                      ^ static_cast<std::uint64_t>(conns)
                                      ^ static_cast<std::uint64_t>(rate));
        total_sent += rung.sent;
        const bool sustained = rung.errorLines == 0
                               && rung.malformedLines == 0
                               && rung.responses == rung.sent
                               && rung.achieved >= 0.9 * rung.offered;
        std::cout << "  conns=" << conns << " offered=" << rung.offered
                  << "/s achieved=" << rung.achieved << "/s p50="
                  << percentile(rung.latenciesMs, 0.5) << "ms p99="
                  << percentile(rung.latenciesMs, 0.99) << "ms p99.9="
                  << percentile(rung.latenciesMs, 0.999) << "ms errors="
                  << rung.errorLines << (sustained ? "" : "  [not sustained]")
                  << "\n";
        if (sustained || !report.sustainedAny) {
            report.best = rung;
            report.sustainedAny = report.sustainedAny || sustained;
        }
        report.rungs.push_back(std::move(rung));
    }

    const auto after = probeStats(port);
    if (after.isObject()) {
        report.acceptMsAvg =
            histField(after, "server.accept_ms", "avg_ms");
        report.idleBeforeFirstRequestMsAvg = histField(
            after, "server.idle_before_first_request_ms", "avg_ms");
        report.firstByteMsAvg =
            histField(after, "server.first_byte_ms", "avg_ms");
        report.queueMsP50 = histField(after, "stage.queue_ms", "p50_ms");
        report.solveMsP50 = histField(after, "stage.solve_ms", "p50_ms");
        const auto *server_section = after.find("server");
        if (server_section != nullptr)
            report.partialWrites =
                server_section->getNumber("partial_writes", 0.0);
        // Reconciliation on deltas (an external server may carry prior
        // traffic): everything submitted during the stage completed,
        // and the terminal statuses partition the completions.
        const double submitted = counterOf(after, "jobs.submitted")
                                 - counterOf(before, "jobs.submitted");
        const double completed = counterOf(after, "jobs.completed")
                                 - counterOf(before, "jobs.completed");
        const double terminal =
            counterOf(after, "jobs.ok") - counterOf(before, "jobs.ok")
            + counterOf(after, "jobs.error")
            - counterOf(before, "jobs.error")
            + counterOf(after, "jobs.cancelled")
            - counterOf(before, "jobs.cancelled")
            + counterOf(after, "jobs.expired")
            - counterOf(before, "jobs.expired");
        report.reconciled = submitted == completed
                            && terminal == completed
                            && submitted
                                   == static_cast<double>(total_sent)
                                          - /* rejected lines never
                                               reach the scheduler */
                                          [&] {
                                              long rejected = 0;
                                              for (const auto &r :
                                                   report.rungs)
                                                  rejected += r.errorLines;
                                              return static_cast<double>(
                                                  rejected);
                                          }();
    } else {
        report.reconciled = false;
    }

    if (server)
        server->drain();
    return report;
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto intArg = [&](int &out) {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            out = std::atoi(argv[++i]);
        };
        if (arg == "--connections" && i + 1 < argc) {
            cfg.connections.clear();
            std::string list = argv[++i];
            for (std::size_t pos = 0; pos < list.size();) {
                const auto comma = list.find(',', pos);
                cfg.connections.push_back(
                    std::atoi(list.substr(pos, comma - pos).c_str()));
                pos = comma == std::string::npos ? list.size() : comma + 1;
            }
        } else if (arg == "--rates" && i + 1 < argc) {
            cfg.rates.clear();
            std::string list = argv[++i];
            for (std::size_t pos = 0; pos < list.size();) {
                const auto comma = list.find(',', pos);
                cfg.rates.push_back(
                    std::atof(list.substr(pos, comma - pos).c_str()));
                pos = comma == std::string::npos ? list.size() : comma + 1;
            }
        } else if (arg == "--duration-s" && i + 1 < argc) {
            cfg.durationSeconds = std::atof(argv[++i]);
        } else if (arg == "--seed" && i + 1 < argc) {
            cfg.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--workers") {
            intArg(cfg.workers);
        } else if (arg == "--port") {
            intArg(cfg.port);
        } else if (arg == "--shards") {
            intArg(cfg.shards);
        } else if (arg == "--front-end" && i + 1 < argc) {
            const std::string mode = argv[++i];
            if (mode == "event")
                cfg.eventLoop = true;
            else if (mode == "thread")
                cfg.eventLoop = false;
            else {
                std::cerr << "--front-end takes event|thread\n";
                return 2;
            }
        } else if (arg == "--check") {
            cfg.check = true;
        } else if (arg == "--out" && i + 1 < argc) {
            cfg.outPath = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::cout
                << "usage: " << argv[0]
                << " [--connections N,N,...] [--rates R,R,...]\n"
                   "       [--duration-s S] [--seed S] [--workers N]\n"
                   "       [--front-end event|thread] [--shards N]\n"
                   "       [--port P] [--check] [--out FILE]\n";
            return 0;
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            return 2;
        }
    }

    // 1024 connections need 1024 fds on each side; in-process mode
    // holds both sides, so lift the soft limit to the hard one.
    rlimit lim{};
    if (::getrlimit(RLIMIT_NOFILE, &lim) == 0
        && lim.rlim_cur < lim.rlim_max) {
        lim.rlim_cur = lim.rlim_max;
        ::setrlimit(RLIMIT_NOFILE, &lim);
    }

    std::cout << "=== bench_load: open-loop, seed " << cfg.seed << ", "
              << cfg.durationSeconds << " s/rung, "
              << (cfg.port ? "external server" : "in-process server")
              << " ===\n";

    std::vector<StageReport> stages;
    bool ok = true;
    for (const int conns : cfg.connections) {
        StageReport stage = runStage(cfg, conns);
        const auto &b = stage.best;
        std::cout << "conns=" << conns << ": max sustained "
                  << (stage.sustainedAny ? b.offered : 0.0)
                  << " jobs/s (achieved " << b.achieved << "), p50 "
                  << percentile(b.latenciesMs, 0.5) << " ms, p99 "
                  << percentile(b.latenciesMs, 0.99) << " ms, p99.9 "
                  << percentile(b.latenciesMs, 0.999)
                  << " ms; reconciled: "
                  << (stage.reconciled ? "yes" : "NO") << "\n";
        if (cfg.check) {
            long violations = 0;
            for (const auto &r : stage.rungs)
                violations += r.malformedLines + r.misdelivered
                              + r.outOfOrder + r.duplicates
                              + (r.sent - r.responses);
            if (violations != 0 || !stage.reconciled
                || !stage.sustainedAny) {
                std::cerr << "bench_load: CHECK FAILED at conns=" << conns
                          << " (violations=" << violations
                          << ", reconciled=" << stage.reconciled
                          << ", sustained=" << stage.sustainedAny << ")\n";
                ok = false;
            }
        }
        stages.push_back(std::move(stage));
    }

    service::Json doc = service::Json::object();
    doc.set("bench", "load");
    doc.set("open_loop", true);
    doc.set("seed", static_cast<double>(cfg.seed));
    doc.set("duration_s_per_rung", cfg.durationSeconds);
    doc.set("workers", cfg.workers);
    doc.set("event_loop", cfg.eventLoop);
    doc.set("external_server", cfg.port != 0);
    doc.set("hardware_concurrency",
            static_cast<double>(std::thread::hardware_concurrency()));
    service::Json stage_array = service::Json::array();
    for (const auto &s : stages) {
        service::Json entry = service::Json::object();
        entry.set("connections", s.connections);
        entry.set("max_sustainable_jobs_per_sec",
                  s.sustainedAny ? s.best.offered : 0.0);
        entry.set("offered_jobs_per_sec", s.best.offered);
        entry.set("achieved_jobs_per_sec", s.best.achieved);
        entry.set("latency_p50_ms", percentile(s.best.latenciesMs, 0.5));
        entry.set("latency_p99_ms", percentile(s.best.latenciesMs, 0.99));
        entry.set("latency_p999_ms",
                  percentile(s.best.latenciesMs, 0.999));
        entry.set("jobs_sent", static_cast<double>(s.best.sent));
        entry.set("responses", static_cast<double>(s.best.responses));
        entry.set("error_lines", static_cast<double>(s.best.errorLines));
        entry.set("malformed_lines",
                  static_cast<double>(s.best.malformedLines));
        entry.set("out_of_order", static_cast<double>(s.best.outOfOrder));
        entry.set("reconciled", s.reconciled);
        service::Json server_doc = service::Json::object();
        server_doc.set("accept_ms_avg", s.acceptMsAvg);
        server_doc.set("idle_before_first_request_ms_avg",
                       s.idleBeforeFirstRequestMsAvg);
        server_doc.set("first_byte_ms_avg", s.firstByteMsAvg);
        server_doc.set("stage_queue_ms_p50", s.queueMsP50);
        server_doc.set("stage_solve_ms_p50", s.solveMsP50);
        server_doc.set("partial_writes", s.partialWrites);
        entry.set("server", std::move(server_doc));
        stage_array.push(std::move(entry));
    }
    doc.set("stages", std::move(stage_array));

    std::ofstream out(cfg.outPath);
    out << doc.pretty() << "\n";
    std::cout << "wrote " << cfg.outPath << "\n";
    return ok ? 0 : 1;
}
