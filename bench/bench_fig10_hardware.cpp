/**
 * @file
 * Figure 10: success rate and in-constraints rate on the three IBM
 * platforms (Fez, Osaka, Sherbrooke), reproduced here with per-device
 * noise-trajectory simulation of the transpiled circuits on the small
 * scales F1, G1, K1.
 *
 * Expected shape (paper): all methods degrade vs the noise-free
 * simulator; Choco-Q keeps the best success and in-constraints rates
 * (average improvements of ~2.65x and ~2.43x); Fez (native CZ, 99.7%)
 * beats the two ECR devices; G1 (12 qubits) suffers most.
 */

#include "common.hpp"

using namespace chocoq;
using namespace chocoq::bench;

int
main(int argc, char **argv)
{
    const BenchConfig cfg =
        parseArgs(argc, argv, "bench_fig10_hardware",
                  "Fig. 10: success & in-constraints on device models");
    banner("Figure 10", cfg);

    const std::vector<problems::Scale> scales{
        problems::Scale::F1, problems::Scale::G1, problems::Scale::K1};

    Table table({"Device", "Case", "Metric", "Penalty", "Cyclic", "HEA",
                 "Choco-Q"});
    double improv_succ = 0.0, improv_cons = 0.0;
    int improv_count = 0;

    for (const auto &dev : device::allDevices()) {
        const auto noise = device::noiseOf(dev);
        for (auto scale : scales) {
            const auto p = problems::makeCase(scale, 0);
            const auto exact = model::solveExact(p);
            if (!exact.feasible)
                continue;

            auto pen_opts = penaltyOptions(cfg);
            pen_opts.engine.noise = noise;
            pen_opts.engine.shots = cfg.shots;
            pen_opts.engine.trajectories = cfg.trajectories;
            auto cyc_opts = cyclicOptions(cfg);
            cyc_opts.engine = pen_opts.engine;
            cyc_opts.engine.opt = cyc_opts.engine.opt;
            auto hea_opts = heaOptions(cfg);
            hea_opts.engine.noise = noise;
            hea_opts.engine.shots = cfg.shots;
            hea_opts.engine.trajectories = cfg.trajectories;
            auto choco_opts = chocoOptions(cfg);
            choco_opts.engine.noise = noise;
            choco_opts.engine.shots = cfg.shots;
            choco_opts.engine.trajectories = cfg.trajectories;
            choco_opts.engine.transpile.nativeCz = dev.nativeCz;

            const solvers::PenaltyQaoaSolver penalty(pen_opts);
            const solvers::CyclicQaoaSolver cyclic(cyc_opts);
            const solvers::HeaSolver hea(hea_opts);
            const core::ChocoQSolver choco(choco_opts);
            const core::Solver *solver_list[4] = {&penalty, &cyclic, &hea,
                                                  &choco};
            metrics::RunStats stats[4];
            for (int s = 0; s < 4; ++s)
                stats[s] = runCase(*solver_list[s], p, exact).stats;

            table.addRow({dev.name, problems::scaleName(scale),
                          "Success (%)",
                          fmtPct(stats[0].successRate, 2),
                          fmtPct(stats[1].successRate, 2),
                          fmtPct(stats[2].successRate, 2),
                          fmtPct(stats[3].successRate, 2)});
            table.addRow({"", "", "In-cons. (%)",
                          fmtPct(stats[0].inConstraintsRate, 2),
                          fmtPct(stats[1].inConstraintsRate, 2),
                          fmtPct(stats[2].inConstraintsRate, 2),
                          fmtPct(stats[3].inConstraintsRate, 2)});

            const double best_base_succ =
                std::max({stats[0].successRate, stats[1].successRate,
                          stats[2].successRate, 1e-4});
            const double best_base_cons =
                std::max({stats[0].inConstraintsRate,
                          stats[1].inConstraintsRate,
                          stats[2].inConstraintsRate, 1e-4});
            improv_succ += stats[3].successRate / best_base_succ;
            improv_cons += stats[3].inConstraintsRate / best_base_cons;
            ++improv_count;
        }
        table.addRule();
    }
    table.print();
    if (improv_count > 0) {
        std::cout << "Choco-Q avg improvement over best baseline: success "
                  << fmtNum(improv_succ / improv_count, 2)
                  << "x, in-constraints "
                  << fmtNum(improv_cons / improv_count, 2) << "x\n";
    }
    return 0;
}
