/**
 * @file
 * Google-benchmark micro-suite for the hot kernels: state-vector gate
 * application, the commute pair-rotation fast path, diagonal phase
 * tables, move-basis computation, transpilation, and the Lemma-2 circuit
 * construction.
 *
 * The kernel benchmarks report a ns_per_amp counter (wall time per
 * state-vector amplitude, normalized to the full 2^n dimension so that
 * fast/naive ratios read directly as speedups) plus the roofline
 * inputs bytes_per_amp / flops_per_amp, derived from the instrumented
 * kernels' own counter sink (obs/roofline.hpp) over the timing loop —
 * by the static cost model, not by measurement, so the numbers are
 * exact and machine-independent. The whole run is mirrored to
 * BENCH_kernels.json (pass --benchmark_out=... to override) and then
 * annotated in place: a "machine" block with the hardware fingerprint
 * and calibrated peaks (STREAM triad, FMA-chain FLOP rates), and per
 * kernel entry arithmetic_intensity, roofline_bound and
 * pct_of_ceiling. Run with --calibrate to print the machine block
 * alone and exit (the baseline-refresh recipe in docs/benchmarks.md).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "circuit/fusion.hpp"
#include "circuit/transpile.hpp"
#include "core/chocoq_solver.hpp"
#include "core/circuits.hpp"
#include "core/layer_fusion.hpp"
#include "core/movebasis.hpp"
#include "model/exact.hpp"
#include "obs/roofline.hpp"
#include "problems/suite.hpp"
#include "service/json.hpp"
#include "sim/batched.hpp"
#include "sim/executor.hpp"
#include "sim/naive.hpp"
#include "sim/parallel.hpp"

using namespace chocoq;
using linalg::Cplx;
using linalg::CVec;

namespace
{

constexpr double kInvSqrt2 = 0.70710678118654752440;

/** Qubit count for the masked-kernel comparisons (1M amplitudes). */
constexpr int kKernelQubits = 20;

/** Items-processed plus ns-per-amplitude counter, both per iteration. */
void
setAmpCounters(benchmark::State &state, std::int64_t amps_per_iter)
{
    state.SetItemsProcessed(state.iterations() * amps_per_iter);
    state.counters["ns_per_amp"] = benchmark::Counter(
        static_cast<double>(state.iterations())
            * static_cast<double>(amps_per_iter) * 1e-9,
        benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

/**
 * ns_per_amp plus the roofline inputs, read back from the kernel
 * counter sink that was attached over the timing loop: bytes/flops per
 * *normalized* amplitude (the same 2^n denominator ns_per_amp uses),
 * so arithmetic intensity and percent-of-ceiling compose directly.
 * A masked kernel that touches 2^(n-k) amplitudes therefore reports
 * model-bytes x 2^-k per normalized amp — by construction equal to
 * sink totals over the loop divided by the normalized amp count.
 */
void
setRooflineCounters(benchmark::State &state, std::int64_t amps_per_iter,
                    const obs::KernelCounterSink &sink)
{
    setAmpCounters(state, amps_per_iter);
    const double norm_amps = static_cast<double>(state.iterations())
                             * static_cast<double>(amps_per_iter);
    state.counters["bytes_per_amp"] = sink.totalBytes() / norm_amps;
    state.counters["flops_per_amp"] = sink.totalFlops() / norm_amps;
}

/**
 * Hand model for the uninstrumented sim::naive baselines, which scan
 * the full 2^n space and transform only the matching subspace: every
 * amplitude is read (16 B), the touched fraction is written back
 * (16 B) and costs one 6-flop complex multiply-accumulate.
 */
void
setNaiveRooflineCounters(benchmark::State &state,
                         std::int64_t amps_per_iter,
                         double touched_fraction)
{
    setAmpCounters(state, amps_per_iter);
    state.counters["bytes_per_amp"] = 16.0 + 16.0 * touched_fraction;
    state.counters["flops_per_amp"] = 6.0 * touched_fraction;
}

/**
 * Support mask/v-bits pattern of size k spread over the upper half of
 * the register (the representative case: free low bits keep the subspace
 * runs contiguous).
 */
core::CommuteTerm
spreadTerm(int n, int k)
{
    std::vector<int> u(n, 0);
    for (int i = 0; i < k; ++i)
        u[n / 2 + i * (n / 2 - 1) / std::max(k - 1, 1)] =
            (i % 2 == 0) ? 1 : -1;
    return core::makeCommuteTerm(u);
}

/** Worst-case pattern: support packed into the lowest k bits (stride-2^k
 * access, run length 1). */
core::CommuteTerm
lowTerm(int n, int k)
{
    std::vector<int> u(n, 0);
    for (int i = 0; i < k; ++i)
        u[i] = (i % 2 == 0) ? 1 : -1;
    return core::makeCommuteTerm(u);
}

// ---- generic gate kernels ----

void
BM_Apply1q(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    sim::StateVector sv(n);
    obs::KernelCounterSink sink;
    sv.setCounterSink(&sink);
    for (auto _ : state) {
        sv.apply1q(n / 2, kInvSqrt2, kInvSqrt2, kInvSqrt2, -kInvSqrt2);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    setRooflineCounters(state, std::int64_t{1} << n, sink);
}
BENCHMARK(BM_Apply1q)->Arg(10)->Arg(14)->Arg(18);

void
BM_Diagonal1q(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    sim::StateVector sv(n);
    const Cplx em{std::cos(0.4), -std::sin(0.4)};
    obs::KernelCounterSink sink;
    sv.setCounterSink(&sink);
    for (auto _ : state) {
        sv.applyDiagonal1q(n / 2, em, std::conj(em));
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    setRooflineCounters(state, std::int64_t{1} << n, sink);
}
BENCHMARK(BM_Diagonal1q)->Arg(14)->Arg(18)->Arg(kKernelQubits);

void
BM_ParityPhase(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    sim::StateVector sv(n);
    const Cplx even{std::cos(0.4), -std::sin(0.4)};
    const Basis mask = (Basis{1} << (n / 2)) | (Basis{1} << (n - 1));
    obs::KernelCounterSink sink;
    sv.setCounterSink(&sink);
    for (auto _ : state) {
        sv.applyParityPhase(mask, even, std::conj(even));
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    setRooflineCounters(state, std::int64_t{1} << n, sink);
}
BENCHMARK(BM_ParityPhase)->Arg(14)->Arg(18)->Arg(kKernelQubits);

// ---- masked kernels: subspace enumeration vs naive full scan ----

void
BM_PairRotation(benchmark::State &state)
{
    const int k = static_cast<int>(state.range(0));
    sim::StateVector sv(kKernelQubits);
    const auto term = spreadTerm(kKernelQubits, k);
    obs::KernelCounterSink sink;
    sv.setCounterSink(&sink);
    for (auto _ : state) {
        core::applyCommuteExact(sv, term, 0.3);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    setRooflineCounters(state, std::int64_t{1} << kKernelQubits, sink);
}
BENCHMARK(BM_PairRotation)->Arg(2)->Arg(3)->Arg(4)->Arg(8);

void
BM_PairRotationNaive(benchmark::State &state)
{
    const int k = static_cast<int>(state.range(0));
    sim::StateVector sv(kKernelQubits);
    const auto term = spreadTerm(kKernelQubits, k);
    for (auto _ : state) {
        sim::naive::pairRotation(sv.amplitudes(), term.supportMask,
                                 term.vBits, 0.3);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    // The naive scan rotates the two matching 2^(n-k) subspaces (the
    // |v> / |~v> pair on the k support bits): fraction 2^(1-k) written.
    setNaiveRooflineCounters(state, std::int64_t{1} << kKernelQubits,
                             std::ldexp(1.0, 1 - k));
}
BENCHMARK(BM_PairRotationNaive)->Arg(2)->Arg(3)->Arg(4)->Arg(8);

void
BM_PairRotationLowSupport(benchmark::State &state)
{
    const int k = static_cast<int>(state.range(0));
    sim::StateVector sv(kKernelQubits);
    const auto term = lowTerm(kKernelQubits, k);
    obs::KernelCounterSink sink;
    sv.setCounterSink(&sink);
    for (auto _ : state) {
        core::applyCommuteExact(sv, term, 0.3);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    setRooflineCounters(state, std::int64_t{1} << kKernelQubits, sink);
}
BENCHMARK(BM_PairRotationLowSupport)->Arg(2)->Arg(4);

void
BM_PhaseMask(benchmark::State &state)
{
    const int m = static_cast<int>(state.range(0));
    sim::StateVector sv(kKernelQubits);
    const auto term = spreadTerm(kKernelQubits, m);
    obs::KernelCounterSink sink;
    sv.setCounterSink(&sink);
    for (auto _ : state) {
        sv.applyPhaseMask(term.supportMask, 0.4);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    setRooflineCounters(state, std::int64_t{1} << kKernelQubits, sink);
}
BENCHMARK(BM_PhaseMask)->Arg(1)->Arg(2)->Arg(4);

void
BM_PhaseMaskNaive(benchmark::State &state)
{
    const int m = static_cast<int>(state.range(0));
    sim::StateVector sv(kKernelQubits);
    const auto term = spreadTerm(kKernelQubits, m);
    for (auto _ : state) {
        sim::naive::phaseMask(sv.amplitudes(), term.supportMask, 0.4);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    // The all-ones subspace of an m-bit mask: fraction 2^-m phased.
    setNaiveRooflineCounters(state, std::int64_t{1} << kKernelQubits,
                             std::ldexp(1.0, -m));
}
BENCHMARK(BM_PhaseMaskNaive)->Arg(1)->Arg(2)->Arg(4);

void
BM_Controlled1q(benchmark::State &state)
{
    const int n = kKernelQubits;
    sim::StateVector sv(n);
    const Basis controls = (Basis{1} << 0) | (Basis{1} << (n - 1));
    obs::KernelCounterSink sink;
    sv.setCounterSink(&sink);
    for (auto _ : state) {
        sv.applyControlled1q(controls, n / 2, 0, 1, 1, 0);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    setRooflineCounters(state, std::int64_t{1} << n, sink);
}
BENCHMARK(BM_Controlled1q);

void
BM_XY(benchmark::State &state)
{
    sim::StateVector sv(kKernelQubits);
    obs::KernelCounterSink sink;
    sv.setCounterSink(&sink);
    for (auto _ : state) {
        sv.applyXY(1, kKernelQubits - 2, 0.6);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    setRooflineCounters(state, std::int64_t{1} << kKernelQubits, sink);
}
BENCHMARK(BM_XY);

void
BM_Swap(benchmark::State &state)
{
    sim::StateVector sv(kKernelQubits);
    obs::KernelCounterSink sink;
    sv.setCounterSink(&sink);
    for (auto _ : state) {
        sv.applySwap(1, kKernelQubits - 2);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    setRooflineCounters(state, std::int64_t{1} << kKernelQubits, sink);
}
BENCHMARK(BM_Swap);

void
BM_PhaseTable(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    sim::StateVector sv(n);
    std::vector<double> table(std::size_t{1} << n, 0.5);
    obs::KernelCounterSink sink;
    sv.setCounterSink(&sink);
    for (auto _ : state) {
        sv.applyPhaseTable(table, 0.4);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    setRooflineCounters(state, std::int64_t{1} << n, sink);
}
BENCHMARK(BM_PhaseTable)->Arg(10)->Arg(14)->Arg(18);

void
BM_ExpectationTable(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    sim::StateVector sv(n);
    std::vector<double> table(std::size_t{1} << n, 0.5);
    obs::KernelCounterSink sink;
    sv.setCounterSink(&sink);
    for (auto _ : state) {
        double v = sv.expectationTable(table);
        benchmark::DoNotOptimize(v);
    }
    setRooflineCounters(state, std::int64_t{1} << n, sink);
}
BENCHMARK(BM_ExpectationTable)->Arg(14)->Arg(18)->Arg(kKernelQubits);

/** Pair rotation with CHOCOQ_THREADS overridden (OpenMP scaling probe). */
void
BM_PairRotationThreads(benchmark::State &state)
{
    sim::setSimThreads(static_cast<int>(state.range(0)));
    sim::StateVector sv(kKernelQubits);
    const auto term = spreadTerm(kKernelQubits, 3);
    obs::KernelCounterSink sink;
    sv.setCounterSink(&sink);
    for (auto _ : state) {
        core::applyCommuteExact(sv, term, 0.3);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    sim::setSimThreads(0);
    setRooflineCounters(state, std::int64_t{1} << kKernelQubits, sink);
}
BENCHMARK(BM_PairRotationThreads)->Arg(1)->Arg(2)->Arg(4);

// ---- gate fusion: fused vs unfused layer application ----

void
BM_FusedPhaseTable(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    sim::StateVector sv(n);
    // Objective-shaped table: 64 distinct eigenvalues.
    std::vector<double> table(std::size_t{1} << n);
    for (std::size_t i = 0; i < table.size(); ++i)
        table[i] = static_cast<double>((i * 2654435761u) % 64) - 32.0;
    const auto plan = core::buildFusedLayerPlan(table, {});
    std::vector<Cplx> scratch;
    obs::KernelCounterSink sink;
    sv.setCounterSink(&sink);
    for (auto _ : state) {
        core::applyFusedObjectivePhase(sv, plan, table, 0.4, scratch);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    setRooflineCounters(state, std::int64_t{1} << n, sink);
}
BENCHMARK(BM_FusedPhaseTable)->Arg(10)->Arg(14)->Arg(18);

/**
 * The deep-layer configuration: a representative reduced instance
 * (support sizes 2-4, six distinct masks each carrying two
 * disjoint-pair variants, 64-distinct-value objective table) evolved
 * through 6 alternating layers — the memory-traffic shape of a deep
 * QAOA ansatz. Fused and unfused paths are bit-identical (tested);
 * the ratio of their ns_per_amp counters is the gate-fusion speedup
 * tracked by the acceptance criteria.
 */
std::vector<core::CommuteTerm>
deepLayerTerms(int n)
{
    std::vector<core::CommuteTerm> terms;
    for (int i = 0; i < 6; ++i) {
        const int k = 2 + i % 3;
        std::vector<int> u(n, 0);
        for (int b = 0; b < k; ++b)
            u[(i * 5 + b * 3) % n] = (b % 2 == 0) ? 1 : -1;
        terms.push_back(core::makeCommuteTerm(u));
        // Same support, one sign flipped: a disjoint pair set that the
        // fusion plan groups with the original into one sweep.
        u[(i * 5) % n] = -u[(i * 5) % n];
        terms.push_back(core::makeCommuteTerm(u));
    }
    return terms;
}

std::vector<double>
deepLayerTable(int n)
{
    std::vector<double> table(std::size_t{1} << n);
    for (std::size_t i = 0; i < table.size(); ++i)
        table[i] = static_cast<double>((i * 2654435761u) % 64) - 32.0;
    return table;
}

constexpr int kDeepLayers = 6;

void
BM_QaoaDeepLayersUnfused(benchmark::State &state)
{
    const int n = kKernelQubits;
    sim::StateVector sv(n);
    const auto table = deepLayerTable(n);
    const auto terms = deepLayerTerms(n);
    sv.reset(1);
    obs::KernelCounterSink sink;
    sv.setCounterSink(&sink);
    for (auto _ : state) {
        for (int l = 0; l < kDeepLayers; ++l) {
            sv.applyPhaseTable(table, 0.4 + 0.01 * l);
            core::applyCommuteLayer(sv, terms, 0.7 + 0.01 * l);
        }
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    setRooflineCounters(state,
                        (std::int64_t{1} << n) * std::int64_t{kDeepLayers},
                        sink);
}
BENCHMARK(BM_QaoaDeepLayersUnfused);

void
BM_QaoaDeepLayersFused(benchmark::State &state)
{
    const int n = kKernelQubits;
    sim::StateVector sv(n);
    const auto table = deepLayerTable(n);
    const auto terms = deepLayerTerms(n);
    const auto plan = core::buildFusedLayerPlan(table, terms);
    std::vector<Cplx> scratch;
    sv.reset(1);
    obs::KernelCounterSink sink;
    sv.setCounterSink(&sink);
    for (auto _ : state) {
        for (int l = 0; l < kDeepLayers; ++l) {
            core::applyFusedObjectivePhase(sv, plan, table, 0.4 + 0.01 * l,
                                           scratch);
            core::applyFusedCommuteLayer(sv, plan, 0.7 + 0.01 * l);
        }
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    setRooflineCounters(state,
                        (std::int64_t{1} << n) * std::int64_t{kDeepLayers},
                        sink);
}
BENCHMARK(BM_QaoaDeepLayersFused);

/* ------------------------------------------------------------------ *
 * SoA batched evolution probes.
 *
 * The engine's multi-start path (core::batchSubrunCosts) evolves B
 * start-lanes through one amplitude-major BatchedStateVector so every
 * shared load — the uint16 cost-value index, the per-value phase LUT,
 * the subspace index arithmetic — is amortized across B lanes. These
 * probes sweep the lane count over the widths the racing driver uses
 * (Arg = B in {1, 2, 4, 8}) while holding the total work fixed at
 * kSoAStarts start states, so ns_per_amp is normalized per
 * lane-amplitude and the B=8 vs B=1 ratio reads directly as the SoA
 * speedup.
 *
 * Besides ns_per_amp they report a static traffic/arithmetic model:
 *   bytes_per_amp  - memory bytes moved per lane-amplitude per layer
 *                    (32 B amp read+write per sweep; the shared 2-byte
 *                    value index is divided by the lane count),
 *   flops_per_amp  - arithmetic per lane-amplitude per layer (6-flop
 *                    complex phase multiply + 6-flop pair-rotation mix
 *                    per commute-group sweep),
 *   lanes_per_touch - lane-amplitudes served by each shared-index
 *                    memory touch (= B).
 *
 * These two deliberately keep their hand model instead of the kernel
 * counter sink the scalar benches use: the sink's cost table is flat
 * per amplitude and cannot express the 2/B shared-index amortization
 * that is the whole point of the width sweep. The roofline
 * post-processing treats both sources identically.
 */

/** Start count held fixed across the width sweep (divisible by all
 * swept widths so every chunk is full). */
constexpr int kSoAStarts = 8;

/** Qubit count for the SoA probes: big enough that the state walks
 * out of L2 at width 8, small enough to keep iterations cheap. */
constexpr int kSoAQubits = 16;

void
setSoACounters(benchmark::State &state, std::int64_t amps_per_iter,
               std::size_t lanes, std::size_t sweeps_per_layer)
{
    setAmpCounters(state, amps_per_iter);
    state.counters["bytes_per_amp"] =
        32.0 * static_cast<double>(sweeps_per_layer)
        + 2.0 / static_cast<double>(lanes);
    state.counters["flops_per_amp"] =
        6.0 + 6.0 * static_cast<double>(sweeps_per_layer);
    state.counters["lanes_per_touch"] = static_cast<double>(lanes);
}

/**
 * Full fused ansatz layers over kSoAStarts starts, chunked by the lane
 * width exactly like batchSubrunCosts, ending in the per-lane
 * compressed expectation (the complete per-evaluation kernel chain of
 * the batched engine path).
 */
void
BM_EvolveBatchSoAFusedLayers(benchmark::State &state)
{
    const int n = kSoAQubits;
    const std::size_t width = static_cast<std::size_t>(state.range(0));
    const auto table = deepLayerTable(n);
    const auto terms = deepLayerTerms(n);
    const auto plan = core::buildFusedLayerPlan(table, terms);
    sim::BatchedStateVector batch;
    std::vector<Cplx> phase_scratch;
    std::vector<double> cs_scratch;
    std::vector<double> gammas(width), betas(width), out(kSoAStarts);
    for (auto _ : state) {
        std::size_t done = 0;
        while (done < kSoAStarts) {
            const std::size_t lanes =
                std::min<std::size_t>(width, kSoAStarts - done);
            batch.resizeScratch(n, lanes);
            batch.reset(1);
            for (int l = 0; l < kDeepLayers; ++l) {
                for (std::size_t b = 0; b < lanes; ++b) {
                    // Per-start angle spread mirrors racing starts.
                    gammas[b] = 0.4 + 0.01 * l + 0.002 * (done + b);
                    betas[b] = 0.7 + 0.01 * l + 0.002 * (done + b);
                }
                core::applyFusedLayerBatched(batch, plan, table,
                                             gammas.data(), betas.data(),
                                             phase_scratch, cs_scratch);
            }
            batch.expectationTableCompressed(plan.distinctValues,
                                             plan.valueIndex,
                                             out.data() + done);
            done += lanes;
        }
        benchmark::DoNotOptimize(out.data());
    }
    // One phased sweep folds the objective gather into group 0, so a
    // layer makes plan.groups.size() passes over the state.
    setSoACounters(state,
                   (std::int64_t{1} << n) * std::int64_t{kDeepLayers}
                       * std::int64_t{kSoAStarts},
                   width, plan.groups.size());
}
BENCHMARK(BM_EvolveBatchSoAFusedLayers)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/**
 * Isolated compressed phase-table gather (the most index-bound kernel:
 * one shared uint16 load per amplitude fans out to B lane multiplies).
 */
void
BM_EvolveBatchSoAPhaseTable(benchmark::State &state)
{
    const int n = kSoAQubits;
    const std::size_t width = static_cast<std::size_t>(state.range(0));
    const auto table = deepLayerTable(n);
    const auto terms = deepLayerTerms(n);
    const auto plan = core::buildFusedLayerPlan(table, terms);
    sim::BatchedStateVector batch;
    std::vector<Cplx> phase_scratch;
    std::vector<double> gammas(width);
    batch.resizeScratch(n, width);
    batch.reset(1);
    for (std::size_t b = 0; b < width; ++b)
        gammas[b] = 0.4 + 0.002 * b;
    for (auto _ : state) {
        batch.applyPhaseTableCompressed(plan.distinctValues, plan.valueIndex,
                                        gammas.data(), phase_scratch);
        benchmark::DoNotOptimize(batch.data());
    }
    // Normalized per lane-amplitude; a single phase sweep.
    setSoACounters(state,
                   (std::int64_t{1} << n) * static_cast<std::int64_t>(width),
                   width, 1);
}
BENCHMARK(BM_EvolveBatchSoAPhaseTable)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/** Objective-phase-shaped diagonal gate chain (the circuit-path fusion
 * target): one RZ per qubit plus a CP chain. @p shift varies the angles
 * only (the shape the variational loop re-executes every evaluation). */
circuit::Circuit
diagonalChainCircuit(int n, double shift = 0.0)
{
    circuit::Circuit c(n);
    for (int q = 0; q < n; ++q)
        c.rz(q, 0.1 + 0.01 * q + shift);
    for (int q = 0; q + 1 < n; ++q)
        c.cp(q, q + 1, 0.2 + 0.01 * q + shift);
    return c;
}

void
BM_DiagonalCircuitUnfused(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    sim::StateVector sv(n);
    const auto c = diagonalChainCircuit(n);
    obs::KernelCounterSink sink;
    sv.setCounterSink(&sink);
    for (auto _ : state) {
        sim::execute(sv, c);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    setRooflineCounters(state, std::int64_t{1} << n, sink);
}
BENCHMARK(BM_DiagonalCircuitUnfused)->Arg(14)->Arg(18);

void
BM_DiagonalCircuitFused(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    sim::StateVector sv(n);
    const auto fused = circuit::fuseDiagonals(diagonalChainCircuit(n));
    // Angle-only variant of the same chain: the shape the variational
    // loop re-executes every objective evaluation.
    const auto refit = circuit::fuseDiagonals(diagonalChainCircuit(n, 0.3));

    // Regression check: the FusedDiagonal kernel's 256-entry factor
    // tables are scratch-owned — after the first execution sized them,
    // angle-only re-executions must reuse the allocation (the rebuild
    // of table *contents* is amortized; the allocation was not, once).
    sim::execute(sv, fused);
    const std::size_t growths = sv.maskPhaseScratchGrowths();
    for (int r = 0; r < 4; ++r)
        sim::execute(sv, r % 2 == 0 ? refit : fused);
    if (sv.maskPhaseScratchGrowths() != growths) {
        state.SkipWithError(
            "FusedDiagonal factor tables reallocated on an angle-only "
            "change (scratch reuse regression)");
        return;
    }

    // Attach the sink only after the scratch-reuse preamble so the
    // roofline numbers cover exactly the timed executions.
    obs::KernelCounterSink sink;
    sv.setCounterSink(&sink);
    for (auto _ : state) {
        sim::execute(sv, fused);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    setRooflineCounters(state, std::int64_t{1} << n, sink);
}
BENCHMARK(BM_DiagonalCircuitFused)->Arg(14)->Arg(18);

// ---- compiler / solver paths ----

void
BM_MoveBasis(benchmark::State &state)
{
    const auto scale =
        problems::allScales()[static_cast<std::size_t>(state.range(0))];
    const auto p = problems::makeCase(scale, 0);
    for (auto _ : state) {
        auto basis = core::computeMoveBasis(p);
        benchmark::DoNotOptimize(basis.moves.data());
    }
    state.SetLabel(problems::scaleName(scale));
}
BENCHMARK(BM_MoveBasis)->Arg(0)->Arg(5)->Arg(11);

void
BM_Lemma2Circuit(benchmark::State &state)
{
    const int k = static_cast<int>(state.range(0));
    std::vector<int> u(k, 1);
    for (int i = 0; i < k; i += 2)
        u[i] = -1;
    const auto term = core::makeCommuteTerm(u);
    for (auto _ : state) {
        auto c = core::commuteTermCircuit(term, k, 0.7);
        benchmark::DoNotOptimize(c.gates().data());
    }
}
BENCHMARK(BM_Lemma2Circuit)->Arg(4)->Arg(8)->Arg(16)->Arg(24);

void
BM_Transpile(benchmark::State &state)
{
    const int k = static_cast<int>(state.range(0));
    std::vector<int> u(k, 1);
    for (int i = 0; i < k; i += 2)
        u[i] = -1;
    const auto term = core::makeCommuteTerm(u);
    const auto c = core::commuteTermCircuit(term, k, 0.7);
    for (auto _ : state) {
        auto lowered = circuit::transpile(c);
        benchmark::DoNotOptimize(lowered.gates().data());
    }
}
BENCHMARK(BM_Transpile)->Arg(4)->Arg(8)->Arg(16);

void
BM_ExactSolve(benchmark::State &state)
{
    const auto scale =
        problems::allScales()[static_cast<std::size_t>(state.range(0))];
    const auto p = problems::makeCase(scale, 0);
    for (auto _ : state) {
        auto exact = model::solveExact(p);
        benchmark::DoNotOptimize(exact.optima.data());
    }
    state.SetLabel(problems::scaleName(scale));
}
BENCHMARK(BM_ExactSolve)->Arg(0)->Arg(4)->Arg(8);

void
BM_ChocoCompile(benchmark::State &state)
{
    const auto scale =
        problems::allScales()[static_cast<std::size_t>(state.range(0))];
    const auto p = problems::makeCase(scale, 0);
    const core::ChocoQSolver solver;
    for (auto _ : state) {
        auto comp = solver.compileOnly(p);
        benchmark::DoNotOptimize(comp.terms.data());
    }
    state.SetLabel(problems::scaleName(scale));
}
BENCHMARK(BM_ChocoCompile)->Arg(0)->Arg(5)->Arg(9);

/**
 * Annotate the google-benchmark JSON mirror in place: inject the
 * "machine" block (fingerprint + calibrated peaks) and, for every
 * benchmark entry that carries ns_per_amp and bytes_per_amp, the
 * derived roofline keys (arithmetic_intensity, roofline_bound,
 * pct_of_ceiling). Failures are reported but non-fatal: a missing or
 * malformed file must not fail the benchmark run itself.
 */
bool
annotateRoofline(const std::string &path, const obs::MachineInfo &info,
                 const obs::MachinePeaks &peaks)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    in.close();

    service::Json doc;
    try {
        doc = service::Json::parse(buf.str());
    } catch (const std::exception &) {
        return false;
    }
    if (!doc.isObject())
        return false;

    doc.set("machine", obs::machineJson(info, peaks));
    if (service::Json *benchmarks = doc.find("benchmarks")) {
        for (service::Json &entry : benchmarks->items()) {
            const service::Json *ns = entry.find("ns_per_amp");
            const service::Json *bytes = entry.find("bytes_per_amp");
            const service::Json *flops = entry.find("flops_per_amp");
            if (!ns || !bytes || !flops)
                continue;
            const obs::RooflinePoint pt = obs::placeOnRoofline(
                bytes->asNumber(), flops->asNumber(), ns->asNumber(), peaks);
            entry.set("arithmetic_intensity", pt.arithmeticIntensity);
            entry.set("roofline_bound",
                      pt.computeBound ? "compute" : "memory");
            entry.set("pct_of_ceiling", pt.pctOfCeiling);
        }
    }

    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    out << doc.pretty() << "\n";
    return out.good();
}

} // namespace

int
main(int argc, char **argv)
{
    // --calibrate: probe the machine (STREAM triad + FMA-chain FLOP
    // peaks + hardware fingerprint), print the machine block, and exit.
    // This is the block a committed perf baseline embeds; the refresh
    // recipe lives in docs/benchmarks.md.
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--calibrate") {
            const obs::MachineInfo info = obs::detectMachine();
            const obs::MachinePeaks peaks = obs::calibratePeaks();
            std::printf("%s\n",
                        obs::machineJson(info, peaks).pretty().c_str());
            return 0;
        }
    }

    // Console for humans plus a JSON mirror for the perf trajectory:
    // default --benchmark_out to BENCH_kernels.json (in the invocation
    // directory) unless the caller picked their own output file.
    std::vector<char *> args(argv, argv + argc);
    std::string out_flag = "--benchmark_out=BENCH_kernels.json";
    std::string fmt_flag = "--benchmark_out_format=json";
    bool has_out = false;
    bool has_fmt = false;
    bool json_fmt = true;
    std::string out_path = "BENCH_kernels.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--benchmark_out=", 0) == 0) {
            has_out = true;
            out_path = arg.substr(std::string("--benchmark_out=").size());
        }
        if (arg.rfind("--benchmark_out_format=", 0) == 0) {
            has_fmt = true;
            json_fmt = arg.substr(arg.find('=') + 1) == "json";
        }
    }
    // Only default the JSON mirror when the caller expressed no output
    // preference at all; an explicit format without a file is left to
    // google-benchmark's own handling rather than polluting the .json.
    if (!has_out && !has_fmt) {
        args.push_back(out_flag.data());
        args.push_back(fmt_flag.data());
    }
    // The roofline annotator only understands the JSON mirror: run it
    // on the defaulted file, or on an explicit out file whose format
    // (default json) is json.
    const bool annotate = (!has_out && !has_fmt) || (has_out && json_fmt);
    int n = static_cast<int>(args.size());
    benchmark::Initialize(&n, args.data());
    if (benchmark::ReportUnrecognizedArguments(n, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    if (annotate) {
        const obs::MachineInfo info = obs::detectMachine();
        const obs::MachinePeaks peaks = obs::calibratePeaks();
        if (annotateRoofline(out_path, info, peaks))
            std::printf("Roofline: machine %s, triad %.1f GB/s, peak %.1f "
                        "GF/s, ridge AI %.2f -> %s annotated\n",
                        info.fingerprint.c_str(), peaks.triadGBps,
                        peaks.peakGflops(), peaks.ridgeAI(),
                        out_path.c_str());
        else
            std::fprintf(stderr,
                         "Roofline: could not annotate %s (skipped)\n",
                         out_path.c_str());
    }
    return 0;
}
