/**
 * @file
 * Google-benchmark micro-suite for the hot kernels: state-vector gate
 * application, the commute pair-rotation fast path, diagonal phase
 * tables, move-basis computation, transpilation, and the Lemma-2 circuit
 * construction.
 */

#include <benchmark/benchmark.h>

#include "circuit/transpile.hpp"
#include "core/chocoq_solver.hpp"
#include "core/circuits.hpp"
#include "core/movebasis.hpp"
#include "model/exact.hpp"
#include "problems/suite.hpp"
#include "sim/executor.hpp"

using namespace chocoq;

namespace
{

void
BM_Apply1q(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    sim::StateVector sv(n);
    constexpr double kInvSqrt2 = 0.70710678118654752440;
    for (auto _ : state) {
        sv.apply1q(n / 2, kInvSqrt2, kInvSqrt2, kInvSqrt2, -kInvSqrt2);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    state.SetItemsProcessed(state.iterations()
                            * (std::int64_t{1} << n));
}
BENCHMARK(BM_Apply1q)->Arg(10)->Arg(14)->Arg(18);

void
BM_PairRotation(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    sim::StateVector sv(n);
    std::vector<int> u(n, 0);
    u[0] = 1;
    u[1] = -1;
    u[n - 1] = 1;
    const auto term = core::makeCommuteTerm(u);
    for (auto _ : state) {
        core::applyCommuteExact(sv, term, 0.3);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    state.SetItemsProcessed(state.iterations()
                            * (std::int64_t{1} << n));
}
BENCHMARK(BM_PairRotation)->Arg(10)->Arg(14)->Arg(18);

void
BM_PhaseTable(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    sim::StateVector sv(n);
    std::vector<double> table(std::size_t{1} << n, 0.5);
    for (auto _ : state) {
        sv.applyPhaseTable(table, 0.4);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    state.SetItemsProcessed(state.iterations()
                            * (std::int64_t{1} << n));
}
BENCHMARK(BM_PhaseTable)->Arg(10)->Arg(14)->Arg(18);

void
BM_MoveBasis(benchmark::State &state)
{
    const auto scale =
        problems::allScales()[static_cast<std::size_t>(state.range(0))];
    const auto p = problems::makeCase(scale, 0);
    for (auto _ : state) {
        auto basis = core::computeMoveBasis(p);
        benchmark::DoNotOptimize(basis.moves.data());
    }
    state.SetLabel(problems::scaleName(scale));
}
BENCHMARK(BM_MoveBasis)->Arg(0)->Arg(5)->Arg(11);

void
BM_Lemma2Circuit(benchmark::State &state)
{
    const int k = static_cast<int>(state.range(0));
    std::vector<int> u(k, 1);
    for (int i = 0; i < k; i += 2)
        u[i] = -1;
    const auto term = core::makeCommuteTerm(u);
    for (auto _ : state) {
        auto c = core::commuteTermCircuit(term, k, 0.7);
        benchmark::DoNotOptimize(c.gates().data());
    }
}
BENCHMARK(BM_Lemma2Circuit)->Arg(4)->Arg(8)->Arg(16)->Arg(24);

void
BM_Transpile(benchmark::State &state)
{
    const int k = static_cast<int>(state.range(0));
    std::vector<int> u(k, 1);
    for (int i = 0; i < k; i += 2)
        u[i] = -1;
    const auto term = core::makeCommuteTerm(u);
    const auto c = core::commuteTermCircuit(term, k, 0.7);
    for (auto _ : state) {
        auto lowered = circuit::transpile(c);
        benchmark::DoNotOptimize(lowered.gates().data());
    }
}
BENCHMARK(BM_Transpile)->Arg(4)->Arg(8)->Arg(16);

void
BM_ExactSolve(benchmark::State &state)
{
    const auto scale =
        problems::allScales()[static_cast<std::size_t>(state.range(0))];
    const auto p = problems::makeCase(scale, 0);
    for (auto _ : state) {
        auto exact = model::solveExact(p);
        benchmark::DoNotOptimize(exact.optima.data());
    }
    state.SetLabel(problems::scaleName(scale));
}
BENCHMARK(BM_ExactSolve)->Arg(0)->Arg(4)->Arg(8);

void
BM_ChocoCompile(benchmark::State &state)
{
    const auto scale =
        problems::allScales()[static_cast<std::size_t>(state.range(0))];
    const auto p = problems::makeCase(scale, 0);
    const core::ChocoQSolver solver;
    for (auto _ : state) {
        auto comp = solver.compileOnly(p);
        benchmark::DoNotOptimize(comp.terms.data());
    }
    state.SetLabel(problems::scaleName(scale));
}
BENCHMARK(BM_ChocoCompile)->Arg(0)->Arg(5)->Arg(9);

} // namespace

BENCHMARK_MAIN();
