/**
 * @file
 * Figure 9: (a) convergence curves (best cost vs optimizer iteration) of
 * the four designs on an F1:2F-1D case; (b) Choco-Q's quantum
 * parallelism — the number of distinct measured states along the circuit.
 *
 * Expected shape (paper): Choco-Q starts from a good initial cost (it is
 * a feasible state), reaches within 20% of the optimum in a handful of
 * iterations, and converges in ~30; the baselines start from huge
 * penalty-dominated costs and stay far from the optimum. In (b) the
 * state count grows exponentially early in the circuit even though the
 * initial state is a single basis state.
 */

#include "core/circuits.hpp"
#include "sim/executor.hpp"

#include "common.hpp"

using namespace chocoq;
using namespace chocoq::bench;

namespace
{

/** Distinct-state counts at fractions of the gate-level Choco-Q circuit
 * (no elimination, wide mixing angle — the paper's parallelism probe). */
std::vector<std::size_t>
parallelismProbe(const model::Problem &p, const BenchConfig &)
{
    const auto init = model::findFeasible(p);
    if (!init)
        return {};
    const auto basis = core::computeMoveBasis(p);
    const auto moves = core::expandMoveSet(
        basis, p.constraints(), 3 * std::max<std::size_t>(
                                        basis.moves.size(), 1));
    const auto terms = core::makeCommuteTerms(moves);
    const auto f = p.minimizedObjective();
    const circuit::Circuit c =
        core::chocoAnsatz(p.numVars(), *init, f, terms, {0.8, 2.2});

    sim::StateVector state(p.numVars());
    const std::size_t total = c.gates().size();
    std::vector<std::size_t> counts;
    std::size_t next_probe = 0;
    sim::execute(state, c, [&](std::size_t g) {
        if (g >= next_probe || g + 1 == total) {
            counts.push_back(state.distinctStates(1e-9));
            next_probe += std::max<std::size_t>(total / 8, 1);
        }
    });
    return counts;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchConfig cfg =
        parseArgs(argc, argv, "bench_fig9_convergence",
                  "Fig. 9: convergence curves and circuit parallelism");
    banner("Figure 9(a): convergence on F1:2F-1D", cfg);

    const auto p = problems::makeCase(problems::Scale::F1, 0);
    const auto exact = model::solveExact(p);

    const solvers::PenaltyQaoaSolver penalty(penaltyOptions(cfg));
    const solvers::CyclicQaoaSolver cyclic(cyclicOptions(cfg));
    const solvers::HeaSolver hea(heaOptions(cfg));
    const core::ChocoQSolver choco(chocoOptions(cfg));
    const core::Solver *solver_list[4] = {&penalty, &cyclic, &hea, &choco};
    const char *names[4] = {"Penalty", "Cyclic", "HEA", "Choco-Q"};

    std::vector<std::vector<optimize::TracePoint>> traces(4);
    for (int s = 0; s < 4; ++s)
        traces[s] = solver_list[s]->solve(p).trace;

    std::cout << "optimal cost (minimization form): "
              << fmtNum(exact.optimum, 2) << "\n";
    Table curve({"Iteration", "Penalty cost", "Cyclic cost", "HEA cost",
                 "Choco-Q cost"});
    const std::size_t rows = 12;
    std::size_t longest = 0;
    for (const auto &t : traces)
        longest = std::max(longest, t.size());
    for (std::size_t r = 0; r < rows; ++r) {
        const std::size_t it = r * std::max<std::size_t>(longest / rows, 1);
        std::vector<std::string> row{std::to_string(it)};
        for (int s = 0; s < 4; ++s) {
            const auto &t = traces[s];
            if (t.empty()) {
                row.push_back("-");
                continue;
            }
            const std::size_t i = std::min(it, t.size() - 1);
            row.push_back(fmtNum(t[i].best, 2));
        }
        curve.addRow(row);
    }
    curve.print();

    banner("Figure 9(b): #measured states along the circuit", cfg);
    Table par({"Scale", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
               "feasible-space size"});
    const auto scales = cfg.full
                            ? std::vector<problems::Scale>{
                                  problems::Scale::F1, problems::Scale::F2,
                                  problems::Scale::F3, problems::Scale::F4}
                            : std::vector<problems::Scale>{
                                  problems::Scale::F1, problems::Scale::F2,
                                  problems::Scale::F3};
    for (auto scale : scales) {
        const auto prob = problems::makeCase(scale, 0);
        const auto counts = parallelismProbe(prob, cfg);
        std::vector<std::string> row{problems::scaleName(scale)};
        for (std::size_t i = 0; i < 8; ++i)
            row.push_back(i < counts.size() ? std::to_string(counts[i])
                                            : "-");
        row.push_back(std::to_string(
            model::enumerateFeasible(prob, 1000000).size()));
        par.addRow(row);
    }
    par.print();
    return 0;
}
