/**
 * @file
 * Table II: success rate, in-constraints rate, approximation ratio gap,
 * and circuit depth for the four designs across the twelve benchmark
 * scales (F1-F4, G1-G4, K1-K4).
 *
 * Expected shape (paper): Choco-Q holds a 100% in-constraints rate and
 * the highest success rate everywhere; the penalty baseline collapses at
 * medium scale; cyclic is competitive only on KPP (summation-format
 * constraints); ARG of Choco-Q stays below ~0.6 while the baselines blow
 * up with constraint violations.
 */

#include "common.hpp"

using namespace chocoq;
using namespace chocoq::bench;

int
main(int argc, char **argv)
{
    const BenchConfig cfg = parseArgs(
        argc, argv, "bench_table2",
        "Table II: 12 benchmarks x 4 designs, 4 metrics");
    banner("Table II", cfg);

    Table table({"Bench", "Metric", "Penalty", "Cyclic", "HEA", "Choco-Q"});

    for (auto scale : benchScales(cfg)) {
        std::vector<metrics::RunStats> stats[4];
        int depth[4] = {0, 0, 0, 0};
        for (unsigned idx = 0; idx < cfg.cases; ++idx) {
            const auto p = problems::makeCase(scale, idx);
            const auto exact = model::solveExact(p);
            if (!exact.feasible)
                continue;
            // Large scales (>= 18 qubits) get tighter baseline budgets
            // in quick mode; the baselines are flat-lined there anyway
            // (the paper reports x across the board).
            const bool big = p.numVars() >= 15 && !cfg.full;
            auto pen_opts = penaltyOptions(cfg);
            auto cyc_opts = cyclicOptions(cfg);
            auto hea_opts = heaOptions(cfg, big ? 1 : 2);
            if (big) {
                pen_opts.engine.opt.maxIterations = 10;
                cyc_opts.engine.opt.maxIterations = 10;
                hea_opts.engine.opt.maxIterations = 6;
            }
            const solvers::PenaltyQaoaSolver penalty(pen_opts);
            const solvers::CyclicQaoaSolver cyclic(cyc_opts);
            const solvers::HeaSolver hea(hea_opts);
            const core::ChocoQSolver choco(chocoOptions(cfg));
            const core::Solver *solver_list[4] = {&penalty, &cyclic, &hea,
                                                  &choco};
            for (int s = 0; s < 4; ++s) {
                const auto r = runCase(*solver_list[s], p, exact);
                stats[s].push_back(r.stats);
                depth[s] = std::max(depth[s], r.outcome.basisDepth);
            }
        }
        if (stats[0].empty())
            continue;
        metrics::RunStats avg[4];
        for (int s = 0; s < 4; ++s)
            avg[s] = metrics::averageStats(stats[s]);

        const std::string name = problems::scaleName(scale) + ":"
                                 + problems::scaleConfig(scale);
        table.addRow({name, "Success rate (%)",
                      fmtPctOrFail(avg[0].successRate, 1e-4),
                      fmtPctOrFail(avg[1].successRate, 1e-4),
                      fmtPctOrFail(avg[2].successRate, 1e-4),
                      fmtPctOrFail(avg[3].successRate, 1e-4)});
        table.addRow({"", "In-constraints (%)",
                      fmtPctOrFail(avg[0].inConstraintsRate, 1e-4),
                      fmtPctOrFail(avg[1].inConstraintsRate, 1e-4),
                      fmtPctOrFail(avg[2].inConstraintsRate, 1e-4),
                      fmtPctOrFail(avg[3].inConstraintsRate, 1e-4)});
        table.addRow({"", "ARG", fmtNum(avg[0].arg, 2),
                      fmtNum(avg[1].arg, 2), fmtNum(avg[2].arg, 2),
                      fmtNum(avg[3].arg, 2)});
        table.addRow({"", "Circuit depth", std::to_string(depth[0]),
                      std::to_string(depth[1]), std::to_string(depth[2]),
                      std::to_string(depth[3])});
        table.addRule();
    }
    table.print();
    if (!cfg.full)
        std::cout << "note: F4 (28 qubits, ~4 GB state vector) runs in "
                     "--full mode only.\n";
    return 0;
}
