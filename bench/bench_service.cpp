/**
 * @file
 * Throughput/latency benchmark of the concurrent solve service, in the
 * spirit of HPC AI500's "measure, don't assert" methodology: a
 * repeated-structure job suite (the production shape: many requests,
 * few distinct problem structures) runs at 1/2/4 workers and the run
 * reports jobs/sec, p50/p99 end-to-end latency, compilation-cache hit
 * rate, and a bitwise cross-worker-count determinism check, mirrored to
 * BENCH_service.json for PR-over-PR tracking.
 *
 * Note on scaling: worker speedup is meaningful only on a machine with
 * that many cores; the JSON records the hardware concurrency alongside
 * the numbers so a 1-core CI box reporting ~1x is interpreted correctly.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.hpp"
#include "problems/suite.hpp"
#include "service/server.hpp"
#include "service/service.hpp"
#include "spec/spec.hpp"

using namespace chocoq;

namespace
{

struct Config
{
    bool full = false;
    /** Jobs per distinct problem structure. */
    int repeats = 8;
    int iterations = 20;
    std::vector<int> workerCounts = {1, 2, 4};
    /** SoA lane widths for the cross-width determinism gate (1 = the
     * scalar per-start loop; 8 = the auto width). */
    std::vector<int> batchWidths = {1, 2, 8};
    std::string outPath = "BENCH_service.json";
};

/** The repeated-structure suite: every structure appears `repeats`
 * times with distinct ids and seeds, shuffled round-robin so repeats of
 * one structure are interleaved across the stream (worst case for a
 * cacheless service, steady state for ours). */
std::vector<service::SolveJob>
makeSuite(const Config &cfg)
{
    struct Structure
    {
        const char *scale;
        unsigned caseIndex;
    };
    std::vector<Structure> structures = {
        {"F1", 0}, {"F1", 1}, {"K1", 0}, {"K1", 1}, {"K2", 0}, {"G1", 0},
    };
    if (cfg.full) {
        structures.push_back({"G1", 1});
        structures.push_back({"F2", 0});
    }

    std::vector<service::SolveJob> jobs;
    for (int r = 0; r < cfg.repeats; ++r) {
        for (std::size_t s = 0; s < structures.size(); ++s) {
            service::SolveJob job;
            job.id = std::string(structures[s].scale) + "#"
                     + std::to_string(structures[s].caseIndex) + "/"
                     + std::to_string(r);
            job.scale = structures[s].scale;
            job.caseIndex = structures[s].caseIndex;
            // Distinct seeds across repeats: structure is shared,
            // execution is not, which is exactly what the cache keys on.
            job.seed = 1000 + 17 * static_cast<std::uint64_t>(r) + s;
            job.maxIterations = cfg.iterations;
            job.keepStarts = 2; // batched multi-start screening
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

/** @p sorted must be ascending (sorted once by the caller). */
double
percentile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

struct RunReport
{
    int workers = 0;
    double wallSeconds = 0.0;
    double jobsPerSec = 0.0;
    double p50Ms = 0.0;
    double p99Ms = 0.0;
    double execP50Ms = 0.0;
    double cacheHitRate = 0.0;
    service::CompileCache::Stats cache;
    std::vector<service::SolveResult> results;
};

RunReport
runSuite(const std::vector<service::SolveJob> &jobs, int workers,
         int batch_width = 0)
{
    service::ServiceOptions options;
    options.workers = workers;
    options.defaultBatchWidth = batch_width;
    service::SolveService svc(options); // fresh service: cold cache
    Timer wall;
    RunReport report;
    report.results = svc.solveAll(jobs);
    report.wallSeconds = wall.seconds();
    report.workers = workers;
    report.jobsPerSec =
        static_cast<double>(jobs.size()) / report.wallSeconds;

    std::vector<double> end_to_end, exec;
    for (const auto &r : report.results) {
        end_to_end.push_back(r.queueMs + r.solveMs);
        exec.push_back(r.solveMs);
        if (r.status != "ok")
            std::cerr << "job " << r.id << " failed: " << r.error << "\n";
    }
    std::sort(end_to_end.begin(), end_to_end.end());
    std::sort(exec.begin(), exec.end());
    report.p50Ms = percentile(end_to_end, 0.50);
    report.p99Ms = percentile(end_to_end, 0.99);
    report.execP50Ms = percentile(exec, 0.50);
    report.cache = svc.cacheStats();
    report.cacheHitRate = report.cache.hitRate();
    return report;
}

/** Bitwise comparison of per-job outputs between two runs. */
bool
sameResults(const RunReport &a, const RunReport &b)
{
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        const auto &ra = a.results[i];
        const auto &rb = b.results[i];
        if (ra.distHash != rb.distHash
            || std::memcmp(&ra.bestCost, &rb.bestCost, sizeof(double)) != 0)
            return false;
    }
    return true;
}

// ------------------------------------------------- socket-mode probe

struct SocketReport
{
    int workers = 0;
    int connections = 0;
    /** Mean accept -> handler-start latency, from the server's own
     * server.accept_ms histogram: the server-controlled half of
     * connection setup (emitted as accept_ms_avg). */
    double acceptMsAvg = 0.0;
    /** Mean accept -> first request byte, from
     * server.idle_before_first_request_ms: the client's connect
     * round-trip and first write (idle time, not server latency). */
    double idleBeforeFirstRequestMsAvg = 0.0;
    /** Mean first request byte -> first response byte, from
     * server.first_byte_ms: the server-side first-response latency. */
    double firstByteMsAvg = 0.0;
    double wallSeconds = 0.0;
    double jobsPerSec = 0.0;
    double p50Ms = 0.0;
    double p99Ms = 0.0;
    /** Socket results bitwise-match the in-process reference run. */
    bool matchesInProcess = true;
};

/**
 * The same suite through the TCP front-end: a fresh service behind a
 * loopback Server, jobs spread over @p connections concurrent client
 * connections, per-job latency measured from the client side (send to
 * result line). The wire and framing overhead relative to the
 * in-process numbers is the cost of the network front-end.
 */
SocketReport
runSocketSuite(const std::vector<service::SolveJob> &jobs, int workers,
               int connections, const RunReport &reference)
{
    using Clock = std::chrono::steady_clock;

    SocketReport report;
    report.workers = workers;
    report.connections = connections;

    service::ServiceOptions options;
    options.workers = workers;
    service::SolveService svc(options); // fresh service: cold cache
    service::ServerOptions server_options;
    // Clients pipeline their whole share before reading, so the probe
    // must not trip the default backpressure bound on large suites —
    // this measures the wire, not the overload response.
    server_options.maxInflight = 0;
    service::Server server(svc, server_options);
    server.start();

    // Connection setup amortization probes: connect/teardown with no
    // traffic. These populate server.accept_ms (every accepted
    // connection records it); only the real suite connections below
    // carry bytes, so they alone feed the idle-before-first-request
    // and first-byte histograms.
    constexpr int kSetupProbes = 32;
    for (int i = 0; i < kSetupProbes; ++i)
        service::JsonlClient probe(server.port());

    std::mutex mu;
    std::map<std::string, double> latency_ms;           // id -> ms
    std::map<std::string, std::string> result_lines;    // id -> line
    Timer wall;
    std::vector<std::thread> clients;
    for (int c = 0; c < connections; ++c) {
        clients.emplace_back([&, c] {
            service::JsonlClient client(server.port());
            std::map<std::string, Clock::time_point> sent;
            for (std::size_t i = static_cast<std::size_t>(c);
                 i < jobs.size(); i += static_cast<std::size_t>(connections)) {
                sent.emplace(jobs[i].id, Clock::now());
                client.sendLine(service::jobToJsonRequest(jobs[i]).dump());
            }
            client.shutdownWrite();
            for (std::size_t i = 0; i < sent.size(); ++i) {
                std::string line;
                if (!client.readLine(line, 600000))
                    return; // missing results fail the match check below
                const auto v = service::Json::parse(line);
                const std::string id = v.getString("id", "");
                const auto it = sent.find(id);
                const double ms =
                    it == sent.end()
                        ? 0.0
                        : std::chrono::duration<double, std::milli>(
                              Clock::now() - it->second)
                              .count();
                std::lock_guard<std::mutex> lock(mu);
                latency_ms[id] = ms;
                result_lines[id] = line;
            }
        });
    }
    for (auto &t : clients)
        t.join();
    report.wallSeconds = wall.seconds();
    server.drain();

    // The setup split, read from the server's own span timestamps:
    // accept -> handler start, accept -> first request byte (client
    // idle), and first request byte -> first response byte.
    report.acceptMsAvg =
        svc.metrics().histogram("server.accept_ms").snapshot().avgMs();
    report.idleBeforeFirstRequestMsAvg =
        svc.metrics()
            .histogram("server.idle_before_first_request_ms")
            .snapshot()
            .avgMs();
    report.firstByteMsAvg =
        svc.metrics().histogram("server.first_byte_ms").snapshot().avgMs();

    report.jobsPerSec =
        static_cast<double>(result_lines.size()) / report.wallSeconds;
    std::vector<double> sorted;
    for (const auto &[id, ms] : latency_ms)
        sorted.push_back(ms);
    std::sort(sorted.begin(), sorted.end());
    report.p50Ms = percentile(sorted, 0.50);
    report.p99Ms = percentile(sorted, 0.99);

    // Bitwise cross-check against the in-process reference: the wire
    // must change transport, never results.
    report.matchesInProcess = result_lines.size() == jobs.size();
    for (const auto &r : reference.results) {
        const auto it = result_lines.find(r.id);
        if (it == result_lines.end()) {
            report.matchesInProcess = false;
            break;
        }
        const auto v = service::Json::parse(it->second);
        const double cost = v.getNumber("best_cost", 0.0);
        if (v.getString("dist_hash", "") != service::distHashHex(r.distHash)
            || std::memcmp(&cost, &r.bestCost, sizeof(double)) != 0) {
            report.matchesInProcess = false;
            break;
        }
    }
    return report;
}

// -------------------------------------------- inline-spec probe

struct InlineSpecReport
{
    /** Serialized bytes of the probe spec (K1 case 0 transcribed). */
    std::size_t specBytes = 0;
    /** Mean parse + validate + canonicalize cost per spec. */
    double parseCanonicalizeUs = 0.0;
    /** Compile-cache hit rate of 1 inline submission + N problem_refs. */
    double refReuseHitRate = 0.0;
    /** Inline submission bitwise matches the registry-case job. */
    bool matchesRegistry = true;
};

/**
 * The inline-problem path, measured: per-request spec cost
 * (parse + validate + canonicalize, the work the front-end pays before
 * any solver runs) and the ref-reuse behavior the protocol promises —
 * one inline submission, many problem_ref follow-ups, all sharing one
 * compilation, bit-identical to the registry-case job.
 */
InlineSpecReport
runInlineSpecProbe(int repeats, int iterations)
{
    InlineSpecReport report;
    const auto spec_json = spec::problemToSpecJson(
        problems::makeCase(problems::Scale::K1, 0));
    const std::string spec_text = spec_json.dump();
    report.specBytes = spec_text.size();

    constexpr int kParseProbes = 200;
    Timer parse_timer;
    for (int i = 0; i < kParseProbes; ++i)
        spec::parseProblemSpec(service::Json::parse(spec_text));
    report.parseCanonicalizeUs =
        parse_timer.seconds() * 1e6 / kParseProbes;

    // Registry-case reference for the bitwise cross-check.
    service::SolveService svc{service::ServiceOptions{}};
    service::SolveJob reg;
    reg.id = "registry";
    reg.scale = "K1";
    reg.seed = 11;
    reg.maxIterations = iterations;
    const auto reg_result = svc.solveAll({reg}).front();

    // One inline submission registers the model...
    service::SolveJob inline_job;
    inline_job.id = "inline";
    inline_job.problem = std::make_shared<const spec::ProblemSpec>(
        spec::parseProblemSpec(spec_json));
    inline_job.seed = 11;
    inline_job.maxIterations = iterations;
    const auto inline_result = svc.solveAll({inline_job}).front();
    report.matchesRegistry =
        inline_result.status == "ok" && reg_result.status == "ok"
        && inline_result.distHash == reg_result.distHash
        && std::memcmp(&inline_result.bestCost, &reg_result.bestCost,
                       sizeof(double))
               == 0;

    // ...and the follow-ups ride the hash. Count compile-cache hits
    // across exactly the refs batch (diff against a snapshot: the
    // registry-case and inline lookups above are not ref reuse).
    const auto before = svc.cacheStats();
    std::vector<service::SolveJob> refs;
    for (int r = 0; r < repeats; ++r) {
        service::SolveJob ref;
        ref.id = "ref/" + std::to_string(r);
        ref.problemRef = inline_job.problem->hashHex;
        ref.seed = 100 + static_cast<std::uint64_t>(r);
        ref.maxIterations = iterations;
        refs.push_back(std::move(ref));
    }
    for (const auto &r : svc.solveAll(refs))
        report.matchesRegistry = report.matchesRegistry
                                 && r.status == "ok";
    const auto after = svc.cacheStats();
    const std::uint64_t lookups =
        (after.hits - before.hits) + (after.misses - before.misses);
    report.refReuseHitRate =
        lookups == 0 ? 0.0
                     : static_cast<double>(after.hits - before.hits)
                           / static_cast<double>(lookups);
    return report;
}

// -------------------------------------------- observability probe

struct ObservabilityReport
{
    /** Best-of jobs/sec with the metric registry recording. */
    double jobsPerSecMetricsOn = 0.0;
    /** Best-of jobs/sec with a disabled registry (every record an
     * early return) — the baseline, not an operational mode. */
    double jobsPerSecMetricsOff = 0.0;
    /** (off - on) / off as a percentage, clamped at 0. The always-on
     * contract is <2% (gated in CI). */
    double overheadPct = 0.0;
    /** Mean {"type":"stats"} probe round-trip over loopback. */
    double statsRttUsAvg = 0.0;
    /** Stage-histogram counts equal the job counters after the load
     * (the exact-reconciliation contract). */
    bool reconciled = true;
    /** Traced run bitwise matches the untraced reference. */
    bool traceMatches = true;
};

/**
 * The cost of observability, measured: the suite runs with metrics on
 * and off in interleaved rounds (best-of per mode, so machine noise
 * hits both sides alike), a fully traced run is checked bitwise
 * against the untraced reference, stage-histogram counts are
 * reconciled against the job counters, and a stats probe's round-trip
 * is timed over loopback.
 */
ObservabilityReport
runObservabilityProbe(const std::vector<service::SolveJob> &jobs,
                      int workers, const RunReport &reference, int rounds)
{
    ObservabilityReport report;

    auto timed_run = [&](bool metrics_on) {
        service::ServiceOptions options;
        options.workers = workers;
        options.metricsEnabled = metrics_on;
        service::SolveService svc(options); // fresh service: cold cache
        Timer wall;
        svc.solveAll(jobs);
        return static_cast<double>(jobs.size()) / wall.seconds();
    };
    // Alternate which mode goes first each round so thermal/scheduler
    // drift debits both sides alike; best-of per mode filters the
    // remaining noise (the metric cost itself is nanoseconds/job, so
    // anything beyond the gate is measurement artifact).
    for (int r = 0; r < rounds; ++r) {
        const bool on_first = (r % 2) == 0;
        const double first = timed_run(on_first);
        const double second = timed_run(!on_first);
        const double on = on_first ? first : second;
        const double off = on_first ? second : first;
        report.jobsPerSecMetricsOn =
            std::max(report.jobsPerSecMetricsOn, on);
        report.jobsPerSecMetricsOff =
            std::max(report.jobsPerSecMetricsOff, off);
    }
    report.overheadPct =
        std::max(0.0, (report.jobsPerSecMetricsOff
                       - report.jobsPerSecMetricsOn)
                          / report.jobsPerSecMetricsOff * 100.0);

    // Reconciliation + trace bit-identity on one instrumented run:
    // every job traced, outputs compared against the untraced
    // reference, histogram counts against the counters.
    {
        service::ServiceOptions options;
        options.workers = workers;
        service::SolveService svc(options);
        auto traced = jobs;
        for (auto &job : traced)
            job.trace = true;
        const auto results = svc.solveAll(traced);
        for (std::size_t i = 0; i < results.size(); ++i) {
            const auto &rt = results[i];
            const auto &rr = reference.results[i];
            if (!rt.trace || rt.trace->spans().empty()
                || rt.distHash != rr.distHash
                || std::memcmp(&rt.bestCost, &rr.bestCost, sizeof(double))
                       != 0) {
                report.traceMatches = false;
                break;
            }
        }
        auto &m = svc.metrics();
        const auto n = static_cast<std::uint64_t>(jobs.size());
        report.reconciled =
            m.counter("jobs.submitted").value() == n
            && m.counter("jobs.completed").value() == n
            && m.counter("jobs.ok").value() == n
            && m.histogram("stage.queue_ms").snapshot().count == n
            && m.histogram("stage.total_ms").snapshot().count == n
            && m.histogram("stage.solve_ms").snapshot().count == n;
    }

    // Stats-probe round-trip: one connection, repeated probes, mean
    // client-side RTT (send line -> response line).
    {
        service::ServiceOptions options;
        options.workers = workers;
        service::SolveService svc(options);
        service::Server server(svc, service::ServerOptions{});
        server.start();
        constexpr int kProbes = 64;
        service::JsonlClient client(server.port());
        Timer t;
        for (int i = 0; i < kProbes; ++i) {
            client.sendLine("{\"type\":\"stats\"}");
            std::string line;
            if (!client.readLine(line, 10000))
                break;
        }
        report.statsRttUsAvg = t.seconds() * 1e6 / kProbes;
        server.drain();
    }
    return report;
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--full") {
            cfg.full = true;
        } else if (arg == "--repeats" && i + 1 < argc) {
            cfg.repeats = std::atoi(argv[++i]);
        } else if (arg == "--out" && i + 1 < argc) {
            cfg.outPath = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: " << argv[0]
                      << " [--full] [--repeats N] [--out FILE]\n";
            return 0;
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            return 2;
        }
    }
    const char *env = std::getenv("CHOCOQ_BENCH_FULL");
    if (env && std::string(env) != "0")
        cfg.full = true;
    if (cfg.full)
        cfg.repeats = std::max(cfg.repeats, 16);

    const auto jobs = makeSuite(cfg);
    std::cout << "=== bench_service (" << (cfg.full ? "full" : "quick")
              << " mode): " << jobs.size()
              << " jobs, hardware concurrency "
              << std::thread::hardware_concurrency() << " ===\n";

    std::vector<RunReport> runs;
    for (const int workers : cfg.workerCounts) {
        RunReport report = runSuite(jobs, workers);
        std::cout << "workers=" << report.workers << ": "
                  << report.jobsPerSec << " jobs/s, p50 " << report.p50Ms
                  << " ms, p99 " << report.p99Ms << " ms, exec p50 "
                  << report.execP50Ms << " ms, cache hit rate "
                  << report.cacheHitRate << " ("
                  << report.cache.entries << " entries, "
                  << report.cache.bytes << " bytes, "
                  << report.cache.evictions << " evictions, budget "
                  << report.cache.maxBytes << ")\n";
        runs.push_back(std::move(report));
    }

    bool deterministic = true;
    for (std::size_t i = 1; i < runs.size(); ++i)
        deterministic = deterministic && sameResults(runs[0], runs[i]);
    const double speedup =
        runs.size() >= 2 ? runs.back().jobsPerSec / runs.front().jobsPerSec
                         : 1.0;
    std::cout << "speedup " << runs.back().workers << "w vs "
              << runs.front().workers << "w: " << speedup
              << "x; deterministic across worker counts: "
              << (deterministic ? "yes" : "NO") << "\n";

    // Batch-width sweep: the SoA racing engine promises bitwise-identical
    // results at every lane width (1 = the scalar per-start loop,
    // 8 = the auto width). Each run is compared against the worker-sweep
    // baseline, which solved at the unset default (auto), so auto must
    // match every explicit width too.
    const int width_workers = runs.size() >= 2 ? runs[1].workers : 1;
    bool width_deterministic = true;
    for (const int bw : cfg.batchWidths) {
        RunReport wr = runSuite(jobs, width_workers, bw);
        const bool match = sameResults(runs[0], wr);
        width_deterministic = width_deterministic && match;
        std::cout << "batch width " << bw << " (workers=" << width_workers
                  << "): " << wr.jobsPerSec
                  << " jobs/s, exec p50 " << wr.execP50Ms
                  << " ms; bitwise matches baseline: "
                  << (match ? "yes" : "NO") << "\n";
    }
    std::cout << "deterministic across batch widths: "
              << (width_deterministic ? "yes" : "NO") << "\n";

    // The TCP front-end over loopback: same suite, same worker count as
    // the middle in-process run, 4 concurrent connections. The spread
    // vs the in-process jobs/sec is the wire + framing cost.
    const int socket_workers = runs.size() >= 2 ? runs[1].workers : 1;
    const SocketReport socket =
        runSocketSuite(jobs, socket_workers, 4, runs[0]);
    std::cout << "socket (workers=" << socket.workers << ", "
              << socket.connections << " conns): " << socket.jobsPerSec
              << " jobs/s, p50 " << socket.p50Ms << " ms, p99 "
              << socket.p99Ms << " ms, accept " << socket.acceptMsAvg
              << " ms avg, first byte " << socket.firstByteMsAvg
              << " ms avg; bitwise matches in-process: "
              << (socket.matchesInProcess ? "yes" : "NO") << "\n";

    // The overhead probe needs runs long enough that jobs/sec is not
    // dominated by startup noise: rerun the suite maker with a higher
    // repeat floor (same structures, so the reference-run bitwise
    // check still applies job-by-job via a fresh reference below).
    Config probe_cfg = cfg;
    probe_cfg.repeats = std::max(cfg.repeats, cfg.full ? 32 : 24);
    const auto probe_jobs = makeSuite(probe_cfg);
    RunReport probe_reference;
    {
        service::ServiceOptions options;
        options.workers = socket_workers;
        service::SolveService svc(options);
        probe_reference.results = svc.solveAll(probe_jobs);
    }
    const ObservabilityReport obs_report = runObservabilityProbe(
        probe_jobs, socket_workers, probe_reference, cfg.full ? 8 : 6);
    std::cout << "observability: " << obs_report.jobsPerSecMetricsOn
              << " jobs/s metrics on vs " << obs_report.jobsPerSecMetricsOff
              << " off (overhead " << obs_report.overheadPct
              << "%), stats RTT " << obs_report.statsRttUsAvg
              << " us avg; counters reconcile: "
              << (obs_report.reconciled ? "yes" : "NO")
              << "; traced run bitwise matches: "
              << (obs_report.traceMatches ? "yes" : "NO") << "\n";

    const InlineSpecReport inline_spec =
        runInlineSpecProbe(cfg.full ? 32 : 8, cfg.iterations);
    std::cout << "inline spec (" << inline_spec.specBytes
              << " bytes): parse+canonicalize "
              << inline_spec.parseCanonicalizeUs
              << " us, ref-reuse cache hit rate "
              << inline_spec.refReuseHitRate
              << "; bitwise matches registry case: "
              << (inline_spec.matchesRegistry ? "yes" : "NO") << "\n";

    service::Json doc = service::Json::object();
    doc.set("bench", "service");
    doc.set("mode", cfg.full ? "full" : "quick");
    doc.set("jobs", static_cast<double>(jobs.size()));
    doc.set("hardware_concurrency",
            static_cast<double>(std::thread::hardware_concurrency()));
    doc.set("deterministic_across_worker_counts", deterministic);
    doc.set("speedup_max_vs_min_workers", speedup);
    service::Json width_array = service::Json::array();
    for (const int bw : cfg.batchWidths)
        width_array.push(static_cast<double>(bw));
    doc.set("batch_widths", std::move(width_array));
    doc.set("deterministic_across_batch_widths", width_deterministic);
    service::Json run_array = service::Json::array();
    for (const auto &r : runs) {
        service::Json entry = service::Json::object();
        entry.set("workers", r.workers);
        entry.set("wall_seconds", r.wallSeconds);
        entry.set("jobs_per_sec", r.jobsPerSec);
        entry.set("latency_p50_ms", r.p50Ms);
        entry.set("latency_p99_ms", r.p99Ms);
        entry.set("exec_p50_ms", r.execP50Ms);
        entry.set("cache_hit_rate", r.cacheHitRate);
        entry.set("cache_entries", static_cast<double>(r.cache.entries));
        entry.set("cache_bytes", static_cast<double>(r.cache.bytes));
        entry.set("cache_evictions",
                  static_cast<double>(r.cache.evictions));
        entry.set("cache_max_bytes",
                  static_cast<double>(r.cache.maxBytes));
        run_array.push(std::move(entry));
    }
    doc.set("runs", std::move(run_array));

    service::Json socket_doc = service::Json::object();
    socket_doc.set("workers", socket.workers);
    socket_doc.set("connections", socket.connections);
    socket_doc.set("accept_ms_avg", socket.acceptMsAvg);
    socket_doc.set("idle_before_first_request_ms_avg",
                   socket.idleBeforeFirstRequestMsAvg);
    socket_doc.set("first_byte_ms_avg", socket.firstByteMsAvg);
    socket_doc.set("wall_seconds", socket.wallSeconds);
    socket_doc.set("jobs_per_sec", socket.jobsPerSec);
    socket_doc.set("latency_p50_ms", socket.p50Ms);
    socket_doc.set("latency_p99_ms", socket.p99Ms);
    socket_doc.set("matches_in_process", socket.matchesInProcess);
    doc.set("socket", std::move(socket_doc));

    service::Json inline_doc = service::Json::object();
    inline_doc.set("spec_bytes",
                   static_cast<double>(inline_spec.specBytes));
    inline_doc.set("parse_canonicalize_us",
                   inline_spec.parseCanonicalizeUs);
    inline_doc.set("ref_reuse_cache_hit_rate",
                   inline_spec.refReuseHitRate);
    inline_doc.set("matches_registry_case", inline_spec.matchesRegistry);
    doc.set("inline_spec", std::move(inline_doc));

    service::Json obs_doc = service::Json::object();
    obs_doc.set("jobs_per_sec_metrics_on", obs_report.jobsPerSecMetricsOn);
    obs_doc.set("jobs_per_sec_metrics_off",
                obs_report.jobsPerSecMetricsOff);
    obs_doc.set("overhead_pct", obs_report.overheadPct);
    obs_doc.set("stats_rtt_us_avg", obs_report.statsRttUsAvg);
    obs_doc.set("counters_reconcile", obs_report.reconciled);
    obs_doc.set("trace_matches_untraced", obs_report.traceMatches);
    doc.set("observability", std::move(obs_doc));

    std::ofstream out(cfg.outPath);
    out << doc.pretty() << "\n";
    std::cout << "wrote " << cfg.outPath << "\n";
    return deterministic && width_deterministic && socket.matchesInProcess
                   && inline_spec.matchesRegistry && obs_report.reconciled
                   && obs_report.traceMatches
               ? 0
               : 1;
}
