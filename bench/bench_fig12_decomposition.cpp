/**
 * @file
 * Figure 12: Trotter decomposition [36] vs Choco-Q's equivalent
 * decomposition — (a) decomposition time and memory usage, (b) resulting
 * circuit depth — as the qubit count grows.
 *
 * Expected shape (paper): Trotter time/memory explode exponentially and
 * give up beyond ~10 qubits; Choco-Q stays sub-0.1 s / sub-10 MB with
 * circuit depth linear in the qubit count.
 */

#include "solvers/trotter.hpp"

#include "common.hpp"

using namespace chocoq;
using namespace chocoq::bench;

namespace
{

/** Chain move basis of a single summation constraint over n qubits. */
std::vector<core::CommuteTerm>
chainTerms(int n)
{
    std::vector<std::vector<int>> moves;
    for (int i = 0; i + 1 < n; ++i) {
        std::vector<int> u(n, 0);
        u[i] = 1;
        u[i + 1] = -1;
        moves.push_back(std::move(u));
    }
    return core::makeCommuteTerms(moves);
}

std::string
fmtBytes(std::size_t bytes)
{
    if (bytes >= (std::size_t{1} << 30))
        return fmtNum(static_cast<double>(bytes) / (1 << 30), 2) + " GB";
    if (bytes >= (std::size_t{1} << 20))
        return fmtNum(static_cast<double>(bytes) / (1 << 20), 2) + " MB";
    return fmtNum(static_cast<double>(bytes) / (1 << 10), 2) + " KB";
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchConfig cfg =
        parseArgs(argc, argv, "bench_fig12_decomposition",
                  "Fig. 12: Trotter vs Choco-Q decomposition cost");
    banner("Figure 12", cfg);

    const int max_qubits = cfg.full ? 12 : 10;
    const double beta = 0.8;

    solvers::TrotterOptions trotter_opts;
    trotter_opts.repetitions = 100; // the paper uses N > 100
    trotter_opts.timeoutSeconds = cfg.full ? 120.0 : 20.0;
    trotter_opts.maxQubits = max_qubits;

    Table table({"#Qubits", "Trotter time (s)", "Trotter memory",
                 "Trotter depth", "Choco time (s)", "Choco memory",
                 "Choco depth"});
    for (int n = 4; n <= max_qubits; ++n) {
        const auto terms = chainTerms(n);
        const auto trotter =
            solvers::trotterDecompose(terms, n, beta, trotter_opts);
        const auto choco = solvers::chocoDecompose(terms, n, beta);
        table.addRow({std::to_string(n),
                      trotter.timedOut ? "timeout"
                                       : fmtNum(trotter.seconds, 3),
                      trotter.timedOut && trotter.peakBytes == 0
                          ? "-"
                          : fmtBytes(trotter.peakBytes),
                      trotter.timedOut ? "-"
                                       : std::to_string(trotter.depth),
                      fmtNum(choco.seconds, 4), fmtBytes(choco.peakBytes),
                      std::to_string(choco.depth)});
    }
    table.print();
    std::cout << "note: Trotter assembles the dense 2^n x 2^n driver and "
                 "synthesizes each of the N=100 steps with two-level "
                 "rotations; Choco-Q derives the circuit directly from "
                 "the move vectors (Lemma 2).\n";
    return 0;
}
