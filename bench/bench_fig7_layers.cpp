/**
 * @file
 * Figure 7: average success rate vs number of repeated layers (1-7) for
 * the four designs.
 *
 * Expected shape (paper): Choco-Q starts high (>25%) at one layer and
 * gains a little from a second layer (serialization already covers all
 * search directions); the baselines start near zero and improve only
 * slowly with more layers.
 */

#include "common.hpp"

using namespace chocoq;
using namespace chocoq::bench;

int
main(int argc, char **argv)
{
    const BenchConfig cfg =
        parseArgs(argc, argv, "bench_fig7_layers",
                  "Fig. 7: success rate vs #layers");
    banner("Figure 7", cfg);

    const int max_layers = cfg.full ? 7 : 5;
    const std::vector<problems::Scale> scales{
        problems::Scale::F1, problems::Scale::G1, problems::Scale::K1};

    Table table({"#Layers", "Penalty (%)", "Cyclic (%)", "HEA (%)",
                 "Choco-Q (%)"});
    for (int layers = 1; layers <= max_layers; ++layers) {
        double sum[4] = {0, 0, 0, 0};
        int count = 0;
        for (auto scale : scales) {
            for (unsigned idx = 0; idx < cfg.cases; ++idx) {
                const auto p = problems::makeCase(scale, idx);
                const auto exact = model::solveExact(p);
                if (!exact.feasible)
                    continue;
                const solvers::PenaltyQaoaSolver penalty(
                    penaltyOptions(cfg, layers));
                const solvers::CyclicQaoaSolver cyclic(
                    cyclicOptions(cfg, layers));
                const solvers::HeaSolver hea(heaOptions(cfg, layers));
                const core::ChocoQSolver choco(
                    chocoOptions(cfg, layers));
                const core::Solver *solver_list[4] = {&penalty, &cyclic,
                                                      &hea, &choco};
                for (int s = 0; s < 4; ++s)
                    sum[s] +=
                        runCase(*solver_list[s], p, exact).stats
                            .successRate;
                ++count;
            }
        }
        table.addRow({std::to_string(layers),
                      fmtPct(sum[0] / count, 2), fmtPct(sum[1] / count, 2),
                      fmtPct(sum[2] / count, 2),
                      fmtPct(sum[3] / count, 2)});
    }
    table.print();
    return 0;
}
