/**
 * @file
 * Figure 11: (a) end-to-end latency of the four designs on the three
 * device models for F1/G1/K1; (b) the latency breakdown of Choco-Q on
 * Fez (compilation vs iterative execution, classical vs quantum part).
 *
 * Expected shape (paper): Choco-Q 2.97x-5.84x faster end-to-end (fewer
 * iterations dominate); iterative execution is ~70% of its total; the
 * classical per-iteration part is negligible.
 */

#include "common.hpp"

using namespace chocoq;
using namespace chocoq::bench;

int
main(int argc, char **argv)
{
    const BenchConfig cfg =
        parseArgs(argc, argv, "bench_fig11_latency",
                  "Fig. 11: end-to-end latency and breakdown");
    banner("Figure 11(a): end-to-end latency (s)", cfg);

    const std::vector<problems::Scale> scales{
        problems::Scale::F1, problems::Scale::G1, problems::Scale::K1};

    struct Cell
    {
        device::LatencyEstimate lat;
        int iterations = 0;
    };

    Table table({"Device", "Case", "Penalty", "Cyclic", "HEA", "Choco-Q",
                 "Speedup vs cyclic [47]"});
    Cell choco_fez[3]; // kept for the breakdown section
    int choco_fez_count = 0;
    double total_speedup = 0.0;
    int speedup_count = 0;

    for (const auto &dev : device::allDevices()) {
        for (std::size_t sc = 0; sc < scales.size(); ++sc) {
            const auto p = problems::makeCase(scales[sc], 0);
            const auto exact = model::solveExact(p);
            if (!exact.feasible)
                continue;
            auto pen_opts = penaltyOptions(cfg);
            pen_opts.engine.opt.maxIterations = latencyBaselineIters(cfg);
            auto cyc_opts = cyclicOptions(cfg);
            cyc_opts.engine.opt.maxIterations = latencyBaselineIters(cfg);
            auto hea_opts = heaOptions(cfg);
            hea_opts.engine.opt.maxIterations = latencyBaselineIters(cfg);
            const solvers::PenaltyQaoaSolver penalty(pen_opts);
            const solvers::CyclicQaoaSolver cyclic(cyc_opts);
            const solvers::HeaSolver hea(hea_opts);
            const core::ChocoQSolver choco(chocoLatencyOptions(cfg));
            const core::Solver *solver_list[4] = {&penalty, &cyclic, &hea,
                                                  &choco};
            double totals[4];
            for (int s = 0; s < 4; ++s) {
                const auto r = runCase(*solver_list[s], p, exact);
                const auto lat = device::estimateLatency(
                    dev, r.outcome.basisDepth, r.outcome.iterations,
                    r.outcome.circuitsPerIteration, cfg.shots,
                    r.outcome.compileSeconds,
                    r.outcome.classicalSeconds);
                totals[s] = lat.total();
                if (s == 3 && dev.name == "Fez") {
                    choco_fez[sc].lat = lat;
                    choco_fez[sc].iterations = r.outcome.iterations;
                    ++choco_fez_count;
                }
            }
            // The paper's 4.69x headline compares against the cyclic
            // design [47]; HEA's shallow circuit makes it fast but it
            // fails to solve (Table II), as the paper also observes.
            const double speedup = totals[1] / totals[3];
            total_speedup += speedup;
            ++speedup_count;
            table.addRow({dev.name, problems::scaleName(scales[sc]),
                          fmtNum(totals[0], 2), fmtNum(totals[1], 2),
                          fmtNum(totals[2], 2), fmtNum(totals[3], 2),
                          fmtNum(speedup, 2) + "x"});
        }
        table.addRule();
    }
    table.print();
    if (speedup_count > 0)
        std::cout << "average Choco-Q speedup: "
                  << fmtNum(total_speedup / speedup_count, 2) << "x\n\n";

    banner("Figure 11(b): Choco-Q latency breakdown on Fez", cfg);
    Table breakdown({"Case", "Compile (s)", "Quantum exec (s)",
                     "Classical update (s)", "#Iterations", "Total (s)"});
    for (std::size_t sc = 0; sc < scales.size() && sc < 3; ++sc) {
        const auto &cell = choco_fez[sc];
        breakdown.addRow({problems::scaleName(scales[sc]),
                          fmtNum(cell.lat.compileSeconds, 3),
                          fmtNum(cell.lat.quantumSeconds, 3),
                          fmtNum(cell.lat.classicalSeconds, 3),
                          std::to_string(cell.iterations),
                          fmtNum(cell.lat.total(), 3)});
    }
    breakdown.print();
    return 0;
}
