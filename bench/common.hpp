/**
 * @file
 * Shared infrastructure for the per-table/per-figure benchmark binaries.
 *
 * Every binary reproduces one table or figure of the paper's evaluation
 * section. Default invocation runs a reduced-but-faithful configuration
 * (fewer cases, tighter iteration budgets, largest scales gated) so the
 * whole suite completes in minutes on one core; pass --full or set
 * CHOCOQ_BENCH_FULL=1 for the full sweep.
 */

#ifndef CHOCOQ_BENCH_COMMON_HPP
#define CHOCOQ_BENCH_COMMON_HPP

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/chocoq_solver.hpp"
#include "device/device.hpp"
#include "metrics/stats.hpp"
#include "model/exact.hpp"
#include "problems/suite.hpp"
#include "solvers/cyclic.hpp"
#include "solvers/hea.hpp"
#include "solvers/penalty.hpp"

namespace chocoq::bench
{

/** Run mode parsed from argv / environment. */
struct BenchConfig
{
    bool full = false;
    /** Cases per scale. */
    unsigned cases = 1;
    /** Iteration budget for the baselines (paper: they need 148+). */
    int baselineIters = 20;
    /** Iteration budget for Choco-Q (paper: converges within ~30). */
    int chocoIters = 30;
    /** Noise trajectories per circuit when a device model is active. */
    int trajectories = 32;
    /** Shots per circuit execution. */
    int shots = 1024;
};

inline BenchConfig
parseArgs(int argc, char **argv, const std::string &name,
          const std::string &what)
{
    BenchConfig cfg;
    const char *env = std::getenv("CHOCOQ_BENCH_FULL");
    if (env && std::string(env) != "0")
        cfg.full = true;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--full") {
            cfg.full = true;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << name << ": " << what << "\n"
                      << "usage: " << argv[0] << " [--full]\n"
                      << "  --full  run the paper-scale sweep (also via "
                         "CHOCOQ_BENCH_FULL=1)\n";
            std::exit(0);
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            std::exit(2);
        }
    }
    if (cfg.full) {
        cfg.cases = 5;
        cfg.baselineIters = 100;
        cfg.chocoIters = 60;
        cfg.trajectories = 128;
        cfg.shots = 4096;
    }
    return cfg;
}

inline void
banner(const std::string &title, const BenchConfig &cfg)
{
    std::cout << "=== " << title << " ("
              << (cfg.full ? "full" : "quick") << " mode) ===\n";
}

/** The four designs of Table II with bench-budget options. */
inline core::ChocoQOptions
chocoOptions(const BenchConfig &cfg, int layers = 1, int eliminate = 1)
{
    core::ChocoQOptions o;
    o.layers = layers;
    o.eliminate = eliminate;
    o.engine.opt.maxIterations = cfg.chocoIters;
    return o;
}

inline solvers::PenaltyOptions
penaltyOptions(const BenchConfig &cfg, int layers = 7)
{
    solvers::PenaltyOptions o;
    o.layers = layers;
    o.engine.opt.maxIterations = cfg.baselineIters;
    return o;
}

inline solvers::CyclicOptions
cyclicOptions(const BenchConfig &cfg, int layers = 7)
{
    solvers::CyclicOptions o;
    o.layers = layers;
    o.engine.opt.maxIterations = cfg.baselineIters;
    return o;
}

inline solvers::HeaOptions
heaOptions(const BenchConfig &cfg, int layers = 2)
{
    solvers::HeaOptions o;
    o.layers = layers;
    o.engine.opt.maxIterations = cfg.baselineIters;
    return o;
}

/**
 * Deployment-style Choco-Q for the latency benches (Table I, Fig. 11):
 * single start, converging in the paper's ~30 iterations. The quality
 * benches use the multi-start configuration instead.
 */
inline core::ChocoQOptions
chocoLatencyOptions(const BenchConfig &cfg)
{
    core::ChocoQOptions o = chocoOptions(cfg);
    o.engine.theta0 = {0.8, 2.2};
    o.engine.opt.maxIterations = cfg.chocoIters;
    // Minimal Delta (n - rank moves, the paper's linear-depth circuit):
    // the enriched move set trades depth for success and belongs to the
    // quality benches.
    o.moveSetFactor = 1;
    return o;
}

/** Paper-like iteration budget for baselines in the latency benches
 * (they need 148+ iterations and still do not converge). */
inline int
latencyBaselineIters(const BenchConfig &cfg)
{
    return cfg.full ? 148 : 100;
}

/** Metrics plus run artifacts for one (solver, case) pair. */
struct CaseResult
{
    metrics::RunStats stats;
    core::SolverOutcome outcome;
    double wallSeconds = 0.0;
};

inline CaseResult
runCase(const core::Solver &solver, const model::Problem &p,
        const model::ExactResult &exact)
{
    Timer timer;
    CaseResult out;
    out.outcome = solver.solve(p);
    out.wallSeconds = timer.seconds();
    out.stats = metrics::computeStats(p, out.outcome.distribution, exact);
    return out;
}

/** Scales included by default; F4 (28 qubits) only in full mode. */
inline std::vector<problems::Scale>
benchScales(const BenchConfig &cfg)
{
    std::vector<problems::Scale> scales;
    for (auto s : problems::allScales()) {
        if (!cfg.full && s == problems::Scale::F4)
            continue; // 2^28 state vector: full mode only
        scales.push_back(s);
    }
    return scales;
}

} // namespace chocoq::bench

#endif // CHOCOQ_BENCH_COMMON_HPP
