/**
 * @file
 * Figure 14: ablation of the three optimization passes, averaged over
 * F1/G1/K1 under the Fez noise model.
 *
 *   Opt1     serialization only — each local commute unitary costed as a
 *            generic two-level synthesis (modeled with identity padding
 *            so the circuit stays executable; see DESIGN.md),
 *   Opt1+2   + the Lemma-2 equivalent decomposition,
 *   Opt1+3   + eliminating two variables (still generic synthesis),
 *   Opt1+2+3 everything.
 *
 * Expected shape (paper): Opt2 buys the big depth cut (~5.7x) and a
 * ~2.4x success gain; Opt3 adds another ~1.3-1.4x of both.
 */

#include "common.hpp"

using namespace chocoq;
using namespace chocoq::bench;

int
main(int argc, char **argv)
{
    const BenchConfig cfg =
        parseArgs(argc, argv, "bench_fig14_ablation",
                  "Fig. 14: optimization-pass ablation");
    banner("Figure 14", cfg);

    const std::vector<problems::Scale> scales{
        problems::Scale::F1, problems::Scale::G1, problems::Scale::K1};
    const auto noise = device::noiseOf(device::fez());

    struct Config
    {
        const char *label;
        bool lemma2;
        int eliminate;
    };
    const Config configs[4] = {{"Opt1", false, 0},
                               {"Opt1+3", false, 2},
                               {"Opt1+2", true, 0},
                               {"Opt1+2+3", true, 2}};

    Table table({"Config", "Avg depth", "Avg success (%)",
                 "Depth vs Opt1", "Success vs Opt1"});
    double depth_avg[4] = {0, 0, 0, 0};
    double succ_avg[4] = {0, 0, 0, 0};

    for (int c = 0; c < 4; ++c) {
        int count = 0;
        for (auto scale : scales) {
            const auto p = problems::makeCase(scale, 0);
            const auto exact = model::solveExact(p);
            if (!exact.feasible)
                continue;
            auto opts = chocoOptions(cfg, 1, configs[c].eliminate);
            opts.genericSynthesisPadding = !configs[c].lemma2;
            opts.engine.noise = noise;
            opts.engine.shots = cfg.shots;
            opts.engine.trajectories = cfg.trajectories;
            opts.engine.transpile.nativeCz = true;
            const auto r = runCase(core::ChocoQSolver(opts), p, exact);
            depth_avg[c] += r.outcome.basisDepth;
            succ_avg[c] += r.stats.successRate;
            ++count;
        }
        depth_avg[c] /= count;
        succ_avg[c] /= count;
    }

    for (int c = 0; c < 4; ++c) {
        table.addRow(
            {configs[c].label, fmtNum(depth_avg[c], 0),
             fmtPct(succ_avg[c], 2),
             fmtNum(depth_avg[0] / std::max(depth_avg[c], 1.0), 2) + "x",
             fmtNum(succ_avg[c] / std::max(succ_avg[0], 1e-4), 2) + "x"});
    }
    table.print();
    return 0;
}
