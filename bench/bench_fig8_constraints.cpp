/**
 * @file
 * Figure 8: success rate (all designs) and Choco-Q circuit depth as the
 * number of constraints grows, on the graph-coloring family.
 *
 * Expected shape (paper): beyond ~12 constraints the baselines drop to
 * (near) zero success while Choco-Q keeps >10%; Choco-Q's depth grows
 * with the constraint count (the move basis has to express every row).
 */

#include "problems/gcp.hpp"

#include "common.hpp"

using namespace chocoq;
using namespace chocoq::bench;

int
main(int argc, char **argv)
{
    const BenchConfig cfg =
        parseArgs(argc, argv, "bench_fig8_constraints",
                  "Fig. 8: success rate & depth vs #constraints");
    banner("Figure 8 (GCP family)", cfg);

    // GCP sweeps: (V, E, K) chosen so the constraint count V + E*K climbs
    // from 3 to 16 while qubits stay simulable.
    struct Config
    {
        int v, e, k;
    };
    std::vector<Config> sweep{{3, 0, 3}, {3, 1, 2}, {3, 1, 3},
                              {3, 2, 3}, {4, 2, 3}, {4, 3, 3}};
    if (cfg.full)
        sweep.push_back({5, 4, 3}); // 27 qubits; full mode only

    Table table({"#Constraints", "Qubits", "Penalty (%)", "Cyclic (%)",
                 "HEA (%)", "Choco-Q (%)", "Choco-Q depth"});
    for (const auto &c : sweep) {
        problems::GcpConfig gcp;
        gcp.vertices = c.v;
        gcp.edgeCount = c.e;
        gcp.colors = c.k;
        double sum[4] = {0, 0, 0, 0};
        int depth = 0;
        int count = 0;
        int cons = 0, qubits = 0;
        for (unsigned idx = 0; idx < cfg.cases; ++idx) {
            Rng rng(9000 + 31 * idx + c.v + 7 * c.e);
            auto p = problems::makeGcp(gcp, rng);
            cons = static_cast<int>(p.constraints().size());
            qubits = p.numVars();
            const auto exact = model::solveExact(p);
            if (!exact.feasible)
                continue;
            const bool big = p.numVars() >= 15 && !cfg.full;
            auto pen_opts = penaltyOptions(cfg);
            auto cyc_opts = cyclicOptions(cfg);
            auto hea_opts = heaOptions(cfg, big ? 1 : 2);
            if (big) {
                pen_opts.engine.opt.maxIterations = 10;
                cyc_opts.engine.opt.maxIterations = 10;
                hea_opts.engine.opt.maxIterations = 6;
            }
            const solvers::PenaltyQaoaSolver penalty(pen_opts);
            const solvers::CyclicQaoaSolver cyclic(cyc_opts);
            const solvers::HeaSolver hea(hea_opts);
            const core::ChocoQSolver choco(chocoOptions(cfg));
            const core::Solver *solver_list[4] = {&penalty, &cyclic, &hea,
                                                  &choco};
            for (int s = 0; s < 4; ++s) {
                const auto r = runCase(*solver_list[s], p, exact);
                sum[s] += r.stats.successRate;
                if (s == 3)
                    depth = std::max(depth, r.outcome.basisDepth);
            }
            ++count;
        }
        if (count == 0)
            continue;
        table.addRow({std::to_string(cons), std::to_string(qubits),
                      fmtPct(sum[0] / count, 2), fmtPct(sum[1] / count, 2),
                      fmtPct(sum[2] / count, 2), fmtPct(sum[3] / count, 2),
                      std::to_string(depth)});
    }
    table.print();
    return 0;
}
