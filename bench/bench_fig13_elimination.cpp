/**
 * @file
 * Figure 13: variable elimination — (a) transpiled circuit depth after
 * eliminating 0-3 variables on F2/G2/K2; (b) success rate under the
 * IBM noise models for the same sweep.
 *
 * Expected shape (paper): the first eliminations buy large depth
 * reductions and noisy-success gains (F2: 2.7x depth, ~10x success for
 * one variable); returns diminish once most non-zeros are gone; KPP
 * gains least (uniform support distribution).
 */

#include "common.hpp"

using namespace chocoq;
using namespace chocoq::bench;

int
main(int argc, char **argv)
{
    const BenchConfig cfg =
        parseArgs(argc, argv, "bench_fig13_elimination",
                  "Fig. 13: variable-elimination depth & success sweep");
    banner("Figure 13(a): circuit depth vs #eliminated variables", cfg);

    const std::vector<problems::Scale> scales{
        problems::Scale::F2, problems::Scale::G2, problems::Scale::K2};
    const int max_elim = 3;

    std::vector<std::vector<int>> depths(
        scales.size(), std::vector<int>(max_elim + 1, 0));
    Table depth_table({"Scale", "e=0", "e=1", "e=2", "e=3"});
    for (std::size_t sc = 0; sc < scales.size(); ++sc) {
        const auto p = problems::makeCase(scales[sc], 0);
        std::vector<std::string> row{problems::scaleName(scales[sc])};
        for (int e = 0; e <= max_elim; ++e) {
            auto opts = chocoOptions(cfg, 1, e);
            opts.engine.opt.maxIterations = 2;
            const auto run = core::ChocoQSolver(opts).solve(p);
            depths[sc][e] = run.basisDepth;
            row.push_back(std::to_string(run.basisDepth));
        }
        depth_table.addRow(row);
    }
    depth_table.print();

    banner("Figure 13(b): noisy success rate vs #eliminated variables",
           cfg);
    const auto noise = device::noiseOf(device::fez());
    Table succ_table({"Scale", "e=0 (%)", "e=1 (%)", "e=2 (%)",
                      "e=3 (%)"});
    for (std::size_t sc = 0; sc < scales.size(); ++sc) {
        // G2's un-eliminated circuit is the deepest of the sweep; its
        // noisy trajectories are full-mode only.
        if (!cfg.full && scales[sc] == problems::Scale::G2)
            continue;
        const auto p = problems::makeCase(scales[sc], 0);
        const auto exact = model::solveExact(p);
        if (!exact.feasible)
            continue;
        std::vector<std::string> row{problems::scaleName(scales[sc])};
        for (int e = 0; e <= max_elim; ++e) {
            auto opts = chocoOptions(cfg, 1, e);
            opts.engine.noise = noise;
            opts.engine.shots = cfg.full ? cfg.shots : 512;
            opts.engine.trajectories = cfg.full ? cfg.trajectories : 16;
            opts.engine.transpile.nativeCz = true;
            const auto r = runCase(core::ChocoQSolver(opts), p, exact);
            row.push_back(fmtPct(r.stats.successRate, 2));
        }
        succ_table.addRow(row);
    }
    succ_table.print();
    return 0;
}
