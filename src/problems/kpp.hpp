/**
 * @file
 * K-partition problem (KPP) generator [11].
 *
 * Variables: x_vb = vertex v assigned to block b (n = V * B qubits; the
 * paper's K1 = "4V-3E-2B" gives 8 variables, 4 constraints).
 *
 * Objective: minimize the weight of cut edges,
 *   f = sum_e w_e * (1 - sum_b x_ub x_vb).
 * Constraints: one block per vertex, sum_b x_vb = 1 — pure summation
 * format with no shared variables between rows, which is why the cyclic
 * Hamiltonian baseline performs best on this family (Table II). An
 * optional balance mode adds sum_v x_vb = V/B per block; those rows share
 * variables with the one-hot rows and are exercised by tests and the
 * extension example.
 */

#ifndef CHOCOQ_PROBLEMS_KPP_HPP
#define CHOCOQ_PROBLEMS_KPP_HPP

#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "model/problem.hpp"

namespace chocoq::problems
{

/** KPP instance parameters. */
struct KppConfig
{
    int vertices = 4;
    int blocks = 2;
    /** Weighted edges {u, v, w}; empty -> `edgeCount` random edges. */
    std::vector<std::tuple<int, int, int>> edges;
    int edgeCount = 3;
    int weightLo = 1, weightHi = 5;
    /** Add per-block balance rows (requires vertices % blocks == 0). */
    bool balanced = false;
};

/** Index helpers for the KPP variable layout. */
struct KppLayout
{
    int v, b;
    int x(int vertex, int block) const { return vertex * b + block; }
    int numVars() const { return v * b; }
};

/** Generate a KPP instance (n = V * B variables). */
model::Problem makeKpp(const KppConfig &config, Rng &rng);

} // namespace chocoq::problems

#endif // CHOCOQ_PROBLEMS_KPP_HPP
