#include "problems/gcp.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/error.hpp"

namespace chocoq::problems
{

model::Problem
makeGcp(const GcpConfig &config, Rng &rng)
{
    CHOCOQ_ASSERT(config.vertices >= 2 && config.colors >= 2,
                  "GCP needs >= 2 vertices and colors");
    std::vector<std::pair<int, int>> edges = config.edges;
    if (edges.empty()) {
        const int max_edges = config.vertices * (config.vertices - 1) / 2;
        CHOCOQ_ASSERT(config.edgeCount <= max_edges,
                      "more edges requested than the clique has");
        std::set<std::pair<int, int>> chosen;
        while (static_cast<int>(chosen.size()) < config.edgeCount) {
            int a = rng.intIn(0, config.vertices - 1);
            int b = rng.intIn(0, config.vertices - 1);
            if (a == b)
                continue;
            chosen.insert({std::min(a, b), std::max(a, b)});
        }
        edges.assign(chosen.begin(), chosen.end());
    }

    const GcpLayout lay{config.vertices, config.colors,
                        static_cast<int>(edges.size())};
    std::ostringstream name;
    name << "GCP-" << lay.v << "V-" << lay.e << "E-" << lay.k << "C";
    model::Problem p(lay.numVars(), model::Sense::Minimize, name.str());

    // Color weights grow with the color index (plus a per-vertex jitter)
    // so the optimum uses the smallest palette the edges allow.
    model::Polynomial f;
    for (int v = 0; v < lay.v; ++v)
        for (int c = 0; c < lay.k; ++c)
            f.addTerm({lay.x(v, c)}, 2 * c + rng.intIn(0, 1));
    p.setObjective(std::move(f));

    // Exactly one color per vertex.
    for (int v = 0; v < lay.v; ++v) {
        std::vector<int> coeffs(lay.numVars(), 0);
        for (int c = 0; c < lay.k; ++c)
            coeffs[lay.x(v, c)] = 1;
        p.addEquality(std::move(coeffs), 1);
    }
    // Adjacent vertices cannot share color c: x_uc + x_vc + s_ec = 1.
    for (int e = 0; e < lay.e; ++e) {
        for (int c = 0; c < lay.k; ++c) {
            std::vector<int> coeffs(lay.numVars(), 0);
            coeffs[lay.x(edges[e].first, c)] = 1;
            coeffs[lay.x(edges[e].second, c)] = 1;
            coeffs[lay.s(e, c)] = 1;
            p.addEquality(std::move(coeffs), 1);
        }
    }
    return p;
}

} // namespace chocoq::problems
