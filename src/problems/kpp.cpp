#include "problems/kpp.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/error.hpp"

namespace chocoq::problems
{

model::Problem
makeKpp(const KppConfig &config, Rng &rng)
{
    CHOCOQ_ASSERT(config.vertices >= 2 && config.blocks >= 2,
                  "KPP needs >= 2 vertices and blocks");
    std::vector<std::tuple<int, int, int>> edges = config.edges;
    if (edges.empty()) {
        const int max_edges = config.vertices * (config.vertices - 1) / 2;
        CHOCOQ_ASSERT(config.edgeCount <= max_edges,
                      "more edges requested than the clique has");
        std::set<std::pair<int, int>> chosen;
        while (static_cast<int>(chosen.size()) < config.edgeCount) {
            int a = rng.intIn(0, config.vertices - 1);
            int b = rng.intIn(0, config.vertices - 1);
            if (a == b)
                continue;
            chosen.insert({std::min(a, b), std::max(a, b)});
        }
        for (const auto &[a, b] : chosen)
            edges.emplace_back(a, b,
                               rng.intIn(config.weightLo, config.weightHi));
    }

    const KppLayout lay{config.vertices, config.blocks};
    std::ostringstream name;
    name << "KPP-" << lay.v << "V-" << edges.size() << "E-" << lay.b << "B";
    model::Problem p(lay.numVars(), model::Sense::Minimize, name.str());

    // Cut weight: w_e * (1 - sum_b x_ub x_vb).
    model::Polynomial f;
    for (const auto &[u, v, w] : edges) {
        f.addTerm({}, w);
        for (int b = 0; b < lay.b; ++b)
            f.addTerm({lay.x(u, b), lay.x(v, b)}, -w);
    }
    p.setObjective(std::move(f));

    // One block per vertex.
    for (int v = 0; v < lay.v; ++v) {
        std::vector<int> coeffs(lay.numVars(), 0);
        for (int b = 0; b < lay.b; ++b)
            coeffs[lay.x(v, b)] = 1;
        p.addEquality(std::move(coeffs), 1);
    }
    if (config.balanced) {
        CHOCOQ_ASSERT(config.vertices % config.blocks == 0,
                      "balanced KPP requires V divisible by B");
        const int per_block = config.vertices / config.blocks;
        for (int b = 0; b < lay.b; ++b) {
            std::vector<int> coeffs(lay.numVars(), 0);
            for (int v = 0; v < lay.v; ++v)
                coeffs[lay.x(v, b)] = 1;
            p.addEquality(std::move(coeffs), per_block);
        }
    }
    return p;
}

} // namespace chocoq::problems
