#include "problems/flp.hpp"

#include <sstream>

#include "common/error.hpp"

namespace chocoq::problems
{

model::Problem
makeFlp(const FlpConfig &config, Rng &rng)
{
    const FlpLayout lay{config.facilities, config.demands};
    CHOCOQ_ASSERT(lay.m >= 1 && lay.d >= 1, "FLP needs m, d >= 1");

    std::ostringstream name;
    name << "FLP-" << lay.m << "F-" << lay.d << "D";
    model::Problem p(lay.numVars(), model::Sense::Minimize, name.str());

    model::Polynomial f;
    for (int i = 0; i < lay.m; ++i)
        f.addTerm({lay.y(i)},
                  rng.intIn(config.openCostLo, config.openCostHi));
    for (int j = 0; j < lay.d; ++j)
        for (int i = 0; i < lay.m; ++i)
            f.addTerm({lay.x(i, j)},
                      rng.intIn(config.serveCostLo, config.serveCostHi));
    p.setObjective(std::move(f));

    // Every demand is served by exactly one facility.
    for (int j = 0; j < lay.d; ++j) {
        std::vector<int> coeffs(lay.numVars(), 0);
        for (int i = 0; i < lay.m; ++i)
            coeffs[lay.x(i, j)] = 1;
        p.addEquality(std::move(coeffs), 1);
    }
    // Serving requires an open facility: x_ij - y_i + s_ij = 0.
    for (int j = 0; j < lay.d; ++j) {
        for (int i = 0; i < lay.m; ++i) {
            std::vector<int> coeffs(lay.numVars(), 0);
            coeffs[lay.x(i, j)] = 1;
            coeffs[lay.y(i)] = -1;
            coeffs[lay.s(i, j)] = 1;
            p.addEquality(std::move(coeffs), 0);
        }
    }
    return p;
}

} // namespace chocoq::problems
