/**
 * @file
 * Benchmark scale registry (the paper's F1..F4, G1..G4, K1..K4).
 *
 * The paper collects 400 cases across three domains and four scales per
 * domain (Section V-A); this registry regenerates seeded synthetic cases
 * with the same constraint structure and the paper's variable counts
 * (F1 = 6 vars / 3 constraints ... F4 = 28 vars, G1 = 12 qubits, ...).
 */

#ifndef CHOCOQ_PROBLEMS_SUITE_HPP
#define CHOCOQ_PROBLEMS_SUITE_HPP

#include <optional>
#include <string>
#include <vector>

#include "model/problem.hpp"

namespace chocoq::problems
{

/** Identifiers of the twelve benchmark scales of Table II. */
enum class Scale
{
    F1, F2, F3, F4,
    G1, G2, G3, G4,
    K1, K2, K3, K4
};

/** All scales in Table II order. */
std::vector<Scale> allScales();

/** Scale name as printed in the paper ("F1", "G3", ...). */
std::string scaleName(Scale s);

/**
 * Parse a scale name ("F1" .. "K4", case-insensitive). Streaming entry
 * point for the solve service: a JSONL job request names its case as
 * (scale, index) and the registry regenerates it on demand, so a suite
 * of thousands of jobs needs no materialized problem list.
 */
std::optional<Scale> scaleByName(const std::string &name);

/** Configuration string ("2F-1D", "3V-1E-3C", ...). */
std::string scaleConfig(Scale s);

/** Number of binary variables (qubits before elimination) at this scale. */
int scaleNumVars(Scale s);

/** Number of constraint rows at this scale. */
int scaleNumConstraints(Scale s);

/** Generate the @p index-th seeded case of a scale. */
model::Problem makeCase(Scale s, unsigned index);

/** Generate @p count seeded cases of a scale. */
std::vector<model::Problem> makeCases(Scale s, unsigned count);

} // namespace chocoq::problems

#endif // CHOCOQ_PROBLEMS_SUITE_HPP
