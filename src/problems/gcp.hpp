/**
 * @file
 * Graph coloring problem (GCP) generator [26].
 *
 * Variables (the paper's G1 = "3V-1E" with 3 colors needs 12 qubits):
 *   x_vc              vertex v has color c,
 *   s_ec              slack for edge e not sharing color c.
 *
 * Objective: minimize sum_vc w_c x_vc with color weights growing in c, so
 * optima prefer a small palette. Constraints: one-hot color per vertex and
 * x_uc + x_vc + s_ec = 1 for every edge and color. The edge rows share
 * variables with the one-hot rows, which is what breaks the cyclic
 * Hamiltonian encoding on this family (Table II).
 */

#ifndef CHOCOQ_PROBLEMS_GCP_HPP
#define CHOCOQ_PROBLEMS_GCP_HPP

#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "model/problem.hpp"

namespace chocoq::problems
{

/** GCP instance parameters. */
struct GcpConfig
{
    int vertices = 3;
    int colors = 3;
    /** Edges; when empty, `edgeCount` random distinct edges are drawn. */
    std::vector<std::pair<int, int>> edges;
    int edgeCount = 1;
};

/** Index helpers for the GCP variable layout. */
struct GcpLayout
{
    int v, k, e;
    int x(int vertex, int color) const { return vertex * k + color; }
    int s(int edge, int color) const { return v * k + edge * k + color; }
    int numVars() const { return v * k + e * k; }
};

/** Generate a GCP instance (n = (V + E) * K variables). */
model::Problem makeGcp(const GcpConfig &config, Rng &rng);

} // namespace chocoq::problems

#endif // CHOCOQ_PROBLEMS_GCP_HPP
