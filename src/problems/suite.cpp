#include "problems/suite.hpp"

#include <cctype>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "problems/flp.hpp"
#include "problems/gcp.hpp"
#include "problems/kpp.hpp"

namespace chocoq::problems
{

namespace
{

struct ScaleSpec
{
    const char *name;
    const char *config;
    int a, b, c; // family-specific sizes
};

const ScaleSpec &
specOf(Scale s)
{
    // FLP: a = facilities, b = demands. GCP: a = V, b = E, c = K.
    // KPP: a = V, b = E, c = B.
    static const ScaleSpec specs[] = {
        {"F1", "2F-1D", 2, 1, 0},
        {"F2", "3F-2D", 3, 2, 0},
        {"F3", "3F-3D", 3, 3, 0},
        {"F4", "4F-3D", 4, 3, 0},
        {"G1", "3V-1E-3C", 3, 1, 3},
        {"G2", "3V-2E-3C", 3, 2, 3},
        {"G3", "4V-2E-3C", 4, 2, 3},
        {"G4", "4V-3E-3C", 4, 3, 3},
        {"K1", "4V-3E-2B", 4, 3, 2},
        {"K2", "6V-4E-2B", 6, 4, 2},
        {"K3", "6V-6E-3B", 6, 6, 3},
        {"K4", "8V-8E-2B", 8, 8, 2},
    };
    return specs[static_cast<int>(s)];
}

std::uint64_t
seedOf(Scale s, unsigned index)
{
    return 0xC0C0ull * 1000003ull + static_cast<std::uint64_t>(s) * 7919ull
           + index;
}

} // namespace

std::vector<Scale>
allScales()
{
    return {Scale::F1, Scale::F2, Scale::F3, Scale::F4,
            Scale::G1, Scale::G2, Scale::G3, Scale::G4,
            Scale::K1, Scale::K2, Scale::K3, Scale::K4};
}

std::string
scaleName(Scale s)
{
    return specOf(s).name;
}

std::optional<Scale>
scaleByName(const std::string &name)
{
    if (name.size() == 2)
        for (Scale s : allScales()) {
            const char *sn = specOf(s).name;
            if (std::toupper(static_cast<unsigned char>(name[0])) == sn[0]
                && name[1] == sn[1])
                return s;
        }
    return std::nullopt;
}

std::string
scaleConfig(Scale s)
{
    return specOf(s).config;
}

int
scaleNumVars(Scale s)
{
    const auto &spec = specOf(s);
    switch (specOf(s).name[0]) {
      case 'F':
        return spec.a + 2 * spec.a * spec.b;
      case 'G':
        return (spec.a + spec.b) * spec.c;
      default:
        return spec.a * spec.c;
    }
}

int
scaleNumConstraints(Scale s)
{
    const auto &spec = specOf(s);
    switch (specOf(s).name[0]) {
      case 'F':
        return spec.b + spec.a * spec.b;
      case 'G':
        return spec.a + spec.b * spec.c;
      default:
        // KPP: one-hot rows plus per-block balance rows.
        return spec.a + spec.c;
    }
}

model::Problem
makeCase(Scale s, unsigned index)
{
    const auto &spec = specOf(s);
    Rng rng(seedOf(s, index));
    switch (spec.name[0]) {
      case 'F': {
        FlpConfig cfg;
        cfg.facilities = spec.a;
        cfg.demands = spec.b;
        auto p = makeFlp(cfg, rng);
        p.setName(std::string(spec.name) + ":" + spec.config + "#"
                  + std::to_string(index));
        return p;
      }
      case 'G': {
        GcpConfig cfg;
        cfg.vertices = spec.a;
        cfg.edgeCount = spec.b;
        cfg.colors = spec.c;
        auto p = makeGcp(cfg, rng);
        p.setName(std::string(spec.name) + ":" + spec.config + "#"
                  + std::to_string(index));
        return p;
      }
      default: {
        KppConfig cfg;
        cfg.vertices = spec.a;
        cfg.edgeCount = spec.b;
        cfg.blocks = spec.c;
        cfg.balanced = true;
        auto p = makeKpp(cfg, rng);
        p.setName(std::string(spec.name) + ":" + spec.config + "#"
                  + std::to_string(index));
        return p;
      }
    }
}

std::vector<model::Problem>
makeCases(Scale s, unsigned count)
{
    std::vector<model::Problem> out;
    out.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        out.push_back(makeCase(s, i));
    return out;
}

} // namespace chocoq::problems
