/**
 * @file
 * Facility location problem (FLP) generator [37].
 *
 * Variables (matching the paper's F1 = "2F-1D" sizing: 2 facilities and
 * 1 demand give 6 variables and 3 constraints):
 *   y_i           (i < m)           facility i is open,
 *   x_ij                            demand j served by facility i,
 *   s_ij                            slack for x_ij <= y_i.
 *
 * Objective: minimize sum_i f_i y_i + sum_ij c_ij x_ij.
 * Constraints: sum_i x_ij = 1 for every demand j (service), and
 * x_ij - y_i + s_ij = 0 for every pair (open-before-serve). The second
 * family mixes +1 and -1 coefficients and shares y_i across demands — the
 * exact structure the cyclic Hamiltonian [47] cannot encode.
 */

#ifndef CHOCOQ_PROBLEMS_FLP_HPP
#define CHOCOQ_PROBLEMS_FLP_HPP

#include "common/rng.hpp"
#include "model/problem.hpp"

namespace chocoq::problems
{

/** FLP instance parameters. */
struct FlpConfig
{
    int facilities = 2;
    int demands = 1;
    /** Facility opening cost range [lo, hi]. */
    int openCostLo = 3, openCostHi = 10;
    /** Service cost range [lo, hi]. */
    int serveCostLo = 1, serveCostHi = 8;
};

/** Index helpers for the FLP variable layout. */
struct FlpLayout
{
    int m, d;
    int y(int i) const { return i; }
    int x(int i, int j) const { return m + j * m + i; }
    int s(int i, int j) const { return m + m * d + j * m + i; }
    int numVars() const { return m + 2 * m * d; }
};

/** Generate a random FLP instance (n = m + 2 m d variables). */
model::Problem makeFlp(const FlpConfig &config, Rng &rng);

} // namespace chocoq::problems

#endif // CHOCOQ_PROBLEMS_FLP_HPP
