/**
 * @file
 * Registry of inline problem submissions, keyed by canonical content
 * hash.
 *
 * The first submission of a spec registers its lowered model::Problem
 * under the spec's canonical hash; every later submission with the same
 * hash — including row-permuted or sign-flipped re-encodings — resolves
 * to that first-registered instance. Resolving to one shared Problem is
 * what makes the compile cache collapse equivalent inline submissions:
 * the cache keys on the problem's structure, and equivalent submissions
 * now present literally the same structure. A follow-up job can also
 * skip resending the matrix entirely and name the prior submission with
 * "problem_ref": "<hash>".
 *
 * Retention mirrors the compile cache: completed entries are kept in
 * LRU order under a byte budget; an evicted hash simply re-registers on
 * its next full submission, while a problem_ref to an evicted hash is a
 * per-request error telling the client to resubmit the inline problem.
 *
 * Eviction is observable, not silent: every eviction bumps a registry
 * generation counter and leaves a bounded tombstone for the evicted
 * hash, so a later problem_ref lookup can distinguish "expired"
 * (registered here once, then evicted — resubmitting the inline
 * problem will revive it) from "unknown" (never seen; likely a client
 * bug or another server). Re-registering a tombstoned hash reports a
 * `refreshed` hint so clients know their old refs are valid again.
 */

#ifndef CHOCOQ_SPEC_REGISTRY_HPP
#define CHOCOQ_SPEC_REGISTRY_HPP

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>

#include "common/lru.hpp"
#include "model/problem.hpp"

namespace chocoq::obs
{
class Histogram;
} // namespace chocoq::obs

namespace chocoq::spec
{

/** Registry retention configuration. */
struct ProblemRegistryOptions
{
    /**
     * Byte budget for retained problems (0 = unbounded). Problems are
     * far smaller than compiled artifacts, so the default holds many
     * thousands of typical specs.
     */
    std::size_t maxBytes = std::size_t{64} << 20;

    /**
     * Optional latency histogram fed the wall time of every first-sight
     * lowering (put() calls that actually ran @p make, in milliseconds).
     * Reuse hits record nothing. The pointer must outlive the registry;
     * the service wires in its MetricsRegistry's "registry.lower_ms".
     */
    obs::Histogram *lowerHistogram = nullptr;
};

/** Approximate heap footprint of a problem (constraint matrix +
 * objective terms), for the registry's LRU byte budget. */
std::size_t problemMemoryBytes(const model::Problem &p);

/** Thread-safe LRU registry of canonical-hash -> lowered problem. */
class ProblemRegistry
{
  public:
    struct Stats
    {
        /** Full submissions that registered a new hash. */
        std::uint64_t inserted = 0;
        /** Full submissions that found their hash already registered
         * (row-permuted or repeated specs collapsing onto one entry). */
        std::uint64_t reused = 0;
        /** problem_ref lookups that resolved. */
        std::uint64_t refHits = 0;
        /** problem_ref lookups that missed (unknown or evicted). */
        std::uint64_t refMisses = 0;
        /** Subset of refMisses that named a known-but-evicted hash. */
        std::uint64_t refExpired = 0;
        std::uint64_t evictions = 0;
        /** Eviction generation: bumped once per evicted entry. */
        std::uint64_t generation = 0;
        /** Tombstoned re-registrations (previously evicted hashes). */
        std::uint64_t refreshes = 0;
        std::size_t entries = 0;
        std::size_t bytes = 0;
        std::size_t maxBytes = 0;
    };

    /** What a problem_ref lookup found (see get()). */
    enum class RefOutcome
    {
        /** Resolved to a live registration. */
        Hit,
        /** Hash never registered on this registry. */
        Unknown,
        /** Hash was registered but its entry has been evicted. */
        Expired,
    };

    explicit ProblemRegistry(ProblemRegistryOptions opts = {})
        : opts_(opts), map_(Lru::Options{opts.maxBytes, /*minEntries=*/1})
    {}

    /**
     * Resolve @p hashHex, lowering and registering via @p make on first
     * sight. Returns the registered problem — the caller must solve the
     * returned instance, not its own lowering, so equivalent
     * submissions share one structure. @p reused (optional) reports
     * whether an existing registration was returned; callers holding
     * the submitting spec should then verify it against the returned
     * problem (spec::canonicallyEqual) — the 64-bit hash indexes, it
     * does not prove identity. @p refreshed (optional) reports that
     * this registration revived a previously evicted hash, making old
     * problem_refs to it valid again.
     */
    std::shared_ptr<const model::Problem>
    put(const std::string &hashHex,
        const std::function<model::Problem()> &make,
        bool *reused = nullptr, bool *refreshed = nullptr);

    /**
     * Resolve a problem_ref; nullptr when unknown or evicted, with
     * @p outcome (optional) telling the two apart (RefOutcome::Expired
     * means the hash was registered here and later evicted — clients
     * should resubmit the inline problem, see docs/protocol.md
     * "ref_expired").
     */
    std::shared_ptr<const model::Problem>
    get(const std::string &hashHex, RefOutcome *outcome = nullptr);

    /** Current eviction generation (0 = nothing evicted yet). */
    std::uint64_t generation() const;

    Stats stats() const;

    void clear();

  private:
    using Lru =
        common::LruMap<std::string, std::shared_ptr<const model::Problem>>;

    /** Tombstone @p hashHex and bump the generation. Lock held; runs as
     * the eviction sweep's on-evict callback. */
    void noteEvictedLocked(const std::string &hashHex);

    /** Bound on remembered evicted hashes (16-byte keys; ~1 MiB). */
    static constexpr std::size_t kMaxTombstones = 65536;

    ProblemRegistryOptions opts_;
    mutable std::mutex mu_;
    /** Recency + byte accounting live in the shared LRU core
     * (minEntries=1: the entry being inserted always survives); this
     * class layers tombstones and the eviction generation on top. */
    Lru map_;
    /** Evicted hashes, FIFO-bounded: membership => ref is "expired". */
    std::unordered_set<std::string> tombstones_;
    std::list<std::string> tombstoneOrder_;
    std::uint64_t inserted_ = 0;
    std::uint64_t reused_ = 0;
    std::uint64_t refHits_ = 0;
    std::uint64_t refMisses_ = 0;
    std::uint64_t refExpired_ = 0;
    std::uint64_t generation_ = 0;
    std::uint64_t refreshes_ = 0;
};

} // namespace chocoq::spec

#endif // CHOCOQ_SPEC_REGISTRY_HPP
