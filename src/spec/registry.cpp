#include "spec/registry.hpp"

#include <chrono>

#include "obs/metrics.hpp"

namespace chocoq::spec
{

std::size_t
problemMemoryBytes(const model::Problem &p)
{
    std::size_t bytes = sizeof(model::Problem) + p.name().size();
    for (const auto &row : p.constraints())
        bytes += sizeof(model::LinearConstraint)
                 + row.coeffs.capacity() * sizeof(int);
    for (const auto &[mono, coeff] : p.objective().terms()) {
        (void)coeff;
        // Node overhead of the term map plus the monomial's storage.
        bytes += 3 * sizeof(void *) + sizeof(double)
                 + sizeof(model::Polynomial::Monomial)
                 + mono.capacity() * sizeof(int);
    }
    return bytes;
}

void
ProblemRegistry::touchLocked(Entry &entry)
{
    lru_.splice(lru_.begin(), lru_, entry.lruPos);
}

void
ProblemRegistry::evictLocked()
{
    if (opts_.maxBytes == 0)
        return;
    while (bytes_ > opts_.maxBytes && lru_.size() > 1) {
        const auto it = map_.find(lru_.back());
        bytes_ -= it->second.bytes;
        ++evictions_;
        // Every eviction invalidates outstanding problem_refs to this
        // hash; bump the generation and leave a bounded tombstone so
        // those refs fail as "expired", not as never-seen.
        ++generation_;
        if (tombstones_.insert(lru_.back()).second) {
            tombstoneOrder_.push_back(lru_.back());
            if (tombstoneOrder_.size() > kMaxTombstones) {
                tombstones_.erase(tombstoneOrder_.front());
                tombstoneOrder_.pop_front();
            }
        }
        map_.erase(it);
        lru_.pop_back();
    }
}

std::shared_ptr<const model::Problem>
ProblemRegistry::put(const std::string &hashHex,
                     const std::function<model::Problem()> &make,
                     bool *reused, bool *refreshed)
{
    if (reused)
        *reused = false;
    if (refreshed)
        *refreshed = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = map_.find(hashHex);
        if (it != map_.end()) {
            touchLocked(it->second);
            ++reused_;
            if (reused)
                *reused = true;
            return it->second.problem;
        }
    }
    // Lower outside the lock (a big spec costs real work); losing the
    // insertion race below just means adopting the winner's instance.
    const auto lowerStart = std::chrono::steady_clock::now();
    auto problem = std::make_shared<const model::Problem>(make());
    if (opts_.lowerHistogram)
        opts_.lowerHistogram->record(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - lowerStart)
                .count());
    const std::size_t bytes = problemMemoryBytes(*problem);

    std::lock_guard<std::mutex> lock(mu_);
    const auto it = map_.find(hashHex);
    if (it != map_.end()) {
        touchLocked(it->second);
        ++reused_;
        if (reused)
            *reused = true;
        return it->second.problem;
    }
    // A tombstoned hash coming back means previously issued
    // problem_refs to it are valid again: surface the revival.
    if (tombstones_.erase(hashHex)) {
        tombstoneOrder_.remove(hashHex);
        ++refreshes_;
        if (refreshed)
            *refreshed = true;
    }
    lru_.push_front(hashHex);
    Entry entry;
    entry.problem = std::move(problem);
    entry.bytes = bytes;
    entry.lruPos = lru_.begin();
    bytes_ += bytes;
    ++inserted_;
    auto stored = entry.problem;
    map_.emplace(hashHex, std::move(entry));
    evictLocked();
    return stored;
}

std::shared_ptr<const model::Problem>
ProblemRegistry::get(const std::string &hashHex, RefOutcome *outcome)
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = map_.find(hashHex);
    if (it == map_.end()) {
        ++refMisses_;
        const bool expired = tombstones_.count(hashHex) != 0;
        if (expired)
            ++refExpired_;
        if (outcome)
            *outcome = expired ? RefOutcome::Expired : RefOutcome::Unknown;
        return nullptr;
    }
    touchLocked(it->second);
    ++refHits_;
    if (outcome)
        *outcome = RefOutcome::Hit;
    return it->second.problem;
}

std::uint64_t
ProblemRegistry::generation() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return generation_;
}

ProblemRegistry::Stats
ProblemRegistry::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    Stats s;
    s.inserted = inserted_;
    s.reused = reused_;
    s.refHits = refHits_;
    s.refMisses = refMisses_;
    s.refExpired = refExpired_;
    s.evictions = evictions_;
    s.generation = generation_;
    s.refreshes = refreshes_;
    s.entries = map_.size();
    s.bytes = bytes_;
    s.maxBytes = opts_.maxBytes;
    return s;
}

void
ProblemRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    lru_.clear();
    tombstones_.clear();
    tombstoneOrder_.clear();
    inserted_ = 0;
    reused_ = 0;
    refHits_ = 0;
    refMisses_ = 0;
    refExpired_ = 0;
    evictions_ = 0;
    generation_ = 0;
    refreshes_ = 0;
    bytes_ = 0;
}

} // namespace chocoq::spec
