#include "spec/registry.hpp"

#include <chrono>

#include "obs/metrics.hpp"

namespace chocoq::spec
{

std::size_t
problemMemoryBytes(const model::Problem &p)
{
    std::size_t bytes = sizeof(model::Problem) + p.name().size();
    for (const auto &row : p.constraints())
        bytes += sizeof(model::LinearConstraint)
                 + row.coeffs.capacity() * sizeof(int);
    for (const auto &[mono, coeff] : p.objective().terms()) {
        (void)coeff;
        // Node overhead of the term map plus the monomial's storage.
        bytes += 3 * sizeof(void *) + sizeof(double)
                 + sizeof(model::Polynomial::Monomial)
                 + mono.capacity() * sizeof(int);
    }
    return bytes;
}

void
ProblemRegistry::noteEvictedLocked(const std::string &hashHex)
{
    // Every eviction invalidates outstanding problem_refs to this
    // hash; bump the generation and leave a bounded tombstone so
    // those refs fail as "expired", not as never-seen.
    ++generation_;
    if (tombstones_.insert(hashHex).second) {
        tombstoneOrder_.push_back(hashHex);
        if (tombstoneOrder_.size() > kMaxTombstones) {
            tombstones_.erase(tombstoneOrder_.front());
            tombstoneOrder_.pop_front();
        }
    }
}

std::shared_ptr<const model::Problem>
ProblemRegistry::put(const std::string &hashHex,
                     const std::function<model::Problem()> &make,
                     bool *reused, bool *refreshed)
{
    if (reused)
        *reused = false;
    if (refreshed)
        *refreshed = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (const auto *existing = map_.find(hashHex)) {
            ++reused_;
            if (reused)
                *reused = true;
            return *existing;
        }
    }
    // Lower outside the lock (a big spec costs real work); losing the
    // insertion race below just means adopting the winner's instance.
    const auto lowerStart = std::chrono::steady_clock::now();
    auto problem = std::make_shared<const model::Problem>(make());
    if (opts_.lowerHistogram)
        opts_.lowerHistogram->record(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - lowerStart)
                .count());
    const std::size_t bytes = problemMemoryBytes(*problem);

    std::lock_guard<std::mutex> lock(mu_);
    if (const auto *existing = map_.find(hashHex)) {
        ++reused_;
        if (reused)
            *reused = true;
        return *existing;
    }
    // A tombstoned hash coming back means previously issued
    // problem_refs to it are valid again: surface the revival.
    if (tombstones_.erase(hashHex)) {
        tombstoneOrder_.remove(hashHex);
        ++refreshes_;
        if (refreshed)
            *refreshed = true;
    }
    auto stored = problem;
    map_.insert(hashHex, std::move(problem), bytes);
    ++inserted_;
    map_.evictOverBudget(
        [](const std::string &, const std::shared_ptr<const model::Problem> &) {
            return true;
        },
        [this](const std::string &key,
               const std::shared_ptr<const model::Problem> &) {
            noteEvictedLocked(key);
        });
    return stored;
}

std::shared_ptr<const model::Problem>
ProblemRegistry::get(const std::string &hashHex, RefOutcome *outcome)
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto *entry = map_.find(hashHex);
    if (!entry) {
        ++refMisses_;
        const bool expired = tombstones_.count(hashHex) != 0;
        if (expired)
            ++refExpired_;
        if (outcome)
            *outcome = expired ? RefOutcome::Expired : RefOutcome::Unknown;
        return nullptr;
    }
    ++refHits_;
    if (outcome)
        *outcome = RefOutcome::Hit;
    return *entry;
}

std::uint64_t
ProblemRegistry::generation() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return generation_;
}

ProblemRegistry::Stats
ProblemRegistry::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    Stats s;
    s.inserted = inserted_;
    s.reused = reused_;
    s.refHits = refHits_;
    s.refMisses = refMisses_;
    s.refExpired = refExpired_;
    s.evictions = map_.evictions();
    s.generation = generation_;
    s.refreshes = refreshes_;
    s.entries = map_.size();
    s.bytes = map_.bytes();
    s.maxBytes = opts_.maxBytes;
    return s;
}

void
ProblemRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    tombstones_.clear();
    tombstoneOrder_.clear();
    inserted_ = 0;
    reused_ = 0;
    refHits_ = 0;
    refMisses_ = 0;
    refExpired_ = 0;
    generation_ = 0;
    refreshes_ = 0;
}

} // namespace chocoq::spec
