/**
 * @file
 * Wire-level problem definitions: parse, validate, and canonicalize an
 * inline JSON problem object into the model::Problem the solvers run.
 *
 * A request may carry its own constrained-binary-program instead of
 * naming a pre-registered benchmark case:
 *
 *     "problem": {
 *       "vars": 4,
 *       "sense": "min",
 *       "objective": [3, 1, 4, 1],                  // or term objects
 *       "constraints": {"A": [[1,1,0,0],[0,0,1,1]], "b": [1, 1]}
 *     }
 *
 * Parsing is strict and every rejection names the offending field
 * (`problem.constraints.A[2]` has 3 entries, expected 4`). Validation
 * enforces server-configurable resource guards (qubits, constraint
 * rows, coefficient magnitude, serialized spec bytes) so hostile specs
 * fail per-request exactly like malformed JSON does.
 *
 * Canonicalization gives every spec a content identity that survives
 * cosmetic re-encodings: a row and its negation name the same equality
 * (sign normalization), exact duplicate rows are dropped, rows that
 * contradict a duplicate or can never be satisfied by binary variables
 * are rejected as infeasible, and the content hash is computed over the
 * sign-normalized rows in *sorted* order so row order does not matter.
 * The lowered model keeps the rows exactly as submitted (normalization
 * and sorting exist only inside the hash): a spec transcribed from an
 * existing problem lowers back to a bit-for-bit identical instance,
 * and equivalent re-encodings converge through the ProblemRegistry,
 * which resolves every submission of one hash to the first-registered
 * instance. Two users submitting the same model — even with permuted
 * or sign-flipped constraint rows — therefore share one registry entry
 * and one compiled artifact set.
 */

#ifndef CHOCOQ_SPEC_SPEC_HPP
#define CHOCOQ_SPEC_SPEC_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "model/problem.hpp"
#include "service/json.hpp"

namespace chocoq::spec
{

/**
 * Server-enforced resource guards for inline problem specs. Every cap
 * rejects the request with a per-field error before any solver work
 * happens; the chocoq_serve flags (--max-qubits, --max-spec-bytes) feed
 * these values into both front-ends.
 */
struct SpecLimits
{
    /**
     * Most binary variables (qubits before elimination) an inline
     * problem may declare. The default matches the largest registry
     * scale (F4 = 28 vars); the hard ceiling is 62 (Basis is 64-bit and
     * slack/scratch headroom keeps two bits free).
     */
    int maxQubits = 28;
    /** Most constraint rows after deduplication. */
    int maxConstraints = 256;
    /** Largest |coefficient| accepted in A, b, and objective terms. */
    double maxCoeff = 1e9;
    /**
     * Largest accepted serialized size of the "problem" object (its
     * compact JSON dump). Caps canonicalization and registry cost per
     * request below the line-size bound.
     */
    std::size_t maxSpecBytes = std::size_t{256} << 10;
    /** Most objective terms (dense entries or term objects). */
    std::size_t maxObjectiveTerms = 4096;
};

/** A parsed, validated, canonicalized inline problem. */
struct ProblemSpec
{
    int vars = 0;
    model::Sense sense = model::Sense::Minimize;
    /**
     * Constraint rows as submitted, deduplicated by sign-normalized
     * identity (first occurrence kept, in submission order). Sign
     * normalization and row sorting apply only inside the content
     * hash, so lowering reproduces a transcribed problem exactly.
     */
    std::vector<model::LinearConstraint> rows;
    /** Objective in the problem's own sense. */
    model::Polynomial objective;
    /** Order-invariant canonical content hash (FNV-1a). */
    std::uint64_t hash = 0;
    /** The hash as 16 lowercase hex chars — the wire "problem_ref". */
    std::string hashHex;
    /** The problem object as submitted (for request re-serialization). */
    service::Json wire;

    /**
     * Lower to the solver-facing model. The problem is named
     * "inline:<hashHex>" so results identify the spec they ran.
     */
    model::Problem lower() const;
};

/**
 * Parse and canonicalize one inline problem object. Throws FatalError
 * with a field-path message ("problem.objective[3].coeff ...") on any
 * malformed, out-of-cap, degenerate, or provably infeasible spec.
 */
ProblemSpec parseProblemSpec(const service::Json &v,
                             const SpecLimits &limits = {});

/**
 * The inverse of parseProblemSpec for existing problems: emit the spec
 * JSON whose parse lowers back to a problem with identical constraints
 * and objective. Used by tests, the CI inline-vs-registry cross-check,
 * and `chocoq_serve --dump-spec`. Multilinear objectives emit term
 * objects; purely linear ones emit the dense coefficient array.
 */
service::Json problemToSpecJson(const model::Problem &p);

/**
 * True when @p p is the same canonical model as @p s (same variable
 * count, sense, objective, and sign-normalized row set in any order).
 * The registry's collision guard: the 64-bit content hash indexes, this
 * verifies, so a hash collision fails the request instead of silently
 * solving someone else's problem.
 */
bool canonicallyEqual(const ProblemSpec &s, const model::Problem &p);

/** True when @p s is a well-formed problem_ref (16 lowercase hex). */
bool validProblemRef(const std::string &s);

} // namespace chocoq::spec

#endif // CHOCOQ_SPEC_SPEC_HPP
