#include "spec/spec.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/error.hpp"

namespace chocoq::spec
{

namespace
{

/** Most variables any spec may declare regardless of configured caps:
 * Basis indices are 64-bit and slack/scratch headroom keeps two bits
 * free. */
constexpr int kHardMaxVars = 62;

const char *
typeName(const service::Json &v)
{
    switch (v.kind()) {
      case service::Json::Kind::Null: return "null";
      case service::Json::Kind::Bool: return "a boolean";
      case service::Json::Kind::Number: return "a number";
      case service::Json::Kind::String: return "a string";
      case service::Json::Kind::Array: return "an array";
      case service::Json::Kind::Object: return "an object";
    }
    return "unknown";
}

/**
 * Integer field with a field-path error message: inline specs are
 * untrusted input, and a fractional or out-of-range value must fail the
 * request with the offending path, never reach a float-to-int cast.
 */
long long
requireInt(const service::Json &v, const std::string &path, double lo,
           double hi)
{
    if (v.kind() != service::Json::Kind::Number)
        CHOCOQ_FATAL(path << " must be a number, got " << typeName(v));
    const double raw = v.asNumber(0.0);
    if (!std::isfinite(raw) || raw != std::floor(raw))
        CHOCOQ_FATAL(path << " must be an integer, got " << raw);
    if (!(raw >= lo && raw <= hi))
        CHOCOQ_FATAL(path << " = " << raw << " is outside [" << lo << ", "
                     << hi << "]");
    return static_cast<long long>(raw);
}

double
requireFinite(const service::Json &v, const std::string &path,
              double max_abs)
{
    if (v.kind() != service::Json::Kind::Number)
        CHOCOQ_FATAL(path << " must be a number, got " << typeName(v));
    const double raw = v.asNumber(0.0);
    // NaN/Inf cannot appear in conforming JSON, but the parser accepts
    // "1e999" (strtod overflows to inf) — reject both spellings here.
    if (!std::isfinite(raw))
        CHOCOQ_FATAL(path << " must be finite");
    if (std::fabs(raw) > max_abs)
        CHOCOQ_FATAL(path << " magnitude " << std::fabs(raw)
                     << " exceeds the coefficient cap " << max_abs);
    return raw;
}

/**
 * Sign-normalize one row in place: flip the whole equality when the
 * first nonzero coefficient is negative (sum -a_i x_i = -c and
 * sum a_i x_i = c are the same constraint, so canonical identity must
 * not distinguish them).
 */
void
normalizeRowSign(model::LinearConstraint &row)
{
    for (const int c : row.coeffs) {
        if (c == 0)
            continue;
        if (c < 0) {
            for (int &v : row.coeffs)
                v = -v;
            row.rhs = -row.rhs;
        }
        return;
    }
}

struct Fnv
{
    std::uint64_t h = 1469598103934665603ull;

    void
    mix(std::uint64_t v)
    {
        for (int b = 0; b < 8; ++b) {
            h ^= (v >> (8 * b)) & 0xFF;
            h *= 1099511628211ull;
        }
    }

    void
    mixDouble(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        mix(bits);
    }
};

/** The canonical row order: sign-normalized, sorted by (coeffs, rhs). */
std::vector<model::LinearConstraint>
canonicalRows(std::vector<model::LinearConstraint> rows)
{
    for (auto &row : rows)
        normalizeRowSign(row);
    std::sort(rows.begin(), rows.end(),
              [](const model::LinearConstraint &a,
                 const model::LinearConstraint &b) {
                  if (a.coeffs != b.coeffs)
                      return a.coeffs < b.coeffs;
                  return a.rhs < b.rhs;
              });
    return rows;
}

/** Order-invariant canonical hash: vars, sense, objective terms (the
 * Polynomial's term map is already sorted), and the sign-normalized
 * rows in sorted order — so submissions differing only in row
 * permutation or row sign share one identity. */
std::uint64_t
canonicalHash(int vars, model::Sense sense,
              const model::Polynomial &objective,
              std::vector<model::LinearConstraint> unsorted_rows)
{
    const auto rows = canonicalRows(std::move(unsorted_rows));
    Fnv fnv;
    fnv.mix(static_cast<std::uint64_t>(vars));
    fnv.mix(sense == model::Sense::Minimize ? 0 : 1);
    fnv.mix(objective.size());
    for (const auto &[mono, coeff] : objective.terms()) {
        fnv.mix(mono.size());
        for (const int v : mono)
            fnv.mix(static_cast<std::uint64_t>(v));
        fnv.mixDouble(coeff);
    }
    fnv.mix(rows.size());
    for (const auto &row : rows) {
        for (const int c : row.coeffs)
            fnv.mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(c)));
        fnv.mix(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(row.rhs)));
    }
    return fnv.h;
}

model::Polynomial
parseObjective(const service::Json &v, int vars, const SpecLimits &limits)
{
    model::Polynomial f;
    if (v.kind() != service::Json::Kind::Array)
        CHOCOQ_FATAL("problem.objective must be an array, got "
                     << typeName(v));
    const auto &items = v.items();
    if (items.size() > limits.maxObjectiveTerms)
        CHOCOQ_FATAL("problem.objective has " << items.size()
                     << " entries, more than the cap of "
                     << limits.maxObjectiveTerms);
    if (items.empty())
        return f;

    // Two forms, not mixed: a dense linear coefficient array (entry i is
    // the coefficient of x_i), or sparse multilinear term objects
    // {"vars": [indices], "coeff": c} (empty "vars" is the constant).
    const bool dense = items[0].kind() == service::Json::Kind::Number;
    if (!dense && !items[0].isObject())
        CHOCOQ_FATAL("problem.objective[0] must be a number (dense form) "
                     "or a term object {\"vars\":[...],\"coeff\":c}, got "
                     << typeName(items[0]));
    for (std::size_t i = 0; i < items.size(); ++i) {
        const std::string path =
            "problem.objective[" + std::to_string(i) + "]";
        if (dense) {
            if (static_cast<int>(items.size()) > vars)
                CHOCOQ_FATAL("problem.objective has " << items.size()
                             << " coefficients for " << vars
                             << " variables");
            if (items[i].kind() != service::Json::Kind::Number)
                CHOCOQ_FATAL(path << " must be a number like the first "
                             "entry (dense numbers and term objects "
                             "cannot be mixed), got " << typeName(items[i]));
            const double c = requireFinite(items[i], path, limits.maxCoeff);
            if (c != 0.0)
                f.addTerm({static_cast<int>(i)}, c);
            continue;
        }
        if (!items[i].isObject())
            CHOCOQ_FATAL(path << " must be " << typeName(items[0])
                         << " like the first entry (dense numbers and "
                            "term objects cannot be mixed), got "
                         << typeName(items[i]));
        const service::Json *term_vars = items[i].find("vars");
        const service::Json *coeff = items[i].find("coeff");
        if (!term_vars || !coeff)
            CHOCOQ_FATAL(path << " needs both \"vars\" and \"coeff\"");
        if (term_vars->kind() != service::Json::Kind::Array)
            CHOCOQ_FATAL(path << ".vars must be an array, got "
                         << typeName(*term_vars));
        model::Polynomial::Monomial mono;
        for (std::size_t k = 0; k < term_vars->items().size(); ++k) {
            const int var = static_cast<int>(
                requireInt(term_vars->items()[k],
                           path + ".vars[" + std::to_string(k) + "]", 0,
                           vars - 1));
            if (std::find(mono.begin(), mono.end(), var) != mono.end())
                CHOCOQ_FATAL(path << ".vars repeats x" << var
                             << " (binary variables are idempotent; list "
                                "each variable once)");
            mono.push_back(var);
        }
        const double c =
            requireFinite(*coeff, path + ".coeff", limits.maxCoeff);
        if (c != 0.0)
            f.addTerm(std::move(mono), c);
    }
    return f;
}

std::vector<model::LinearConstraint>
parseConstraints(const service::Json &v, int vars, const SpecLimits &limits)
{
    if (!v.isObject())
        CHOCOQ_FATAL("problem.constraints must be an object with \"A\" "
                     "and \"b\", got " << typeName(v));
    const service::Json *a = v.find("A");
    const service::Json *b = v.find("b");
    if (!a || a->kind() != service::Json::Kind::Array)
        CHOCOQ_FATAL("problem.constraints.A must be an array of rows");
    if (!b || b->kind() != service::Json::Kind::Array)
        CHOCOQ_FATAL("problem.constraints.b must be an array");
    if (a->items().size() != b->items().size())
        CHOCOQ_FATAL("problem.constraints: A has " << a->items().size()
                     << " rows but b has " << b->items().size()
                     << " entries");
    if (a->items().empty())
        CHOCOQ_FATAL("problem.constraints.A must contain at least one row "
                     "(the solvers target constrained problems)");
    // Row cap up front, before the quadratic dedup loop: a hostile spec
    // must not buy O(rows^2) work with rows it was never allowed to
    // submit.
    if (a->items().size() > static_cast<std::size_t>(limits.maxConstraints))
        CHOCOQ_FATAL("problem.constraints has " << a->items().size()
                     << " rows, more than the cap of "
                     << limits.maxConstraints);

    std::vector<model::LinearConstraint> rows;
    std::vector<model::LinearConstraint> normalized;
    /** Submitted row index of each kept row, for error messages that
     * point at the line the user actually wrote. */
    std::vector<std::size_t> submittedIndex;
    for (std::size_t i = 0; i < a->items().size(); ++i) {
        const std::string path =
            "problem.constraints.A[" + std::to_string(i) + "]";
        const service::Json &raw = a->items()[i];
        if (raw.kind() != service::Json::Kind::Array)
            CHOCOQ_FATAL(path << " must be an array, got "
                         << typeName(raw));
        if (static_cast<int>(raw.items().size()) != vars)
            CHOCOQ_FATAL(path << " has " << raw.items().size()
                         << " entries, expected " << vars
                         << " (problem.vars)");
        model::LinearConstraint row;
        row.coeffs.reserve(raw.items().size());
        long long lo = 0, hi = 0;
        for (std::size_t k = 0; k < raw.items().size(); ++k) {
            const int c = static_cast<int>(
                requireInt(raw.items()[k],
                           path + "[" + std::to_string(k) + "]",
                           -limits.maxCoeff, limits.maxCoeff));
            row.coeffs.push_back(c);
            (c < 0 ? lo : hi) += c;
        }
        row.rhs = static_cast<int>(
            requireInt(b->items()[i],
                       "problem.constraints.b[" + std::to_string(i) + "]",
                       -limits.maxCoeff, limits.maxCoeff));

        const std::string brief = "row " + std::to_string(i) + " (A["
                                  + std::to_string(i) + "] x = b["
                                  + std::to_string(i) + "])";
        if (lo == 0 && hi == 0) {
            if (row.rhs != 0)
                CHOCOQ_FATAL("problem.constraints: " << brief
                             << " has all-zero coefficients but rhs "
                             << row.rhs << " — infeasible");
            CHOCOQ_FATAL("problem.constraints: " << brief
                         << " has all-zero coefficients — degenerate "
                            "(drop the row instead)");
        }
        // Binary variables bound the left-hand side to [sum of negative
        // coefficients, sum of positive coefficients]; an rhs outside
        // that range can never be satisfied.
        if (row.rhs < lo || row.rhs > hi)
            CHOCOQ_FATAL("problem.constraints: " << brief
                         << " can never be satisfied by binary "
                            "variables (lhs range [" << lo << ", " << hi
                         << "], rhs " << row.rhs << ") — infeasible");

        // Dedup by sign-normalized identity (a row and its negation are
        // the same equality): an exact duplicate is dropped, the same
        // coefficients with a different rhs contradict each other —
        // reject, don't solve. The *kept* row stays in its submitted
        // form: lowering must reproduce a transcribed problem exactly
        // (normalization and sorting belong to the content hash only).
        model::LinearConstraint norm = row;
        normalizeRowSign(norm);
        bool duplicate = false;
        for (std::size_t k = 0; k < normalized.size(); ++k) {
            if (normalized[k].coeffs != norm.coeffs)
                continue;
            if (normalized[k].rhs != norm.rhs)
                CHOCOQ_FATAL("problem.constraints: " << brief
                             << " contradicts row " << submittedIndex[k]
                             << " (the same constraint with rhs "
                             << norm.rhs << " vs " << normalized[k].rhs
                             << ") — infeasible");
            duplicate = true;
            break;
        }
        if (!duplicate) {
            rows.push_back(std::move(row));
            normalized.push_back(std::move(norm));
            submittedIndex.push_back(i);
        }
    }
    return rows;
}

} // namespace

ProblemSpec
parseProblemSpec(const service::Json &v, const SpecLimits &limits)
{
    if (!v.isObject())
        CHOCOQ_FATAL("field 'problem' must be an object, got "
                     << typeName(v));

    // Spec-bytes guard first: the cheapest check bounds everything the
    // later ones cost (canonicalization, hashing, registry insertion).
    ProblemSpec spec;
    spec.wire = v;
    const std::size_t bytes = spec.wire.dump().size();
    if (bytes > limits.maxSpecBytes)
        CHOCOQ_FATAL("problem spec is " << bytes
                     << " bytes serialized, more than the cap of "
                     << limits.maxSpecBytes
                     << " (split the model or raise --max-spec-bytes)");

    const service::Json *vars = v.find("vars");
    if (!vars)
        CHOCOQ_FATAL("problem.vars is required");
    const int hard_cap = std::min(limits.maxQubits, kHardMaxVars);
    spec.vars = static_cast<int>(requireInt(*vars, "problem.vars", 1,
                                            hard_cap));

    const service::Json *sense = v.find("sense");
    if (sense) {
        const std::string s = sense->asString("");
        if (s == "min")
            spec.sense = model::Sense::Minimize;
        else if (s == "max")
            spec.sense = model::Sense::Maximize;
        else
            CHOCOQ_FATAL("problem.sense must be \"min\" or \"max\", got "
                         << (sense->kind() == service::Json::Kind::String
                                 ? "\"" + s + "\""
                                 : typeName(*sense)));
    }

    for (const auto &[key, value] : v.members()) {
        (void)value;
        if (key != "vars" && key != "sense" && key != "objective"
            && key != "constraints")
            CHOCOQ_FATAL("problem." << key << " is not a recognized field "
                         "(expected vars, sense, objective, constraints)");
    }

    const service::Json *objective = v.find("objective");
    if (objective)
        spec.objective = parseObjective(*objective, spec.vars, limits);

    const service::Json *constraints = v.find("constraints");
    if (!constraints)
        CHOCOQ_FATAL("problem.constraints is required (the solvers "
                     "target constrained problems)");
    spec.rows = parseConstraints(*constraints, spec.vars, limits);

    spec.hash = canonicalHash(spec.vars, spec.sense, spec.objective,
                              spec.rows);
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016" PRIx64, spec.hash);
    spec.hashHex = buf;
    return spec;
}

model::Problem
ProblemSpec::lower() const
{
    model::Problem p(vars, sense, "inline:" + hashHex);
    p.setObjective(objective);
    for (const auto &row : rows)
        p.addEquality(row.coeffs, row.rhs);
    return p;
}

service::Json
problemToSpecJson(const model::Problem &p)
{
    service::Json out = service::Json::object();
    out.set("vars", p.numVars());
    out.set("sense", p.sense() == model::Sense::Minimize ? "min" : "max");

    // Dense form when the objective is purely linear (the common case
    // for transcribed instances), term objects otherwise.
    const bool linear = p.objective().degree() <= 1;
    service::Json objective = service::Json::array();
    if (linear && p.objective().terms().count({}) == 0) {
        std::vector<double> coeffs(
            static_cast<std::size_t>(p.numVars()), 0.0);
        for (const auto &[mono, coeff] : p.objective().terms())
            coeffs[static_cast<std::size_t>(mono[0])] = coeff;
        for (const double c : coeffs)
            objective.push(c);
    } else {
        for (const auto &[mono, coeff] : p.objective().terms()) {
            service::Json term = service::Json::object();
            service::Json term_vars = service::Json::array();
            for (const int v : mono)
                term_vars.push(v);
            term.set("vars", std::move(term_vars));
            term.set("coeff", coeff);
            objective.push(std::move(term));
        }
    }
    out.set("objective", std::move(objective));

    service::Json a = service::Json::array();
    service::Json b = service::Json::array();
    for (const auto &row : p.constraints()) {
        service::Json coeffs = service::Json::array();
        for (const int c : row.coeffs)
            coeffs.push(c);
        a.push(std::move(coeffs));
        b.push(row.rhs);
    }
    service::Json constraints = service::Json::object();
    constraints.set("A", std::move(a));
    constraints.set("b", std::move(b));
    out.set("constraints", std::move(constraints));
    return out;
}

bool
canonicallyEqual(const ProblemSpec &s, const model::Problem &p)
{
    return p.numVars() == s.vars && p.sense() == s.sense
           && p.objective().terms() == s.objective.terms()
           && canonicalRows(p.constraints()) == canonicalRows(s.rows);
}

bool
validProblemRef(const std::string &s)
{
    if (s.size() != 16)
        return false;
    for (const char c : s)
        if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
            return false;
    return true;
}

} // namespace chocoq::spec
