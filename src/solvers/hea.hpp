/**
 * @file
 * Hardware-efficient ansatz (HEA) baseline [28].
 *
 * Kandala-style circuit: an initial RY+RZ rotation layer, then L blocks of
 * a CX-chain entangler followed by another RY+RZ layer. Per the paper's
 * setup, the objective is penalty-modified so outputs satisfy constraints
 * "as much as possible"; the circuit structure itself is problem-agnostic,
 * which is why it rarely converges to the constrained optimum (Table II).
 */

#ifndef CHOCOQ_SOLVERS_HEA_HPP
#define CHOCOQ_SOLVERS_HEA_HPP

#include "core/solver.hpp"

namespace chocoq::solvers
{

/** HEA configuration. */
struct HeaOptions
{
    /** Entangler blocks L; parameters = 2 n (L + 1). */
    int layers = 2;
    /** Penalty weight lambda. */
    double lambda = 10.0;
    /** Seed for the random initial angles. */
    std::uint64_t seed = 11;
    core::EngineOptions engine;
};

/** Hardware-efficient variational baseline (non-QAOA). */
class HeaSolver : public core::Solver
{
  public:
    explicit HeaSolver(HeaOptions opts = {});

    std::string name() const override { return "hea"; }

    core::SolverOutcome solve(const model::Problem &p) const override;

  private:
    HeaOptions opts_;
};

} // namespace chocoq::solvers

#endif // CHOCOQ_SOLVERS_HEA_HPP
