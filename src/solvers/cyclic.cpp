#include "solvers/cyclic.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/circuits.hpp"
#include "model/exact.hpp"

namespace chocoq::solvers
{

CyclicQaoaSolver::CyclicQaoaSolver(CyclicOptions opts)
    : opts_(std::move(opts))
{
    CHOCOQ_ASSERT(opts_.layers >= 1, "cyclic QAOA needs >= 1 layer");
}

std::vector<std::pair<int, int>>
CyclicQaoaSolver::mixerPairs(const model::Problem &p)
{
    std::vector<std::pair<int, int>> pairs;
    for (const auto &con : p.constraints()) {
        if (!con.isSummationFormat())
            continue; // the cyclic Hamiltonian cannot encode this row
        std::vector<int> vars;
        for (std::size_t i = 0; i < con.coeffs.size(); ++i)
            if (con.coeffs[i] != 0)
                vars.push_back(static_cast<int>(i));
        for (std::size_t i = 0; i + 1 < vars.size(); ++i)
            pairs.emplace_back(vars[i], vars[i + 1]);
    }
    return pairs;
}

core::SolverOutcome
CyclicQaoaSolver::solve(const model::Problem &p) const
{
    Timer compile_timer;
    const int n = p.numVars();
    const auto init = model::findFeasible(p);
    if (!init)
        CHOCOQ_FATAL("problem " << p.name()
                     << " has no feasible assignment");
    const Basis x0 = *init;
    auto pairs = std::make_shared<std::vector<std::pair<int, int>>>(
        mixerPairs(p));
    auto f = std::make_shared<model::Polynomial>(p.minimizedObjective());
    // The cyclic design is a hard-constraint method: its optimizer chases
    // the raw objective and trusts the XY mixer to conserve constraints.
    // On rows it cannot encode, that trust is misplaced — the optimizer
    // happily walks into the infeasible region, which is exactly the
    // leakage Table II reports for this baseline on FLP/GCP.
    auto phase_table =
        std::make_shared<std::vector<double>>(std::size_t{1} << n);
    for (std::size_t i = 0; i < phase_table->size(); ++i)
        (*phase_table)[i] = f->evaluate(i);

    core::SubRun run;
    run.numQubits = n;
    run.init = x0;
    run.costTable = phase_table;
    run.build = [n, x0, f, pairs](const std::vector<double> &theta) {
        circuit::Circuit c(n);
        core::appendBasisPreparation(c, x0);
        const std::size_t layers = theta.size() / 2;
        for (std::size_t l = 0; l < layers; ++l) {
            core::appendObjectivePhase(c, *f, theta[2 * l]);
            for (const auto &[a, b] : *pairs)
                c.xy(a, b, theta[2 * l + 1]);
        }
        return c;
    };
    run.evolve = [x0, phase_table, pairs](sim::StateVector &state,
                                          const std::vector<double> &theta) {
        state.reset(x0);
        const std::size_t layers = theta.size() / 2;
        for (std::size_t l = 0; l < layers; ++l) {
            state.applyPhaseTable(*phase_table, theta[2 * l]);
            for (const auto &[a, b] : *pairs)
                state.applyXY(a, b, theta[2 * l + 1]);
        }
    };
    run.lift = [](Basis x) { return x; };
    const double plan_seconds = compile_timer.seconds();

    core::EngineOptions engine = opts_.engine;
    if (engine.theta0.empty()) {
        std::vector<double> wide;
        for (int l = 0; l < opts_.layers; ++l) {
            engine.theta0.push_back(0.2);
            engine.theta0.push_back(0.5);
            wide.push_back(0.7);
            wide.push_back(1.6);
        }
        engine.extraStarts = {std::move(wide)};
    }

    const core::EngineResult res = core::runQaoa(
        {run}, [&](Basis x) { return p.minimizedObjectiveOf(x); },
        engine);

    core::SolverOutcome out;
    out.distribution = res.distribution;
    out.iterations = res.opt.iterations;
    out.evaluations = res.opt.evaluations;
    out.bestCost = res.opt.bestValue;
    out.trace = res.opt.trace;
    out.logicalDepth = res.logicalDepth;
    out.basisDepth = res.basisDepth;
    out.basisGateCount = res.basisGateCount;
    out.basisTwoQubitCount = res.basisTwoQubitCount;
    out.qubitsUsed = res.qubitsUsed;
    out.circuitsPerIteration = 1;
    out.compileSeconds = plan_seconds + res.compileSeconds;
    out.simSeconds = res.simSeconds;
    out.classicalSeconds = res.classicalSeconds;
    return out;
}

} // namespace chocoq::solvers
