#include "solvers/hea.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"

namespace chocoq::solvers
{

HeaSolver::HeaSolver(HeaOptions opts) : opts_(std::move(opts))
{
    CHOCOQ_ASSERT(opts_.layers >= 1, "HEA needs >= 1 entangler block");
}

core::SolverOutcome
HeaSolver::solve(const model::Problem &p) const
{
    Timer compile_timer;
    const int n = p.numVars();
    const int layers = opts_.layers;
    const model::Polynomial penalty = p.penaltyPolynomial(opts_.lambda);
    auto cost_table =
        std::make_shared<std::vector<double>>(std::size_t{1} << n);
    for (std::size_t i = 0; i < cost_table->size(); ++i)
        (*cost_table)[i] = penalty.evaluate(i);

    // Parameter layout: block b in [0, layers], qubit q:
    // theta[2*(b*n + q)] = RY angle, theta[2*(b*n + q) + 1] = RZ angle.
    core::SubRun run;
    run.numQubits = n;
    run.init = 0;
    run.costTable = cost_table;
    run.build = [n, layers](const std::vector<double> &theta) {
        circuit::Circuit c(n);
        auto rot_layer = [&](int block) {
            for (int q = 0; q < n; ++q) {
                c.ry(q, theta[2 * (block * n + q)]);
                c.rz(q, theta[2 * (block * n + q) + 1]);
            }
        };
        rot_layer(0);
        for (int b = 1; b <= layers; ++b) {
            for (int q = 0; q + 1 < n; ++q)
                c.cx(q, q + 1);
            rot_layer(b);
        }
        return c;
    };
    run.evolve = [n, layers](sim::StateVector &state,
                             const std::vector<double> &theta) {
        state.reset(0);
        auto rot_layer = [&](int block) {
            for (int q = 0; q < n; ++q) {
                const double ry = theta[2 * (block * n + q)];
                const double rz = theta[2 * (block * n + q) + 1];
                const double cy = std::cos(ry / 2), sy = std::sin(ry / 2);
                state.apply1q(q, cy, -sy, sy, cy);
                const sim::Cplx em{std::cos(rz / 2), -std::sin(rz / 2)};
                const sim::Cplx ep{std::cos(rz / 2), std::sin(rz / 2)};
                state.apply1q(q, em, 0, 0, ep);
            }
        };
        rot_layer(0);
        for (int b = 1; b <= layers; ++b) {
            for (int q = 0; q + 1 < n; ++q)
                state.applyControlled1q(Basis{1} << q, q + 1, 0, 1, 1, 0);
            rot_layer(b);
        }
    };
    run.lift = [](Basis x) { return x; };
    const double plan_seconds = compile_timer.seconds();

    core::EngineOptions engine = opts_.engine;
    if (engine.theta0.empty()) {
        Rng rng(opts_.seed);
        const int count = 2 * n * (layers + 1);
        for (int i = 0; i < count; ++i)
            engine.theta0.push_back(rng.uniform(-0.3, 0.3));
    }

    const core::EngineResult res = core::runQaoa(
        {run},
        [&](Basis x) {
            return p.minimizedObjectiveOf(x)
                   + opts_.lambda * p.violation(x);
        },
        engine);

    core::SolverOutcome out;
    out.distribution = res.distribution;
    out.iterations = res.opt.iterations;
    out.evaluations = res.opt.evaluations;
    out.bestCost = res.opt.bestValue;
    out.trace = res.opt.trace;
    out.logicalDepth = res.logicalDepth;
    out.basisDepth = res.basisDepth;
    out.basisGateCount = res.basisGateCount;
    out.basisTwoQubitCount = res.basisTwoQubitCount;
    out.qubitsUsed = res.qubitsUsed;
    out.circuitsPerIteration = 1;
    out.compileSeconds = plan_seconds + res.compileSeconds;
    out.simSeconds = res.simSeconds;
    out.classicalSeconds = res.classicalSeconds;
    return out;
}

} // namespace chocoq::solvers
