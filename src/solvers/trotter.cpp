#include "solvers/trotter.hpp"

#include "circuit/transpile.hpp"
#include "common/error.hpp"
#include "common/membytes.hpp"
#include "common/timer.hpp"
#include "core/circuits.hpp"
#include "linalg/expm.hpp"
#include "linalg/givens.hpp"

namespace chocoq::solvers
{

TrotterReport
trotterDecompose(const std::vector<core::CommuteTerm> &terms, int n,
                 double beta, const TrotterOptions &opts)
{
    TrotterReport out;
    if (n > opts.maxQubits) {
        out.timedOut = true;
        return out;
    }
    MemBytes::resetPeak();
    const std::size_t base = MemBytes::peak();
    Timer timer;

    // Stage 1: dense driver assembly (the Eq. 5 tensor computation).
    linalg::Matrix hd = core::denseDriver(terms, n);
    if (timer.seconds() > opts.timeoutSeconds) {
        out.timedOut = true;
        out.seconds = timer.seconds();
        out.peakBytes = MemBytes::peak() - base;
        return out;
    }

    // Stage 2: one small-step unitary exp(-i beta H_d / N).
    linalg::Matrix step =
        linalg::expUnitary(hd, beta / opts.repetitions);
    if (timer.seconds() > opts.timeoutSeconds) {
        out.timedOut = true;
        out.seconds = timer.seconds();
        out.peakBytes = MemBytes::peak() - base;
        return out;
    }

    // Stage 3: two-level synthesis of the step, repeated N times.
    const linalg::GivensSynthesis synth =
        linalg::synthesizeTwoLevel(step, n);
    out.depth = synth.depth * static_cast<std::size_t>(opts.repetitions);
    out.gates =
        synth.basicGates * static_cast<std::size_t>(opts.repetitions);

    if (opts.measureError) {
        // Lie-Trotter product-formula error: each small step is the
        // product of LOCAL term exponentials (that is what makes the step
        // implementable), and the deviation from exp(-i beta H_d) shrinks
        // as O(1/N).
        linalg::Matrix local_step =
            linalg::Matrix::identity(step.rows());
        for (const auto &t : terms)
            local_step = linalg::expUnitary(core::denseTerm(t, n),
                                            beta / opts.repetitions)
                         * local_step;
        linalg::Matrix prod = linalg::Matrix::identity(step.rows());
        for (int r = 0; r < opts.repetitions; ++r) {
            prod = prod * local_step;
            if (timer.seconds() > opts.timeoutSeconds) {
                out.timedOut = true;
                break;
            }
        }
        if (!out.timedOut) {
            const linalg::Matrix exact = linalg::expUnitary(hd, beta);
            out.stepError = prod.maxAbsDiff(exact);
        }
    }

    out.seconds = timer.seconds();
    out.peakBytes = MemBytes::peak() - base;
    if (out.seconds > opts.timeoutSeconds)
        out.timedOut = true;
    return out;
}

TrotterReport
chocoDecompose(const std::vector<core::CommuteTerm> &terms, int n,
               double beta)
{
    TrotterReport out;
    MemBytes::resetPeak();
    const std::size_t base = MemBytes::peak();
    Timer timer;

    circuit::Circuit c(n);
    core::appendDriverLayer(c, terms, beta);
    circuit::Circuit lowered = circuit::transpile(c);
    out.depth = static_cast<std::size_t>(lowered.depth());
    out.gates = lowered.gateCount();
    out.seconds = timer.seconds();
    // Circuit storage is the only allocation on this path; report it.
    const std::size_t circuit_bytes =
        lowered.gates().size() * (sizeof(circuit::Gate) + 2 * sizeof(int));
    out.peakBytes = std::max(MemBytes::peak() - base, circuit_bytes);
    return out;
}

} // namespace chocoq::solvers
