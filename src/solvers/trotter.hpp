/**
 * @file
 * Trotter-decomposition comparator for Figure 12 [36].
 *
 * The conventional route to implementing exp(-i beta H_d): assemble the
 * dense driver Hamiltonian (O(4^n) memory), exponentiate one small step
 * exp(-i beta H_d / N), synthesize the step unitary into basic gates with
 * two-level (Givens) rotations, and repeat the step N times. Every stage
 * is intentionally exponential — that is the comparison the paper draws
 * against Choco-Q's linear-cost equivalent decomposition.
 */

#ifndef CHOCOQ_SOLVERS_TROTTER_HPP
#define CHOCOQ_SOLVERS_TROTTER_HPP

#include <cstddef>
#include <vector>

#include "core/commute.hpp"

namespace chocoq::solvers
{

/** Outcome of one Trotter decomposition attempt. */
struct TrotterReport
{
    /** True when the attempt was abandoned (budget exceeded). */
    bool timedOut = false;
    /** Wall-clock seconds spent. */
    double seconds = 0.0;
    /** Peak tracked allocation in bytes. */
    std::size_t peakBytes = 0;
    /** Basic-gate depth of the full N-step circuit. */
    std::size_t depth = 0;
    /** Basic-gate count of the full N-step circuit. */
    std::size_t gates = 0;
    /** Max |approx - exact| amplitude error of the N-step product. */
    double stepError = 0.0;
};

/** Trotter configuration. */
struct TrotterOptions
{
    /** Number of repetitions N (paper: N > 100). */
    int repetitions = 100;
    /** Wall-clock budget; exceeded -> timedOut result. */
    double timeoutSeconds = 30.0;
    /** Hard qubit cap (dense math beyond this is pointless). */
    int maxQubits = 12;
    /** Also measure the product-formula approximation error. */
    bool measureError = false;
};

/**
 * Run the Trotter decomposition of exp(-i beta H_d) for the driver built
 * from @p terms over @p n qubits.
 */
TrotterReport trotterDecompose(const std::vector<core::CommuteTerm> &terms,
                               int n, double beta,
                               const TrotterOptions &opts = {});

/**
 * Choco-Q counterpart measured the same way: build the serialized
 * Lemma-2 circuit, transpile to basic gates, report time/memory/depth.
 */
TrotterReport chocoDecompose(const std::vector<core::CommuteTerm> &terms,
                             int n, double beta);


} // namespace chocoq::solvers

#endif // CHOCOQ_SOLVERS_TROTTER_HPP
