/**
 * @file
 * Cyclic-Hamiltonian QAOA baseline [47].
 *
 * Hard-constraint encoding via the one-dimensional-Ising-inspired XY
 * mixer (Eq. 2): for each constraint in summation format, consecutive
 * variable pairs of the constraint get X_i X_j + Y_i Y_j rotations, which
 * conserve the excitation number of that chain. The initial state is one
 * feasible solution. Constraints that are NOT in summation format (mixed
 * signs, e.g. FLP's x_ij - y_i + s_ij = 0) cannot be encoded — the mixer
 * skips them, and constraint rows that share variables interfere; both
 * effects reproduce the leakage the paper reports for this design on
 * FLP/GCP (Table II).
 */

#ifndef CHOCOQ_SOLVERS_CYCLIC_HPP
#define CHOCOQ_SOLVERS_CYCLIC_HPP

#include "core/solver.hpp"

namespace chocoq::solvers
{

/** Cyclic-Hamiltonian QAOA configuration. */
struct CyclicOptions
{
    /** Alternating layers (paper simulates baselines with 7). */
    int layers = 7;
    core::EngineOptions engine;
};

/** XY-mixer QAOA baseline. */
class CyclicQaoaSolver : public core::Solver
{
  public:
    explicit CyclicQaoaSolver(CyclicOptions opts = {});

    std::string name() const override { return "cyclic"; }

    core::SolverOutcome solve(const model::Problem &p) const override;

    /** Pairs of qubits carrying XY rotations for @p p (analysis hook). */
    static std::vector<std::pair<int, int>> mixerPairs(
        const model::Problem &p);

  private:
    CyclicOptions opts_;
};

} // namespace chocoq::solvers

#endif // CHOCOQ_SOLVERS_CYCLIC_HPP
