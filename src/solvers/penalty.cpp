#include "solvers/penalty.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/circuits.hpp"

namespace chocoq::solvers
{

namespace
{

using core::SubRun;

/** Variables sorted by how many penalty monomials they appear in. */
std::vector<int>
hotspotOrder(const model::Polynomial &poly, int n)
{
    std::vector<int> count(n, 0);
    for (const auto &[vars, c] : poly.terms())
        for (int v : vars)
            ++count[v];
    std::vector<int> order(n);
    for (int i = 0; i < n; ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](int a, int b) { return count[a] > count[b]; });
    return order;
}

/** Precompute poly values over k qubits. */
std::shared_ptr<std::vector<double>>
tabulate(const model::Polynomial &f, int k)
{
    auto table = std::make_shared<std::vector<double>>(std::size_t{1} << k);
    for (std::size_t i = 0; i < table->size(); ++i)
        (*table)[i] = f.evaluate(i);
    return table;
}

} // namespace

PenaltyQaoaSolver::PenaltyQaoaSolver(PenaltyOptions opts)
    : opts_(std::move(opts))
{
    CHOCOQ_ASSERT(opts_.layers >= 1, "penalty QAOA needs >= 1 layer");
    CHOCOQ_ASSERT(opts_.freeze >= 0, "negative freeze count");
}

core::SolverOutcome
PenaltyQaoaSolver::solve(const model::Problem &p) const
{
    Timer compile_timer;
    const model::Polynomial penalty = p.penaltyPolynomial(opts_.lambda);
    const int n = p.numVars();
    const int freeze = std::min(opts_.freeze, n - 1);

    // FrozenQubits: fix the most-connected (hotspot) variables and run one
    // sub-circuit per assignment.
    const std::vector<int> order = hotspotOrder(penalty, n);
    std::vector<int> frozen(order.begin(), order.begin() + freeze);
    std::sort(frozen.begin(), frozen.end());
    std::vector<int> kept;
    std::vector<int> new_of(n, -1);
    for (int i = 0; i < n; ++i) {
        if (!std::binary_search(frozen.begin(), frozen.end(), i)) {
            new_of[i] = static_cast<int>(kept.size());
            kept.push_back(i);
        }
    }
    const int k = static_cast<int>(kept.size());

    std::vector<SubRun> runs;
    for (Basis assign = 0; assign < (Basis{1} << freeze); ++assign) {
        model::Polynomial sub = penalty;
        for (int j = 0; j < freeze; ++j)
            sub = sub.substitute(frozen[j], getBit(assign, j));
        auto f = std::make_shared<model::Polynomial>(sub.remapped(new_of));
        auto table = tabulate(*f, k);

        SubRun run;
        run.numQubits = k;
        run.init = 0;
        run.costTable = table;
        run.build = [k, f](const std::vector<double> &theta) {
            circuit::Circuit c(k);
            for (int q = 0; q < k; ++q)
                c.h(q);
            const std::size_t layers = theta.size() / 2;
            for (std::size_t l = 0; l < layers; ++l) {
                core::appendObjectivePhase(c, *f, theta[2 * l]);
                for (int q = 0; q < k; ++q)
                    c.rx(q, 2.0 * theta[2 * l + 1]);
            }
            return c;
        };
        run.evolve = [k, table](sim::StateVector &state,
                                const std::vector<double> &theta) {
            state.reset(0);
            constexpr double kInvSqrt2 = 0.70710678118654752440;
            for (int q = 0; q < k; ++q)
                state.apply1q(q, kInvSqrt2, kInvSqrt2, kInvSqrt2,
                              -kInvSqrt2);
            const std::size_t layers = theta.size() / 2;
            for (std::size_t l = 0; l < layers; ++l) {
                state.applyPhaseTable(*table, theta[2 * l]);
                const double b = theta[2 * l + 1];
                const sim::Cplx cc{std::cos(b), 0.0};
                const sim::Cplx ms{0.0, -std::sin(b)};
                for (int q = 0; q < k; ++q)
                    state.apply1q(q, cc, ms, ms, cc);
            }
        };
        const std::vector<int> kept_copy = kept;
        const std::vector<int> frozen_copy = frozen;
        run.lift = [kept_copy, frozen_copy, assign](Basis x) {
            Basis full = 0;
            for (std::size_t j = 0; j < kept_copy.size(); ++j)
                if (getBit(x, static_cast<int>(j)))
                    full |= Basis{1} << kept_copy[j];
            for (std::size_t j = 0; j < frozen_copy.size(); ++j)
                if (getBit(assign, static_cast<int>(j)))
                    full |= Basis{1} << frozen_copy[j];
            return full;
        };
        runs.push_back(std::move(run));
    }
    const double plan_seconds = compile_timer.seconds();

    core::EngineOptions engine = opts_.engine;
    if (engine.theta0.empty()) {
        double g0 = 0.1, b0 = 0.6;
        if (opts_.warmStart) {
            // Red-QAOA-style warm start: coarse single-layer grid search.
            double best = 0.0;
            bool first = true;
            sim::StateVector state(k);
            for (double g : {0.05, 0.1, 0.2, 0.4}) {
                for (double b : {0.2, 0.4, 0.6, 0.9}) {
                    double acc = 0.0;
                    for (const auto &run : runs) {
                        state.resizeScratch(run.numQubits);
                        run.evolve(state, {g, b});
                        acc += state.expectationTable(*run.costTable);
                    }
                    if (first || acc < best) {
                        first = false;
                        best = acc;
                        g0 = g;
                        b0 = b;
                    }
                }
            }
        }
        for (int l = 0; l < opts_.layers; ++l) {
            engine.theta0.push_back(g0);
            engine.theta0.push_back(b0);
        }
    }

    const core::EngineResult res = core::runQaoa(
        runs,
        [&](Basis x) {
            double v = p.minimizedObjectiveOf(x);
            return v + opts_.lambda * p.violation(x);
        },
        engine);

    core::SolverOutcome out;
    out.distribution = res.distribution;
    out.iterations = res.opt.iterations;
    out.evaluations = res.opt.evaluations;
    out.bestCost = res.opt.bestValue;
    out.trace = res.opt.trace;
    out.logicalDepth = res.logicalDepth;
    out.basisDepth = res.basisDepth;
    out.basisGateCount = res.basisGateCount;
    out.basisTwoQubitCount = res.basisTwoQubitCount;
    out.qubitsUsed = res.qubitsUsed;
    out.circuitsPerIteration = static_cast<int>(runs.size());
    out.compileSeconds = plan_seconds + res.compileSeconds;
    out.simSeconds = res.simSeconds;
    out.classicalSeconds = res.classicalSeconds;
    return out;
}

} // namespace chocoq::solvers
