/**
 * @file
 * Penalty-based QAOA baseline [44], enhanced per the paper's Table II
 * footnote with the two open-sourced optimizations it cites:
 * FrozenQubits-style hotspot freezing [4] and Red-QAOA-style parameter
 * warm starting [45].
 *
 * Encoding: soft constraints. The objective Hamiltonian is the penalty
 * polynomial f + lambda * sum_i (C_i x - c_i)^2; the driver is the
 * standard transverse-field RX layer; the initial state is the uniform
 * superposition.
 */

#ifndef CHOCOQ_SOLVERS_PENALTY_HPP
#define CHOCOQ_SOLVERS_PENALTY_HPP

#include "core/solver.hpp"

namespace chocoq::solvers
{

/** Penalty-based QAOA configuration. */
struct PenaltyOptions
{
    /** Alternating layers (the paper simulates baselines with 7). */
    int layers = 7;
    /** Penalty weight lambda. */
    double lambda = 10.0;
    /** Hotspot variables to freeze (FrozenQubits [4]); 2^k sub-circuits. */
    int freeze = 1;
    /** Grid warm start of the initial parameters (Red-QAOA [45]). */
    bool warmStart = true;
    core::EngineOptions engine;
};

/** Soft-constraint QAOA baseline. */
class PenaltyQaoaSolver : public core::Solver
{
  public:
    explicit PenaltyQaoaSolver(PenaltyOptions opts = {});

    std::string name() const override { return "penalty"; }

    core::SolverOutcome solve(const model::Problem &p) const override;

  private:
    PenaltyOptions opts_;
};

} // namespace chocoq::solvers

#endif // CHOCOQ_SOLVERS_PENALTY_HPP
