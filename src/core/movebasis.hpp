/**
 * @file
 * Move-set computation for the commute Hamiltonian (Section III, Eq. 5).
 *
 * The driver Hamiltonian is built from vectors u in {-1,0,1}^n with
 * C u = 0. The set Delta used by Choco-Q is a *basis* of the rational
 * nullspace of C whose vectors stay inside the {-1,0,1} alphabet; it has
 * n - rank(C) elements (the paper's G3 example: "12 u to precisely express
 * the 12 constraint equations").
 *
 * The computation is exact: fraction-free Gauss-Jordan elimination over
 * rationals gives the reduced row echelon form, and each free column
 * yields one basis vector. For constraint systems whose RREF leaves the
 * {-1,0,1} alphabet, a bounded fallback search combines basis vectors and
 * enumerates small supports to find compliant replacements.
 */

#ifndef CHOCOQ_CORE_MOVEBASIS_HPP
#define CHOCOQ_CORE_MOVEBASIS_HPP

#include <vector>

#include "model/problem.hpp"

namespace chocoq::core
{

/** Result of the move-basis computation. */
struct MoveBasis
{
    /** Basis vectors u (each of length n, entries in {-1,0,1}, C u = 0). */
    std::vector<std::vector<int>> moves;
    /** Rank of the constraint matrix. */
    int rank = 0;
    /** True when every nullspace direction fit the {-1,0,1} alphabet. */
    bool complete = true;
};

/**
 * Compute the move basis of a constraint matrix.
 * @param constraints Constraint rows (only coefficients are used).
 * @param num_vars Number of variables n.
 */
MoveBasis computeMoveBasis(
    const std::vector<model::LinearConstraint> &constraints, int num_vars);

/** Convenience overload on a problem. */
MoveBasis computeMoveBasis(const model::Problem &p);

/**
 * Support-minimization pass (applied by computeMoveBasis): pairwise
 * +-combinations that shrink supports while staying inside the alphabet.
 * Total support size is the circuit-depth driver of Section IV-C.
 */
void sparsifyMoveBasis(
    MoveBasis &basis,
    const std::vector<model::LinearConstraint> &constraints);

/**
 * Enrich a move basis towards the paper's Delta = "all valid solutions
 * of C u = 0": add every alphabet-valid pairwise +-combination of the
 * basis vectors (each still satisfies C u = 0), deduplicated up to sign
 * and ordered by support size. A richer Delta makes one serialized
 * driver pass reach much more of the feasible subspace (Fig. 9b's
 * exponential parallelism), at linear depth cost per extra move.
 *
 * @param basis Basis from computeMoveBasis.
 * @param constraints Constraint rows (for the C u = 0 check).
 * @param max_moves Cap on the returned move count.
 */
std::vector<std::vector<int>> expandMoveSet(
    const MoveBasis &basis,
    const std::vector<model::LinearConstraint> &constraints,
    std::size_t max_moves);

/** True when every entry of @p u lies in {-1,0,1}. */
bool inAlphabet(const std::vector<int> &u);

/** C u == 0 check. */
bool isNullVector(const std::vector<model::LinearConstraint> &constraints,
                  const std::vector<int> &u);

} // namespace chocoq::core

#endif // CHOCOQ_CORE_MOVEBASIS_HPP
