/**
 * @file
 * The Choco-Q solver: commute-Hamiltonian QAOA with serialization,
 * equivalent decomposition, and variable elimination (Sections III, IV).
 */

#ifndef CHOCOQ_CORE_CHOCOQ_SOLVER_HPP
#define CHOCOQ_CORE_CHOCOQ_SOLVER_HPP

#include "core/commute.hpp"
#include "core/eliminate.hpp"
#include "core/movebasis.hpp"
#include "core/solver.hpp"

namespace chocoq::core
{

/** Choco-Q configuration. */
struct ChocoQOptions
{
    /** Number of alternating layers L in Eq. 7 (the paper deploys 1). */
    int layers = 1;
    /** Variables to eliminate (Table II runs with 1). */
    int eliminate = 1;
    /**
     * Move-set enrichment factor: the driver uses up to
     * moveSetFactor x (n - rank) moves from expandMoveSet (the paper's
     * Delta is "all valid solutions of C u = 0"; the basis alone mixes
     * too slowly in one serialized pass). 1 = basis only.
     */
    std::size_t moveSetFactor = 3;
    /**
     * Use the Lemma-2 gate decomposition during the variational loop.
     * When false, the loop uses the exact pair-rotation fast path (the
     * two are equivalent — a tested property — but the fast path is much
     * cheaper); the transpiled artifacts are always gate-level.
     */
    bool gateLevelLoop = false;
    /**
     * Fig. 14 ablation hook ("Opt1 without Opt2"): pad every built
     * circuit with identity CX pairs until its gate count matches what a
     * GENERIC two-level synthesis of each local commute unitary would
     * cost. The unitary is unchanged; depth and noise exposure reflect
     * the unoptimized decomposition.
     */
    bool genericSynthesisPadding = false;
    EngineOptions engine;
};

/** Compilation artifacts exposed for analysis benches (Fig. 12/13). */
struct ChocoQCompilation
{
    MoveBasis basis;
    EliminationPlan plan;
    /** Commute terms of the first (representative) sub-instance. */
    std::vector<CommuteTerm> terms;
    /** Number of executable sub-instances (feasible assignments). */
    int subInstances = 0;
    double seconds = 0.0;
};

/** Commute-Hamiltonian QAOA solver. */
class ChocoQSolver : public Solver
{
  public:
    explicit ChocoQSolver(ChocoQOptions opts = {});

    std::string name() const override { return "choco-q"; }

    SolverOutcome solve(const model::Problem &p) const override;

    /** Run only the compilation pipeline (benchmarking hook). */
    ChocoQCompilation compileOnly(const model::Problem &p) const;

    const ChocoQOptions &options() const { return opts_; }

  private:
    ChocoQOptions opts_;
};

} // namespace chocoq::core

#endif // CHOCOQ_CORE_CHOCOQ_SOLVER_HPP
