/**
 * @file
 * The Choco-Q solver: commute-Hamiltonian QAOA with serialization,
 * equivalent decomposition, and variable elimination (Sections III, IV).
 */

#ifndef CHOCOQ_CORE_CHOCOQ_SOLVER_HPP
#define CHOCOQ_CORE_CHOCOQ_SOLVER_HPP

#include <memory>

#include "core/commute.hpp"
#include "core/eliminate.hpp"
#include "core/layer_fusion.hpp"
#include "core/movebasis.hpp"
#include "core/solver.hpp"
#include "model/polynomial.hpp"

namespace chocoq::core
{

/** Choco-Q configuration. */
struct ChocoQOptions
{
    /** Number of alternating layers L in Eq. 7 (the paper deploys 1). */
    int layers = 1;
    /** Variables to eliminate (Table II runs with 1). */
    int eliminate = 1;
    /**
     * Move-set enrichment factor: the driver uses up to
     * moveSetFactor x (n - rank) moves from expandMoveSet (the paper's
     * Delta is "all valid solutions of C u = 0"; the basis alone mixes
     * too slowly in one serialized pass). 1 = basis only.
     */
    std::size_t moveSetFactor = 3;
    /**
     * Use the Lemma-2 gate decomposition during the variational loop.
     * When false, the loop uses the exact pair-rotation fast path (the
     * two are equivalent — a tested property — but the fast path is much
     * cheaper); the transpiled artifacts are always gate-level.
     */
    bool gateLevelLoop = false;
    /**
     * Fig. 14 ablation hook ("Opt1 without Opt2"): pad every built
     * circuit with identity CX pairs until its gate count matches what a
     * GENERIC two-level synthesis of each local commute unitary would
     * cost. The unitary is unchanged; depth and noise exposure reflect
     * the unoptimized decomposition.
     */
    bool genericSynthesisPadding = false;
    EngineOptions engine;
};

/** One compiled sub-instance (fixed assignment of eliminated vars). */
struct CompiledSub
{
    /** Data-qubit count (kept variables). */
    int numQubits = 0;
    /** Feasible initial basis state of the reduced instance. */
    Basis init = 0;
    /** Assignment bits of the eliminated variables (plan order). */
    Basis assignment = 0;
    /** Reduced minimization-form objective. */
    std::shared_ptr<const model::Polynomial> objective;
    /** Commute terms of the reduced move set. */
    std::shared_ptr<const std::vector<CommuteTerm>> terms;
    /** Objective eigenvalue per reduced basis state. */
    std::shared_ptr<const std::vector<double>> costTable;
    /**
     * Layer fusion plan (compressed objective phase + grouped commute
     * sweeps); null when the solver compiled with engine.fusion off.
     * Structure-derived like every other artifact piece, so it is built
     * once in compile() and shared read-only across jobs.
     */
    std::shared_ptr<const FusedLayerPlan> fusedPlan;
    /** Fig. 14 ablation: identity-CX pairs padded per ansatz layer. */
    std::size_t padPairs = 0;
};

/**
 * Everything ChocoQSolver::solve derives from the problem *structure*
 * (constraint matrix + objective polynomial) and the compile-relevant
 * options: the elimination plan plus, per feasible assignment of the
 * eliminated variables, the reduced objective, its eigenvalue table, and
 * the commute terms of the reduced move set. Immutable once compile()
 * returns, so a compilation cache can hand one instance to many
 * concurrent jobs (the variational run only reads it).
 */
struct ChocoQArtifacts
{
    EliminationPlan plan;
    std::vector<CompiledSub> subs;
    /** Compilation wall time. */
    double seconds = 0.0;

    /**
     * Approximate heap footprint of the artifacts (tables, terms, fusion
     * plans, reduced objectives). Used by the compilation cache's LRU
     * byte budget; an estimate, not an allocator-exact count.
     */
    std::size_t memoryBytes() const;
};

/** Compilation artifacts exposed for analysis benches (Fig. 12/13). */
struct ChocoQCompilation
{
    MoveBasis basis;
    EliminationPlan plan;
    /** Commute terms of the first (representative) sub-instance. */
    std::vector<CommuteTerm> terms;
    /** Number of executable sub-instances (feasible assignments). */
    int subInstances = 0;
    double seconds = 0.0;
};

/** Commute-Hamiltonian QAOA solver. */
class ChocoQSolver : public Solver
{
  public:
    explicit ChocoQSolver(ChocoQOptions opts = {});

    std::string name() const override { return "choco-q"; }

    SolverOutcome solve(const model::Problem &p) const override;

    /**
     * Compile @p p into shareable artifacts (see ChocoQArtifacts).
     * Throws FatalError when no assignment of the eliminated variables
     * is feasible.
     */
    std::shared_ptr<const ChocoQArtifacts>
    compile(const model::Problem &p) const;

    /**
     * Variational run on precompiled artifacts. @p art must come from
     * compile() on a problem with identical constraints and objective
     * and from a solver with identical compile-relevant options
     * (eliminate, moveSetFactor, genericSynthesisPadding) — the
     * service's compilation cache guarantees this by keying on exactly
     * those inputs. solve(p) == solveCompiled(p, *compile(p)) bit for
     * bit.
     */
    SolverOutcome solveCompiled(const model::Problem &p,
                                const ChocoQArtifacts &art) const;

    /** Run only the compilation pipeline (benchmarking hook). */
    ChocoQCompilation compileOnly(const model::Problem &p) const;

    const ChocoQOptions &options() const { return opts_; }

  private:
    ChocoQOptions opts_;
};

} // namespace chocoq::core

#endif // CHOCOQ_CORE_CHOCOQ_SOLVER_HPP
