/**
 * @file
 * Compile-time fusion plan for the functional QAOA layer.
 *
 * One Choco-Q ansatz layer is exp(-i gamma H_o) followed by the
 * serialized commute driver prod_u exp(-i beta Hc(u)). Both halves admit
 * a structural fusion that is computed once per compiled sub-instance
 * (it depends only on the objective table and the move set, exactly the
 * inputs the compilation cache keys on) and reused by every objective
 * evaluation:
 *
 *  - Diagonal half: the objective eigenvalue table is value-compressed
 *    into its distinct values plus a per-basis-state uint16 index, so
 *    the per-layer phase sweep performs |distinct| sincos evaluations
 *    instead of 2^k (the sweep is sincos-bound: ~11 ns/amp vs ~1 ns/amp
 *    for the gather — see bench_micro BM_PhaseTable vs
 *    BM_FusedPhaseTable). Bit-identical to the uncompressed sweep.
 *
 *  - Commute half: consecutive terms sharing a support mask and having
 *    pairwise-disjoint pair sets are grouped; each group applies in a
 *    single enumeration of the shared free-bit runs
 *    (sim::StateVector::applyPairRotationGroup). Bit-identical to the
 *    term-at-a-time layer because disjoint-memory operations reorder
 *    exactly.
 *
 * Both halves fall back to the unfused kernels when the structure does
 * not qualify (more than 65536 distinct eigenvalues; no shared masks),
 * so a plan always exists and always produces the same bits as the
 * unfused path. See docs/simulator.md ("Gate fusion").
 */

#ifndef CHOCOQ_CORE_LAYER_FUSION_HPP
#define CHOCOQ_CORE_LAYER_FUSION_HPP

#include <cstdint>
#include <vector>

#include "core/commute.hpp"
#include "sim/statevector.hpp"

namespace chocoq::core
{

/** Consecutive commute terms sharing one support mask (order preserved,
 * pair sets pairwise disjoint). */
struct CommuteGroup
{
    Basis supportMask = 0;
    /** v patterns of the grouped terms, in original term order. */
    std::vector<Basis> vBits;
};

/** Per-sub-instance fusion plan (immutable, shareable across jobs). */
struct FusedLayerPlan
{
    /** True when the objective table was value-compressed. */
    bool compressedPhase = false;
    /** Distinct objective eigenvalues (exact doubles, first-seen order). */
    std::vector<double> distinctValues;
    /** Per-basis-state index into distinctValues (2^k entries). */
    std::vector<std::uint16_t> valueIndex;

    /** Commute-layer groups covering every term in original order. */
    std::vector<CommuteGroup> groups;
    /** Total terms across groups (= move-set size). */
    std::size_t termCount = 0;

    /** Approximate heap footprint (compile-cache byte accounting). */
    std::size_t memoryBytes() const;
};

/**
 * Build the plan for one compiled sub-instance. @p cost_table is the
 * objective eigenvalue table over the reduced basis states; @p terms is
 * the reduced move set in serialization order.
 */
FusedLayerPlan buildFusedLayerPlan(const std::vector<double> &cost_table,
                                   const std::vector<CommuteTerm> &terms);

/**
 * Fused exp(-i gamma H_o): the compressed-table sweep when the plan
 * qualifies, otherwise the plain applyPhaseTable on @p cost_table.
 * @p phase_scratch is the caller-owned per-distinct-value phase buffer
 * (reused across evaluations; no steady-state allocation).
 */
void applyFusedObjectivePhase(sim::StateVector &state,
                              const FusedLayerPlan &plan,
                              const std::vector<double> &cost_table,
                              double gamma,
                              std::vector<sim::Cplx> &phase_scratch);

/**
 * Fused commute layer prod_u exp(-i beta Hc(u)): one sincos for the
 * shared angle, then one grouped sweep per CommuteGroup. Bit-identical
 * to applyCommuteLayer on the plan's source terms.
 */
void applyFusedCommuteLayer(sim::StateVector &state,
                            const FusedLayerPlan &plan, double beta);

/**
 * One whole fused ansatz layer exp(-i gamma H_o) then the commute
 * driver. When the plan's objective table is value-compressed and at
 * least one commute group exists, the objective-phase gather is folded
 * into the first group's subspace sweep
 * (sim::StateVector::applyPhasedPairRotationGroup) — saving one full
 * read+write pass over the state per layer; otherwise falls back to
 * applyFusedObjectivePhase + applyFusedCommuteLayer. Bit-identical to
 * the two-call sequence in either case.
 */
void applyFusedLayer(sim::StateVector &state, const FusedLayerPlan &plan,
                     const std::vector<double> &cost_table, double gamma,
                     double beta, std::vector<sim::Cplx> &phase_scratch);

/** Per-lane applyFusedObjectivePhase: lane b uses angle gammas[b]. */
void applyFusedObjectivePhaseBatched(sim::BatchedStateVector &batch,
                                     const FusedLayerPlan &plan,
                                     const std::vector<double> &cost_table,
                                     const double *gammas,
                                     std::vector<sim::Cplx> &phase_scratch);

/** Per-lane applyFusedCommuteLayer: lane b uses angle betas[b].
 * @p cs_scratch backs the per-lane cos/sin (reused across calls). */
void applyFusedCommuteLayerBatched(sim::BatchedStateVector &batch,
                                   const FusedLayerPlan &plan,
                                   const double *betas,
                                   std::vector<double> &cs_scratch);

/** Per-lane applyFusedLayer (same fusion rule and fallback). */
void applyFusedLayerBatched(sim::BatchedStateVector &batch,
                            const FusedLayerPlan &plan,
                            const std::vector<double> &cost_table,
                            const double *gammas, const double *betas,
                            std::vector<sim::Cplx> &phase_scratch,
                            std::vector<double> &cs_scratch);

} // namespace chocoq::core

#endif // CHOCOQ_CORE_LAYER_FUSION_HPP
