#include "core/circuits.hpp"

#include "common/error.hpp"

namespace chocoq::core
{

namespace
{

/** Bit of vBits at support position i (the v_i of Eq. 12). */
int
vAt(const CommuteTerm &term, std::size_t i)
{
    return getBit(term.vBits, term.support[i]);
}

} // namespace

void
appendConvertGates(circuit::Circuit &c, const CommuteTerm &term)
{
    const auto &sup = term.support;
    const std::size_t k = sup.size();
    // Algorithm 1: walk the support from the last qubit down to the
    // second, turning qubits 2..k into |1> for both |v> and |v-bar>.
    for (std::size_t i = k; i-- > 1;) {
        c.cx(sup[i - 1], sup[i]);
        if (vAt(term, i) == vAt(term, i - 1))
            c.x(sup[i]);
    }
    // |s+-> = (|0> +- |1>)|1...1> -> |0/1, 1...1>.
    c.h(sup[0]);
}

void
appendConvertGatesInverse(circuit::Circuit &c, const CommuteTerm &term)
{
    const auto &sup = term.support;
    const std::size_t k = sup.size();
    c.h(sup[0]);
    for (std::size_t i = 1; i < k; ++i) {
        if (vAt(term, i) == vAt(term, i - 1))
            c.x(sup[i]);
        c.cx(sup[i - 1], sup[i]);
    }
}

void
appendCommuteTermCircuit(circuit::Circuit &c, const CommuteTerm &term,
                         double beta)
{
    const auto &sup = term.support;
    appendConvertGates(c, term);
    // X1 P(-beta) X1 puts e^{-i beta} on |0 1...1>.
    c.x(sup[0]);
    c.mcp(sup, -beta);
    c.x(sup[0]);
    // P(beta) puts e^{+i beta} on |1 1...1>.
    c.mcp(sup, beta);
    appendConvertGatesInverse(c, term);
}

circuit::Circuit
commuteTermCircuit(const CommuteTerm &term, int n, double beta)
{
    circuit::Circuit c(n);
    appendCommuteTermCircuit(c, term, beta);
    return c;
}

void
appendDriverLayer(circuit::Circuit &c, const std::vector<CommuteTerm> &terms,
                  double beta)
{
    for (const auto &term : terms)
        appendCommuteTermCircuit(c, term, beta);
}

void
appendObjectivePhase(circuit::Circuit &c, const model::Polynomial &f,
                     double gamma)
{
    for (const auto &[vars, coeff] : f.terms()) {
        if (vars.empty())
            continue; // constant: global phase only
        const double phi = -gamma * coeff;
        if (phi == 0.0)
            continue;
        if (vars.size() == 1)
            c.p(vars[0], phi);
        else if (vars.size() == 2)
            c.cp(vars[0], vars[1], phi);
        else
            c.mcp(vars, phi);
    }
}

void
appendBasisPreparation(circuit::Circuit &c, Basis init)
{
    for (int q = 0; q < c.numData(); ++q)
        if (getBit(init, q))
            c.x(q);
}

void
appendIdentityPadding(circuit::Circuit &c, std::size_t pairs)
{
    if (c.numData() < 2) {
        for (std::size_t i = 0; i < 2 * pairs; ++i)
            c.x(0);
        return;
    }
    for (std::size_t i = 0; i < pairs; ++i) {
        const int a = static_cast<int>(i % (c.numData() - 1));
        c.cx(a, a + 1);
        c.cx(a, a + 1);
    }
}

circuit::Circuit
chocoAnsatz(int n, Basis init, const model::Polynomial &f,
            const std::vector<CommuteTerm> &terms,
            const std::vector<double> &thetas)
{
    CHOCOQ_ASSERT(thetas.size() % 2 == 0,
                  "theta must hold gamma/beta pairs");
    circuit::Circuit c(n);
    appendBasisPreparation(c, init);
    const std::size_t layers = thetas.size() / 2;
    for (std::size_t l = 0; l < layers; ++l) {
        appendObjectivePhase(c, f, thetas[2 * l]);
        appendDriverLayer(c, terms, thetas[2 * l + 1]);
    }
    return c;
}

} // namespace chocoq::core
