/**
 * @file
 * Commute-Hamiltonian terms Hc(u) (Eq. 5) and their exact evolution.
 *
 * For a move vector u, Hc(u) = sigma^{u_1} ... sigma^{u_n} + h.c. couples
 * exactly the basis-state pairs |v, w> <-> |v-bar, w> where v = (1+u)/2 on
 * the support of u and w is any assignment of the complement. Its only
 * non-zero eigenvalues are +-1 with eigenstates |x+-> (Eq. 12), which is
 * what makes both the fast pair-rotation simulation and the Lemma-2
 * circuit decomposition exact.
 */

#ifndef CHOCOQ_CORE_COMMUTE_HPP
#define CHOCOQ_CORE_COMMUTE_HPP

#include <vector>

#include "common/bitops.hpp"
#include "linalg/matrix.hpp"
#include "sim/batched.hpp"
#include "sim/statevector.hpp"

namespace chocoq::core
{

/** One commute-Hamiltonian term, precomputed from its move vector. */
struct CommuteTerm
{
    /** Full-length move vector u (entries -1/0/1). */
    std::vector<int> u;
    /** Bits where u is non-zero. */
    Basis supportMask = 0;
    /** Pattern (1+u)/2 restricted to the support. */
    Basis vBits = 0;
    /** Support qubit indices in ascending order. */
    std::vector<int> support;
};

/** Precompute a term from a move vector. */
CommuteTerm makeCommuteTerm(const std::vector<int> &u);

/** Build all terms of a move basis. */
std::vector<CommuteTerm> makeCommuteTerms(
    const std::vector<std::vector<int>> &moves);

/** Total non-zero count over all moves (the depth proxy of Sec. IV-C). */
std::size_t totalNonZeros(const std::vector<CommuteTerm> &terms);

/**
 * Dense Hc(u) over @p n qubits — reference math for tests and the
 * Trotter baseline (O(4^n), use only for small n).
 */
linalg::Matrix denseTerm(const CommuteTerm &term, int n);

/** Dense driver H_d = sum_u Hc(u). */
linalg::Matrix denseDriver(const std::vector<CommuteTerm> &terms, int n);

/** Dense constraint operator C-hat = sum_i c_i sigma^z_i (Eq. 3). */
linalg::Matrix denseConstraintOperator(const std::vector<int> &coeffs,
                                       int n);

/**
 * Exact functional evolution exp(-i beta Hc(u)) |state> via the
 * pair-rotation kernel (no circuit, no ancillas).
 */
void applyCommuteExact(sim::StateVector &state, const CommuteTerm &term,
                       double beta);

/**
 * Exact evolution of a whole layer prod_u exp(-i beta Hc(u)) sharing one
 * angle: cos/sin are computed once and reused across every term, so each
 * term costs only its own 2^(n-k) pair rotations.
 */
void applyCommuteLayer(sim::StateVector &state,
                       const std::vector<CommuteTerm> &terms, double beta);

/**
 * SoA-batched commute layer: lane b evolves under angle betas[b]. Lane
 * b's cos/sin and per-term rotations match applyCommuteLayer(betas[b])
 * exactly, so each lane is bit-identical to a sequential evolution.
 */
void applyCommuteLayerBatched(sim::BatchedStateVector &batch,
                              const std::vector<CommuteTerm> &terms,
                              const double *betas,
                              std::vector<double> &cs_scratch);

/**
 * Basic-gate cost of decomposing one local commute unitary with GENERIC
 * two-level synthesis instead of the Lemma-2 identity (the "Opt1 without
 * Opt2" configuration of the Fig. 14 ablation). Exponential in the
 * support size.
 */
std::size_t genericTermSynthesisGates(const CommuteTerm &term, double beta);

} // namespace chocoq::core

#endif // CHOCOQ_CORE_COMMUTE_HPP
