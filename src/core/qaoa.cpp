#include "core/qaoa.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "sim/batched.hpp"
#include "sim/statevector.hpp"

namespace chocoq::core
{

namespace
{

using sim::StateVector;

/**
 * Evolve @p state to the subrun's output at @p theta. The state is
 * re-dimensioned and reset in place so callers can cycle one scratch
 * vector through thousands of objective evaluations without touching
 * the heap (StateVector::prepare reuses its allocation).
 */
void
evolveInto(StateVector &state, const SubRun &run,
           const std::vector<double> &theta, bool fuse_gates)
{
    if (run.evolve) {
        // evolve() establishes its own initial state (see the SubRun
        // contract), so only the dimension needs fixing up — prepare()'s
        // zero-fill would be a redundant full-state sweep per objective
        // evaluation.
        state.resizeScratch(run.numQubits);
        run.evolve(state, theta);
    } else {
        state.prepare(run.numQubits);
        circuit::Circuit c = run.build(theta);
        if (fuse_gates)
            sim::execute(state, circuit::fuseDiagonals(c));
        else
            sim::execute(state, c);
    }
}

/** Expectation of the configured cost for one subrun at theta. */
double
subrunCost(StateVector &scratch, const SubRun &run,
           const std::function<double(Basis)> &cost,
           const std::vector<double> &theta, bool fuse_gates)
{
    evolveInto(scratch, run, theta, fuse_gates);
    if (run.costDistinct && run.costIndex)
        return scratch.expectationTableCompressed(*run.costDistinct,
                                                  *run.costIndex);
    if (run.costTable)
        return scratch.expectationTable(*run.costTable);
    return scratch.expectationDiagonal(
        [&](Basis x) { return cost(run.lift(x)); });
}

/** Costs of several theta candidates for one subrun. Takes the SoA
 * evolveBatch path when available: up to @p width starts are interleaved
 * amplitude-major in one BatchedStateVector, so each layer's index
 * arithmetic and table loads are paid once per lane group instead of
 * once per start. Per lane the arithmetic is identical to evolveInto,
 * and the per-lane expectation reduce mirrors the scalar partitioning,
 * so every width — including the scalar fallback — returns bit-identical
 * values (tested property). */
std::vector<double>
batchSubrunCosts(sim::ScratchPool &pool, const SubRun &run,
                 const std::function<double(Basis)> &cost,
                 const std::vector<const std::vector<double> *> &thetas,
                 bool fuse_gates, std::size_t width)
{
    std::vector<double> out(thetas.size());
    if (run.evolveBatch && thetas.size() > 1 && width > 1) {
        sim::BatchedStateVector &batch = pool.batch();
        std::vector<const std::vector<double> *> chunk;
        std::size_t done = 0;
        while (done < thetas.size()) {
            const std::size_t lanes = std::min(width, thetas.size() - done);
            chunk.assign(thetas.begin() + static_cast<std::ptrdiff_t>(done),
                         thetas.begin()
                             + static_cast<std::ptrdiff_t>(done + lanes));
            batch.resizeScratch(run.numQubits, lanes);
            run.evolveBatch(batch, chunk);
            if (run.costDistinct && run.costIndex)
                batch.expectationTableCompressed(
                    *run.costDistinct, *run.costIndex, out.data() + done);
            else if (run.costTable)
                batch.expectationTable(*run.costTable, out.data() + done);
            else
                batch.expectationDiagonal(
                    [&](Basis x) { return cost(run.lift(x)); },
                    out.data() + done);
            done += lanes;
        }
    } else {
        StateVector &scratch = pool.at(0, run.numQubits);
        for (std::size_t b = 0; b < thetas.size(); ++b)
            out[b] = subrunCost(scratch, run, cost, *thetas[b], fuse_gates);
    }
    return out;
}

/** Evaluates a batch of theta candidates in one sweep. */
using BatchEval = std::function<std::vector<double>(
    const std::vector<const std::vector<double> *> &)>;

/** Multi-start minimization; totals evaluations/iterations, keeps the
 * result of the winning start. With multiStartKeep > 0, one batched
 * sweep screens every start and only the most promising keep receive a
 * full optimizer run.
 *
 * Kept starts run through one of two drivers with bit-identical
 * outcomes:
 *  - sequential (single start, or width 1 with racing off): each start's
 *    step machine is driven to completion one objective evaluation at a
 *    time — the legacy loop, including its per-evaluation checkpoint
 *    cadence through the objective closure.
 *  - lockstep (width > 1, or racing enabled): every round gathers one
 *    pending point per live machine in start order and evaluates them in
 *    one batched sweep. The round structure depends only on the set of
 *    live machines — never on the SoA width, which only chunks inside
 *    batch_eval — and each machine consumes exactly the value sequence
 *    it would see sequentially, so results match the sequential driver
 *    bit for bit across every width (tested property).
 * With raceEliminateEvery > 0, whenever every live machine has completed
 * the next milestone's worth of iterations the worse half (by incumbent
 * best value; ties keep submission order) is halted. Halted machines
 * contribute their partial evaluation/iteration counts and participate
 * in the final best selection (they can never beat a survivor: survivors
 * were at least as good at the milestone and only improve). */
optimize::OptResult
optimizeMultiStart(const optimize::Optimizer &optimizer,
                   const optimize::ObjectiveFn &objective,
                   const BatchEval &batch_eval, const EngineOptions &opts,
                   std::size_t width)
{
    std::vector<std::vector<double>> starts{opts.theta0};
    for (const auto &s : opts.extraStarts)
        if (s.size() == opts.theta0.size())
            starts.push_back(s);

    int screen_evals = 0;
    if (opts.multiStartKeep > 0
        && static_cast<std::size_t>(opts.multiStartKeep) < starts.size()) {
        if (opts.checkpoint)
            opts.checkpoint();
        std::vector<const std::vector<double> *> start_ptrs(starts.size());
        for (std::size_t i = 0; i < starts.size(); ++i)
            start_ptrs[i] = &starts[i];
        const std::vector<double> value = batch_eval(start_ptrs);
        screen_evals = static_cast<int>(starts.size());
        std::vector<std::size_t> order(starts.size());
        std::iota(order.begin(), order.end(), std::size_t{0});
        // stable_sort on values: ties keep submission order, so the
        // surviving set is deterministic.
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return value[a] < value[b];
                         });
        order.resize(static_cast<std::size_t>(opts.multiStartKeep));
        std::sort(order.begin(), order.end());
        std::vector<std::vector<double>> kept;
        kept.reserve(order.size());
        for (std::size_t i : order)
            kept.push_back(std::move(starts[i]));
        starts = std::move(kept);
    }

    // One step machine per start. Stochastic optimizers get a distinct,
    // deterministic stream per restart, derived from the options seed
    // alone — never from width, worker count, or submission order.
    std::vector<std::unique_ptr<optimize::OptimizerRun>> runs;
    runs.reserve(starts.size());
    for (std::size_t i = 0; i < starts.size(); ++i) {
        optimize::OptOptions start_opts = opts.opt;
        start_opts.seed = opts.opt.seed + 0x9E3779B97F4A7C15ull * i;
        if (opts.checkpoint)
            start_opts.checkpoint = opts.checkpoint;
        runs.push_back(optimizer.start(starts[i], start_opts));
    }

    const bool lockstep =
        runs.size() > 1 && (opts.raceEliminateEvery > 0 || width > 1);
    if (!lockstep) {
        for (auto &run : runs)
            while (!run->finished())
                run->supply(objective(run->pending()));
    } else {
        int next_milestone = opts.raceEliminateEvery;
        std::vector<std::size_t> live;
        std::vector<const std::vector<double> *> points;
        for (;;) {
            live.clear();
            points.clear();
            for (std::size_t i = 0; i < runs.size(); ++i)
                if (!runs[i]->finished()) {
                    live.push_back(i);
                    points.push_back(&runs[i]->pending());
                }
            if (live.empty())
                break;
            if (opts.checkpoint)
                opts.checkpoint();
            const std::vector<double> vals = batch_eval(points);
            for (std::size_t j = 0; j < live.size(); ++j)
                runs[live[j]]->supply(vals[j]);

            if (opts.raceEliminateEvery <= 0)
                continue;
            // A trace entry lands exactly once per completed iteration,
            // so trace.size() is the milestone progress measure that is
            // well-defined mid-iteration.
            live.erase(std::remove_if(live.begin(), live.end(),
                                      [&](std::size_t i) {
                                          return runs[i]->finished();
                                      }),
                       live.end());
            if (live.size() < 2)
                continue;
            bool at_milestone = true;
            for (std::size_t i : live)
                if (runs[i]->result().trace.size()
                    < static_cast<std::size_t>(next_milestone)) {
                    at_milestone = false;
                    break;
                }
            if (!at_milestone)
                continue;
            // Keep the better half by incumbent best (the last trace
            // entry); stable sort keeps submission order on ties.
            std::vector<std::size_t> ranked = live;
            std::stable_sort(ranked.begin(), ranked.end(),
                             [&](std::size_t a, std::size_t b) {
                                 return runs[a]->result().trace.back().best
                                        < runs[b]->result().trace.back().best;
                             });
            const std::size_t keep = (ranked.size() + 1) / 2;
            for (std::size_t j = keep; j < ranked.size(); ++j)
                runs[ranked[j]]->halt();
            next_milestone += opts.raceEliminateEvery;
        }
    }

    optimize::OptResult best;
    int total_evals = screen_evals;
    int total_iters = 0;
    bool first = true;
    for (const auto &run : runs) {
        const optimize::OptResult &res = run->result();
        total_evals += res.evaluations;
        total_iters += res.iterations;
        if (first || res.bestValue < best.bestValue) {
            best = res;
            first = false;
        }
    }
    best.evaluations = total_evals;
    best.iterations = total_iters;
    return best;
}

/** Noisy-sampled distribution of one subrun lifted to the full space. */
void
accumulateNoisy(std::map<Basis, double> &into, StateVector &scratch,
                const SubRun &run, const circuit::Circuit &lowered,
                const EngineOptions &opts, double weight, Rng &rng)
{
    const int shots = std::max(opts.shots, 1);
    const int trajectories = std::max(1, std::min(opts.trajectories, shots));
    const int shots_per_traj = (shots + trajectories - 1) / trajectories;
    const Basis data_mask = (Basis{1} << run.numQubits) - 1;

    std::map<Basis, int> counts;
    long total = 0;
    for (int t = 0; t < trajectories; ++t) {
        if (opts.checkpoint)
            opts.checkpoint();
        scratch.prepare(lowered.numQubits());
        sim::executeNoisy(scratch, lowered, opts.noise, rng);
        const auto hist =
            scratch.sample(rng, shots_per_traj, opts.noise.readout);
        for (const auto &[x, cnt] : hist) {
            counts[x & data_mask] += cnt;
            total += cnt;
        }
    }
    for (const auto &[x, cnt] : counts)
        into[run.lift(x)] +=
            weight * static_cast<double>(cnt) / static_cast<double>(total);
}

} // namespace

EngineResult
runQaoa(const std::vector<SubRun> &subruns,
        const std::function<double(Basis)> &cost, const EngineOptions &opts)
{
    CHOCOQ_ASSERT(!subruns.empty(), "engine needs at least one subrun");
    CHOCOQ_ASSERT(!opts.theta0.empty(), "engine needs initial parameters");

    EngineResult out;
    double weight_total = 0.0;
    for (const auto &r : subruns)
        weight_total += r.weight;
    CHOCOQ_ASSERT(weight_total > 0.0, "subrun weights must be positive");

    // Construction-seeded optimizer: stochastic methods derive their
    // stream from the engine seed alone, so concurrent jobs with equal
    // seeds are bit-identical regardless of scheduling order.
    const auto optimizer = optimize::makeOptimizer(opts.optimizer, opts.seed);
    double sim_seconds = 0.0;
    Timer total_timer;

    // Scratch states shared by every objective evaluation below; buffers
    // are sized once and recycled, so the optimizer's thousands of
    // evaluations perform zero statevector allocation. A caller-provided
    // pool (one per service worker) extends the reuse across jobs.
    int max_qubits = 1;
    for (const auto &r : subruns)
        max_qubits = std::max(max_qubits, r.numQubits);
    sim::ScratchPool local_pool;
    sim::ScratchPool &pool = opts.scratchPool ? *opts.scratchPool : local_pool;
    StateVector &scratch = pool.at(0, max_qubits);

    // Kernel-mix accounting (zero-cost when opts.kernelCounters is
    // null): the sink rides the two scratch states every kernel of this
    // run executes through. Detach on every exit path — the pool is
    // shared across jobs on a service worker, and a dangling sink would
    // charge the next job's kernels to this job's books.
    sim::BatchedStateVector &batch_scratch = pool.batch();
    struct SinkGuard
    {
        StateVector &s;
        sim::BatchedStateVector &b;
        ~SinkGuard()
        {
            s.setCounterSink(nullptr);
            b.setCounterSink(nullptr);
        }
    } sink_guard{scratch, batch_scratch};
    scratch.setCounterSink(opts.kernelCounters);
    batch_scratch.setCounterSink(opts.kernelCounters);

    // SoA lane count for batched sweeps: 0 resolves to the automatic
    // width. Purely a performance knob — results are bit-identical
    // across widths (tested property).
    constexpr int kAutoBatchWidth = 8;
    const std::size_t width = static_cast<std::size_t>(std::min<int>(
        opts.batchWidth > 0 ? opts.batchWidth : kAutoBatchWidth,
        static_cast<int>(sim::kMaxBatchLanes)));

    // One parameter vector per subrun (identical when shared).
    std::vector<std::vector<double>> theta_star(subruns.size());

    if (opts.independentSubruns && subruns.size() > 1) {
        // Each eliminated/frozen-assignment circuit is optimized on its
        // own (Sec. IV-C: circuits are executed individually).
        double best_acc = 0.0;
        int iters = 0, evals = 0;
        std::vector<optimize::TracePoint> merged_trace;
        for (std::size_t i = 0; i < subruns.size(); ++i) {
            auto objective = [&](const std::vector<double> &theta) {
                if (opts.checkpoint)
                    opts.checkpoint();
                Timer t;
                const double v = subrunCost(scratch, subruns[i], cost, theta,
                                            opts.fusion);
                sim_seconds += t.seconds();
                return v;
            };
            auto batch_objective =
                [&](const std::vector<const std::vector<double> *> &thetas) {
                    Timer t;
                    auto v = batchSubrunCosts(pool, subruns[i], cost, thetas,
                                              opts.fusion, width);
                    sim_seconds += t.seconds();
                    return v;
                };
            const auto res = optimizeMultiStart(*optimizer, objective,
                                                batch_objective, opts, width);
            theta_star[i] = res.best;
            best_acc += subruns[i].weight / weight_total * res.bestValue;
            iters = std::max(iters, res.iterations);
            evals += res.evaluations;
            // Merge traces as the weighted best-so-far (padded).
            if (merged_trace.size() < res.trace.size())
                merged_trace.resize(res.trace.size(),
                                    {0, 0.0});
            for (std::size_t k = 0; k < merged_trace.size(); ++k) {
                const double v =
                    res.trace.empty()
                        ? res.bestValue
                        : res.trace[std::min(k, res.trace.size() - 1)]
                              .best;
                merged_trace[k].iteration = static_cast<int>(k) + 1;
                merged_trace[k].best +=
                    subruns[i].weight / weight_total * v;
            }
        }
        out.opt.best = theta_star.front();
        out.opt.bestValue = best_acc;
        out.opt.iterations = iters;
        out.opt.evaluations = evals;
        out.opt.trace = std::move(merged_trace);
    } else {
        auto objective = [&](const std::vector<double> &theta) {
            if (opts.checkpoint)
                opts.checkpoint();
            Timer t;
            double acc = 0.0;
            for (const auto &run : subruns)
                acc += run.weight / weight_total
                       * subrunCost(scratch, run, cost, theta, opts.fusion);
            sim_seconds += t.seconds();
            return acc;
        };
        auto batch_objective =
            [&](const std::vector<const std::vector<double> *> &thetas) {
                Timer t;
                std::vector<double> acc(thetas.size(), 0.0);
                for (const auto &run : subruns) {
                    const auto v = batchSubrunCosts(pool, run, cost, thetas,
                                                    opts.fusion, width);
                    for (std::size_t b = 0; b < v.size(); ++b)
                        acc[b] += run.weight / weight_total * v[b];
                }
                sim_seconds += t.seconds();
                return acc;
            };
        out.opt = optimizeMultiStart(*optimizer, objective, batch_objective,
                                     opts, width);
        for (auto &theta : theta_star)
            theta = out.opt.best;
    }

    const double loop_seconds = total_timer.seconds();
    out.simSeconds = sim_seconds;
    out.classicalSeconds = std::max(0.0, loop_seconds - sim_seconds);

    // Deployment artifacts at the optimum: transpiled depth and counts.
    Timer compile_timer;
    std::vector<circuit::Circuit> finals;
    finals.reserve(subruns.size());
    for (std::size_t i = 0; i < subruns.size(); ++i) {
        if (opts.checkpoint)
            opts.checkpoint();
        circuit::Circuit c = subruns[i].build(theta_star[i]);
        out.logicalDepth = std::max(out.logicalDepth, c.depth());
        circuit::Circuit lowered = circuit::transpile(c, opts.transpile);
        out.basisDepth = std::max(out.basisDepth, lowered.depth());
        out.basisGateCount =
            std::max(out.basisGateCount, lowered.gateCount());
        out.basisTwoQubitCount =
            std::max(out.basisTwoQubitCount, lowered.multiQubitGateCount());
        out.qubitsUsed = std::max(out.qubitsUsed, lowered.numQubits());
        finals.push_back(std::move(lowered));
    }
    out.compileSeconds = compile_timer.seconds();

    // Final distribution.
    Rng rng(opts.seed);
    const bool noisy = !opts.noise.isNoiseless();
    for (std::size_t i = 0; i < subruns.size(); ++i) {
        if (opts.checkpoint)
            opts.checkpoint();
        const double w = subruns[i].weight / weight_total;
        if (noisy) {
            accumulateNoisy(out.distribution, scratch, subruns[i],
                            finals[i], opts, w, rng);
        } else if (opts.shots > 0) {
            evolveInto(scratch, subruns[i], theta_star[i], opts.fusion);
            const auto hist = scratch.sample(rng, opts.shots);
            for (const auto &[x, cnt] : hist)
                out.distribution[subruns[i].lift(x)] +=
                    w * static_cast<double>(cnt)
                    / static_cast<double>(opts.shots);
        } else {
            evolveInto(scratch, subruns[i], theta_star[i], opts.fusion);
            for (const auto &[x, p] : scratch.distribution())
                out.distribution[subruns[i].lift(x)] += w * p;
        }
    }

    // Normalize (guards tiny round-off drift).
    double total = 0.0;
    for (const auto &[x, p] : out.distribution)
        total += p;
    if (total > 0.0)
        for (auto &[x, p] : out.distribution)
            p /= total;
    return out;
}

} // namespace chocoq::core
