#include "core/movebasis.hpp"

#include <algorithm>
#include <set>
#include <cstdlib>
#include <numeric>

#include "common/error.hpp"
#include "linalg/fraction.hpp"

namespace chocoq::core
{

namespace
{

using linalg::Fraction;

/** Reduced row echelon form in place; returns pivot column per row. */
std::vector<int>
rref(std::vector<std::vector<Fraction>> &mat)
{
    std::vector<int> pivot_cols;
    if (mat.empty())
        return pivot_cols;
    const std::size_t rows = mat.size();
    const std::size_t cols = mat[0].size();
    std::size_t row = 0;
    for (std::size_t col = 0; col < cols && row < rows; ++col) {
        std::size_t piv = row;
        while (piv < rows && mat[piv][col].isZero())
            ++piv;
        if (piv == rows)
            continue;
        std::swap(mat[piv], mat[row]);
        const Fraction inv = Fraction(1) / mat[row][col];
        for (std::size_t c = col; c < cols; ++c)
            mat[row][c] = mat[row][c] * inv;
        for (std::size_t r = 0; r < rows; ++r) {
            if (r == row || mat[r][col].isZero())
                continue;
            const Fraction factor = mat[r][col];
            for (std::size_t c = col; c < cols; ++c)
                mat[r][c] = mat[r][c] - factor * mat[row][c];
        }
        pivot_cols.push_back(static_cast<int>(col));
        ++row;
    }
    return pivot_cols;
}

/** Scale a rational vector to a primitive integer vector. */
std::vector<std::int64_t>
toPrimitiveInteger(const std::vector<Fraction> &v)
{
    std::int64_t lcm = 1;
    for (const auto &f : v)
        lcm = std::lcm(lcm, f.den());
    std::vector<std::int64_t> out(v.size());
    std::int64_t gcd = 0;
    for (std::size_t i = 0; i < v.size(); ++i) {
        out[i] = v[i].num() * (lcm / v[i].den());
        gcd = std::gcd(gcd, std::llabs(out[i]));
    }
    if (gcd > 1)
        for (auto &x : out)
            x /= gcd;
    return out;
}

} // namespace

bool
inAlphabet(const std::vector<int> &u)
{
    for (int x : u)
        if (x < -1 || x > 1)
            return false;
    return true;
}

bool
isNullVector(const std::vector<model::LinearConstraint> &constraints,
             const std::vector<int> &u)
{
    for (const auto &con : constraints) {
        long acc = 0;
        for (std::size_t i = 0; i < u.size(); ++i)
            acc += static_cast<long>(con.coeffs[i]) * u[i];
        if (acc != 0)
            return false;
    }
    return true;
}

MoveBasis
computeMoveBasis(const std::vector<model::LinearConstraint> &constraints,
                 int num_vars)
{
    MoveBasis out;
    CHOCOQ_ASSERT(num_vars >= 1, "move basis needs variables");
    if (constraints.empty()) {
        out.rank = 0;
        out.complete = true;
        // Without constraints every single-variable flip is a valid move.
        for (int i = 0; i < num_vars; ++i) {
            std::vector<int> u(num_vars, 0);
            u[i] = 1;
            out.moves.push_back(std::move(u));
        }
        return out;
    }

    std::vector<std::vector<Fraction>> mat;
    mat.reserve(constraints.size());
    for (const auto &con : constraints) {
        std::vector<Fraction> row(num_vars);
        for (int i = 0; i < num_vars; ++i)
            row[i] = Fraction(con.coeffs[i]);
        mat.push_back(std::move(row));
    }
    const std::vector<int> pivot_cols = rref(mat);
    out.rank = static_cast<int>(pivot_cols.size());

    std::vector<bool> is_pivot(num_vars, false);
    for (int c : pivot_cols)
        is_pivot[c] = true;

    // Raw integer nullspace basis (one vector per free column).
    std::vector<std::vector<std::int64_t>> raw;
    for (int j = 0; j < num_vars; ++j) {
        if (is_pivot[j])
            continue;
        std::vector<Fraction> v(num_vars, Fraction(0));
        v[j] = Fraction(1);
        for (std::size_t r = 0; r < pivot_cols.size(); ++r)
            v[pivot_cols[r]] = -mat[r][j];
        raw.push_back(toPrimitiveInteger(v));
    }

    // Accept alphabet-compliant vectors directly; collect misfits.
    std::vector<std::vector<std::int64_t>> misfits;
    for (auto &v : raw) {
        bool ok = true;
        for (auto x : v)
            ok = ok && x >= -1 && x <= 1;
        if (ok) {
            std::vector<int> u(v.begin(), v.end());
            CHOCOQ_ASSERT(isNullVector(constraints, u),
                          "nullspace vector fails C u = 0");
            out.moves.push_back(std::move(u));
        } else {
            misfits.push_back(std::move(v));
        }
    }

    // Fallback: try +-1 combinations of a misfit with accepted vectors or
    // other misfits to pull entries back into the alphabet. Each repaired
    // vector still contains the misfit's free-column 1 entry, so linear
    // independence of the assembled set is preserved.
    for (const auto &bad : misfits) {
        bool repaired = false;
        auto try_fix = [&](const std::vector<std::int64_t> &other) {
            if (repaired)
                return;
            for (int sign : {1, -1}) {
                std::vector<int> cand(bad.size());
                bool ok = true;
                for (std::size_t i = 0; i < bad.size(); ++i) {
                    const std::int64_t x = bad[i] + sign * other[i];
                    if (x < -1 || x > 1) {
                        ok = false;
                        break;
                    }
                    cand[i] = static_cast<int>(x);
                }
                bool nonzero = false;
                for (int x : cand)
                    nonzero = nonzero || x != 0;
                if (ok && nonzero && isNullVector(constraints, cand)) {
                    out.moves.push_back(cand);
                    repaired = true;
                    return;
                }
            }
        };
        for (const auto &m : out.moves) {
            std::vector<std::int64_t> other(m.begin(), m.end());
            try_fix(other);
            if (repaired)
                break;
        }
        if (!repaired)
            for (const auto &m : misfits) {
                if (&m == &bad)
                    continue;
                try_fix(m);
                if (repaired)
                    break;
            }
        if (!repaired)
            out.complete = false;
    }
    sparsifyMoveBasis(out, constraints);
    return out;
}

void
sparsifyMoveBasis(MoveBasis &basis,
                  const std::vector<model::LinearConstraint> &constraints)
{
    auto nnz = [](const std::vector<int> &u) {
        int count = 0;
        for (int x : u)
            count += x != 0;
        return count;
    };
    // Pairwise reduction passes: replacing u_i by u_i +- u_j preserves both
    // linear independence and C u = 0, so the set stays a valid basis; we
    // accept a replacement only when it shrinks the support and stays in
    // the {-1,0,1} alphabet. Total support drives circuit depth (IV-C).
    bool changed = true;
    int guard = 0;
    while (changed && ++guard < 32) {
        changed = false;
        for (std::size_t i = 0; i < basis.moves.size(); ++i) {
            for (std::size_t j = 0; j < basis.moves.size(); ++j) {
                if (i == j)
                    continue;
                for (int sign : {1, -1}) {
                    std::vector<int> cand = basis.moves[i];
                    bool ok = true;
                    for (std::size_t k = 0; k < cand.size(); ++k) {
                        cand[k] += sign * basis.moves[j][k];
                        if (cand[k] < -1 || cand[k] > 1) {
                            ok = false;
                            break;
                        }
                    }
                    if (!ok || nnz(cand) == 0
                        || nnz(cand) >= nnz(basis.moves[i]))
                        continue;
                    CHOCOQ_ASSERT(isNullVector(constraints, cand),
                                  "sparsified move fails C u = 0");
                    basis.moves[i] = std::move(cand);
                    changed = true;
                }
            }
        }
    }
}

MoveBasis
computeMoveBasis(const model::Problem &p)
{
    return computeMoveBasis(p.constraints(), p.numVars());
}

std::vector<std::vector<int>>
expandMoveSet(const MoveBasis &basis,
              const std::vector<model::LinearConstraint> &constraints,
              std::size_t max_moves)
{
    // Canonical form: flip sign so the first non-zero entry is +1 (u and
    // -u generate the same Hc term, Eq. 5 adds the h.c. anyway).
    auto canonical = [](std::vector<int> u) {
        for (int x : u) {
            if (x == 0)
                continue;
            if (x < 0)
                for (auto &y : u)
                    y = -y;
            break;
        }
        return u;
    };

    std::set<std::vector<int>> seen;
    std::vector<std::vector<int>> out;
    for (const auto &u : basis.moves) {
        auto c = canonical(u);
        if (seen.insert(c).second)
            out.push_back(std::move(c));
    }

    std::vector<std::vector<int>> extra;
    const std::size_t d = basis.moves.size();
    if (d >= 2 && d <= 12) {
        // Full enumeration: every alphabet-valid combination
        // sum_i c_i u_i with c in {-1,0,1}^d (3^d candidates). Every
        // solution of C u = 0 over small integers arises this way, so
        // this is the paper's Delta restricted to the gate alphabet.
        const std::size_t total = [&] {
            std::size_t t = 1;
            for (std::size_t i = 0; i < d; ++i)
                t *= 3;
            return t;
        }();
        const std::size_t n = basis.moves[0].size();
        for (std::size_t code = 1; code < total; ++code) {
            std::size_t rest = code;
            std::vector<int> cand(n, 0);
            bool ok = true;
            int used = 0;
            for (std::size_t i = 0; i < d && ok; ++i) {
                const int ci = static_cast<int>(rest % 3) - 1;
                rest /= 3;
                if (ci == 0)
                    continue;
                ++used;
                for (std::size_t k = 0; k < n; ++k) {
                    cand[k] += ci * basis.moves[i][k];
                    if (cand[k] < -2 || cand[k] > 2) {
                        ok = false;
                        break;
                    }
                }
            }
            if (!ok || used < 2)
                continue; // singles are already in `out`
            bool alphabet = true;
            bool nonzero = false;
            for (int x : cand) {
                alphabet = alphabet && x >= -1 && x <= 1;
                nonzero = nonzero || x != 0;
            }
            if (!alphabet || !nonzero)
                continue;
            CHOCOQ_ASSERT(isNullVector(constraints, cand),
                          "expanded move fails C u = 0");
            auto c = canonical(std::move(cand));
            if (seen.insert(c).second)
                extra.push_back(std::move(c));
        }
    } else {
        // Large nullspace: pairwise combinations only.
        for (std::size_t i = 0; i < d; ++i) {
            for (std::size_t j = i + 1; j < d; ++j) {
                for (int sign : {1, -1}) {
                    std::vector<int> cand = basis.moves[i];
                    bool ok = true;
                    bool nonzero = false;
                    for (std::size_t k = 0; k < cand.size(); ++k) {
                        cand[k] += sign * basis.moves[j][k];
                        if (cand[k] < -1 || cand[k] > 1) {
                            ok = false;
                            break;
                        }
                        nonzero = nonzero || cand[k] != 0;
                    }
                    if (!ok || !nonzero)
                        continue;
                    CHOCOQ_ASSERT(isNullVector(constraints, cand),
                                  "expanded move fails C u = 0");
                    auto c = canonical(std::move(cand));
                    if (seen.insert(c).second)
                        extra.push_back(std::move(c));
                }
            }
        }
    }
    // Prefer small supports: they cost the least depth (Sec. IV-C).
    auto nnz = [](const std::vector<int> &u) {
        int count = 0;
        for (int x : u)
            count += x != 0;
        return count;
    };
    std::stable_sort(extra.begin(), extra.end(),
                     [&](const auto &a, const auto &b) {
                         return nnz(a) < nnz(b);
                     });
    for (auto &u : extra) {
        if (out.size() >= max_moves)
            break;
        out.push_back(std::move(u));
    }
    return out;
}

} // namespace chocoq::core
