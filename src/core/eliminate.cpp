#include "core/eliminate.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "core/movebasis.hpp"

namespace chocoq::core
{

namespace
{

/** Renumber polynomial variables through old-index -> new-index map. */
model::Polynomial
remapPolynomial(const model::Polynomial &f, const std::vector<int> &new_of)
{
    model::Polynomial out;
    for (const auto &[vars, coeff] : f.terms()) {
        std::vector<int> mapped;
        mapped.reserve(vars.size());
        for (int v : vars) {
            CHOCOQ_ASSERT(v < static_cast<int>(new_of.size())
                              && new_of[v] >= 0,
                          "polynomial references an eliminated variable");
            mapped.push_back(new_of[v]);
        }
        out.addTerm(std::move(mapped), coeff);
    }
    return out;
}

} // namespace

EliminationPlan
chooseElimination(const model::Problem &p, int count)
{
    CHOCOQ_ASSERT(count >= 0 && count < p.numVars(),
                  "cannot eliminate that many variables");
    EliminationPlan plan;

    // Working copy of the constraint system with columns knocked out.
    std::vector<model::LinearConstraint> cons = p.constraints();
    std::vector<bool> gone(p.numVars(), false);

    for (int pick = 0; pick < count; ++pick) {
        const MoveBasis basis = computeMoveBasis(cons, p.numVars());
        std::vector<int> nonzeros(p.numVars(), 0);
        for (const auto &u : basis.moves)
            for (int i = 0; i < p.numVars(); ++i)
                if (u[i] != 0)
                    ++nonzeros[i];

        // Greedy lookahead on the depth proxy of Sec. IV-C: among the
        // variables with the most non-zeros across the move set (the
        // paper's identification rule), pick the one whose removal
        // minimizes the total support of the re-derived move basis.
        int top_count = 0;
        for (int i = 0; i < p.numVars(); ++i)
            if (!gone[i])
                top_count = std::max(top_count, nonzeros[i]);
        if (top_count == 0)
            break; // no variable participates in any move
        int best = -1;
        std::size_t best_nz = 0;
        for (int i = 0; i < p.numVars(); ++i) {
            if (gone[i] || nonzeros[i] == 0)
                continue;
            auto trial = cons;
            for (auto &con : trial)
                con.coeffs[i] = 0;
            const MoveBasis reduced =
                computeMoveBasis(trial, p.numVars());
            std::size_t nz = 0;
            for (const auto &u : reduced.moves)
                for (int x : u)
                    nz += x != 0;
            if (best < 0 || nz < best_nz
                || (nz == best_nz && nonzeros[i] > nonzeros[best])) {
                best = i;
                best_nz = nz;
            }
        }
        plan.eliminated.push_back(best);
        gone[best] = true;
        for (auto &con : cons)
            con.coeffs[best] = 0; // knock the column out
    }

    for (int i = 0; i < p.numVars(); ++i)
        if (!gone[i])
            plan.kept.push_back(i);
    return plan;
}

std::vector<SubInstance>
buildSubInstances(const model::Problem &p, const EliminationPlan &plan)
{
    const int e = static_cast<int>(plan.eliminated.size());
    const int k = static_cast<int>(plan.kept.size());
    CHOCOQ_ASSERT(e + k == p.numVars(), "elimination plan is inconsistent");

    // Old index -> new index for kept variables (-1 for eliminated).
    std::vector<int> new_of(p.numVars(), -1);
    for (int j = 0; j < k; ++j)
        new_of[plan.kept[j]] = j;

    std::vector<SubInstance> out;
    for (Basis assign = 0; assign < (Basis{1} << e); ++assign) {
        // Substitute the eliminated variables into the objective.
        model::Polynomial f = p.minimizedObjective();
        for (int j = 0; j < e; ++j)
            f = f.substitute(plan.eliminated[j], getBit(assign, j));

        model::Problem reduced(k, model::Sense::Minimize,
                               p.name() + "/a" + std::to_string(assign));
        reduced.setObjective(remapPolynomial(f, new_of));

        bool inconsistent = false;
        for (const auto &con : p.constraints()) {
            std::vector<int> coeffs(k, 0);
            int rhs = con.rhs;
            bool nonzero = false;
            for (int i = 0; i < p.numVars(); ++i) {
                if (con.coeffs[i] == 0)
                    continue;
                if (new_of[i] >= 0) {
                    coeffs[new_of[i]] = con.coeffs[i];
                    nonzero = true;
                } else {
                    const int j = static_cast<int>(
                        std::find(plan.eliminated.begin(),
                                  plan.eliminated.end(), i)
                        - plan.eliminated.begin());
                    rhs -= con.coeffs[i] * getBit(assign, j);
                }
            }
            if (!nonzero) {
                if (rhs != 0) {
                    inconsistent = true;
                    break;
                }
                continue; // row fully satisfied by the assignment
            }
            reduced.addEquality(std::move(coeffs), rhs);
        }
        if (inconsistent)
            continue;
        out.push_back({std::move(reduced), assign});
    }
    return out;
}

Basis
liftToFull(Basis reduced_bits, const EliminationPlan &plan, Basis assignment)
{
    Basis full = 0;
    for (std::size_t j = 0; j < plan.kept.size(); ++j)
        if (getBit(reduced_bits, static_cast<int>(j)))
            full |= Basis{1} << plan.kept[j];
    for (std::size_t j = 0; j < plan.eliminated.size(); ++j)
        if (getBit(assignment, static_cast<int>(j)))
            full |= Basis{1} << plan.eliminated[j];
    return full;
}

} // namespace chocoq::core
