/**
 * @file
 * Circuit construction for Choco-Q (Sections III and IV).
 *
 * - commuteTermCircuit: the Lemma-2 equivalent decomposition
 *   exp(-i beta Hc(u)) = G-dagger P(beta) X1 P(-beta) X1 G, with the
 *   converting gates G built by Algorithm 1 (CX chain + conditional X +
 *   H on the first support qubit) and P as a multi-controlled phase gate.
 * - driverLayerCircuit: the Lemma-1 serialization — the ordered product of
 *   term circuits over the whole move basis.
 * - objectivePhaseCircuit: exp(-i gamma H_o) for a diagonal (multilinear
 *   polynomial) objective Hamiltonian; degree-d monomials become
 *   d-controlled phase gates.
 * - chocoAnsatz: initial-state preparation plus L alternating layers
 *   (Eq. 7).
 */

#ifndef CHOCOQ_CORE_CIRCUITS_HPP
#define CHOCOQ_CORE_CIRCUITS_HPP

#include <vector>

#include "circuit/circuit.hpp"
#include "common/bitops.hpp"
#include "core/commute.hpp"
#include "model/polynomial.hpp"

namespace chocoq::core
{

/** Append the Algorithm-1 converting gates G for @p term to @p c. */
void appendConvertGates(circuit::Circuit &c, const CommuteTerm &term);

/** Append the inverse converting gates G-dagger. */
void appendConvertGatesInverse(circuit::Circuit &c, const CommuteTerm &term);

/** Append the full Lemma-2 decomposition of exp(-i beta Hc(u)). */
void appendCommuteTermCircuit(circuit::Circuit &c, const CommuteTerm &term,
                              double beta);

/** Standalone circuit for one term over @p n qubits (tests, Fig. 5). */
circuit::Circuit commuteTermCircuit(const CommuteTerm &term, int n,
                                    double beta);

/** Serialized driver layer: product of all term circuits (Lemma 1). */
void appendDriverLayer(circuit::Circuit &c,
                       const std::vector<CommuteTerm> &terms, double beta);

/** Append exp(-i gamma f) for a diagonal multilinear objective f. */
void appendObjectivePhase(circuit::Circuit &c, const model::Polynomial &f,
                          double gamma);

/** Append X gates preparing basis state |init> from |0...0>. */
void appendBasisPreparation(circuit::Circuit &c, Basis init);

/**
 * Append @p pairs self-cancelling CX pairs cycling over adjacent qubits.
 * Unitary is unchanged; gate count and noise exposure grow. Used by the
 * Fig. 14 ablation to model the cost of a generic (non-Lemma-2) term
 * decomposition while keeping the circuit executable.
 */
void appendIdentityPadding(circuit::Circuit &c, std::size_t pairs);

/**
 * The full Choco-Q ansatz (Eq. 7): preparation of |x*>, then L layers of
 * objective phase followed by the serialized commute driver.
 *
 * @param n Number of data qubits.
 * @param init Feasible initial assignment |x*>.
 * @param f Objective polynomial (minimization form).
 * @param terms Commute terms of the move basis.
 * @param thetas 2L parameters ordered gamma_1, beta_1, ..., gamma_L, beta_L.
 */
circuit::Circuit chocoAnsatz(int n, Basis init, const model::Polynomial &f,
                             const std::vector<CommuteTerm> &terms,
                             const std::vector<double> &thetas);

} // namespace chocoq::core

#endif // CHOCOQ_CORE_CIRCUITS_HPP
