/**
 * @file
 * Shared variational execution engine for all QAOA-family solvers.
 *
 * Every solver in this repository (Choco-Q and the three baselines)
 * reduces to the same loop: build a parameterized circuit (possibly one
 * per sub-instance when variables were eliminated or frozen), simulate,
 * compute a cost expectation, and hand the parameters to a derivative-free
 * optimizer. The engine also produces the deployment-side artifacts the
 * benchmarks need: transpiled depth, gate counts, compile time, and a
 * final output distribution with optional shot sampling and device-noise
 * trajectories.
 */

#ifndef CHOCOQ_CORE_QAOA_HPP
#define CHOCOQ_CORE_QAOA_HPP

#include <functional>
#include <memory>
#include <map>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/transpile.hpp"
#include "common/bitops.hpp"
#include "optimize/optimizer.hpp"
#include "sim/executor.hpp"
#include "sim/scratch.hpp"

namespace chocoq::core
{

/** One parameterized circuit instance contributing to the result. */
struct SubRun
{
    /** Data-qubit count of this instance. */
    int numQubits = 0;
    /** Initial basis state (prepared inside the built circuit). */
    Basis init = 0;
    /** theta -> circuit builder (circuit includes state preparation). */
    std::function<circuit::Circuit(const std::vector<double> &)> build;
    /**
     * Optional functional fast path: evolve the state directly for a given
     * theta (must be unitarily equivalent to build(); the equivalence is a
     * tested property). Used by the variational loop and the exact final
     * distribution; gate-noise sampling always goes through build().
     * Contract: the callee receives a state of the right dimension with
     * unspecified contents and must establish its own initial state
     * (every implementation starts with state.reset(init)).
     */
    std::function<void(sim::StateVector &, const std::vector<double> &)>
        evolve;
    /**
     * Optional SoA batch evolution: lane b of @p batch becomes the output
     * at *thetas[b]. The caller sizes the batch (resizeScratch) to
     * thetas.size() lanes; the callee establishes every lane's initial
     * state (batch.reset(init)). Must perform, per lane, exactly the
     * per-amplitude arithmetic of evolve() — the SoA kernels interleave
     * B lanes inside one pass of index arithmetic and table loads, but
     * each lane's expression tree and enumeration order are identical to
     * the scalar kernels — making the two paths bit-identical for every
     * lane count (tested property).
     */
    std::function<void(sim::BatchedStateVector &,
                       const std::vector<const std::vector<double> *> &)>
        evolveBatch;
    /** Map a measured instance-space state to the full variable space. */
    std::function<Basis(Basis)> lift;
    /**
     * Optional precomputed cost table over this instance's basis states
     * (must equal cost(lift(x)) pointwise); avoids per-state callbacks.
     */
    std::shared_ptr<const std::vector<double>> costTable;
    /**
     * Optional value-compressed form of costTable (see FusedLayerPlan):
     * costTable[i] == (*costDistinct)[(*costIndex)[i]] bit-for-bit. When
     * both are set the engine computes expectations through the
     * compressed table — the same products and summation order as the
     * expanded sweep, so results are bit-identical (tested property) —
     * reading 2 bytes per amplitude instead of 8.
     */
    std::shared_ptr<const std::vector<double>> costDistinct;
    std::shared_ptr<const std::vector<std::uint16_t>> costIndex;
    /** Relative weight in the merged distribution. */
    double weight = 1.0;
};

/** Engine configuration. */
struct EngineOptions
{
    /** Optimizer name: cobyla (default), nelder-mead, or spsa. */
    std::string optimizer = "cobyla";
    optimize::OptOptions opt;
    /** Initial parameters. */
    std::vector<double> theta0;
    /**
     * Additional starting points (multi-start): the optimizer runs once
     * per start and the best final cost wins. QAOA landscapes are
     * periodic and multi-modal; wide-angle restarts are cheap insurance.
     */
    std::vector<std::vector<double>> extraStarts;
    /**
     * Batched multi-start screening: when > 0, every start is evaluated
     * once in one batched sweep (SubRun::evolveBatch amortizes the
     * phase-table loads across starts) and only the most promising
     * multiStartKeep starts receive a full optimizer run. 0 (default)
     * optimizes every start, the legacy behavior.
     */
    int multiStartKeep = 0;
    /**
     * SoA lane count for batched evaluation (screening sweeps and the
     * lockstep racing driver). 0 (the default) resolves to an automatic
     * width (currently 8); 1 forces the scalar path. Results are
     * bit-identical across every width (tested property) — the width
     * only decides how many lanes share one pass of index arithmetic —
     * so this is purely a performance/footprint knob. Compile-relevant
     * only insofar as the service hashes it into the compile-cache key
     * (artifact reuse across widths is still sound; the key split is
     * conservative).
     */
    int batchWidth = 0;
    /**
     * Racing multi-start elimination: when > 0 and several starts are
     * in flight, every raceEliminateEvery optimizer iterations the
     * worse half of the surviving starts (by incumbent best value, ties
     * keep submission order) is halted, and only the survivors keep
     * evaluating. Elimination decisions depend only on per-start
     * incumbents at the milestone, never on batch width or evaluation
     * interleaving, so outcomes are bit-identical across widths (tested
     * property). 0 (default) runs every kept start to completion.
     */
    int raceEliminateEvery = 0;
    /**
     * Optional external scratch pool (one per worker thread). Slot 0 is
     * the objective scratch and the batch() slot backs SoA lockstep
     * sweeps; a service worker reuses the pool across jobs so
     * steady-state solves allocate no state vectors. When null, the
     * engine uses a call-local pool.
     */
    sim::ScratchPool *scratchPool = nullptr;
    /**
     * Optimize each subrun independently (its own parameters) instead of
     * sharing one parameter vector. This is how variable-eliminated
     * circuits are handled: "execute the circuit individually" (IV-C).
     */
    bool independentSubruns = true;
    /**
     * Gate fusion. On the functional fast path the solver applies each
     * layer through its compile-time FusedLayerPlan (value-compressed
     * objective phase + grouped commute sweeps — bit-identical to the
     * unfused kernels, see core/layer_fusion.hpp); on the circuit path
     * built circuits run through circuit::fuseDiagonals so adjacent
     * diagonal gates apply as one sweep (equivalent within fp
     * reassociation). Off switches every evaluation back to the
     * per-gate/per-term kernels — kept as the cross-checked fallback.
     * Compile-relevant: the service hashes this into the compile-cache
     * key because artifacts carry the fused plan.
     */
    bool fusion = true;
    /** Shots for the final sampling; 0 keeps the exact distribution. */
    int shots = 0;
    /** Gate noise for the final sampling (optimization is noiseless). */
    sim::NoiseModel noise;
    /** Number of noisy trajectories used when noise is enabled. */
    int trajectories = 128;
    circuit::TranspileOptions transpile;
    std::uint64_t seed = 7;
    /**
     * Optional kernel-mix sink (see obs/roofline.hpp). When set, the
     * engine attaches it to its scratch states for the duration of the
     * run — every simulator kernel the job executes records its
     * invocation and touched-amplitude count — and detaches on exit
     * (the scratch pool outlives the job). Null (the default) costs
     * one untaken branch per kernel call and changes no amplitude bits.
     */
    obs::KernelCounterSink *kernelCounters = nullptr;
    /**
     * Cooperative cancellation checkpoint. The engine installs it as
     * OptOptions::checkpoint on every optimizer run it launches (polled
     * at iteration boundaries), and additionally polls it around its
     * own batched multi-start sweeps, per-subrun transpilation, and the
     * final-distribution loop (including each noisy trajectory) — so a
     * cancel or deadline lands within one iteration/phase boundary. It
     * may throw to abort runQaoa; when it returns normally it never
     * perturbs any numeric or random stream, preserving the bitwise
     * determinism contract (tested property).
     */
    std::function<void()> checkpoint;
};

/** Engine output. */
struct EngineResult
{
    /** Merged normalized distribution over the full variable space. */
    std::map<Basis, double> distribution;
    optimize::OptResult opt;
    /** Wall time spent building + transpiling circuits. */
    double compileSeconds = 0.0;
    /** Wall time in simulator cost evaluations (quantum stand-in). */
    double simSeconds = 0.0;
    /** Wall time in the optimizer outside simulation (classical part). */
    double classicalSeconds = 0.0;
    /** Depth of the representative (deepest) circuit before lowering. */
    int logicalDepth = 0;
    /** Depth after transpilation to the basic basis. */
    int basisDepth = 0;
    /** Basic-gate count after transpilation. */
    std::size_t basisGateCount = 0;
    /** Two-qubit basic-gate count after transpilation. */
    std::size_t basisTwoQubitCount = 0;
    /** Register width including transpiler ancillas. */
    int qubitsUsed = 0;
};

/**
 * Run the variational loop.
 *
 * @param subruns Circuit instances (at least one).
 * @param cost Diagonal cost on the full variable space (minimized).
 * @param opts Engine configuration.
 */
EngineResult runQaoa(const std::vector<SubRun> &subruns,
                     const std::function<double(Basis)> &cost,
                     const EngineOptions &opts);

} // namespace chocoq::core

#endif // CHOCOQ_CORE_QAOA_HPP
