/**
 * @file
 * Common solver interface shared by Choco-Q and the baseline designs.
 */

#ifndef CHOCOQ_CORE_SOLVER_HPP
#define CHOCOQ_CORE_SOLVER_HPP

#include <map>
#include <string>

#include "common/bitops.hpp"
#include "core/qaoa.hpp"
#include "model/problem.hpp"

namespace chocoq::core
{

/** Outcome of one solver run on one problem instance. */
struct SolverOutcome
{
    /** Normalized output distribution over the full variable space. */
    std::map<Basis, double> distribution;
    /** Optimizer iterations consumed. */
    int iterations = 0;
    /** Objective (circuit) evaluations consumed. */
    int evaluations = 0;
    /** Best cost reached by the variational loop. */
    double bestCost = 0.0;
    /** Best-so-far cost per iteration (Fig. 9a convergence curves). */
    std::vector<optimize::TracePoint> trace;
    /** Circuit depth before lowering. */
    int logicalDepth = 0;
    /** Circuit depth after transpilation to the basic basis. */
    int basisDepth = 0;
    /** Gate counts after transpilation. */
    std::size_t basisGateCount = 0;
    std::size_t basisTwoQubitCount = 0;
    /** Register width including ancillas. */
    int qubitsUsed = 0;
    /** Number of circuit instances executed per iteration. */
    int circuitsPerIteration = 1;
    /** Compilation wall time (decomposition + lowering). */
    double compileSeconds = 0.0;
    /** Simulator wall time (stand-in for quantum execution). */
    double simSeconds = 0.0;
    /** Classical optimizer wall time. */
    double classicalSeconds = 0.0;
};

/** Abstract constrained-binary-optimization solver. */
class Solver
{
  public:
    virtual ~Solver() = default;

    /** Short identifier, e.g. "choco-q", "penalty", "cyclic", "hea". */
    virtual std::string name() const = 0;

    /** Solve one instance. */
    virtual SolverOutcome solve(const model::Problem &p) const = 0;
};

} // namespace chocoq::core

#endif // CHOCOQ_CORE_SOLVER_HPP
