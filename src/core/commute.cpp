#include "core/commute.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/expm.hpp"
#include "linalg/givens.hpp"
#include "linalg/paulis.hpp"

namespace chocoq::core
{

CommuteTerm
makeCommuteTerm(const std::vector<int> &u)
{
    CommuteTerm term;
    term.u = u;
    for (std::size_t i = 0; i < u.size(); ++i) {
        CHOCOQ_ASSERT(u[i] >= -1 && u[i] <= 1,
                      "move entry outside {-1,0,1}");
        if (u[i] == 0)
            continue;
        term.supportMask |= Basis{1} << i;
        term.support.push_back(static_cast<int>(i));
        if (u[i] > 0)
            term.vBits |= Basis{1} << i;
    }
    CHOCOQ_ASSERT(!term.support.empty(), "move vector is all zero");
    return term;
}

std::vector<CommuteTerm>
makeCommuteTerms(const std::vector<std::vector<int>> &moves)
{
    std::vector<CommuteTerm> out;
    out.reserve(moves.size());
    for (const auto &u : moves)
        out.push_back(makeCommuteTerm(u));
    return out;
}

std::size_t
totalNonZeros(const std::vector<CommuteTerm> &terms)
{
    std::size_t acc = 0;
    for (const auto &t : terms)
        acc += t.support.size();
    return acc;
}

linalg::Matrix
denseTerm(const CommuteTerm &term, int n)
{
    CHOCOQ_ASSERT(static_cast<int>(term.u.size()) <= n,
                  "term wider than register");
    std::vector<linalg::Matrix> ops;
    ops.reserve(n);
    for (int i = 0; i < n; ++i) {
        const int ui = i < static_cast<int>(term.u.size()) ? term.u[i] : 0;
        ops.push_back(linalg::sigmaOf(ui));
    }
    linalg::Matrix fwd = linalg::kronAll(ops);
    return fwd + fwd.dagger();
}

linalg::Matrix
denseDriver(const std::vector<CommuteTerm> &terms, int n)
{
    linalg::Matrix h(std::size_t{1} << n, std::size_t{1} << n);
    for (const auto &t : terms)
        h = h + denseTerm(t, n);
    return h;
}

linalg::Matrix
denseConstraintOperator(const std::vector<int> &coeffs, int n)
{
    linalg::Matrix op(std::size_t{1} << n, std::size_t{1} << n);
    for (int i = 0; i < n && i < static_cast<int>(coeffs.size()); ++i) {
        if (coeffs[i] == 0)
            continue;
        op = op + linalg::embed1q(linalg::pauliZ(), i, n)
                      * linalg::Cplx{static_cast<double>(coeffs[i]), 0.0};
    }
    return op;
}

void
applyCommuteExact(sim::StateVector &state, const CommuteTerm &term,
                  double beta)
{
    state.applyPairRotation(term.supportMask, term.vBits, beta);
}

void
applyCommuteLayer(sim::StateVector &state,
                  const std::vector<CommuteTerm> &terms, double beta)
{
    const double c = std::cos(beta);
    const double s = std::sin(beta);
    for (const auto &term : terms)
        state.applyPairRotation(term.supportMask, term.vBits, c, s);
}

void
applyCommuteLayerBatched(sim::BatchedStateVector &batch,
                         const std::vector<CommuteTerm> &terms,
                         const double *betas,
                         std::vector<double> &cs_scratch)
{
    // Per-lane cos/sin computed with the scalar layer's expressions,
    // paid once for the whole layer.
    const std::size_t lanes = batch.lanes();
    cs_scratch.resize(2 * lanes);
    double *c = cs_scratch.data();
    double *s = c + lanes;
    for (std::size_t b = 0; b < lanes; ++b) {
        c[b] = std::cos(betas[b]);
        s[b] = std::sin(betas[b]);
    }
    for (const auto &term : terms)
        batch.applyPairRotation(term.supportMask, term.vBits, c, s);
}

std::size_t
genericTermSynthesisGates(const CommuteTerm &term, double beta)
{
    // Compact the term onto its support and synthesize the 2^k unitary.
    std::vector<int> compact;
    compact.reserve(term.support.size());
    for (int q : term.support)
        compact.push_back(term.u[q]);
    const CommuteTerm local = makeCommuteTerm(compact);
    const int k = static_cast<int>(local.support.size());
    const linalg::Matrix u =
        linalg::expUnitary(denseTerm(local, k), beta);
    return linalg::synthesizeTwoLevel(u, k).basicGates;
}

} // namespace chocoq::core
