#include "core/chocoq_solver.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "circuit/transpile.hpp"
#include "core/circuits.hpp"
#include "model/exact.hpp"

namespace chocoq::core
{

namespace
{

/** Precompute a polynomial's value on every basis state of k qubits. */
std::shared_ptr<std::vector<double>>
tabulate(const model::Polynomial &f, int k)
{
    auto table = std::make_shared<std::vector<double>>(std::size_t{1} << k);
    for (std::size_t i = 0; i < table->size(); ++i)
        (*table)[i] = f.evaluate(i);
    return table;
}

} // namespace

std::size_t
ChocoQArtifacts::memoryBytes() const
{
    std::size_t bytes = sizeof(ChocoQArtifacts);
    bytes += (plan.eliminated.capacity() + plan.kept.capacity())
             * sizeof(int);
    for (const auto &sub : subs) {
        bytes += sizeof(CompiledSub);
        if (sub.costTable)
            bytes += sub.costTable->capacity() * sizeof(double);
        if (sub.terms)
            for (const auto &t : *sub.terms)
                bytes += sizeof(CommuteTerm)
                         + (t.u.capacity() + t.support.capacity())
                               * sizeof(int);
        if (sub.objective)
            for (const auto &[vars, coeff] : sub.objective->terms())
                bytes += sizeof(double) + vars.capacity() * sizeof(int)
                         + 48; // map-node overhead estimate
        if (sub.fusedPlan)
            bytes += sub.fusedPlan->memoryBytes();
    }
    return bytes;
}

ChocoQSolver::ChocoQSolver(ChocoQOptions opts) : opts_(std::move(opts))
{
    CHOCOQ_ASSERT(opts_.layers >= 1, "Choco-Q needs at least one layer");
    CHOCOQ_ASSERT(opts_.eliminate >= 0, "negative elimination count");
}

ChocoQCompilation
ChocoQSolver::compileOnly(const model::Problem &p) const
{
    Timer timer;
    ChocoQCompilation out;
    out.basis = computeMoveBasis(p);
    const int e = std::min(opts_.eliminate, p.numVars() - 1);
    out.plan = chooseElimination(p, e);
    const auto subs = buildSubInstances(p, out.plan);
    for (const auto &sub : subs) {
        if (!model::findFeasible(sub.reduced))
            continue;
        ++out.subInstances;
        if (out.terms.empty()) {
            const MoveBasis rb = computeMoveBasis(sub.reduced);
            out.terms = makeCommuteTerms(expandMoveSet(
                rb, sub.reduced.constraints(),
                std::max<std::size_t>(opts_.moveSetFactor, 1)
                    * std::max<std::size_t>(rb.moves.size(), 1)));
        }
    }
    out.seconds = timer.seconds();
    return out;
}

std::shared_ptr<const ChocoQArtifacts>
ChocoQSolver::compile(const model::Problem &p) const
{
    Timer compile_timer;
    auto art = std::make_shared<ChocoQArtifacts>();
    const int e = std::min(opts_.eliminate, p.numVars() - 1);
    art->plan = chooseElimination(p, e);
    const auto subs = buildSubInstances(p, art->plan);
    const int k = static_cast<int>(art->plan.kept.size());

    for (const auto &sub : subs) {
        const auto init = model::findFeasible(sub.reduced);
        if (!init)
            continue; // this assignment of eliminated vars is infeasible

        const MoveBasis rb = computeMoveBasis(sub.reduced);
        const auto moves = expandMoveSet(
            rb, sub.reduced.constraints(),
            std::max<std::size_t>(opts_.moveSetFactor, 1)
                * std::max<std::size_t>(rb.moves.size(), 1));

        CompiledSub cs;
        cs.numQubits = k;
        cs.init = *init;
        cs.assignment = sub.assignment;
        cs.terms = std::make_shared<const std::vector<CommuteTerm>>(
            makeCommuteTerms(moves));
        cs.objective = std::make_shared<const model::Polynomial>(
            sub.reduced.minimizedObjective());
        cs.costTable = tabulate(*cs.objective, k);
        // Layer fusion is compile-relevant (the plan ships with the
        // artifacts and the cache key carries the flag); with fusion
        // off the artifacts stay plan-free and the run uses the
        // per-term/uncompressed kernels.
        if (opts_.engine.fusion)
            cs.fusedPlan = std::make_shared<const FusedLayerPlan>(
                buildFusedLayerPlan(*cs.costTable, *cs.terms));

        // Fig. 14 ablation: extra basic gates a generic two-level
        // synthesis of each local unitary would cost over Lemma 2.
        if (opts_.genericSynthesisPadding) {
            for (const auto &term : *cs.terms) {
                const std::size_t generic = genericTermSynthesisGates(term, 0.7);
                circuit::Circuit one(k);
                appendCommuteTermCircuit(one, term, 0.7);
                const std::size_t lemma2 =
                    circuit::transpile(one).gateCount();
                if (generic > lemma2)
                    cs.padPairs += (generic - lemma2) / 2;
            }
        }
        art->subs.push_back(std::move(cs));
    }
    if (art->subs.empty())
        CHOCOQ_FATAL("problem " << p.name()
                     << " has no feasible assignment");
    art->seconds = compile_timer.seconds();
    return art;
}

SolverOutcome
ChocoQSolver::solveCompiled(const model::Problem &p,
                            const ChocoQArtifacts &art) const
{
    // SubRun closures capture only shared_ptr-to-const artifact pieces
    // (plus plain values), so many jobs may run off one ChocoQArtifacts
    // concurrently.
    std::vector<SubRun> runs;
    runs.reserve(art.subs.size());
    const EliminationPlan &plan = art.plan;
    for (const auto &cs : art.subs) {
        const int k = cs.numQubits;
        const Basis x0 = cs.init;
        const Basis assignment = cs.assignment;
        const auto f = cs.objective;
        const auto terms = cs.terms;
        const auto table = cs.costTable;
        const std::size_t pad_pairs = cs.padPairs;

        SubRun run;
        run.numQubits = k;
        run.init = x0;
        run.costTable = table;
        run.build = [k, x0, f, terms,
                     pad_pairs](const std::vector<double> &theta) {
            circuit::Circuit c = chocoAnsatz(k, x0, *f, *terms, theta);
            if (pad_pairs > 0)
                appendIdentityPadding(c, pad_pairs * (theta.size() / 2));
            return c;
        };
        if (!opts_.gateLevelLoop) {
            const auto plan = opts_.engine.fusion ? cs.fusedPlan : nullptr;
            if (plan) {
                // Fused layers: value-compressed objective phase folded
                // into the first commute-group sweep, remaining groups as
                // grouped rotations — bit-identical to the unfused
                // closures below (tested property). The scratch buffers
                // are shared across evaluations of this run (one engine
                // run is single-threaded over its SubRuns), so the hot
                // loop stays allocation-free in steady state.
                auto scratch = std::make_shared<std::vector<sim::Cplx>>();
                run.evolve = [x0, table, plan,
                              scratch](sim::StateVector &state,
                                       const std::vector<double> &theta) {
                    state.reset(x0);
                    const std::size_t layers = theta.size() / 2;
                    for (std::size_t l = 0; l < layers; ++l)
                        applyFusedLayer(state, *plan, *table, theta[2 * l],
                                        theta[2 * l + 1], *scratch);
                };
                auto cs_scratch = std::make_shared<std::vector<double>>();
                auto angle_scratch = std::make_shared<std::vector<double>>();
                run.evolveBatch =
                    [x0, table, plan, scratch, cs_scratch, angle_scratch](
                        sim::BatchedStateVector &batch,
                        const std::vector<const std::vector<double> *>
                            &thetas) {
                        batch.reset(x0);
                        const std::size_t lanes = batch.lanes();
                        const std::size_t layers = thetas[0]->size() / 2;
                        angle_scratch->resize(2 * lanes);
                        double *gammas = angle_scratch->data();
                        double *betas = gammas + lanes;
                        for (std::size_t l = 0; l < layers; ++l) {
                            for (std::size_t b = 0; b < lanes; ++b) {
                                gammas[b] = (*thetas[b])[2 * l];
                                betas[b] = (*thetas[b])[2 * l + 1];
                            }
                            applyFusedLayerBatched(batch, *plan, *table,
                                                   gammas, betas, *scratch,
                                                   *cs_scratch);
                        }
                    };
                if (plan->compressedPhase) {
                    // Aliasing views into the plan: the compressed cost
                    // table doubles as the expectation observable.
                    run.costDistinct =
                        std::shared_ptr<const std::vector<double>>(
                            plan, &plan->distinctValues);
                    run.costIndex =
                        std::shared_ptr<const std::vector<std::uint16_t>>(
                            plan, &plan->valueIndex);
                }
            } else {
                run.evolve = [x0, table,
                              terms](sim::StateVector &state,
                                     const std::vector<double> &theta) {
                    state.reset(x0);
                    const std::size_t layers = theta.size() / 2;
                    for (std::size_t l = 0; l < layers; ++l) {
                        state.applyPhaseTable(*table, theta[2 * l]);
                        applyCommuteLayer(state, *terms, theta[2 * l + 1]);
                    }
                };
                // SoA multi-start: per lane this is exactly evolve()'s
                // per-amplitude arithmetic; the batched kernels pay the
                // phase-table loads and index enumeration once per lane
                // group instead of once per start.
                auto cs_scratch = std::make_shared<std::vector<double>>();
                auto angle_scratch = std::make_shared<std::vector<double>>();
                run.evolveBatch =
                    [x0, table, terms, cs_scratch, angle_scratch](
                        sim::BatchedStateVector &batch,
                        const std::vector<const std::vector<double> *>
                            &thetas) {
                        batch.reset(x0);
                        const std::size_t lanes = batch.lanes();
                        const std::size_t layers = thetas[0]->size() / 2;
                        angle_scratch->resize(2 * lanes);
                        double *gammas = angle_scratch->data();
                        double *betas = gammas + lanes;
                        for (std::size_t l = 0; l < layers; ++l) {
                            for (std::size_t b = 0; b < lanes; ++b) {
                                gammas[b] = (*thetas[b])[2 * l];
                                betas[b] = (*thetas[b])[2 * l + 1];
                            }
                            batch.applyPhaseTable(*table, gammas);
                            applyCommuteLayerBatched(batch, *terms, betas,
                                                     *cs_scratch);
                        }
                    };
            }
        }
        run.lift = [plan, assignment](Basis x) {
            return liftToFull(x, plan, assignment);
        };
        runs.push_back(std::move(run));
    }

    EngineOptions engine = opts_.engine;
    if (engine.theta0.empty()) {
        // Deterministic multi-start grid: QAOA angle landscapes are
        // periodic and multi-modal, and wide beta values matter for the
        // commute driver (a pair rotation only completes a transfer near
        // beta = pi/2 per move).
        auto tile = [&](double g, double b) {
            std::vector<double> theta;
            for (int l = 0; l < opts_.layers; ++l) {
                theta.push_back(g);
                theta.push_back(b);
            }
            return theta;
        };
        engine.theta0 = tile(0.4, 0.7);
        engine.extraStarts = {tile(0.8, 2.2), tile(2.4, 1.2),
                              tile(1.2, 3.0)};
    }

    const EngineResult res =
        runQaoa(runs, [&](Basis x) { return p.minimizedObjectiveOf(x); },
                engine);

    SolverOutcome out;
    out.distribution = res.distribution;
    out.iterations = res.opt.iterations;
    out.evaluations = res.opt.evaluations;
    out.bestCost = res.opt.bestValue;
    out.trace = res.opt.trace;
    out.logicalDepth = res.logicalDepth;
    out.basisDepth = res.basisDepth;
    out.basisGateCount = res.basisGateCount;
    out.basisTwoQubitCount = res.basisTwoQubitCount;
    out.qubitsUsed = res.qubitsUsed;
    out.circuitsPerIteration = static_cast<int>(runs.size());
    out.compileSeconds = art.seconds + res.compileSeconds;
    out.simSeconds = res.simSeconds;
    out.classicalSeconds = res.classicalSeconds;
    return out;
}

SolverOutcome
ChocoQSolver::solve(const model::Problem &p) const
{
    return solveCompiled(p, *compile(p));
}

} // namespace chocoq::core
