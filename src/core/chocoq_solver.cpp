#include "core/chocoq_solver.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "circuit/transpile.hpp"
#include "core/circuits.hpp"
#include "model/exact.hpp"

namespace chocoq::core
{

namespace
{

/** Precompute a polynomial's value on every basis state of k qubits. */
std::shared_ptr<std::vector<double>>
tabulate(const model::Polynomial &f, int k)
{
    auto table = std::make_shared<std::vector<double>>(std::size_t{1} << k);
    for (std::size_t i = 0; i < table->size(); ++i)
        (*table)[i] = f.evaluate(i);
    return table;
}

} // namespace

ChocoQSolver::ChocoQSolver(ChocoQOptions opts) : opts_(std::move(opts))
{
    CHOCOQ_ASSERT(opts_.layers >= 1, "Choco-Q needs at least one layer");
    CHOCOQ_ASSERT(opts_.eliminate >= 0, "negative elimination count");
}

ChocoQCompilation
ChocoQSolver::compileOnly(const model::Problem &p) const
{
    Timer timer;
    ChocoQCompilation out;
    out.basis = computeMoveBasis(p);
    const int e = std::min(opts_.eliminate, p.numVars() - 1);
    out.plan = chooseElimination(p, e);
    const auto subs = buildSubInstances(p, out.plan);
    for (const auto &sub : subs) {
        if (!model::findFeasible(sub.reduced))
            continue;
        ++out.subInstances;
        if (out.terms.empty()) {
            const MoveBasis rb = computeMoveBasis(sub.reduced);
            out.terms = makeCommuteTerms(expandMoveSet(
                rb, sub.reduced.constraints(),
                std::max<std::size_t>(opts_.moveSetFactor, 1)
                    * std::max<std::size_t>(rb.moves.size(), 1)));
        }
    }
    out.seconds = timer.seconds();
    return out;
}

SolverOutcome
ChocoQSolver::solve(const model::Problem &p) const
{
    Timer compile_timer;
    const int e = std::min(opts_.eliminate, p.numVars() - 1);
    const EliminationPlan plan = chooseElimination(p, e);
    const auto subs = buildSubInstances(p, plan);
    const int k = static_cast<int>(plan.kept.size());

    std::vector<SubRun> runs;
    for (const auto &sub : subs) {
        const auto init = model::findFeasible(sub.reduced);
        if (!init)
            continue; // this assignment of eliminated vars is infeasible

        const MoveBasis rb = computeMoveBasis(sub.reduced);
        const auto moves = expandMoveSet(
            rb, sub.reduced.constraints(),
            std::max<std::size_t>(opts_.moveSetFactor, 1)
                * std::max<std::size_t>(rb.moves.size(), 1));
        auto terms = std::make_shared<std::vector<CommuteTerm>>(
            makeCommuteTerms(moves));
        auto f = std::make_shared<model::Polynomial>(
            sub.reduced.minimizedObjective());
        auto table = tabulate(*f, k);
        const Basis assignment = sub.assignment;
        const Basis x0 = *init;

        // Fig. 14 ablation: extra basic gates a generic two-level
        // synthesis of each local unitary would cost over Lemma 2.
        std::size_t pad_pairs = 0;
        if (opts_.genericSynthesisPadding) {
            for (const auto &term : *terms) {
                const std::size_t generic = genericTermSynthesisGates(term, 0.7);
                circuit::Circuit one(k);
                appendCommuteTermCircuit(one, term, 0.7);
                const std::size_t lemma2 =
                    circuit::transpile(one).gateCount();
                if (generic > lemma2)
                    pad_pairs += (generic - lemma2) / 2;
            }
        }

        SubRun run;
        run.numQubits = k;
        run.init = x0;
        run.costTable = table;
        run.build = [k, x0, f, terms,
                     pad_pairs](const std::vector<double> &theta) {
            circuit::Circuit c = chocoAnsatz(k, x0, *f, *terms, theta);
            if (pad_pairs > 0)
                appendIdentityPadding(c, pad_pairs * (theta.size() / 2));
            return c;
        };
        if (!opts_.gateLevelLoop) {
            run.evolve = [x0, table,
                          terms](sim::StateVector &state,
                                 const std::vector<double> &theta) {
                state.reset(x0);
                const std::size_t layers = theta.size() / 2;
                for (std::size_t l = 0; l < layers; ++l) {
                    state.applyPhaseTable(*table, theta[2 * l]);
                    applyCommuteLayer(state, *terms, theta[2 * l + 1]);
                }
            };
        }
        run.lift = [plan, assignment](Basis x) {
            return liftToFull(x, plan, assignment);
        };
        runs.push_back(std::move(run));
    }
    if (runs.empty())
        CHOCOQ_FATAL("problem " << p.name()
                     << " has no feasible assignment");
    const double plan_seconds = compile_timer.seconds();

    EngineOptions engine = opts_.engine;
    if (engine.theta0.empty()) {
        // Deterministic multi-start grid: QAOA angle landscapes are
        // periodic and multi-modal, and wide beta values matter for the
        // commute driver (a pair rotation only completes a transfer near
        // beta = pi/2 per move).
        auto tile = [&](double g, double b) {
            std::vector<double> theta;
            for (int l = 0; l < opts_.layers; ++l) {
                theta.push_back(g);
                theta.push_back(b);
            }
            return theta;
        };
        engine.theta0 = tile(0.4, 0.7);
        engine.extraStarts = {tile(0.8, 2.2), tile(2.4, 1.2),
                              tile(1.2, 3.0)};
    }

    const EngineResult res =
        runQaoa(runs, [&](Basis x) { return p.minimizedObjectiveOf(x); },
                engine);

    SolverOutcome out;
    out.distribution = res.distribution;
    out.iterations = res.opt.iterations;
    out.evaluations = res.opt.evaluations;
    out.bestCost = res.opt.bestValue;
    out.trace = res.opt.trace;
    out.logicalDepth = res.logicalDepth;
    out.basisDepth = res.basisDepth;
    out.basisGateCount = res.basisGateCount;
    out.basisTwoQubitCount = res.basisTwoQubitCount;
    out.qubitsUsed = res.qubitsUsed;
    out.circuitsPerIteration = static_cast<int>(runs.size());
    out.compileSeconds = plan_seconds + res.compileSeconds;
    out.simSeconds = res.simSeconds;
    out.classicalSeconds = res.classicalSeconds;
    return out;
}

} // namespace chocoq::core
