/**
 * @file
 * Variable elimination (Section IV-C).
 *
 * The depth of the serialized driver is proportional to the total number
 * of non-zeros across the move basis, so Choco-Q eliminates the variable
 * with the most non-zero entries across all solutions of C u = 0, rebuilds
 * the constraint system over the remaining variables, and runs one
 * (smaller) circuit per assignment of the eliminated variables. Outputs
 * lifted back to the full variable space still satisfy the original
 * constraints (tested property).
 */

#ifndef CHOCOQ_CORE_ELIMINATE_HPP
#define CHOCOQ_CORE_ELIMINATE_HPP

#include <vector>

#include "common/bitops.hpp"
#include "model/problem.hpp"

namespace chocoq::core
{

/** Variable-elimination plan. */
struct EliminationPlan
{
    /** Eliminated variable indices (original numbering, pick order). */
    std::vector<int> eliminated;
    /** Kept variable indices in ascending original order. */
    std::vector<int> kept;
};

/** One reduced instance per assignment of the eliminated variables. */
struct SubInstance
{
    /** Reduced problem over the kept variables (renumbered 0..k-1). */
    model::Problem reduced;
    /** Assignment bits: bit j = value of plan.eliminated[j]. */
    Basis assignment = 0;
};

/**
 * Select @p count variables to eliminate using the most-non-zeros rule.
 * Selection recomputes the move basis after each pick; stops early when
 * no variable appears in any move.
 */
EliminationPlan chooseElimination(const model::Problem &p, int count);

/**
 * Build the reduced instances for every assignment of the eliminated
 * variables. Assignments whose substituted constraint system is trivially
 * inconsistent (a zero row with non-zero rhs) are dropped here; deeper
 * infeasibility is detected by the per-instance feasible-state search.
 */
std::vector<SubInstance> buildSubInstances(const model::Problem &p,
                                           const EliminationPlan &plan);

/** Map a reduced-space basis state back to the full variable space. */
Basis liftToFull(Basis reduced_bits, const EliminationPlan &plan,
                 Basis assignment);

} // namespace chocoq::core

#endif // CHOCOQ_CORE_ELIMINATE_HPP
