#include "core/layer_fusion.hpp"

#include <cmath>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"

namespace chocoq::core
{

namespace
{

/** Exact double identity for value compression: distinct bit patterns
 * stay distinct (no epsilon merging — merged values would change the
 * sincos input and break bit-identity with the uncompressed sweep). */
std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    return bits;
}

} // namespace

std::size_t
FusedLayerPlan::memoryBytes() const
{
    std::size_t bytes = sizeof(FusedLayerPlan);
    bytes += distinctValues.capacity() * sizeof(double);
    bytes += valueIndex.capacity() * sizeof(std::uint16_t);
    for (const auto &g : groups)
        bytes += sizeof(CommuteGroup) + g.vBits.capacity() * sizeof(Basis);
    return bytes;
}

FusedLayerPlan
buildFusedLayerPlan(const std::vector<double> &cost_table,
                    const std::vector<CommuteTerm> &terms)
{
    FusedLayerPlan plan;

    // Diagonal half: value-compress the eigenvalue table. Objective
    // polynomials over a few integer-coefficient monomials take far
    // fewer distinct values than 2^k; bail out (rare) past the uint16
    // index range and keep the plain table sweep for that sub.
    constexpr std::size_t kMaxDistinct = 1u << 16;
    std::unordered_map<std::uint64_t, std::uint16_t> seen;
    seen.reserve(256);
    std::vector<std::uint16_t> index(cost_table.size());
    bool compressible = true;
    for (std::size_t i = 0; i < cost_table.size(); ++i) {
        const std::uint64_t bits = doubleBits(cost_table[i]);
        auto it = seen.find(bits);
        if (it == seen.end()) {
            if (seen.size() >= kMaxDistinct) {
                compressible = false;
                break;
            }
            it = seen.emplace(bits, static_cast<std::uint16_t>(seen.size()))
                     .first;
            plan.distinctValues.push_back(cost_table[i]);
        }
        index[i] = it->second;
    }
    if (compressible && !cost_table.empty()) {
        plan.compressedPhase = true;
        plan.valueIndex = std::move(index);
    } else {
        plan.distinctValues.clear();
    }

    // Commute half: greedy in-order grouping. A term joins the current
    // group iff it shares the support mask and its pair set {v, v-bar}
    // is disjoint from every pair already in the group — the exactness
    // condition for reordering the per-run interleaved application.
    for (const auto &term : terms) {
        bool joined = false;
        if (!plan.groups.empty()) {
            CommuteGroup &g = plan.groups.back();
            if (g.supportMask == term.supportMask) {
                bool disjoint = true;
                for (const Basis v : g.vBits)
                    if (v == term.vBits
                        || v == (term.vBits ^ term.supportMask)) {
                        disjoint = false;
                        break;
                    }
                if (disjoint) {
                    g.vBits.push_back(term.vBits);
                    joined = true;
                }
            }
        }
        if (!joined) {
            CommuteGroup g;
            g.supportMask = term.supportMask;
            g.vBits.push_back(term.vBits);
            plan.groups.push_back(std::move(g));
        }
        ++plan.termCount;
    }
    return plan;
}

void
applyFusedObjectivePhase(sim::StateVector &state, const FusedLayerPlan &plan,
                         const std::vector<double> &cost_table, double gamma,
                         std::vector<sim::Cplx> &phase_scratch)
{
    if (plan.compressedPhase)
        state.applyPhaseTableCompressed(plan.distinctValues, plan.valueIndex,
                                        gamma, phase_scratch);
    else
        state.applyPhaseTable(cost_table, gamma);
}

void
applyFusedCommuteLayer(sim::StateVector &state, const FusedLayerPlan &plan,
                       double beta)
{
    const double c = std::cos(beta);
    const double s = std::sin(beta);
    for (const auto &g : plan.groups) {
        if (g.vBits.size() == 1)
            state.applyPairRotation(g.supportMask, g.vBits[0], c, s);
        else
            state.applyPairRotationGroup(g.supportMask, g.vBits.data(),
                                         g.vBits.size(), c, s);
    }
}

void
applyFusedLayer(sim::StateVector &state, const FusedLayerPlan &plan,
                const std::vector<double> &cost_table, double gamma,
                double beta, std::vector<sim::Cplx> &phase_scratch)
{
    if (!plan.compressedPhase || plan.groups.empty()) {
        applyFusedObjectivePhase(state, plan, cost_table, gamma,
                                 phase_scratch);
        applyFusedCommuteLayer(state, plan, beta);
        return;
    }
    // Per-distinct-value phases built with applyPhaseTableCompressed's
    // exact phi expression, then folded into the first group's sweep.
    phase_scratch.resize(plan.distinctValues.size());
    for (std::size_t d = 0; d < plan.distinctValues.size(); ++d) {
        const double phi = -gamma * plan.distinctValues[d];
        phase_scratch[d] = sim::Cplx{std::cos(phi), std::sin(phi)};
    }
    const double c = std::cos(beta);
    const double s = std::sin(beta);
    const CommuteGroup &g0 = plan.groups.front();
    state.applyPhasedPairRotationGroup(g0.supportMask, g0.vBits.data(),
                                       g0.vBits.size(), c, s,
                                       phase_scratch.data(),
                                       plan.valueIndex.data());
    for (std::size_t gi = 1; gi < plan.groups.size(); ++gi) {
        const CommuteGroup &g = plan.groups[gi];
        if (g.vBits.size() == 1)
            state.applyPairRotation(g.supportMask, g.vBits[0], c, s);
        else
            state.applyPairRotationGroup(g.supportMask, g.vBits.data(),
                                         g.vBits.size(), c, s);
    }
}

void
applyFusedObjectivePhaseBatched(sim::BatchedStateVector &batch,
                                const FusedLayerPlan &plan,
                                const std::vector<double> &cost_table,
                                const double *gammas,
                                std::vector<sim::Cplx> &phase_scratch)
{
    if (plan.compressedPhase)
        batch.applyPhaseTableCompressed(plan.distinctValues,
                                        plan.valueIndex, gammas,
                                        phase_scratch);
    else
        batch.applyPhaseTable(cost_table, gammas);
}

namespace
{

/** Per-lane cos/sin for a shared-angle layer (scalar expressions). */
std::pair<const double *, const double *>
laneTrig(const double *betas, std::size_t lanes,
         std::vector<double> &cs_scratch)
{
    cs_scratch.resize(2 * lanes);
    double *c = cs_scratch.data();
    double *s = c + lanes;
    for (std::size_t b = 0; b < lanes; ++b) {
        c[b] = std::cos(betas[b]);
        s[b] = std::sin(betas[b]);
    }
    return {c, s};
}

} // namespace

void
applyFusedCommuteLayerBatched(sim::BatchedStateVector &batch,
                              const FusedLayerPlan &plan,
                              const double *betas,
                              std::vector<double> &cs_scratch)
{
    const auto [c, s] = laneTrig(betas, batch.lanes(), cs_scratch);
    for (const auto &g : plan.groups) {
        if (g.vBits.size() == 1)
            batch.applyPairRotation(g.supportMask, g.vBits[0], c, s);
        else
            batch.applyPairRotationGroup(g.supportMask, g.vBits.data(),
                                         g.vBits.size(), c, s);
    }
}

void
applyFusedLayerBatched(sim::BatchedStateVector &batch,
                       const FusedLayerPlan &plan,
                       const std::vector<double> &cost_table,
                       const double *gammas, const double *betas,
                       std::vector<sim::Cplx> &phase_scratch,
                       std::vector<double> &cs_scratch)
{
    if (!plan.compressedPhase || plan.groups.empty()) {
        applyFusedObjectivePhaseBatched(batch, plan, cost_table, gammas,
                                        phase_scratch);
        applyFusedCommuteLayerBatched(batch, plan, betas, cs_scratch);
        return;
    }
    const std::size_t lanes = batch.lanes();
    // Lane-minor LUT with applyPhaseTableCompressed's phi expression.
    phase_scratch.resize(plan.distinctValues.size() * lanes);
    for (std::size_t d = 0; d < plan.distinctValues.size(); ++d)
        for (std::size_t b = 0; b < lanes; ++b) {
            const double phi = -gammas[b] * plan.distinctValues[d];
            phase_scratch[d * lanes + b] =
                sim::Cplx{std::cos(phi), std::sin(phi)};
        }
    const auto [c, s] = laneTrig(betas, lanes, cs_scratch);
    const CommuteGroup &g0 = plan.groups.front();
    batch.applyPhasedPairRotationGroup(g0.supportMask, g0.vBits.data(),
                                       g0.vBits.size(), c, s,
                                       phase_scratch.data(),
                                       plan.valueIndex.data());
    for (std::size_t gi = 1; gi < plan.groups.size(); ++gi) {
        const CommuteGroup &g = plan.groups[gi];
        if (g.vBits.size() == 1)
            batch.applyPairRotation(g.supportMask, g.vBits[0], c, s);
        else
            batch.applyPairRotationGroup(g.supportMask, g.vBits.data(),
                                         g.vBits.size(), c, s);
    }
}

} // namespace chocoq::core
