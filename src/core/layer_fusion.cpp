#include "core/layer_fusion.hpp"

#include <cmath>
#include <cstring>
#include <unordered_map>

#include "common/error.hpp"

namespace chocoq::core
{

namespace
{

/** Exact double identity for value compression: distinct bit patterns
 * stay distinct (no epsilon merging — merged values would change the
 * sincos input and break bit-identity with the uncompressed sweep). */
std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    return bits;
}

} // namespace

std::size_t
FusedLayerPlan::memoryBytes() const
{
    std::size_t bytes = sizeof(FusedLayerPlan);
    bytes += distinctValues.capacity() * sizeof(double);
    bytes += valueIndex.capacity() * sizeof(std::uint16_t);
    for (const auto &g : groups)
        bytes += sizeof(CommuteGroup) + g.vBits.capacity() * sizeof(Basis);
    return bytes;
}

FusedLayerPlan
buildFusedLayerPlan(const std::vector<double> &cost_table,
                    const std::vector<CommuteTerm> &terms)
{
    FusedLayerPlan plan;

    // Diagonal half: value-compress the eigenvalue table. Objective
    // polynomials over a few integer-coefficient monomials take far
    // fewer distinct values than 2^k; bail out (rare) past the uint16
    // index range and keep the plain table sweep for that sub.
    constexpr std::size_t kMaxDistinct = 1u << 16;
    std::unordered_map<std::uint64_t, std::uint16_t> seen;
    seen.reserve(256);
    std::vector<std::uint16_t> index(cost_table.size());
    bool compressible = true;
    for (std::size_t i = 0; i < cost_table.size(); ++i) {
        const std::uint64_t bits = doubleBits(cost_table[i]);
        auto it = seen.find(bits);
        if (it == seen.end()) {
            if (seen.size() >= kMaxDistinct) {
                compressible = false;
                break;
            }
            it = seen.emplace(bits, static_cast<std::uint16_t>(seen.size()))
                     .first;
            plan.distinctValues.push_back(cost_table[i]);
        }
        index[i] = it->second;
    }
    if (compressible && !cost_table.empty()) {
        plan.compressedPhase = true;
        plan.valueIndex = std::move(index);
    } else {
        plan.distinctValues.clear();
    }

    // Commute half: greedy in-order grouping. A term joins the current
    // group iff it shares the support mask and its pair set {v, v-bar}
    // is disjoint from every pair already in the group — the exactness
    // condition for reordering the per-run interleaved application.
    for (const auto &term : terms) {
        bool joined = false;
        if (!plan.groups.empty()) {
            CommuteGroup &g = plan.groups.back();
            if (g.supportMask == term.supportMask) {
                bool disjoint = true;
                for (const Basis v : g.vBits)
                    if (v == term.vBits
                        || v == (term.vBits ^ term.supportMask)) {
                        disjoint = false;
                        break;
                    }
                if (disjoint) {
                    g.vBits.push_back(term.vBits);
                    joined = true;
                }
            }
        }
        if (!joined) {
            CommuteGroup g;
            g.supportMask = term.supportMask;
            g.vBits.push_back(term.vBits);
            plan.groups.push_back(std::move(g));
        }
        ++plan.termCount;
    }
    return plan;
}

void
applyFusedObjectivePhase(sim::StateVector &state, const FusedLayerPlan &plan,
                         const std::vector<double> &cost_table, double gamma,
                         std::vector<sim::Cplx> &phase_scratch)
{
    if (plan.compressedPhase)
        state.applyPhaseTableCompressed(plan.distinctValues, plan.valueIndex,
                                        gamma, phase_scratch);
    else
        state.applyPhaseTable(cost_table, gamma);
}

void
applyFusedCommuteLayer(sim::StateVector &state, const FusedLayerPlan &plan,
                       double beta)
{
    const double c = std::cos(beta);
    const double s = std::sin(beta);
    for (const auto &g : plan.groups) {
        if (g.vBits.size() == 1)
            state.applyPairRotation(g.supportMask, g.vBits[0], c, s);
        else
            state.applyPairRotationGroup(g.supportMask, g.vBits.data(),
                                         g.vBits.size(), c, s);
    }
}

} // namespace chocoq::core
