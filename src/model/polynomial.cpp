#include "model/polynomial.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace chocoq::model
{

Polynomial
Polynomial::constant(double c)
{
    Polynomial p;
    p.addTerm({}, c);
    return p;
}

Polynomial
Polynomial::variable(int v, double c)
{
    Polynomial p;
    p.addTerm({v}, c);
    return p;
}

Polynomial
Polynomial::affine(const std::vector<double> &coeffs, double c0)
{
    Polynomial p;
    p.addTerm({}, c0);
    for (std::size_t i = 0; i < coeffs.size(); ++i)
        p.addTerm({static_cast<int>(i)}, coeffs[i]);
    return p;
}

void
Polynomial::addTerm(Monomial vars, double coeff)
{
    if (coeff == 0.0)
        return;
    std::sort(vars.begin(), vars.end());
    for (std::size_t i = 0; i + 1 < vars.size(); ++i)
        CHOCOQ_ASSERT(vars[i] != vars[i + 1],
                      "monomial with repeated variable");
    for (int v : vars)
        CHOCOQ_ASSERT(v >= 0, "negative variable index");
    auto it = terms_.find(vars);
    if (it == terms_.end()) {
        terms_.emplace(std::move(vars), coeff);
    } else {
        it->second += coeff;
        if (it->second == 0.0)
            terms_.erase(it);
    }
}

int
Polynomial::degree() const
{
    std::size_t d = 0;
    for (const auto &[vars, c] : terms_)
        d = std::max(d, vars.size());
    return static_cast<int>(d);
}

int
Polynomial::maxVar() const
{
    int m = -1;
    for (const auto &[vars, c] : terms_)
        if (!vars.empty())
            m = std::max(m, vars.back());
    return m;
}

double
Polynomial::evaluate(Basis idx) const
{
    double acc = 0.0;
    for (const auto &[vars, c] : terms_) {
        bool all = true;
        for (int v : vars) {
            if (!getBit(idx, v)) {
                all = false;
                break;
            }
        }
        if (all)
            acc += c;
    }
    return acc;
}

Polynomial
Polynomial::operator+(const Polynomial &rhs) const
{
    Polynomial out = *this;
    out += rhs;
    return out;
}

Polynomial &
Polynomial::operator+=(const Polynomial &rhs)
{
    for (const auto &[vars, c] : rhs.terms_)
        addTerm(vars, c);
    return *this;
}

Polynomial
Polynomial::operator-(const Polynomial &rhs) const
{
    Polynomial out = *this;
    for (const auto &[vars, c] : rhs.terms_)
        out.addTerm(vars, -c);
    return out;
}

Polynomial
Polynomial::operator*(const Polynomial &rhs) const
{
    Polynomial out;
    for (const auto &[va, ca] : terms_) {
        for (const auto &[vb, cb] : rhs.terms_) {
            // Merge with idempotent variables: x^2 = x.
            Monomial merged;
            merged.reserve(va.size() + vb.size());
            std::set_union(va.begin(), va.end(), vb.begin(), vb.end(),
                           std::back_inserter(merged));
            out.addTerm(std::move(merged), ca * cb);
        }
    }
    return out;
}

Polynomial
Polynomial::operator*(double scalar) const
{
    Polynomial out;
    if (scalar == 0.0)
        return out;
    for (const auto &[vars, c] : terms_)
        out.terms_[vars] = c * scalar;
    return out;
}

Polynomial
Polynomial::substitute(int v, int value) const
{
    CHOCOQ_ASSERT(value == 0 || value == 1, "binary substitution only");
    Polynomial out;
    for (const auto &[vars, c] : terms_) {
        const bool has = std::binary_search(vars.begin(), vars.end(), v);
        if (!has) {
            out.addTerm(vars, c);
        } else if (value == 1) {
            Monomial rest;
            rest.reserve(vars.size() - 1);
            for (int w : vars)
                if (w != v)
                    rest.push_back(w);
            out.addTerm(std::move(rest), c);
        }
        // value == 0 with the variable present: term vanishes.
    }
    return out;
}

Polynomial
Polynomial::remapped(const std::vector<int> &new_of) const
{
    Polynomial out;
    for (const auto &[vars, c] : terms_) {
        Monomial mapped;
        mapped.reserve(vars.size());
        for (int v : vars) {
            CHOCOQ_ASSERT(v < static_cast<int>(new_of.size())
                              && new_of[v] >= 0,
                          "remap drops a used variable");
            mapped.push_back(new_of[v]);
        }
        out.addTerm(std::move(mapped), c);
    }
    return out;
}

void
Polynomial::prune(double eps)
{
    for (auto it = terms_.begin(); it != terms_.end();) {
        if (std::abs(it->second) < eps)
            it = terms_.erase(it);
        else
            ++it;
    }
}

std::string
Polynomial::str() const
{
    if (terms_.empty())
        return "0";
    std::ostringstream os;
    bool first = true;
    for (const auto &[vars, c] : terms_) {
        const double mag = std::abs(c);
        if (first) {
            if (c < 0)
                os << "-";
            first = false;
        } else {
            os << (c < 0 ? " - " : " + ");
        }
        const bool unit_coeff = std::abs(mag - 1.0) < 1e-12 && !vars.empty();
        if (!unit_coeff)
            os << mag;
        for (std::size_t i = 0; i < vars.size(); ++i) {
            if (i > 0 || !unit_coeff)
                os << "*";
            os << "x" << vars[i];
        }
    }
    return os.str();
}

} // namespace chocoq::model
