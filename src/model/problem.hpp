/**
 * @file
 * The constrained-binary-optimization problem model of Eq. (1):
 *
 *     min or max f(x),  s.t.  C x = c,  x in {0,1}^n
 *
 * with a multilinear objective f and integer linear equality constraints.
 */

#ifndef CHOCOQ_MODEL_PROBLEM_HPP
#define CHOCOQ_MODEL_PROBLEM_HPP

#include <string>
#include <vector>

#include "common/bitops.hpp"
#include "model/polynomial.hpp"

namespace chocoq::model
{

/** Optimization direction. */
enum class Sense
{
    Minimize,
    Maximize
};

/** One linear equality sum_i coeffs[i] x_i = rhs with integer coefficients. */
struct LinearConstraint
{
    std::vector<int> coeffs;
    int rhs = 0;

    /** Left-hand side value under the assignment @p idx. */
    int
    lhs(Basis idx) const
    {
        int acc = 0;
        for (std::size_t i = 0; i < coeffs.size(); ++i)
            if (coeffs[i] != 0 && getBit(idx, static_cast<int>(i)))
                acc += coeffs[i];
        return acc;
    }

    bool satisfied(Basis idx) const { return lhs(idx) == rhs; }

    /** Structural equality (exact coefficients and right-hand side). */
    friend bool operator==(const LinearConstraint &,
                           const LinearConstraint &) = default;

    /**
     * True when all coefficients share one sign (the "summation format"
     * x_{i1} + ... + x_{ik} = c that the cyclic Hamiltonian [47] supports).
     */
    bool isSummationFormat() const;
};

/** A constrained binary optimization instance. */
class Problem
{
  public:
    /** Problem over @p num_vars binary variables. */
    explicit Problem(int num_vars, Sense sense = Sense::Minimize,
                     std::string name = "problem");

    int numVars() const { return n_; }
    Sense sense() const { return sense_; }
    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    /** The raw objective f (in the problem's own sense). */
    const Polynomial &objective() const { return objective_; }
    void setObjective(Polynomial f);

    const std::vector<LinearConstraint> &constraints() const
    {
        return constraints_;
    }

    /** Add the equality sum coeffs[i] x_i = rhs. */
    void addEquality(std::vector<int> coeffs, int rhs);

    /**
     * Add the inequality sum coeffs[i] x_i <= rhs by introducing binary
     * slack variables (rhs - lhs must fit in the slacks). Only the form
     * needed by the benchmark problems (slack range 1) is provided:
     * lhs + s = rhs with a fresh slack variable s.
     * @return Index of the new slack variable.
     */
    int addInequalityWithSlack(std::vector<int> coeffs, int rhs);

    /** f(x) in the problem's own sense. */
    double objectiveOf(Basis idx) const { return objective_.evaluate(idx); }

    /**
     * Objective converted to minimization form (negated for Maximize).
     * All solvers work on this form.
     */
    double minimizedObjectiveOf(Basis idx) const;

    /** The minimization-form objective polynomial. */
    Polynomial minimizedObjective() const;

    /** Sum of |C_i x - c_i| over all constraints. */
    int violation(Basis idx) const;

    bool isFeasible(Basis idx) const { return violation(idx) == 0; }

    /**
     * Minimization-form objective plus lambda * sum_i (C_i x - c_i)^2
     * expanded as a multilinear polynomial — the soft-constraint encoding
     * of penalty-based QAOA [44].
     */
    Polynomial penaltyPolynomial(double lambda) const;

    /** True when every constraint is in summation format. */
    bool allSummationFormat() const;

    /** Multi-line description (name, objective, constraints). */
    std::string str() const;

  private:
    int n_;
    Sense sense_;
    std::string name_;
    Polynomial objective_;
    std::vector<LinearConstraint> constraints_;
};

} // namespace chocoq::model

#endif // CHOCOQ_MODEL_PROBLEM_HPP
