/**
 * @file
 * Exact classical reference solver.
 *
 * Success rate and ARG (Section V-A) are defined against the true optimum,
 * so the benchmark harness needs exact ground truth. The solver is a
 * depth-first enumeration of the feasible set with per-constraint
 * reachability pruning (classic bound propagation): at every node each
 * constraint checks whether its remaining free variables can still reach
 * the right-hand side. For the structured benchmark families (one-hot
 * rows plus slack links) this visits a tiny fraction of the 2^n cube.
 */

#ifndef CHOCOQ_MODEL_EXACT_HPP
#define CHOCOQ_MODEL_EXACT_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "model/problem.hpp"

namespace chocoq::model
{

/** Outcome of exact enumeration. */
struct ExactResult
{
    /** True when at least one assignment satisfies all constraints. */
    bool feasible = false;
    /** Optimal value in minimization form. */
    double optimum = 0.0;
    /** Optimal value in the problem's own sense. */
    double optimumRaw = 0.0;
    /** All optimal assignments (may be several). */
    std::vector<Basis> optima;
    /** Number of feasible assignments enumerated. */
    std::uint64_t feasibleCount = 0;
};

/**
 * Enumerate the feasible set and return the optimum.
 * @param p Problem to solve (n <= 63).
 * @param max_nodes Safety cap on search nodes; exceeded -> FatalError.
 */
ExactResult solveExact(const Problem &p,
                       std::uint64_t max_nodes = 200'000'000ull);

/**
 * Find one feasible assignment (the paper's Step 1 initial state |x*>),
 * or nullopt when the constraint system is infeasible.
 */
std::optional<Basis> findFeasible(const Problem &p);

/**
 * Enumerate up to @p limit feasible assignments (used by tests and by the
 * feasible-subspace analyses).
 */
std::vector<Basis> enumerateFeasible(const Problem &p, std::size_t limit);

} // namespace chocoq::model

#endif // CHOCOQ_MODEL_EXACT_HPP
