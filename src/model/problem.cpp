#include "model/problem.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace chocoq::model
{

bool
LinearConstraint::isSummationFormat() const
{
    int sign = 0;
    for (int c : coeffs) {
        if (c == 0)
            continue;
        if (c != 1 && c != -1)
            return false;
        if (sign == 0)
            sign = c;
        else if (c != sign)
            return false;
    }
    return sign != 0;
}

Problem::Problem(int num_vars, Sense sense, std::string name)
    : n_(num_vars), sense_(sense), name_(std::move(name))
{
    CHOCOQ_ASSERT(num_vars >= 1, "problem needs at least one variable");
}

void
Problem::setObjective(Polynomial f)
{
    if (f.maxVar() >= n_)
        CHOCOQ_FATAL("objective uses variable x" << f.maxVar()
                     << " beyond the declared " << n_ << " variables");
    objective_ = std::move(f);
}

void
Problem::addEquality(std::vector<int> coeffs, int rhs)
{
    if (static_cast<int>(coeffs.size()) > n_)
        CHOCOQ_FATAL("constraint has more coefficients than variables");
    coeffs.resize(n_, 0);
    bool nonzero = false;
    for (int c : coeffs)
        nonzero = nonzero || c != 0;
    if (!nonzero)
        CHOCOQ_FATAL("constraint with all-zero coefficients");
    constraints_.push_back({std::move(coeffs), rhs});
}

int
Problem::addInequalityWithSlack(std::vector<int> coeffs, int rhs)
{
    if (static_cast<int>(coeffs.size()) > n_)
        CHOCOQ_FATAL("constraint has more coefficients than variables");
    coeffs.resize(n_, 0);
    const int slack = n_;
    ++n_;
    coeffs.push_back(1);
    constraints_.push_back({std::move(coeffs), rhs});
    return slack;
}

double
Problem::minimizedObjectiveOf(Basis idx) const
{
    const double v = objective_.evaluate(idx);
    return sense_ == Sense::Minimize ? v : -v;
}

Polynomial
Problem::minimizedObjective() const
{
    return sense_ == Sense::Minimize ? objective_ : objective_ * -1.0;
}

int
Problem::violation(Basis idx) const
{
    int acc = 0;
    for (const auto &con : constraints_)
        acc += std::abs(con.lhs(idx) - con.rhs);
    return acc;
}

Polynomial
Problem::penaltyPolynomial(double lambda) const
{
    Polynomial out = minimizedObjective();
    for (const auto &con : constraints_) {
        std::vector<double> coeffs(con.coeffs.begin(), con.coeffs.end());
        Polynomial gap = Polynomial::affine(
            coeffs, -static_cast<double>(con.rhs));
        out += (gap * gap) * lambda;
    }
    out.prune();
    return out;
}

bool
Problem::allSummationFormat() const
{
    for (const auto &con : constraints_)
        if (!con.isSummationFormat())
            return false;
    return !constraints_.empty();
}

std::string
Problem::str() const
{
    std::ostringstream os;
    os << name_ << ": "
       << (sense_ == Sense::Minimize ? "minimize" : "maximize") << " "
       << objective_.str() << "\n";
    os << "  over " << n_ << " binary variables, " << constraints_.size()
       << " constraints\n";
    for (const auto &con : constraints_) {
        os << "  s.t. ";
        bool first = true;
        for (std::size_t i = 0; i < con.coeffs.size(); ++i) {
            const int c = con.coeffs[i];
            if (c == 0)
                continue;
            if (first) {
                if (c < 0)
                    os << "-";
                first = false;
            } else {
                os << (c < 0 ? " - " : " + ");
            }
            if (std::abs(c) != 1)
                os << std::abs(c) << "*";
            os << "x" << i;
        }
        os << " = " << con.rhs << "\n";
    }
    return os.str();
}

} // namespace chocoq::model
