#include "model/exact.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace chocoq::model
{

namespace
{

/**
 * DFS over variables in index order with per-constraint reachability
 * pruning. Calls @p on_feasible for every feasible leaf; the callback
 * returns false to stop the search early.
 */
class FeasibleSearch
{
  public:
    FeasibleSearch(const Problem &p, std::uint64_t max_nodes)
        : p_(p), maxNodes_(max_nodes)
    {
        const int n = p.numVars();
        const auto &cons = p.constraints();
        // suffixNeg/suffixPos[k][i]: bounds on what variables >= i can
        // still add to constraint k.
        suffixNeg_.resize(cons.size());
        suffixPos_.resize(cons.size());
        for (std::size_t k = 0; k < cons.size(); ++k) {
            suffixNeg_[k].assign(n + 1, 0);
            suffixPos_[k].assign(n + 1, 0);
            for (int i = n - 1; i >= 0; --i) {
                const int c = cons[k].coeffs[i];
                suffixNeg_[k][i] = suffixNeg_[k][i + 1] + std::min(c, 0);
                suffixPos_[k][i] = suffixPos_[k][i + 1] + std::max(c, 0);
            }
        }
        partial_.assign(cons.size(), 0);
    }

    template <typename Fn>
    void
    run(Fn &&on_feasible)
    {
        stop_ = false;
        nodes_ = 0;
        descend(0, 0, std::forward<Fn>(on_feasible));
    }

  private:
    template <typename Fn>
    void
    descend(int var, Basis acc, Fn &&on_feasible)
    {
        if (stop_)
            return;
        if (++nodes_ > maxNodes_)
            CHOCOQ_FATAL("exact solver exceeded the node budget on "
                         << p_.name());
        const auto &cons = p_.constraints();
        for (std::size_t k = 0; k < cons.size(); ++k) {
            const int need = cons[k].rhs - partial_[k];
            if (need < suffixNeg_[k][var] || need > suffixPos_[k][var])
                return; // unreachable
        }
        if (var == p_.numVars()) {
            if (!on_feasible(acc))
                stop_ = true;
            return;
        }
        for (int v = 0; v <= 1; ++v) {
            if (v == 1)
                for (std::size_t k = 0; k < cons.size(); ++k)
                    partial_[k] += cons[k].coeffs[var];
            descend(var + 1, v ? (acc | (Basis{1} << var)) : acc,
                    on_feasible);
            if (v == 1)
                for (std::size_t k = 0; k < cons.size(); ++k)
                    partial_[k] -= cons[k].coeffs[var];
            if (stop_)
                return;
        }
    }

    const Problem &p_;
    std::uint64_t maxNodes_;
    std::uint64_t nodes_ = 0;
    bool stop_ = false;
    std::vector<std::vector<int>> suffixNeg_;
    std::vector<std::vector<int>> suffixPos_;
    std::vector<int> partial_;
};

} // namespace

ExactResult
solveExact(const Problem &p, std::uint64_t max_nodes)
{
    ExactResult out;
    FeasibleSearch search(p, max_nodes);
    double best = 0.0;
    search.run([&](Basis x) {
        const double v = p.minimizedObjectiveOf(x);
        ++out.feasibleCount;
        if (!out.feasible || v < best - 1e-12) {
            out.feasible = true;
            best = v;
            out.optima.clear();
            out.optima.push_back(x);
        } else if (std::abs(v - best) <= 1e-12) {
            out.optima.push_back(x);
        }
        return true;
    });
    if (out.feasible) {
        out.optimum = best;
        out.optimumRaw = p.objectiveOf(out.optima.front());
    }
    return out;
}

std::optional<Basis>
findFeasible(const Problem &p)
{
    std::optional<Basis> found;
    FeasibleSearch search(p, 200'000'000ull);
    search.run([&](Basis x) {
        found = x;
        return false;
    });
    return found;
}

std::vector<Basis>
enumerateFeasible(const Problem &p, std::size_t limit)
{
    std::vector<Basis> out;
    FeasibleSearch search(p, 200'000'000ull);
    search.run([&](Basis x) {
        out.push_back(x);
        return out.size() < limit;
    });
    return out;
}

} // namespace chocoq::model
