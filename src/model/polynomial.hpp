/**
 * @file
 * Multilinear polynomials over binary variables.
 *
 * Objective functions, penalty terms, and the diagonal Hamiltonians they
 * induce are all multilinear polynomials in x_i in {0,1} (x_i^2 == x_i, so
 * every monomial is a product of distinct variables). The polynomial is
 * exactly the diagonal of the objective Hamiltonian H_o obtained by the
 * substitution x_j -> (I - Z_j)/2 of the paper's Step 2, so evaluating it
 * on a basis index gives the corresponding Hamiltonian eigenvalue.
 */

#ifndef CHOCOQ_MODEL_POLYNOMIAL_HPP
#define CHOCOQ_MODEL_POLYNOMIAL_HPP

#include <map>
#include <string>
#include <vector>

#include "common/bitops.hpp"

namespace chocoq::model
{

/**
 * Multilinear polynomial: map from a sorted set of variable indices to a
 * real coefficient. The empty set is the constant term.
 */
class Polynomial
{
  public:
    using Monomial = std::vector<int>;

    Polynomial() = default;

    /** Constant polynomial. */
    static Polynomial constant(double c);

    /** Single-variable polynomial c * x_v. */
    static Polynomial variable(int v, double c = 1.0);

    /**
     * Affine expression c0 + sum_i coeffs[i] * x_i.
     */
    static Polynomial affine(const std::vector<double> &coeffs, double c0);

    /** Add @p coeff * prod(vars); vars may be unsorted, must be distinct. */
    void addTerm(Monomial vars, double coeff);

    const std::map<Monomial, double> &terms() const { return terms_; }

    /** Number of non-zero monomials. */
    std::size_t size() const { return terms_.size(); }

    /** Highest monomial degree (0 for a constant/empty polynomial). */
    int degree() const;

    /** Largest variable index used, or -1 when none. */
    int maxVar() const;

    /** Evaluate on the assignment encoded by @p idx (bit i = x_i). */
    double evaluate(Basis idx) const;

    Polynomial operator+(const Polynomial &rhs) const;
    Polynomial operator-(const Polynomial &rhs) const;
    Polynomial operator*(const Polynomial &rhs) const;
    Polynomial operator*(double scalar) const;
    Polynomial &operator+=(const Polynomial &rhs);

    /**
     * Substitute x_v = value (0 or 1) and drop the variable.
     * Remaining variable indices are unchanged.
     */
    Polynomial substitute(int v, int value) const;

    /**
     * Renumber variables: old index v becomes new_of[v]. Every variable
     * used by the polynomial must map to a non-negative new index.
     */
    Polynomial remapped(const std::vector<int> &new_of) const;

    /** Drop terms with |coeff| below @p eps. */
    void prune(double eps = 1e-12);

    /** Human-readable form, e.g. "3 + 2*x0*x2 - x1". */
    std::string str() const;

  private:
    std::map<Monomial, double> terms_;
};

} // namespace chocoq::model

#endif // CHOCOQ_MODEL_POLYNOMIAL_HPP
