#include "sim/statevector.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace chocoq::sim
{

StateVector::StateVector(int num_qubits)
    : n_(num_qubits), amp_(std::size_t{1} << num_qubits, Cplx{0.0, 0.0})
{
    CHOCOQ_ASSERT(num_qubits >= 1 && num_qubits <= 30,
                  "qubit count out of supported range");
    amp_[0] = 1.0;
}

void
StateVector::reset(Basis idx)
{
    CHOCOQ_ASSERT(idx < amp_.size(), "reset state out of range");
    std::fill(amp_.begin(), amp_.end(), Cplx{0.0, 0.0});
    amp_[idx] = 1.0;
}

double
StateVector::totalProbability() const
{
    double p = 0.0;
    for (const auto &a : amp_)
        p += std::norm(a);
    return p;
}

double
StateVector::prob(Basis idx) const
{
    CHOCOQ_ASSERT(idx < amp_.size(), "prob state out of range");
    return std::norm(amp_[idx]);
}

void
StateVector::apply1q(int q, Cplx m00, Cplx m01, Cplx m10, Cplx m11)
{
    const Basis stride = Basis{1} << q;
    const std::size_t dim = amp_.size();
    for (std::size_t base = 0; base < dim; base += 2 * stride) {
        for (std::size_t off = 0; off < stride; ++off) {
            const std::size_t i0 = base + off;
            const std::size_t i1 = i0 + stride;
            const Cplx a0 = amp_[i0];
            const Cplx a1 = amp_[i1];
            amp_[i0] = m00 * a0 + m01 * a1;
            amp_[i1] = m10 * a0 + m11 * a1;
        }
    }
}

void
StateVector::applyControlled1q(Basis control_mask, int q, Cplx m00, Cplx m01,
                               Cplx m10, Cplx m11)
{
    CHOCOQ_ASSERT((control_mask & (Basis{1} << q)) == 0,
                  "target overlaps controls");
    const Basis stride = Basis{1} << q;
    const std::size_t dim = amp_.size();
    for (std::size_t base = 0; base < dim; base += 2 * stride) {
        for (std::size_t off = 0; off < stride; ++off) {
            const std::size_t i0 = base + off;
            if ((i0 & control_mask) != control_mask)
                continue;
            const std::size_t i1 = i0 + stride;
            const Cplx a0 = amp_[i0];
            const Cplx a1 = amp_[i1];
            amp_[i0] = m00 * a0 + m01 * a1;
            amp_[i1] = m10 * a0 + m11 * a1;
        }
    }
}

void
StateVector::applyPhaseMask(Basis mask, double phi)
{
    const Cplx phase{std::cos(phi), std::sin(phi)};
    const std::size_t dim = amp_.size();
    for (std::size_t i = 0; i < dim; ++i)
        if ((i & mask) == mask)
            amp_[i] *= phase;
}

void
StateVector::applyDiagonal(const std::function<Cplx(Basis)> &f)
{
    const std::size_t dim = amp_.size();
    for (std::size_t i = 0; i < dim; ++i)
        amp_[i] *= f(i);
}

void
StateVector::applyPairRotation(Basis support_mask, Basis v_bits, double beta)
{
    CHOCOQ_ASSERT((v_bits & ~support_mask) == 0,
                  "v pattern outside support");
    CHOCOQ_ASSERT(support_mask != 0, "empty commute-term support");
    const Cplx c{std::cos(beta), 0.0};
    const Cplx ms{0.0, -std::sin(beta)};
    const std::size_t dim = amp_.size();
    // Visit only states matching the v pattern on the support; the partner
    // (v-bar pattern) is idx XOR support_mask and is updated in the same
    // step, so each pair is touched exactly once.
    for (std::size_t i = 0; i < dim; ++i) {
        if ((i & support_mask) != v_bits)
            continue;
        const std::size_t j = i ^ support_mask;
        const Cplx a = amp_[i];
        const Cplx b = amp_[j];
        amp_[i] = c * a + ms * b;
        amp_[j] = ms * a + c * b;
    }
}

void
StateVector::applyXY(int a, int b, double beta)
{
    CHOCOQ_ASSERT(a != b, "XY on identical qubits");
    const Basis ba = Basis{1} << a;
    const Basis bb = Basis{1} << b;
    const Cplx c{std::cos(2.0 * beta), 0.0};
    const Cplx ms{0.0, -std::sin(2.0 * beta)};
    const std::size_t dim = amp_.size();
    // Pairs |..0_a..1_b..> <-> |..1_a..0_b..>: iterate states with a=1,b=0.
    for (std::size_t i = 0; i < dim; ++i) {
        if ((i & ba) == 0 || (i & bb) != 0)
            continue;
        const std::size_t j = (i ^ ba) | bb;
        const Cplx x = amp_[i];
        const Cplx y = amp_[j];
        amp_[i] = c * x + ms * y;
        amp_[j] = ms * x + c * y;
    }
}

void
StateVector::applySwap(int a, int b)
{
    CHOCOQ_ASSERT(a != b, "swap on identical qubits");
    const Basis ba = Basis{1} << a;
    const Basis bb = Basis{1} << b;
    const std::size_t dim = amp_.size();
    for (std::size_t i = 0; i < dim; ++i) {
        if ((i & ba) == 0 || (i & bb) != 0)
            continue;
        const std::size_t j = (i ^ ba) | bb;
        std::swap(amp_[i], amp_[j]);
    }
}

void
StateVector::applyPhaseTable(const std::vector<double> &table, double gamma)
{
    CHOCOQ_ASSERT(table.size() == amp_.size(), "phase table size mismatch");
    const std::size_t dim = amp_.size();
    for (std::size_t i = 0; i < dim; ++i) {
        const double phi = -gamma * table[i];
        amp_[i] *= Cplx{std::cos(phi), std::sin(phi)};
    }
}

double
StateVector::expectationTable(const std::vector<double> &table) const
{
    CHOCOQ_ASSERT(table.size() == amp_.size(),
                  "expectation table size mismatch");
    double acc = 0.0;
    const std::size_t dim = amp_.size();
    for (std::size_t i = 0; i < dim; ++i)
        acc += std::norm(amp_[i]) * table[i];
    return acc;
}

double
StateVector::expectationDiagonal(const std::function<double(Basis)> &f) const
{
    double acc = 0.0;
    const std::size_t dim = amp_.size();
    for (std::size_t i = 0; i < dim; ++i) {
        const double p = std::norm(amp_[i]);
        if (p > 0.0)
            acc += p * f(i);
    }
    return acc;
}

std::map<Basis, double>
StateVector::distribution(double eps) const
{
    std::map<Basis, double> out;
    const std::size_t dim = amp_.size();
    for (std::size_t i = 0; i < dim; ++i) {
        const double p = std::norm(amp_[i]);
        if (p > eps)
            out[i] = p;
    }
    return out;
}

std::size_t
StateVector::distinctStates(double eps) const
{
    std::size_t count = 0;
    for (const auto &a : amp_)
        if (std::norm(a) > eps)
            ++count;
    return count;
}

std::map<Basis, int>
StateVector::sample(Rng &rng, int shots, double readout_flip_prob) const
{
    // Cumulative distribution once, then binary search per shot.
    const std::size_t dim = amp_.size();
    std::vector<double> cdf(dim);
    double acc = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
        acc += std::norm(amp_[i]);
        cdf[i] = acc;
    }
    CHOCOQ_ASSERT(acc > 1e-9, "sampling a zero state");

    std::map<Basis, int> hist;
    for (int s = 0; s < shots; ++s) {
        const double r = rng.uniform() * acc;
        const auto it = std::lower_bound(cdf.begin(), cdf.end(), r);
        Basis idx = static_cast<Basis>(it - cdf.begin());
        if (idx >= dim)
            idx = dim - 1;
        if (readout_flip_prob > 0.0) {
            for (int q = 0; q < n_; ++q)
                if (rng.chance(readout_flip_prob))
                    idx = flipBit(idx, q);
        }
        ++hist[idx];
    }
    return hist;
}

} // namespace chocoq::sim
