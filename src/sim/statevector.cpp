#include "sim/statevector.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "sim/subspace.hpp"

namespace chocoq::sim
{

StateVector::StateVector(int num_qubits)
    : n_(num_qubits), amp_(std::size_t{1} << num_qubits, Cplx{0.0, 0.0})
{
    CHOCOQ_ASSERT(num_qubits >= 1 && num_qubits <= 30,
                  "qubit count out of supported range");
    amp_[0] = 1.0;
}

void
StateVector::reset(Basis idx)
{
    CHOCOQ_ASSERT(idx < amp_.size(), "reset state out of range");
    std::fill(amp_.begin(), amp_.end(), Cplx{0.0, 0.0});
    amp_[idx] = 1.0;
}

void
StateVector::prepare(int num_qubits)
{
    CHOCOQ_ASSERT(num_qubits >= 1 && num_qubits <= 30,
                  "qubit count out of supported range");
    n_ = num_qubits;
    // assign() reuses the existing buffer whenever capacity suffices.
    amp_.assign(std::size_t{1} << num_qubits, Cplx{0.0, 0.0});
    amp_[0] = 1.0;
}

void
StateVector::resizeScratch(int num_qubits)
{
    CHOCOQ_ASSERT(num_qubits >= 1 && num_qubits <= 30,
                  "qubit count out of supported range");
    n_ = num_qubits;
    amp_.resize(std::size_t{1} << num_qubits);
}

double
StateVector::totalProbability() const
{
    const Cplx *amp = amp_.data();
    return parallelReduce(amp_.size(),
                          [=](std::size_t i) { return std::norm(amp[i]); });
}

double
StateVector::prob(Basis idx) const
{
    CHOCOQ_ASSERT(idx < amp_.size(), "prob state out of range");
    return std::norm(amp_[idx]);
}

void
StateVector::apply1q(int q, Cplx m00, Cplx m01, Cplx m10, Cplx m11)
{
    if (counters_)
        counters_->record(obs::KernelId::Apply1q, amp_.size());
    const std::size_t stride = std::size_t{1} << q;
    Cplx *amp = amp_.data();
    // Pair t -> (i0, i1): spread t's bits around position q.
    parallelFor(amp_.size() >> 1, [=](std::size_t t) {
        const std::size_t low = t & (stride - 1);
        const std::size_t i0 = ((t - low) << 1) | low;
        const std::size_t i1 = i0 + stride;
        const Cplx a0 = amp[i0];
        const Cplx a1 = amp[i1];
        amp[i0] = m00 * a0 + m01 * a1;
        amp[i1] = m10 * a0 + m11 * a1;
    });
}

void
StateVector::applyDiagonal1q(int q, Cplx d0, Cplx d1)
{
    if (counters_)
        counters_->record(obs::KernelId::Diagonal1q, amp_.size());
    const std::size_t stride = std::size_t{1} << q;
    Cplx *amp = amp_.data();
    parallelFor(amp_.size() >> 1, [=](std::size_t t) {
        const std::size_t low = t & (stride - 1);
        const std::size_t i0 = ((t - low) << 1) | low;
        amp[i0] *= d0;
        amp[i0 + stride] *= d1;
    });
}

void
StateVector::applyControlled1q(Basis control_mask, int q, Cplx m00, Cplx m01,
                               Cplx m10, Cplx m11)
{
    CHOCOQ_ASSERT((control_mask & (Basis{1} << q)) == 0,
                  "target overlaps controls");
    if (counters_)
        counters_->record(obs::KernelId::Controlled1q,
                          amp_.size() >> popcount(control_mask));
    const Basis stride = Basis{1} << q;
    Cplx *amp = amp_.data();
    // Enumerate states with all controls 1 and the target 0; the target-1
    // partner run sits at a constant +stride offset, so both sides stream
    // contiguously.
    forEachSubspaceRun(
        freeMask(control_mask | stride), control_mask,
        [=](Basis base, std::size_t len) {
            Cplx *__restrict p0 = amp + base;
            Cplx *__restrict p1 = amp + (base + stride);
            for (std::size_t t = 0; t < len; ++t) {
                const Cplx a0 = p0[t];
                const Cplx a1 = p1[t];
                p0[t] = m00 * a0 + m01 * a1;
                p1[t] = m10 * a0 + m11 * a1;
            }
        });
}

void
StateVector::applyPhaseMask(Basis mask, double phi)
{
    if (counters_)
        counters_->record(obs::KernelId::PhaseMask,
                          amp_.size() >> popcount(mask));
    const Cplx phase{std::cos(phi), std::sin(phi)};
    Cplx *amp = amp_.data();
    forEachInSubspace(freeMask(mask), mask,
                      [=](Basis i) { amp[i] *= phase; });
}

void
StateVector::applyParityPhase(Basis mask, Cplx even, Cplx odd)
{
    if (counters_)
        counters_->record(obs::KernelId::ParityPhase, amp_.size());
    Cplx *amp = amp_.data();
    const Cplx factor[2] = {even, odd};
    parallelFor(amp_.size(), [=, &factor](std::size_t i) {
        amp[i] *= factor[popcount(static_cast<Basis>(i) & mask) & 1];
    });
}

void
StateVector::applyPairRotation(Basis support_mask, Basis v_bits, double beta)
{
    applyPairRotation(support_mask, v_bits, std::cos(beta),
                      std::sin(beta));
}

void
StateVector::applyPairRotation(Basis support_mask, Basis v_bits, double c,
                               double s)
{
    CHOCOQ_ASSERT((v_bits & ~support_mask) == 0,
                  "v pattern outside support");
    CHOCOQ_ASSERT(support_mask != 0, "empty commute-term support");
    if (counters_)
        counters_->record(obs::KernelId::PairRotation,
                          amp_.size() >> (popcount(support_mask) - 1));
    Cplx *amp = amp_.data();
    // Enumerate only states matching the v pattern on the support; the
    // partner (v-bar pattern) is idx XOR support_mask and is updated in
    // the same step, so each pair is touched exactly once. Support bits
    // are fixed within a run, so the partner of a run is the single
    // contiguous run at base XOR support_mask. The mixing matrix
    // [[c, -i s], [-i s, c]] is written out over real components: 8
    // multiplies per pair instead of 16 for generic complex products.
    forEachSubspaceRun(
        freeMask(support_mask), v_bits, [=](Basis base, std::size_t len) {
            Cplx *__restrict pv = amp + base;
            Cplx *__restrict pw = amp + (base ^ support_mask);
            for (std::size_t t = 0; t < len; ++t) {
                const Cplx a = pv[t];
                const Cplx b = pw[t];
                pv[t] = Cplx{c * a.real() + s * b.imag(),
                             c * a.imag() - s * b.real()};
                pw[t] = Cplx{s * a.imag() + c * b.real(),
                             c * b.imag() - s * a.real()};
            }
        });
}

void
StateVector::applyPairRotationGroup(Basis support_mask, const Basis *vbits,
                                    std::size_t count, double c, double s)
{
    CHOCOQ_ASSERT(support_mask != 0, "empty commute-group support");
    for (std::size_t g = 0; g < count; ++g)
        CHOCOQ_ASSERT((vbits[g] & ~support_mask) == 0,
                      "v pattern outside group support");
    if (counters_)
        counters_->record(
            obs::KernelId::PairRotationGroup,
            count * (amp_.size() >> (popcount(support_mask) - 1)));
    Cplx *amp = amp_.data();
    // One enumeration of the free-bit runs (support bits fixed to 0 in
    // the base) serves every term of the group: term g's |v> run starts
    // at base | vbits[g] and its partner run at the same offset XOR the
    // support mask. Per term the arithmetic and visit order match
    // applyPairRotation exactly; terms interleave per run, which is
    // float-exact because group pair sets are disjoint.
    forEachSubspaceRun(
        freeMask(support_mask), 0, [=](Basis base, std::size_t len) {
            for (std::size_t g = 0; g < count; ++g) {
                Cplx *__restrict pv = amp + (base | vbits[g]);
                Cplx *__restrict pw = amp + ((base | vbits[g]) ^ support_mask);
                for (std::size_t t = 0; t < len; ++t) {
                    const Cplx a = pv[t];
                    const Cplx b = pw[t];
                    pv[t] = Cplx{c * a.real() + s * b.imag(),
                                 c * a.imag() - s * b.real()};
                    pw[t] = Cplx{s * a.imag() + c * b.real(),
                                 c * b.imag() - s * a.real()};
                }
            }
        });
}

void
StateVector::applyPhasedPairRotationGroup(Basis support_mask,
                                          const Basis *vbits,
                                          std::size_t count, double c,
                                          double s, const Cplx *phases,
                                          const std::uint16_t *index)
{
    CHOCOQ_ASSERT(support_mask != 0, "empty commute-group support");
    for (std::size_t g = 0; g < count; ++g)
        CHOCOQ_ASSERT((vbits[g] & ~support_mask) == 0,
                      "v pattern outside group support");
    Cplx *amp = amp_.data();
    const std::size_t patterns = subspaceCount(support_mask);
    if (counters_)
        counters_->record(
            obs::KernelId::PhasedPairRotationGroup,
            amp_.size()
                + count * (amp_.size() >> (popcount(support_mask) - 1)));
    // Step 1 walks the support patterns p of this span's free-bit base:
    // tiles {base | p} + [0, len) cover every index exactly once across
    // all spans (i decomposes uniquely into i & support_mask and its
    // free part). Step 2's rotations only read indices whose free part
    // lies in the same span, so they see fully phased amplitudes; and
    // since thread chunks own disjoint free-part ranges, both steps are
    // race-free under either parallel branch of forEachSubspaceRun.
    forEachSubspaceRun(
        freeMask(support_mask), 0, [=](Basis base, std::size_t len) {
            Basis p = 0;
            for (std::size_t q = 0; q < patterns; ++q) {
                Cplx *__restrict pa = amp + (base | p);
                const std::uint16_t *__restrict pi = index + (base | p);
                for (std::size_t t = 0; t < len; ++t)
                    pa[t] *= phases[pi[t]];
                p = subspaceNext(p, support_mask, 0);
            }
            for (std::size_t g = 0; g < count; ++g) {
                Cplx *__restrict pv = amp + (base | vbits[g]);
                Cplx *__restrict pw =
                    amp + ((base | vbits[g]) ^ support_mask);
                for (std::size_t t = 0; t < len; ++t) {
                    const Cplx a = pv[t];
                    const Cplx b = pw[t];
                    pv[t] = Cplx{c * a.real() + s * b.imag(),
                                 c * a.imag() - s * b.real()};
                    pw[t] = Cplx{s * a.imag() + c * b.real(),
                                 c * b.imag() - s * a.real()};
                }
            }
        });
}

void
StateVector::applyXY(int a, int b, double beta)
{
    CHOCOQ_ASSERT(a != b, "XY on identical qubits");
    if (counters_)
        counters_->record(obs::KernelId::XY, amp_.size() >> 1);
    const Basis ba = Basis{1} << a;
    const Basis bb = Basis{1} << b;
    const double c = std::cos(2.0 * beta);
    const double s = std::sin(2.0 * beta);
    Cplx *amp = amp_.data();
    // Pairs |..1_a..0_b..> <-> |..0_a..1_b..> mix under the same
    // [[c, -i s], [-i s, c]] block as the pair rotation: enumerate a=1,
    // b=0.
    forEachSubspaceRun(
        freeMask(ba | bb), ba, [=](Basis base, std::size_t len) {
            Cplx *__restrict px = amp + base;
            Cplx *__restrict py = amp + (base ^ (ba | bb));
            for (std::size_t t = 0; t < len; ++t) {
                const Cplx x = px[t];
                const Cplx y = py[t];
                px[t] = Cplx{c * x.real() + s * y.imag(),
                             c * x.imag() - s * y.real()};
                py[t] = Cplx{s * x.imag() + c * y.real(),
                             c * y.imag() - s * x.real()};
            }
        });
}

void
StateVector::applySwap(int a, int b)
{
    CHOCOQ_ASSERT(a != b, "swap on identical qubits");
    if (counters_)
        counters_->record(obs::KernelId::Swap, amp_.size() >> 1);
    const Basis ba = Basis{1} << a;
    const Basis bb = Basis{1} << b;
    Cplx *amp = amp_.data();
    forEachSubspaceRun(
        freeMask(ba | bb), ba, [=](Basis base, std::size_t len) {
            Cplx *__restrict px = amp + base;
            Cplx *__restrict py = amp + (base ^ (ba | bb));
            for (std::size_t t = 0; t < len; ++t)
                std::swap(px[t], py[t]);
        });
}

void
StateVector::applyPhaseTable(const std::vector<double> &table, double gamma)
{
    CHOCOQ_ASSERT(table.size() == amp_.size(), "phase table size mismatch");
    if (counters_)
        counters_->record(obs::KernelId::PhaseTable, amp_.size());
    Cplx *amp = amp_.data();
    const double *tab = table.data();
    parallelFor(amp_.size(), [=](std::size_t i) {
        const double phi = -gamma * tab[i];
        amp[i] *= Cplx{std::cos(phi), std::sin(phi)};
    });
}

void
StateVector::applyPhaseTableCompressed(const std::vector<double> &distinct,
                                       const std::vector<std::uint16_t> &index,
                                       double gamma,
                                       std::vector<Cplx> &phase_scratch)
{
    CHOCOQ_ASSERT(index.size() == amp_.size(),
                  "compressed phase index size mismatch");
    if (counters_)
        counters_->record(obs::KernelId::PhaseTableCompressed, amp_.size());
    // |distinct| sincos evaluations; phi matches applyPhaseTable's
    // -gamma * value expression exactly, so expanding the table and
    // calling applyPhaseTable gives the same bits.
    phase_scratch.resize(distinct.size());
    for (std::size_t d = 0; d < distinct.size(); ++d) {
        const double phi = -gamma * distinct[d];
        phase_scratch[d] = Cplx{std::cos(phi), std::sin(phi)};
    }
    Cplx *amp = amp_.data();
    const Cplx *phases = phase_scratch.data();
    const std::uint16_t *idx = index.data();
    parallelFor(amp_.size(),
                [=](std::size_t i) { amp[i] *= phases[idx[i]]; });
}

void
StateVector::applyMaskPhaseProduct(const Basis *masks, const Cplx *phases,
                                   std::size_t count, Cplx global)
{
    if (counters_)
        counters_->record(obs::KernelId::MaskPhaseProduct, amp_.size());
    // Byte-blocked evaluation: a term whose mask lies inside one 8-bit
    // slice of the index folds into that slice's 256-entry factor table
    // (built in 256 x count_in_block operations, amortized over the 2^n
    // sweep); only masks spanning slices stay as per-amplitude tests.
    // The per-amplitude cost is ceil(n/8) table multiplies plus the few
    // residual terms — independent of how many gates were fused —
    // instead of one test-and-multiply per source gate.
    // Scratch-owned buffers: contents are per-call (angles change every
    // objective evaluation) but the allocation persists, so angle-only
    // re-evaluations on a reused scratch state allocate nothing.
    const int blocks = (n_ + 7) / 8;
    const std::size_t cap_before = mask_phase_tables_.capacity()
                                   + mask_phase_res_masks_.capacity()
                                   + mask_phase_res_phases_.capacity();
    mask_phase_tables_.assign(static_cast<std::size_t>(blocks) * 256,
                              Cplx{1.0, 0.0});
    mask_phase_res_masks_.clear();
    mask_phase_res_phases_.clear();
    Cplx *tables = mask_phase_tables_.data();
    for (std::size_t t = 0; t < count; ++t) {
        bool folded = false;
        for (int b = 0; b < blocks; ++b) {
            const Basis block_mask = Basis{0xFF} << (8 * b);
            if ((masks[t] & ~block_mask) != 0)
                continue;
            const unsigned local =
                static_cast<unsigned>(masks[t] >> (8 * b));
            Cplx *table = tables + static_cast<std::size_t>(b) * 256;
            for (unsigned v = 0; v < 256; ++v)
                if ((v & local) == local)
                    table[v] *= phases[t];
            folded = true;
            break;
        }
        if (!folded) {
            mask_phase_res_masks_.push_back(masks[t]);
            mask_phase_res_phases_.push_back(phases[t]);
        }
    }
    // Fold the global phase into the slice every index passes through.
    for (unsigned v = 0; v < 256; ++v)
        tables[v] *= global;
    if (cap_before != mask_phase_tables_.capacity()
                          + mask_phase_res_masks_.capacity()
                          + mask_phase_res_phases_.capacity())
        ++mask_phase_growths_;

    Cplx *amp = amp_.data();
    const std::size_t res_count = mask_phase_res_masks_.size();
    const Basis *rm = mask_phase_res_masks_.data();
    const Cplx *rp = mask_phase_res_phases_.data();
    if (blocks == 1 && res_count == 0) {
        const Cplx *t0 = tables;
        parallelFor(amp_.size(),
                    [=](std::size_t i) { amp[i] *= t0[i & 0xFF]; });
        return;
    }
    const Cplx *tabs = tables;
    parallelFor(amp_.size(), [=](std::size_t i) {
        Cplx f = tabs[i & 0xFF];
        for (int b = 1; b < blocks; ++b)
            f *= tabs[static_cast<std::size_t>(b) * 256
                      + ((i >> (8 * b)) & 0xFF)];
        for (std::size_t t = 0; t < res_count; ++t)
            if ((static_cast<Basis>(i) & rm[t]) == rm[t])
                f *= rp[t];
        amp[i] *= f;
    });
}

double
StateVector::expectationTable(const std::vector<double> &table) const
{
    CHOCOQ_ASSERT(table.size() == amp_.size(),
                  "expectation table size mismatch");
    if (counters_)
        counters_->record(obs::KernelId::ExpectationTable, amp_.size());
    const Cplx *amp = amp_.data();
    const double *tab = table.data();
    return parallelReduce(amp_.size(), [=](std::size_t i) {
        return std::norm(amp[i]) * tab[i];
    });
}

double
StateVector::expectationTableCompressed(
    const std::vector<double> &distinct,
    const std::vector<std::uint16_t> &index) const
{
    CHOCOQ_ASSERT(index.size() == amp_.size(),
                  "compressed expectation index size mismatch");
    if (counters_)
        counters_->record(obs::KernelId::ExpectationTableCompressed,
                          amp_.size());
    const Cplx *amp = amp_.data();
    const double *dv = distinct.data();
    const std::uint16_t *idx = index.data();
    return parallelReduce(amp_.size(), [=](std::size_t i) {
        return std::norm(amp[i]) * dv[idx[i]];
    });
}

std::map<Basis, double>
StateVector::distribution(double eps) const
{
    std::map<Basis, double> out;
    const std::size_t dim = amp_.size();
    for (std::size_t i = 0; i < dim; ++i) {
        const double p = std::norm(amp_[i]);
        if (p > eps)
            out[i] = p;
    }
    return out;
}

std::size_t
StateVector::distinctStates(double eps) const
{
    std::size_t count = 0;
    for (const auto &a : amp_)
        if (std::norm(a) > eps)
            ++count;
    return count;
}

std::map<Basis, int>
StateVector::sample(Rng &rng, int shots, double readout_flip_prob) const
{
    // Compressed cumulative distribution over the states that actually
    // carry probability — QAOA states are sharply peaked, so this is
    // usually far smaller than 2^n — then binary search per shot.
    const std::size_t dim = amp_.size();
    std::vector<double> cdf;
    std::vector<Basis> states;
    double acc = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
        const double p = std::norm(amp_[i]);
        if (p <= 0.0)
            continue;
        acc += p;
        cdf.push_back(acc);
        states.push_back(static_cast<Basis>(i));
    }
    CHOCOQ_ASSERT(acc > 1e-9, "sampling a zero state");

    const bool flips = readout_flip_prob > 0.0;
    std::map<Basis, int> hist;
    for (int s = 0; s < shots; ++s) {
        const double r = rng.uniform() * acc;
        const auto it = std::lower_bound(cdf.begin(), cdf.end(), r);
        const std::size_t pos = std::min<std::size_t>(
            static_cast<std::size_t>(it - cdf.begin()), states.size() - 1);
        Basis idx = states[pos];
        if (flips) {
            for (int q = 0; q < n_; ++q)
                if (rng.chance(readout_flip_prob))
                    idx = flipBit(idx, q);
        }
        ++hist[idx];
    }
    return hist;
}

} // namespace chocoq::sim
