#include "sim/parallel.hpp"

#include <atomic>
#include <cstdlib>

namespace chocoq::sim
{

namespace
{

/** 0 = not yet resolved; otherwise the clamped thread count. */
std::atomic<int> g_threads{0};

int
clampThreads(long v)
{
    if (v < 1)
        return 1;
    if (v > kMaxSimThreads)
        return kMaxSimThreads;
    return static_cast<int>(v);
}

} // namespace

int
simThreads()
{
#ifndef _OPENMP
    return 1;
#else
    int v = g_threads.load(std::memory_order_relaxed);
    if (v > 0)
        return v;
    int resolved = 1;
    if (const char *env = std::getenv("CHOCOQ_THREADS")) {
        char *end = nullptr;
        const long parsed = std::strtol(env, &end, 10);
        if (end != env && parsed > 0)
            resolved = clampThreads(parsed);
    }
    // Dynamic team sizing would let the runtime grant different team
    // sizes to identical loops on different calls, breaking the
    // fixed-partition reproducibility guarantee; pin it off.
    if (resolved > 1)
        omp_set_dynamic(0);
    g_threads.store(resolved, std::memory_order_relaxed);
    return resolved;
#endif
}

void
setSimThreads(int threads)
{
#ifdef _OPENMP
    if (threads > 1)
        omp_set_dynamic(0);
#endif
    g_threads.store(threads <= 0 ? 0 : clampThreads(threads),
                    std::memory_order_relaxed);
}

} // namespace chocoq::sim
