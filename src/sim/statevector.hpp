/**
 * @file
 * Dense state-vector quantum simulator.
 *
 * This is the execution substrate standing in for the paper's GPU-backed
 * Python simulator. It provides generic gate kernels plus the fast paths
 * that make Choco-Q experiments cheap on a CPU:
 *  - applyPhaseMask / applyDiagonal for objective Hamiltonians,
 *  - applyPairRotation for exact exp(-i beta Hc(u)) evolution of a commute
 *    Hamiltonian term (the functional-simulation path),
 *  - applyXY for the cyclic-Hamiltonian baseline's mixer blocks,
 *  - applyDiagonal1q / applyParityPhase for diagonal gates (RZ, RZZ, ...).
 *
 * Masked kernels enumerate only the 2^(n-k) amplitudes they transform
 * (see sim/subspace.hpp) instead of scanning all 2^n with a filter
 * branch, and all full-dimension loops honor the CHOCOQ_THREADS OpenMP
 * partitioning (see sim/parallel.hpp).
 */

#ifndef CHOCOQ_SIM_STATEVECTOR_HPP
#define CHOCOQ_SIM_STATEVECTOR_HPP

#include <complex>
#include <cstdint>
#include <map>
#include <vector>

#include "common/bitops.hpp"
#include "common/rng.hpp"
#include "linalg/matrix.hpp"
#include "obs/roofline.hpp"
#include "sim/parallel.hpp"

namespace chocoq::sim
{

using linalg::Cplx;
using linalg::CVec;

/** State vector over n qubits (amplitudes indexed by Basis, bit i = x_i). */
class StateVector
{
  public:
    /** |0...0> over @p num_qubits qubits. */
    explicit StateVector(int num_qubits);

    int numQubits() const { return n_; }
    std::size_t dim() const { return amp_.size(); }

    const CVec &amplitudes() const { return amp_; }
    CVec &amplitudes() { return amp_; }

    /** Reset to the computational basis state |idx>. */
    void reset(Basis idx = 0);

    /**
     * Re-dimension to @p num_qubits qubits and reset to |0...0>. Reuses
     * the existing allocation whenever capacity allows, so a scratch
     * state cycled through repeated objective evaluations performs no
     * steady-state heap allocation.
     */
    void prepare(int num_qubits);

    /**
     * Re-dimension to @p num_qubits qubits leaving the amplitudes
     * unspecified (same allocation reuse as prepare). For callers that
     * immediately establish their own initial state via reset() — skips
     * prepare's redundant zero-fill sweep on the hot loop.
     */
    void resizeScratch(int num_qubits);

    /**
     * Attach (or detach, with nullptr) a kernel counter sink. The same
     * zero-cost-when-null contract as the service's Trace*: a null sink
     * costs one predictable branch per kernel *invocation*, never per
     * amplitude, and amplitudes are bit-identical either way. Each
     * kernel records once on the calling thread before its OpenMP
     * region opens, so the sink needs no synchronization as long as it
     * is attached to the states of one job at a time (the engine
     * attaches per job; see core::runQaoa).
     */
    void setCounterSink(obs::KernelCounterSink *sink) { counters_ = sink; }
    obs::KernelCounterSink *counterSink() const { return counters_; }

    /** Squared-norm of the state (should stay 1 within round-off). */
    double totalProbability() const;

    /** Probability of basis state idx. */
    double prob(Basis idx) const;

    /** Apply a general single-qubit gate given row-major 2x2 entries. */
    void apply1q(int q, Cplx m00, Cplx m01, Cplx m10, Cplx m11);

    /** Apply the diagonal gate diag(d0, d1) on qubit @p q (Z, S, T, RZ...). */
    void applyDiagonal1q(int q, Cplx d0, Cplx d1);

    /**
     * Apply a single-qubit gate on @p q controlled on every qubit in
     * @p control_mask being |1>.
     */
    void applyControlled1q(Basis control_mask, int q, Cplx m00, Cplx m01,
                           Cplx m10, Cplx m11);

    /** Multiply amplitudes of states with (idx & mask) == mask by e^{i phi}. */
    void applyPhaseMask(Basis mask, double phi);

    /**
     * Two-valued parity diagonal: multiply amp[idx] by @p even when
     * popcount(idx & mask) is even, by @p odd otherwise. RZZ and any
     * exp(-i theta Z...Z/2) rotation reduce to this with
     * even = e^{-i theta/2}, odd = e^{+i theta/2}.
     */
    void applyParityPhase(Basis mask, Cplx even, Cplx odd);

    /**
     * Multiply each amplitude by the diagonal factor f(idx).
     *
     * When CHOCOQ_THREADS enables multithreading, @p f is invoked
     * concurrently from OpenMP workers and must be safe to call from
     * multiple threads (pure functions and reads of immutable captures
     * are fine; unsynchronized mutation of shared state is not).
     */
    template <class F>
    void
    applyDiagonal(F &&f)
    {
        if (counters_)
            counters_->record(obs::KernelId::ApplyDiagonal, amp_.size());
        Cplx *amp = amp_.data();
        parallelFor(amp_.size(),
                    [&](std::size_t i) { amp[i] *= f(static_cast<Basis>(i)); });
    }

    /**
     * Fast diagonal-Hamiltonian phase: amp[i] *= exp(-i gamma table[i]).
     * @param table Precomputed eigenvalues, one per basis state.
     */
    void applyPhaseTable(const std::vector<double> &table, double gamma);

    /**
     * Value-compressed variant of applyPhaseTable: the eigenvalue table
     * is stored as its distinct values plus a per-basis-state index, so
     * the sweep performs |distinct| sincos evaluations instead of 2^n
     * (objective tables typically hold few distinct eigenvalues). The
     * per-amplitude arithmetic is exp(-i gamma distinct[index[i]]) with
     * the identical phi = -gamma * value expression, so the result is
     * bit-identical to applyPhaseTable on the expanded table.
     *
     * @param distinct Distinct eigenvalues (exact doubles).
     * @param index Per-basis-state index into @p distinct (dim entries).
     * @param gamma Evolution angle.
     * @param phase_scratch Caller-owned buffer for the per-value phases;
     *        resized to distinct.size() and reusable across calls so the
     *        hot loop performs no steady-state allocation.
     */
    void applyPhaseTableCompressed(const std::vector<double> &distinct,
                                   const std::vector<std::uint16_t> &index,
                                   double gamma,
                                   std::vector<Cplx> &phase_scratch);

    /**
     * One-pass product of mask-phase factors (the FusedDiagonal kernel):
     * every amplitude is multiplied by @p global times the product of
     * phases[t] over the terms whose mask is fully set in the index,
     * i.e. (idx & masks[t]) == masks[t]. Terms whose mask fits in one
     * 8-bit slice of the index are pre-folded into per-slice 256-entry
     * factor tables, so the sweep costs ceil(n/8) table multiplies per
     * amplitude regardless of how many gates were fused; masks spanning
     * slices fall back to per-amplitude tests. Factor association
     * differs from gate-at-a-time application, so equivalence is within
     * fp reassociation (see circuit::fuseDiagonals).
     *
     * The factor tables live in scratch buffers owned by this state:
     * table *contents* are rebuilt every call (angles change between
     * objective evaluations, and the 256 x count rebuild is amortized
     * over the 2^n sweep), but the *allocation* is reused, so a scratch
     * state cycling through thousands of angle-only evaluations
     * performs no steady-state allocation here
     * (maskPhaseScratchGrowths() counts the growths; regression-checked
     * in bench_micro).
     */
    void applyMaskPhaseProduct(const Basis *masks, const Cplx *phases,
                               std::size_t count, Cplx global);

    /** Times the applyMaskPhaseProduct scratch had to grow; stable
     * between calls of unchanged shape (the bench_micro regression
     * probe for the zero-steady-state-allocation property). */
    std::size_t maskPhaseScratchGrowths() const
    {
        return mask_phase_growths_;
    }

    /**
     * Exact evolution exp(-i beta Hc(u)) of one commute-Hamiltonian term.
     *
     * @param support_mask Bits where u is non-zero.
     * @param v_bits Pattern (1+u)/2 on the support (bits outside must be 0).
     * @param beta Evolution angle.
     *
     * For every assignment of the complement qubits, the pair
     * |v> / |v-bar> rotates by [[cos b, -i sin b], [-i sin b, cos b]];
     * all other states are untouched (Hc annihilates them).
     */
    void applyPairRotation(Basis support_mask, Basis v_bits, double beta);

    /**
     * Pair rotation with the trigonometry precomputed: the pair mixes
     * under [[c, -i s], [-i s, c]] with @p c = cos(beta),
     * @p s = sin(beta). Lets a layer of commute terms sharing one beta
     * pay for sincos once (see core::applyCommuteLayer), and the
     * real/imaginary structure halves the multiply count versus generic
     * complex arithmetic.
     */
    void applyPairRotation(Basis support_mask, Basis v_bits, double c,
                           double s);

    /**
     * Apply @p count pair rotations sharing one support mask in a single
     * subspace sweep (fused commute-layer groups): the free-bit runs are
     * enumerated once and every term's pair is rotated while the run's
     * cache lines are hot. The terms' pair sets must be pairwise
     * disjoint — no vbits[a] equal to vbits[b] or to vbits[b] XOR
     * support_mask — which makes the result bit-identical to applying
     * the rotations one term at a time (disjoint-memory operations
     * commute exactly); core::buildFusedLayerPlan enforces this when
     * forming groups.
     */
    void applyPairRotationGroup(Basis support_mask, const Basis *vbits,
                                std::size_t count, double c, double s);

    /**
     * Fused objective-phase gather + commute-group sweep: within each
     * enumerated free-bit span of @p support_mask, first multiply every
     * support-pattern tile by its compressed phase factor
     * phases[index[i]] (the LUT layout of applyPhaseTableCompressed),
     * then rotate every term's pairs with (c, s). The pattern tiles
     * partition the index space exactly once across spans and every
     * amplitude a rotation reads was phased in the same span, so the
     * result is bit-identical to applyPhaseTableCompressed followed by
     * applyPairRotationGroup — while saving one full read+write sweep
     * of the state per fused layer.
     */
    void applyPhasedPairRotationGroup(Basis support_mask,
                                      const Basis *vbits, std::size_t count,
                                      double c, double s, const Cplx *phases,
                                      const std::uint16_t *index);

    /** exp(-i beta (X_a X_b + Y_a Y_b)) on the {01, 10} block. */
    void applyXY(int a, int b, double beta);

    /** Swap amplitudes of qubits a and b. */
    void applySwap(int a, int b);

    /**
     * <state| diag(f) |state> for a real diagonal observable.
     *
     * Same concurrency contract as applyDiagonal: with CHOCOQ_THREADS
     * > 1, @p f runs concurrently from OpenMP workers and must be
     * thread-safe.
     */
    template <class F>
    double
    expectationDiagonal(F &&f) const
    {
        if (counters_)
            counters_->record(obs::KernelId::ExpectationDiagonal,
                              amp_.size());
        const Cplx *amp = amp_.data();
        return parallelReduce(amp_.size(), [&](std::size_t i) {
            const double p = std::norm(amp[i]);
            return p > 0.0 ? p * f(static_cast<Basis>(i)) : 0.0;
        });
    }

    /** Expectation of a precomputed diagonal observable table. */
    double expectationTable(const std::vector<double> &table) const;

    /**
     * Value-compressed expectation: the observable table is stored as
     * its distinct values plus a per-basis-state index (the layout of
     * applyPhaseTableCompressed). The per-amplitude contribution is
     * |amp|^2 * distinct[index[i]] summed in the identical reduce
     * order, so the result is bit-identical to expectationTable on the
     * expanded table — while reading 2 bytes per amplitude of
     * observable data instead of 8.
     */
    double
    expectationTableCompressed(const std::vector<double> &distinct,
                               const std::vector<std::uint16_t> &index) const;

    /** Exact probability distribution restricted to |amp|^2 > eps. */
    std::map<Basis, double> distribution(double eps = 1e-12) const;

    /** Number of basis states with probability above @p eps (Fig. 9b). */
    std::size_t distinctStates(double eps = 1e-9) const;

    /**
     * Sample measurement shots.
     * @param rng Random source.
     * @param shots Number of samples.
     * @param readout_flip_prob Per-bit readout error probability.
     * @return Histogram basis -> count.
     */
    std::map<Basis, int> sample(Rng &rng, int shots,
                                double readout_flip_prob = 0.0) const;

  private:
    /** Free (spectator) bit mask complementing @p fixed_mask. */
    Basis freeMask(Basis fixed_mask) const
    {
        return (amp_.size() - 1) & ~fixed_mask;
    }

    int n_;
    CVec amp_;

    /** Optional kernel-mix sink (see setCounterSink); never owned. */
    obs::KernelCounterSink *counters_ = nullptr;

    /** applyMaskPhaseProduct scratch: flat ceil(n/8) x 256 factor
     * tables plus the residual cross-slice terms. Contents are
     * per-call, allocations persist across angle-only changes. */
    CVec mask_phase_tables_;
    std::vector<Basis> mask_phase_res_masks_;
    CVec mask_phase_res_phases_;
    std::size_t mask_phase_growths_ = 0;
};

} // namespace chocoq::sim

#endif // CHOCOQ_SIM_STATEVECTOR_HPP
