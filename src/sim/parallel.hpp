/**
 * @file
 * Deterministic shared-memory parallelism for the state-vector kernels.
 *
 * Thread count is opt-in via the CHOCOQ_THREADS environment variable (or
 * setSimThreads for tests); the default is single-threaded so results are
 * bit-reproducible out of the box. When OpenMP is enabled at compile time
 * and more than one thread is requested, loops are split into contiguous
 * [begin, end) chunks by a fixed formula — chunk boundaries depend only
 * on (count, granted team size), never on scheduling — and reductions
 * accumulate one partial per thread which are then summed in thread
 * order. Dynamic team sizing is pinned off when multithreading is
 * enabled, so the granted team size — and therefore every bit of every
 * result — is stable across calls for a given environment.
 */

#ifndef CHOCOQ_SIM_PARALLEL_HPP
#define CHOCOQ_SIM_PARALLEL_HPP

#include <algorithm>
#include <cstddef>
#include <exception>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace chocoq::sim
{

/** Hard cap on worker threads (bounds the stack partial-sum buffers). */
constexpr int kMaxSimThreads = 64;

/** Minimum elements per thread before a loop is worth splitting. */
constexpr std::size_t kParallelGrain = std::size_t{1} << 12;

/**
 * Resolved kernel thread count (>= 1). Reads CHOCOQ_THREADS once on first
 * use; 1 when unset, when OpenMP is compiled out, or when the value is
 * not a positive integer.
 */
int simThreads();

/**
 * Override the kernel thread count (clamped to [1, kMaxSimThreads]);
 * pass 0 to re-resolve from the environment. Intended for tests and
 * benchmarks.
 */
void setSimThreads(int threads);

/** Threads a loop of @p count elements actually gets (>= 1). */
inline int
planThreads(std::size_t count)
{
#ifdef _OPENMP
    const int nt = simThreads();
    if (nt <= 1 || count < 2 * kParallelGrain)
        return 1;
    return static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(nt), count / kParallelGrain));
#else
    (void)count;
    return 1;
#endif
}

/**
 * Run body(i) for i in [0, count). Parallel when planThreads(count) > 1;
 * the body must write only locations owned by index i. An exception
 * thrown by the body is captured inside the parallel region and
 * rethrown to the caller after the join (one of the thrown exceptions,
 * if several threads throw), matching single-threaded semantics.
 */
template <class Body>
void
parallelFor(std::size_t count, Body &&body)
{
#ifdef _OPENMP
    const int nt = planThreads(count);
    if (nt > 1) {
        std::exception_ptr error;
#pragma omp parallel num_threads(nt)
        {
            // Partition on the team size actually granted (the runtime
            // may deliver fewer threads than requested) so every chunk
            // is owned by a live thread.
            const int team = omp_get_num_threads();
            const int tid = omp_get_thread_num();
            const std::size_t begin =
                count * static_cast<std::size_t>(tid) / team;
            const std::size_t end =
                count * (static_cast<std::size_t>(tid) + 1) / team;
            try {
                for (std::size_t i = begin; i < end; ++i)
                    body(i);
            } catch (...) {
#pragma omp critical(chocoq_parallel_error)
                if (!error)
                    error = std::current_exception();
            }
        }
        if (error)
            std::rethrow_exception(error);
        return;
    }
#endif
    for (std::size_t i = 0; i < count; ++i)
        body(i);
}

/**
 * Sum body(i) over i in [0, count). Deterministic for a fixed thread
 * count: per-thread partials over fixed chunks, combined in thread
 * order. Body exceptions are captured and rethrown after the join, as
 * in parallelFor.
 */
template <class Body>
double
parallelReduce(std::size_t count, Body &&body)
{
#ifdef _OPENMP
    const int nt = planThreads(count);
    if (nt > 1) {
        double partial[kMaxSimThreads] = {};
        std::exception_ptr error;
#pragma omp parallel num_threads(nt)
        {
            const int team = omp_get_num_threads();
            const int tid = omp_get_thread_num();
            const std::size_t begin =
                count * static_cast<std::size_t>(tid) / team;
            const std::size_t end =
                count * (static_cast<std::size_t>(tid) + 1) / team;
            double acc = 0.0;
            try {
                for (std::size_t i = begin; i < end; ++i)
                    acc += body(i);
            } catch (...) {
#pragma omp critical(chocoq_parallel_error)
                if (!error)
                    error = std::current_exception();
            }
            partial[tid] = acc;
        }
        if (error)
            std::rethrow_exception(error);
        // team <= nt always, so summing the requested range in fixed
        // order covers every live thread deterministically.
        double total = 0.0;
        for (int t = 0; t < nt; ++t)
            total += partial[t];
        return total;
    }
#endif
    double acc = 0.0;
    for (std::size_t i = 0; i < count; ++i)
        acc += body(i);
    return acc;
}

} // namespace chocoq::sim

#endif // CHOCOQ_SIM_PARALLEL_HPP
