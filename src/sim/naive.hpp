/**
 * @file
 * Naive full-scan reference kernels — the pre-subspace-enumeration
 * implementations, kept verbatim as the single source of truth for both
 * the kernel property tests (amplitude-exactness against the fast
 * paths) and the micro-benchmarks (speedup baselines). Not used by the
 * library itself.
 */

#ifndef CHOCOQ_SIM_NAIVE_HPP
#define CHOCOQ_SIM_NAIVE_HPP

#include <cmath>
#include <utility>

#include "common/bitops.hpp"
#include "linalg/matrix.hpp"

namespace chocoq::sim::naive
{

using linalg::Cplx;
using linalg::CVec;

/** exp(-i beta Hc(u)) pair rotation, branch-per-state scan. */
inline void
pairRotation(CVec &amp, Basis support, Basis v, double beta)
{
    const Cplx c{std::cos(beta), 0.0};
    const Cplx ms{0.0, -std::sin(beta)};
    for (std::size_t i = 0; i < amp.size(); ++i) {
        if ((i & support) != v)
            continue;
        const std::size_t j = i ^ support;
        const Cplx a = amp[i];
        const Cplx b = amp[j];
        amp[i] = c * a + ms * b;
        amp[j] = ms * a + c * b;
    }
}

/** e^{i phi} on states with all mask bits set, branch-per-state scan. */
inline void
phaseMask(CVec &amp, Basis mask, double phi)
{
    const Cplx phase{std::cos(phi), std::sin(phi)};
    for (std::size_t i = 0; i < amp.size(); ++i)
        if ((i & mask) == mask)
            amp[i] *= phase;
}

/** Controlled single-qubit gate, filtered strided scan. */
inline void
controlled1q(CVec &amp, Basis control_mask, int q, Cplx m00, Cplx m01,
             Cplx m10, Cplx m11)
{
    const std::size_t stride = std::size_t{1} << q;
    for (std::size_t base = 0; base < amp.size(); base += 2 * stride) {
        for (std::size_t off = 0; off < stride; ++off) {
            const std::size_t i0 = base + off;
            if ((i0 & control_mask) != control_mask)
                continue;
            const std::size_t i1 = i0 + stride;
            const Cplx a0 = amp[i0];
            const Cplx a1 = amp[i1];
            amp[i0] = m00 * a0 + m01 * a1;
            amp[i1] = m10 * a0 + m11 * a1;
        }
    }
}

/** exp(-i beta (XX + YY)) on the {01, 10} block, branch-per-state scan. */
inline void
xy(CVec &amp, int a, int b, double beta)
{
    const Basis ba = Basis{1} << a;
    const Basis bb = Basis{1} << b;
    const Cplx c{std::cos(2.0 * beta), 0.0};
    const Cplx ms{0.0, -std::sin(2.0 * beta)};
    for (std::size_t i = 0; i < amp.size(); ++i) {
        if ((i & ba) == 0 || (i & bb) != 0)
            continue;
        const std::size_t j = (i ^ ba) | bb;
        const Cplx x = amp[i];
        const Cplx y = amp[j];
        amp[i] = c * x + ms * y;
        amp[j] = ms * x + c * y;
    }
}

/** Swap of two qubits, branch-per-state scan. */
inline void
swapQubits(CVec &amp, int a, int b)
{
    const Basis ba = Basis{1} << a;
    const Basis bb = Basis{1} << b;
    for (std::size_t i = 0; i < amp.size(); ++i) {
        if ((i & ba) == 0 || (i & bb) != 0)
            continue;
        std::swap(amp[i], amp[(i ^ ba) | bb]);
    }
}

} // namespace chocoq::sim::naive

#endif // CHOCOQ_SIM_NAIVE_HPP
