#include "sim/unitary.hpp"

#include "common/error.hpp"
#include "sim/executor.hpp"
#include "sim/statevector.hpp"

namespace chocoq::sim
{

linalg::Matrix
circuitUnitary(const circuit::Circuit &c)
{
    const int n = c.numQubits();
    CHOCOQ_ASSERT(n >= 1 && n <= 14, "circuitUnitary limited to 14 qubits");
    const std::size_t dim = std::size_t{1} << n;
    linalg::Matrix u(dim, dim);
    StateVector state(n);
    for (std::size_t col = 0; col < dim; ++col) {
        state.reset(col);
        execute(state, c);
        for (std::size_t row = 0; row < dim; ++row)
            u.at(row, col) = state.amplitudes()[row];
    }
    return u;
}

} // namespace chocoq::sim
