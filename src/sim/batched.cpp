#include "sim/batched.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "sim/subspace.hpp"

namespace chocoq::sim
{

void
BatchedStateVector::resizeScratch(int num_qubits, std::size_t lanes)
{
    CHOCOQ_ASSERT(num_qubits >= 1 && num_qubits <= 30,
                  "qubit count out of supported range");
    CHOCOQ_ASSERT(lanes >= 1 && lanes <= kMaxBatchLanes,
                  "lane count out of supported range");
    n_ = num_qubits;
    dim_ = std::size_t{1} << num_qubits;
    lanes_ = lanes;
    amp_.resize(dim_ * lanes_);
}

void
BatchedStateVector::reset(Basis idx)
{
    CHOCOQ_ASSERT(idx < dim_, "reset state out of range");
    std::fill(amp_.begin(), amp_.begin() + dim_ * lanes_, Cplx{0.0, 0.0});
    for (std::size_t b = 0; b < lanes_; ++b)
        amp_[idx * lanes_ + b] = 1.0;
}

void
BatchedStateVector::loadLane(std::size_t lane, const CVec &src)
{
    CHOCOQ_ASSERT(lane < lanes_, "lane out of range");
    CHOCOQ_ASSERT(src.size() == dim_, "lane source size mismatch");
    for (std::size_t i = 0; i < dim_; ++i)
        amp_[i * lanes_ + lane] = src[i];
}

void
BatchedStateVector::copyLane(std::size_t lane, CVec &out) const
{
    CHOCOQ_ASSERT(lane < lanes_, "lane out of range");
    out.resize(dim_);
    for (std::size_t i = 0; i < dim_; ++i)
        out[i] = amp_[i * lanes_ + lane];
}

void
BatchedStateVector::applyPhaseTable(const std::vector<double> &table,
                                    const double *gammas)
{
    CHOCOQ_ASSERT(table.size() == dim_, "phase table size mismatch");
    if (counters_)
        counters_->record(obs::KernelId::PhaseTable, dim_ * lanes_);
    Cplx *amp = amp_.data();
    const double *tab = table.data();
    const double *g = gammas;
    const std::size_t L = lanes_;
    parallelFor(dim_, [=](std::size_t i) {
        Cplx *a = amp + i * L;
        const double v = tab[i];
        for (std::size_t b = 0; b < L; ++b) {
            const double phi = -g[b] * v;
            a[b] *= Cplx{std::cos(phi), std::sin(phi)};
        }
    });
}

void
BatchedStateVector::applyPhaseTableCompressed(
    const std::vector<double> &distinct,
    const std::vector<std::uint16_t> &index, const double *gammas,
    std::vector<Cplx> &phase_scratch)
{
    CHOCOQ_ASSERT(index.size() == dim_,
                  "compressed phase index size mismatch");
    const std::size_t L = lanes_;
    if (counters_)
        counters_->record(obs::KernelId::PhaseTableCompressed, dim_ * L);
    // Lane-minor LUT: entry d of lane b at [d * L + b]; phi matches the
    // scalar kernel's -gamma * value expression per lane.
    phase_scratch.resize(distinct.size() * L);
    for (std::size_t d = 0; d < distinct.size(); ++d)
        for (std::size_t b = 0; b < L; ++b) {
            const double phi = -gammas[b] * distinct[d];
            phase_scratch[d * L + b] = Cplx{std::cos(phi), std::sin(phi)};
        }
    Cplx *amp = amp_.data();
    const Cplx *phases = phase_scratch.data();
    const std::uint16_t *idx = index.data();
    parallelFor(dim_, [=](std::size_t i) {
        Cplx *a = amp + i * L;
        const Cplx *ph = phases + static_cast<std::size_t>(idx[i]) * L;
        for (std::size_t b = 0; b < L; ++b)
            a[b] *= ph[b];
    });
}

void
BatchedStateVector::applyPhaseMask(Basis mask, const double *phis)
{
    if (counters_)
        counters_->record(obs::KernelId::PhaseMask,
                          (dim_ >> popcount(mask)) * lanes_);
    const std::size_t L = lanes_;
    lane_factor_scratch_.resize(L);
    for (std::size_t b = 0; b < L; ++b)
        lane_factor_scratch_[b] = Cplx{std::cos(phis[b]), std::sin(phis[b])};
    Cplx *amp = amp_.data();
    const Cplx *ph = lane_factor_scratch_.data();
    forEachInSubspace(freeMask(mask), mask, [=](Basis i) {
        Cplx *a = amp + static_cast<std::size_t>(i) * L;
        for (std::size_t b = 0; b < L; ++b)
            a[b] *= ph[b];
    });
}

void
BatchedStateVector::applyDiagonal1q(int q, const Cplx *d0, const Cplx *d1)
{
    if (counters_)
        counters_->record(obs::KernelId::Diagonal1q, dim_ * lanes_);
    const std::size_t stride = std::size_t{1} << q;
    Cplx *amp = amp_.data();
    const std::size_t L = lanes_;
    parallelFor(dim_ >> 1, [=](std::size_t t) {
        const std::size_t low = t & (stride - 1);
        const std::size_t i0 = ((t - low) << 1) | low;
        Cplx *a0 = amp + i0 * L;
        Cplx *a1 = amp + (i0 + stride) * L;
        for (std::size_t b = 0; b < L; ++b) {
            a0[b] *= d0[b];
            a1[b] *= d1[b];
        }
    });
}

void
BatchedStateVector::applyParityPhase(Basis mask, const Cplx *even,
                                     const Cplx *odd)
{
    if (counters_)
        counters_->record(obs::KernelId::ParityPhase, dim_ * lanes_);
    Cplx *amp = amp_.data();
    const std::size_t L = lanes_;
    parallelFor(dim_, [=](std::size_t i) {
        Cplx *a = amp + i * L;
        const Cplx *f =
            (popcount(static_cast<Basis>(i) & mask) & 1) ? odd : even;
        for (std::size_t b = 0; b < L; ++b)
            a[b] *= f[b];
    });
}

void
BatchedStateVector::applyPairRotation(Basis support_mask, Basis v_bits,
                                      const double *c, const double *s)
{
    CHOCOQ_ASSERT((v_bits & ~support_mask) == 0,
                  "v pattern outside support");
    CHOCOQ_ASSERT(support_mask != 0, "empty commute-term support");
    if (counters_)
        counters_->record(
            obs::KernelId::PairRotation,
            (dim_ >> (popcount(support_mask) - 1)) * lanes_);
    Cplx *amp = amp_.data();
    const std::size_t L = lanes_;
    // Same enumeration as the scalar kernel; the pair partners of a run
    // are the lane blocks of the run at base XOR support_mask. Per lane
    // the real-component mixing expression is verbatim the scalar one.
    forEachSubspaceRun(
        freeMask(support_mask), v_bits, [=](Basis base, std::size_t len) {
            Cplx *__restrict pv = amp + static_cast<std::size_t>(base) * L;
            Cplx *__restrict pw =
                amp + static_cast<std::size_t>(base ^ support_mask) * L;
            for (std::size_t t = 0; t < len; ++t) {
                Cplx *__restrict ev = pv + t * L;
                Cplx *__restrict ew = pw + t * L;
                for (std::size_t b = 0; b < L; ++b) {
                    const double cc = c[b];
                    const double ss = s[b];
                    const Cplx a = ev[b];
                    const Cplx w = ew[b];
                    ev[b] = Cplx{cc * a.real() + ss * w.imag(),
                                 cc * a.imag() - ss * w.real()};
                    ew[b] = Cplx{ss * a.imag() + cc * w.real(),
                                 cc * w.imag() - ss * a.real()};
                }
            }
        });
}

void
BatchedStateVector::applyPairRotationGroup(Basis support_mask,
                                           const Basis *vbits,
                                           std::size_t count, const double *c,
                                           const double *s)
{
    CHOCOQ_ASSERT(support_mask != 0, "empty commute-group support");
    for (std::size_t g = 0; g < count; ++g)
        CHOCOQ_ASSERT((vbits[g] & ~support_mask) == 0,
                      "v pattern outside group support");
    if (counters_)
        counters_->record(
            obs::KernelId::PairRotationGroup,
            count * (dim_ >> (popcount(support_mask) - 1)) * lanes_);
    Cplx *amp = amp_.data();
    const std::size_t L = lanes_;
    forEachSubspaceRun(
        freeMask(support_mask), 0, [=](Basis base, std::size_t len) {
            for (std::size_t g = 0; g < count; ++g) {
                const std::size_t ov =
                    static_cast<std::size_t>(base | vbits[g]);
                Cplx *__restrict pv = amp + ov * L;
                Cplx *__restrict pw =
                    amp
                    + static_cast<std::size_t>((base | vbits[g])
                                               ^ support_mask)
                          * L;
                for (std::size_t t = 0; t < len; ++t) {
                    Cplx *__restrict ev = pv + t * L;
                    Cplx *__restrict ew = pw + t * L;
                    for (std::size_t b = 0; b < L; ++b) {
                        const double cc = c[b];
                        const double ss = s[b];
                        const Cplx a = ev[b];
                        const Cplx w = ew[b];
                        ev[b] = Cplx{cc * a.real() + ss * w.imag(),
                                     cc * a.imag() - ss * w.real()};
                        ew[b] = Cplx{ss * a.imag() + cc * w.real(),
                                     cc * w.imag() - ss * a.real()};
                    }
                }
            }
        });
}

void
BatchedStateVector::applyPhasedPairRotationGroup(
    Basis support_mask, const Basis *vbits, std::size_t count,
    const double *c, const double *s, const Cplx *phases,
    const std::uint16_t *index)
{
    CHOCOQ_ASSERT(support_mask != 0, "empty commute-group support");
    for (std::size_t g = 0; g < count; ++g)
        CHOCOQ_ASSERT((vbits[g] & ~support_mask) == 0,
                      "v pattern outside group support");
    if (counters_)
        counters_->record(
            obs::KernelId::PhasedPairRotationGroup,
            (dim_ + count * (dim_ >> (popcount(support_mask) - 1)))
                * lanes_);
    Cplx *amp = amp_.data();
    const std::size_t L = lanes_;
    const std::size_t patterns = subspaceCount(support_mask);
    // The support-pattern tiles {base | p} + [0, len) of one span tile
    // the index space exactly once across all spans, so step 1 applies
    // the full objective-phase gather; step 2's rotations read only
    // indices whose free part lies in this span, all phased in step 1.
    // Thread chunks own disjoint free-part ranges, so both steps stay
    // race-free under either forEachSubspaceRun parallel branch.
    forEachSubspaceRun(
        freeMask(support_mask), 0, [=](Basis base, std::size_t len) {
            Basis p = 0;
            for (std::size_t q = 0; q < patterns; ++q) {
                const std::size_t off = static_cast<std::size_t>(base | p);
                Cplx *__restrict pa = amp + off * L;
                const std::uint16_t *__restrict pi = index + off;
                for (std::size_t t = 0; t < len; ++t) {
                    Cplx *__restrict a = pa + t * L;
                    const Cplx *__restrict ph =
                        phases + static_cast<std::size_t>(pi[t]) * L;
                    for (std::size_t b = 0; b < L; ++b)
                        a[b] *= ph[b];
                }
                p = subspaceNext(p, support_mask, 0);
            }
            for (std::size_t g = 0; g < count; ++g) {
                Cplx *__restrict pv =
                    amp + static_cast<std::size_t>(base | vbits[g]) * L;
                Cplx *__restrict pw =
                    amp
                    + static_cast<std::size_t>((base | vbits[g])
                                               ^ support_mask)
                          * L;
                for (std::size_t t = 0; t < len; ++t) {
                    Cplx *__restrict ev = pv + t * L;
                    Cplx *__restrict ew = pw + t * L;
                    for (std::size_t b = 0; b < L; ++b) {
                        const double cc = c[b];
                        const double ss = s[b];
                        const Cplx a = ev[b];
                        const Cplx w = ew[b];
                        ev[b] = Cplx{cc * a.real() + ss * w.imag(),
                                     cc * a.imag() - ss * w.real()};
                        ew[b] = Cplx{ss * a.imag() + cc * w.real(),
                                     cc * w.imag() - ss * a.real()};
                    }
                }
            }
        });
}

void
BatchedStateVector::applyMaskPhaseProduct(const Basis *masks,
                                          const Cplx *phases,
                                          std::size_t count,
                                          const Cplx *global)
{
    if (counters_)
        counters_->record(obs::KernelId::MaskPhaseProduct, dim_ * lanes_);
    // Lane-minor variant of the scalar byte-blocked kernel: slice b's
    // 256-entry factor table stores the B lane factors of each entry
    // contiguously. Per lane the factor product is accumulated in the
    // scalar kernel's association order (block 0, blocks 1.., residual
    // terms) before the single multiply into the amplitude.
    const int blocks = (n_ + 7) / 8;
    const std::size_t L = lanes_;
    mask_phase_tables_.assign(static_cast<std::size_t>(blocks) * 256 * L,
                              Cplx{1.0, 0.0});
    mask_phase_res_masks_.clear();
    mask_phase_res_phases_.clear();
    Cplx *tables = mask_phase_tables_.data();
    for (std::size_t t = 0; t < count; ++t) {
        bool folded = false;
        for (int b = 0; b < blocks; ++b) {
            const Basis block_mask = Basis{0xFF} << (8 * b);
            if ((masks[t] & ~block_mask) != 0)
                continue;
            const unsigned local =
                static_cast<unsigned>(masks[t] >> (8 * b));
            Cplx *table = tables + static_cast<std::size_t>(b) * 256 * L;
            for (unsigned v = 0; v < 256; ++v)
                if ((v & local) == local)
                    for (std::size_t l = 0; l < L; ++l)
                        table[v * L + l] *= phases[t * L + l];
            folded = true;
            break;
        }
        if (!folded) {
            mask_phase_res_masks_.push_back(masks[t]);
            for (std::size_t l = 0; l < L; ++l)
                mask_phase_res_phases_.push_back(phases[t * L + l]);
        }
    }
    for (unsigned v = 0; v < 256; ++v)
        for (std::size_t l = 0; l < L; ++l)
            tables[v * L + l] *= global[l];

    Cplx *amp = amp_.data();
    const std::size_t res_count = mask_phase_res_masks_.size();
    const Basis *rm = mask_phase_res_masks_.data();
    const Cplx *rp = mask_phase_res_phases_.data();
    if (blocks == 1 && res_count == 0) {
        const Cplx *t0 = tables;
        parallelFor(dim_, [=](std::size_t i) {
            Cplx *a = amp + i * L;
            const Cplx *f = t0 + (i & 0xFF) * L;
            for (std::size_t b = 0; b < L; ++b)
                a[b] *= f[b];
        });
        return;
    }
    const Cplx *tabs = tables;
    parallelFor(dim_, [=](std::size_t i) {
        Cplx *a = amp + i * L;
        for (std::size_t b = 0; b < L; ++b) {
            Cplx f = tabs[(i & 0xFF) * L + b];
            for (int blk = 1; blk < blocks; ++blk)
                f *= tabs[(static_cast<std::size_t>(blk) * 256
                           + ((i >> (8 * blk)) & 0xFF))
                              * L
                          + b];
            for (std::size_t t = 0; t < res_count; ++t)
                if ((static_cast<Basis>(i) & rm[t]) == rm[t])
                    f *= rp[t * L + b];
            a[b] *= f;
        }
    });
}

void
BatchedStateVector::expectationTable(const std::vector<double> &table,
                                     double *out) const
{
    CHOCOQ_ASSERT(table.size() == dim_, "expectation table size mismatch");
    if (counters_)
        counters_->record(obs::KernelId::ExpectationTable, dim_ * lanes_);
    const Cplx *amp = amp_.data();
    const double *tab = table.data();
    const std::size_t L = lanes_;
    reducePerLane(
        [=](std::size_t i, double *acc) {
            const Cplx *a = amp + i * L;
            for (std::size_t b = 0; b < L; ++b)
                acc[b] += std::norm(a[b]) * tab[i];
        },
        out);
}

void
BatchedStateVector::expectationTableCompressed(
    const std::vector<double> &distinct,
    const std::vector<std::uint16_t> &index, double *out) const
{
    CHOCOQ_ASSERT(index.size() == dim_,
                  "compressed expectation index size mismatch");
    if (counters_)
        counters_->record(obs::KernelId::ExpectationTableCompressed,
                          dim_ * lanes_);
    const Cplx *amp = amp_.data();
    const double *dv = distinct.data();
    const std::uint16_t *idx = index.data();
    const std::size_t L = lanes_;
    reducePerLane(
        [=](std::size_t i, double *acc) {
            const Cplx *a = amp + i * L;
            const double v = dv[idx[i]];
            for (std::size_t b = 0; b < L; ++b)
                acc[b] += std::norm(a[b]) * v;
        },
        out);
}

} // namespace chocoq::sim
