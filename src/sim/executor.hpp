/**
 * @file
 * Circuit execution on the state-vector simulator, with optional
 * stochastic-Pauli noise trajectories.
 *
 * The noise model mirrors the way the paper evaluates "real-world quantum
 * platforms" (Fig. 10/13b/14): every gate carries a depolarizing error
 * probability (distinct for 1q and multi-qubit gates, taken from each IBM
 * device's published fidelities), realised per trajectory as a uniformly
 * random Pauli on the gate's operands; measurement adds independent
 * readout bit flips.
 */

#ifndef CHOCOQ_SIM_EXECUTOR_HPP
#define CHOCOQ_SIM_EXECUTOR_HPP

#include <functional>
#include <optional>

#include "circuit/circuit.hpp"
#include "circuit/fusion.hpp"
#include "common/rng.hpp"
#include "sim/statevector.hpp"

namespace chocoq::sim
{

/** Gate-level depolarizing + readout noise parameters. */
struct NoiseModel
{
    /** Error probability attached to every single-qubit gate. */
    double p1q = 0.0;
    /** Error probability attached to every >= 2-qubit gate. */
    double p2q = 0.0;
    /** Per-bit readout flip probability. */
    double readout = 0.0;

    bool isNoiseless() const { return p1q <= 0 && p2q <= 0 && readout <= 0; }
};

/** Apply one gate to the state (no noise). */
void applyGate(StateVector &state, const circuit::Gate &gate);

/**
 * Execute a circuit.
 *
 * @param state State to evolve in place (must be as wide as the circuit).
 * @param c Circuit to run.
 * @param after_gate Optional probe invoked after every gate with the index
 *        of the gate just applied (used by the Fig. 9b parallelism probe).
 */
void execute(StateVector &state, const circuit::Circuit &c,
             const std::function<void(std::size_t)> &after_gate = nullptr);

/**
 * Execute a gate-fused circuit (see circuit::fuseDiagonals): passthrough
 * gates run through applyGate, FusedDiagonal blocks apply as one
 * mask-phase-product sweep. Equivalent to executing the source circuit
 * within floating-point reassociation (each amplitude receives one
 * multiply by the accumulated product instead of one multiply per
 * diagonal gate); noisy trajectories must keep per-gate granularity and
 * always use executeNoisy on the unfused circuit.
 */
void execute(StateVector &state, const circuit::FusedCircuit &c);

/**
 * Execute one noisy trajectory: after each gate, each operand qubit is hit
 * by a uniformly random Pauli with the model's error probability.
 */
void executeNoisy(StateVector &state, const circuit::Circuit &c,
                  const NoiseModel &noise, Rng &rng);

} // namespace chocoq::sim

#endif // CHOCOQ_SIM_EXECUTOR_HPP
