#include "sim/executor.hpp"

#include <cmath>

#include "common/error.hpp"

namespace chocoq::sim
{

namespace
{

using circuit::Gate;
using circuit::GateType;

constexpr double kInvSqrt2 = 0.70710678118654752440;

Basis
maskOf(const std::vector<int> &qubits, std::size_t from, std::size_t to)
{
    Basis mask = 0;
    for (std::size_t i = from; i < to; ++i)
        mask |= Basis{1} << qubits[i];
    return mask;
}

} // namespace

void
applyGate(StateVector &state, const Gate &g)
{
    const double theta = g.param;
    switch (g.type) {
      case GateType::H:
        state.apply1q(g.qubits[0], kInvSqrt2, kInvSqrt2, kInvSqrt2,
                      -kInvSqrt2);
        return;
      case GateType::X:
        state.apply1q(g.qubits[0], 0, 1, 1, 0);
        return;
      case GateType::Y:
        state.apply1q(g.qubits[0], 0, Cplx{0, -1}, Cplx{0, 1}, 0);
        return;
      case GateType::Z:
        state.applyDiagonal1q(g.qubits[0], 1, -1);
        return;
      case GateType::S:
        state.applyDiagonal1q(g.qubits[0], 1, Cplx{0, 1});
        return;
      case GateType::Sdg:
        state.applyDiagonal1q(g.qubits[0], 1, Cplx{0, -1});
        return;
      case GateType::T:
        state.applyDiagonal1q(g.qubits[0], 1, Cplx{kInvSqrt2, kInvSqrt2});
        return;
      case GateType::Tdg:
        state.applyDiagonal1q(g.qubits[0], 1, Cplx{kInvSqrt2, -kInvSqrt2});
        return;
      case GateType::RX: {
        const Cplx c{std::cos(theta / 2), 0.0};
        const Cplx ms{0.0, -std::sin(theta / 2)};
        state.apply1q(g.qubits[0], c, ms, ms, c);
        return;
      }
      case GateType::RY: {
        const double c = std::cos(theta / 2);
        const double s = std::sin(theta / 2);
        state.apply1q(g.qubits[0], c, -s, s, c);
        return;
      }
      case GateType::RZ: {
        const Cplx em{std::cos(theta / 2), -std::sin(theta / 2)};
        state.applyDiagonal1q(g.qubits[0], em, std::conj(em));
        return;
      }
      case GateType::P:
        state.applyDiagonal1q(g.qubits[0], 1,
                              Cplx{std::cos(theta), std::sin(theta)});
        return;
      case GateType::CX:
        state.applyControlled1q(Basis{1} << g.qubits[0], g.qubits[1], 0, 1,
                                1, 0);
        return;
      case GateType::CZ:
        state.applyPhaseMask(maskOf(g.qubits, 0, 2), M_PI);
        return;
      case GateType::CP:
        state.applyPhaseMask(maskOf(g.qubits, 0, 2), theta);
        return;
      case GateType::SWAP:
        state.applySwap(g.qubits[0], g.qubits[1]);
        return;
      case GateType::CCX:
        state.applyControlled1q(maskOf(g.qubits, 0, 2), g.qubits[2], 0, 1, 1,
                                0);
        return;
      case GateType::RZZ: {
        // Diagonal two-mask kernel: equal bits = even parity of the
        // two-bit mask -> e^{-i theta/2}, unequal -> e^{+i theta/2}.
        const Cplx same{std::cos(theta / 2), -std::sin(theta / 2)};
        state.applyParityPhase(maskOf(g.qubits, 0, 2), same,
                               std::conj(same));
        return;
      }
      case GateType::XY:
        state.applyXY(g.qubits[0], g.qubits[1], theta);
        return;
      case GateType::MCP:
        state.applyPhaseMask(maskOf(g.qubits, 0, g.qubits.size()), theta);
        return;
      case GateType::MCX:
        state.applyControlled1q(maskOf(g.qubits, 0, g.qubits.size() - 1),
                                g.qubits.back(), 0, 1, 1, 0);
        return;
      case GateType::BARRIER:
        return;
    }
    CHOCOQ_ASSERT(false, "unhandled gate in executor");
}

void
execute(StateVector &state, const circuit::Circuit &c,
        const std::function<void(std::size_t)> &after_gate)
{
    CHOCOQ_ASSERT(state.numQubits() >= c.numQubits(),
                  "state narrower than circuit");
    for (std::size_t i = 0; i < c.gates().size(); ++i) {
        applyGate(state, c.gates()[i]);
        if (after_gate)
            after_gate(i);
    }
}

void
execute(StateVector &state, const circuit::FusedCircuit &c)
{
    CHOCOQ_ASSERT(state.numQubits() >= c.numQubits,
                  "state narrower than circuit");
    // Per-term e^{i angle} factors for the current diagonal block; the
    // buffer is recycled across blocks (sincos count = term count, paid
    // once per block, amortized over the 2^n-amplitude sweep).
    std::vector<Basis> masks;
    std::vector<Cplx> phases;
    for (const auto &op : c.ops) {
        if (!op.diagonal) {
            applyGate(state, op.gate);
            continue;
        }
        masks.clear();
        phases.clear();
        masks.reserve(op.diag.terms.size());
        phases.reserve(op.diag.terms.size());
        for (const auto &term : op.diag.terms) {
            masks.push_back(term.mask);
            phases.push_back(Cplx{std::cos(term.angle),
                                  std::sin(term.angle)});
        }
        const Cplx global{std::cos(op.diag.globalAngle),
                          std::sin(op.diag.globalAngle)};
        state.applyMaskPhaseProduct(masks.data(), phases.data(),
                                    masks.size(), global);
    }
}

void
executeNoisy(StateVector &state, const circuit::Circuit &c,
             const NoiseModel &noise, Rng &rng)
{
    CHOCOQ_ASSERT(state.numQubits() >= c.numQubits(),
                  "state narrower than circuit");
    for (const auto &g : c.gates()) {
        applyGate(state, g);
        if (g.type == circuit::GateType::BARRIER)
            continue;
        const double p = g.qubits.size() >= 2 ? noise.p2q : noise.p1q;
        if (p <= 0.0)
            continue;
        for (int q : g.qubits) {
            if (!rng.chance(p))
                continue;
            switch (rng.intIn(0, 2)) {
              case 0:
                state.apply1q(q, 0, 1, 1, 0); // X
                break;
              case 1:
                state.apply1q(q, 0, Cplx{0, -1}, Cplx{0, 1}, 0); // Y
                break;
              default:
                state.apply1q(q, 1, 0, 0, -1); // Z
                break;
            }
        }
    }
}

} // namespace chocoq::sim
