/**
 * @file
 * SoA-batched state vector: B multi-start lanes interleaved
 * amplitude-major.
 *
 * Lane b of basis state i lives at amp[i * lanes + b], so every masked
 * kernel performs its index arithmetic (subspace enumeration, pair
 * partner lookup, table gathers) once per basis index and then streams
 * B contiguous lanes per memory touch. The subspace kernels are
 * memory-bound at width 1; lane-sharing the index work and the table
 * loads turns one sweep into B evaluations at close to the cost of one.
 *
 * Bit-identity contract: for every kernel here, lane b computes the
 * exact per-amplitude expression of the corresponding StateVector
 * kernel evaluated with lane b's scalar parameters, enumerated in the
 * same index order and partitioned by the same deterministic thread
 * chunking (planThreads over the *index* count, identical to the scalar
 * kernels). A lane therefore produces byte-for-byte the amplitudes of a
 * sequential evolution, for any lane count — the property test_batch
 * checks differentially. Per-lane reductions mirror parallelReduce:
 * fixed chunks over the index domain, one partial per (thread, lane),
 * summed in thread order.
 */

#ifndef CHOCOQ_SIM_BATCHED_HPP
#define CHOCOQ_SIM_BATCHED_HPP

#include <complex>
#include <cstdint>
#include <exception>
#include <vector>

#include "common/bitops.hpp"
#include "linalg/matrix.hpp"
#include "obs/roofline.hpp"
#include "sim/parallel.hpp"

namespace chocoq::sim
{

using linalg::Cplx;
using linalg::CVec;

/** Upper bound on lanes (matches the wire-level batch_width cap). */
constexpr std::size_t kMaxBatchLanes = 4096;

/**
 * B-lane SoA state vector scratch. Per-lane kernel parameters are
 * passed as arrays of lanes() entries; table/index arguments are shared
 * across lanes exactly as in the scalar kernels.
 */
class BatchedStateVector
{
  public:
    BatchedStateVector() = default;

    /**
     * Re-dimension to @p num_qubits qubits and @p lanes lanes, leaving
     * amplitudes unspecified (callers reset()). Reuses the allocation
     * whenever capacity allows, like StateVector::resizeScratch.
     */
    void resizeScratch(int num_qubits, std::size_t lanes);

    int numQubits() const { return n_; }
    std::size_t dim() const { return dim_; }
    std::size_t lanes() const { return lanes_; }

    Cplx *data() { return amp_.data(); }
    const Cplx *data() const { return amp_.data(); }

    /** Lane @p lane of basis state @p i. */
    Cplx &
    at(std::size_t i, std::size_t lane)
    {
        return amp_[i * lanes_ + lane];
    }
    const Cplx &
    at(std::size_t i, std::size_t lane) const
    {
        return amp_[i * lanes_ + lane];
    }

    /**
     * Attach (or detach, with nullptr) a kernel counter sink — the same
     * zero-cost-when-null contract as StateVector::setCounterSink.
     * Batched kernels record lane-amplitudes (index touches times
     * lanes()) under the same KernelId as their scalar twin, once per
     * invocation on the calling thread.
     */
    void setCounterSink(obs::KernelCounterSink *sink) { counters_ = sink; }
    obs::KernelCounterSink *counterSink() const { return counters_; }

    /** Reset every lane to the computational basis state |idx>. */
    void reset(Basis idx = 0);

    /** Copy a scalar state into lane @p lane (dim() amplitudes). */
    void loadLane(std::size_t lane, const CVec &src);

    /** Extract lane @p lane into @p out (resized to dim()). */
    void copyLane(std::size_t lane, CVec &out) const;

    /** Per-lane applyPhaseTable: lane b uses angle gammas[b]. */
    void applyPhaseTable(const std::vector<double> &table,
                         const double *gammas);

    /**
     * Per-lane value-compressed phase table. The per-value phase LUT is
     * built lane-minor (entry d of lane b at phase_scratch[d * lanes + b])
     * so the per-amplitude gather loads the index once and streams the
     * B lane factors contiguously.
     */
    void applyPhaseTableCompressed(const std::vector<double> &distinct,
                                   const std::vector<std::uint16_t> &index,
                                   const double *gammas,
                                   std::vector<Cplx> &phase_scratch);

    /** Per-lane applyPhaseMask: lane b multiplies by e^{i phis[b]}. */
    void applyPhaseMask(Basis mask, const double *phis);

    /** Per-lane applyDiagonal1q: lane b uses diag(d0[b], d1[b]). */
    void applyDiagonal1q(int q, const Cplx *d0, const Cplx *d1);

    /** Per-lane applyParityPhase: lane b uses (even[b], odd[b]). */
    void applyParityPhase(Basis mask, const Cplx *even, const Cplx *odd);

    /** Per-lane pair rotation: lane b mixes with (c[b], s[b]). */
    void applyPairRotation(Basis support_mask, Basis v_bits,
                           const double *c, const double *s);

    /** Per-lane applyPairRotationGroup (fused commute-layer groups). */
    void applyPairRotationGroup(Basis support_mask, const Basis *vbits,
                                std::size_t count, const double *c,
                                const double *s);

    /**
     * Fused objective-phase gather + first commute-group sweep, per
     * lane: within each enumerated free-bit span, first multiply every
     * support-pattern tile by its compressed phase factor
     * (phases[index[i] * lanes + b], the lane-minor LUT of
     * applyPhaseTableCompressed), then rotate every term's pairs. The
     * tiles partition the full index space, each rotation reads only
     * amplitudes phased in the same span, and the per-amplitude
     * arithmetic is unchanged — so the result is bit-identical to
     * applyPhaseTableCompressed followed by applyPairRotationGroup.
     */
    void applyPhasedPairRotationGroup(Basis support_mask,
                                      const Basis *vbits, std::size_t count,
                                      const double *c, const double *s,
                                      const Cplx *phases,
                                      const std::uint16_t *index);

    /**
     * Per-lane applyMaskPhaseProduct: term t's lane-b phase at
     * phases[t * lanes + b], lane-b global factor at global[b]. Factor
     * tables are rebuilt per call into lane-minor scratch owned by this
     * state (allocation persists across angle-only calls, as in the
     * scalar kernel).
     */
    void applyMaskPhaseProduct(const Basis *masks, const Cplx *phases,
                               std::size_t count, const Cplx *global);

    /** Per-lane expectation of a diagonal table -> out[lanes()]. */
    void expectationTable(const std::vector<double> &table,
                          double *out) const;

    /** Per-lane compressed-table expectation -> out[lanes()]. */
    void expectationTableCompressed(const std::vector<double> &distinct,
                                    const std::vector<std::uint16_t> &index,
                                    double *out) const;

    /**
     * Per-lane <state| diag(f) |state> -> out[lanes()]. @p f must be
     * thread-safe under CHOCOQ_THREADS > 1 (same contract as
     * StateVector::expectationDiagonal); it is invoked at most once per
     * basis index (lanes share the value, which is float-exact since f
     * is deterministic).
     */
    template <class F>
    void
    expectationDiagonal(F &&f, double *out) const
    {
        if (counters_)
            counters_->record(obs::KernelId::ExpectationDiagonal,
                              dim_ * lanes_);
        const Cplx *amp = amp_.data();
        const std::size_t L = lanes_;
        reducePerLane(
            [=, &f](std::size_t i, double *acc) {
                const Cplx *a = amp + i * L;
                bool have = false;
                double fv = 0.0;
                for (std::size_t b = 0; b < L; ++b) {
                    const double p = std::norm(a[b]);
                    if (p > 0.0) {
                        if (!have) {
                            fv = f(static_cast<Basis>(i));
                            have = true;
                        }
                        acc[b] += p * fv;
                    }
                }
            },
            out);
    }

  private:
    /** Free (spectator) bit mask complementing @p fixed_mask. */
    Basis freeMask(Basis fixed_mask) const { return (dim_ - 1) & ~fixed_mask; }

    /**
     * Per-lane deterministic reduction mirroring parallelReduce:
     * body(i, acc) accumulates index i's contribution into acc[b] per
     * lane; chunks are count*tid/team over the index domain with
     * planThreads(dim()) — the scalar reduce's partitioning — and
     * per-thread lane partials are summed in thread order.
     */
    template <class Body>
    void
    reducePerLane(Body &&body, double *out) const
    {
        const std::size_t count = dim_;
        const std::size_t L = lanes_;
#ifdef _OPENMP
        const int nt = planThreads(count);
        if (nt > 1) {
            reduce_scratch_.assign(static_cast<std::size_t>(nt) * L, 0.0);
            double *partial = reduce_scratch_.data();
            std::exception_ptr error;
#pragma omp parallel num_threads(nt)
            {
                const int team = omp_get_num_threads();
                const int tid = omp_get_thread_num();
                const std::size_t begin =
                    count * static_cast<std::size_t>(tid) / team;
                const std::size_t end =
                    count * (static_cast<std::size_t>(tid) + 1) / team;
                double *acc = partial + static_cast<std::size_t>(tid) * L;
                try {
                    for (std::size_t i = begin; i < end; ++i)
                        body(i, acc);
                } catch (...) {
#pragma omp critical(chocoq_parallel_error)
                    if (!error)
                        error = std::current_exception();
                }
            }
            if (error)
                std::rethrow_exception(error);
            for (std::size_t b = 0; b < L; ++b) {
                double total = 0.0;
                for (int t = 0; t < nt; ++t)
                    total += partial[static_cast<std::size_t>(t) * L + b];
                out[b] = total;
            }
            return;
        }
#endif
        for (std::size_t b = 0; b < L; ++b)
            out[b] = 0.0;
        for (std::size_t i = 0; i < count; ++i)
            body(i, out);
    }

    int n_ = 0;
    std::size_t dim_ = 0;
    std::size_t lanes_ = 0;
    CVec amp_;

    /** Optional kernel-mix sink (see setCounterSink); never owned. */
    obs::KernelCounterSink *counters_ = nullptr;

    /** Small per-lane factor scratch (applyPhaseMask). */
    CVec lane_factor_scratch_;

    /** applyMaskPhaseProduct scratch, lane-minor (see scalar kernel). */
    CVec mask_phase_tables_;
    std::vector<Basis> mask_phase_res_masks_;
    CVec mask_phase_res_phases_;

    /** reducePerLane per-(thread, lane) partials. */
    mutable std::vector<double> reduce_scratch_;
};

} // namespace chocoq::sim

#endif // CHOCOQ_SIM_BATCHED_HPP
