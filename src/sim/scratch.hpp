/**
 * @file
 * Reusable state-vector scratch buffers for job-serving workers.
 *
 * A worker thread that solves many jobs in sequence keeps one pool and
 * hands it to every engine invocation (EngineOptions::scratchPool): slot
 * 0 backs the objective-evaluation scratch and the SoA batch() slot
 * backs the lockstep multi-start sweep. Slots keep their largest-ever
 * allocation (StateVector::prepare / resizeScratch and
 * BatchedStateVector::resizeScratch reuse capacity), so a worker in
 * steady state performs no per-job state-vector allocation.
 */

#ifndef CHOCOQ_SIM_SCRATCH_HPP
#define CHOCOQ_SIM_SCRATCH_HPP

#include <cstddef>
#include <memory>
#include <vector>

#include "sim/batched.hpp"
#include "sim/statevector.hpp"

namespace chocoq::sim
{

/**
 * Pool of lazily created StateVector scratch slots. Not thread-safe:
 * one pool per worker by design (sharing would serialize the kernels
 * anyway and break the zero-contention scaling story).
 */
class ScratchPool
{
  public:
    /**
     * Scratch slot @p i, created over @p num_qubits qubits on first use.
     * Contents and dimension of an existing slot are whatever the last
     * user left; callers re-dimension via prepare()/resizeScratch().
     */
    StateVector &
    at(std::size_t i, int num_qubits)
    {
        // unique_ptr slots: growing the vector must not move live
        // StateVectors (callers hold references across at() calls).
        while (states_.size() <= i)
            states_.push_back(std::make_unique<StateVector>(num_qubits));
        return *states_[i];
    }

    /** Number of slots materialized so far. */
    std::size_t size() const { return states_.size(); }

    /**
     * SoA batch scratch backing the lockstep multi-start sweep (lazily
     * created; dimension/lanes are whatever the last user left, callers
     * re-dimension via resizeScratch). One slot suffices: the batched
     * sweep evaluates its lanes in-place instead of spreading starts
     * over scalar slots.
     */
    BatchedStateVector &
    batch()
    {
        if (!batch_)
            batch_ = std::make_unique<BatchedStateVector>();
        return *batch_;
    }

  private:
    std::vector<std::unique_ptr<StateVector>> states_;
    std::unique_ptr<BatchedStateVector> batch_;
};

} // namespace chocoq::sim

#endif // CHOCOQ_SIM_SCRATCH_HPP
