/**
 * @file
 * Dense unitary extraction from circuits (test and analysis utility).
 */

#ifndef CHOCOQ_SIM_UNITARY_HPP
#define CHOCOQ_SIM_UNITARY_HPP

#include "circuit/circuit.hpp"
#include "linalg/matrix.hpp"

namespace chocoq::sim
{

/**
 * Build the dense unitary implemented by @p c by executing it on every
 * computational basis state. O(4^n); intended for small test circuits.
 */
linalg::Matrix circuitUnitary(const circuit::Circuit &c);

} // namespace chocoq::sim

#endif // CHOCOQ_SIM_UNITARY_HPP
