/**
 * @file
 * Subspace enumeration for masked state-vector kernels.
 *
 * A masked kernel (commute pair rotation, phase mask, XY, swap,
 * controlled gate) transforms only the basis states whose bits agree
 * with a fixed pattern on some support; the remaining "free" qubits are
 * spectators. Instead of scanning all 2^n indices and filtering with a
 * branch, these helpers enumerate exactly the 2^(n-k) matching indices:
 *
 *   idx_0 = fixed_bits
 *   idx_{t+1} = (((idx_t | ~free_mask) + 1) & free_mask) | fixed_bits
 *
 * The +1 carry propagates through the (saturated) non-free bits, so the
 * free bits count up like a packed integer — one add and two bit-ops per
 * index, no branch, and the visit order is ascending. Random access for
 * parallel chunking deposits the bits of an ordinal t into the free
 * positions (subspaceExpand), after which each thread advances with the
 * same O(1) carry step. Chunk boundaries depend only on (count, threads),
 * keeping the partitioning deterministic.
 */

#ifndef CHOCOQ_SIM_SUBSPACE_HPP
#define CHOCOQ_SIM_SUBSPACE_HPP

#include <cstddef>

#include "common/bitops.hpp"
#include "sim/parallel.hpp"

namespace chocoq::sim
{

/** Number of indices matching a pattern with free bits @p free_mask. */
inline std::size_t
subspaceCount(Basis free_mask)
{
    return std::size_t{1} << popcount(free_mask);
}

/**
 * The @p t-th matching index (ascending order): deposit the bits of t
 * into the set positions of @p free_mask, OR in @p fixed_bits.
 */
inline Basis
subspaceExpand(Basis free_mask, Basis fixed_bits, std::size_t t)
{
    Basis idx = fixed_bits;
    Basis m = free_mask;
    while (t != 0 && m != 0) {
        const Basis low = m & (~m + 1);
        if (t & 1u)
            idx |= low;
        m &= m - 1;
        t >>= 1;
    }
    return idx;
}

/** Successor of @p idx within the subspace (carry-propagate counter). */
inline Basis
subspaceNext(Basis idx, Basis free_mask, Basis fixed_bits)
{
    return (((idx | ~free_mask) + 1) & free_mask) | fixed_bits;
}

/**
 * Decompose the subspace {idx : (idx & ~free_mask) == fixed_bits} into
 * maximal contiguous runs and call run_body(base, len) for each, in
 * ascending base order per chunk. The free bits below the lowest fixed
 * bit address contiguous memory, so the subspace is 2^(free bits above)
 * carry-advanced run bases times a sequential span of 2^(free bits
 * below) indices — kernels get a dense inner loop that vectorizes, and
 * the carry arithmetic amortizes to nothing.
 *
 * @p fixed_bits must not intersect @p free_mask. Parallel when the
 * subspace is large enough and more than one thread is configured:
 * whole runs are distributed when there are enough of them, otherwise
 * each run is split into per-thread sub-runs (a sub-span of a run is
 * itself a valid run). Chunk boundaries depend only on (count, threads).
 * run_body must write only locations derived from its own span — every
 * kernel here touches {idx} or {idx, partner} pairs whose partners live
 * in a disjoint fixed-pattern subspace, so chunks never overlap — and
 * must not throw (the gate kernels are pure arithmetic; a throwing body
 * inside the parallel branch would terminate the process).
 */
template <class RunBody>
void
forEachSubspaceRun(Basis free_mask, Basis fixed_bits, RunBody &&run_body)
{
    const std::size_t run_len = std::size_t{1}
                                << std::countr_one(free_mask);
    const Basis outer_mask = free_mask & ~(run_len - 1);
    const std::size_t outer_count = subspaceCount(outer_mask);

#ifdef _OPENMP
    const int nt = planThreads(outer_count * run_len);
    if (nt > 1) {
        if (outer_count >= static_cast<std::size_t>(nt)) {
#pragma omp parallel num_threads(nt)
            {
                // Partition on the granted team size: the runtime may
                // deliver fewer threads than requested, and chunks must
                // all be owned by live threads.
                const int team = omp_get_num_threads();
                const int tid = omp_get_thread_num();
                const std::size_t begin =
                    outer_count * static_cast<std::size_t>(tid) / team;
                const std::size_t end =
                    outer_count * (static_cast<std::size_t>(tid) + 1)
                    / team;
                Basis base = subspaceExpand(outer_mask, fixed_bits, begin);
                for (std::size_t t = begin; t < end; ++t) {
                    run_body(base, run_len);
                    base = subspaceNext(base, outer_mask, fixed_bits);
                }
            }
        } else {
            // Few long runs: split each run across the threads.
            Basis base = fixed_bits;
            for (std::size_t t = 0; t < outer_count; ++t) {
#pragma omp parallel num_threads(nt)
                {
                    const int team = omp_get_num_threads();
                    const int tid = omp_get_thread_num();
                    const std::size_t begin =
                        run_len * static_cast<std::size_t>(tid) / team;
                    const std::size_t end =
                        run_len * (static_cast<std::size_t>(tid) + 1)
                        / team;
                    if (end > begin)
                        run_body(base + static_cast<Basis>(begin),
                                 end - begin);
                }
                base = subspaceNext(base, outer_mask, fixed_bits);
            }
        }
        return;
    }
#endif
    Basis base = fixed_bits;
    for (std::size_t t = 0; t < outer_count; ++t) {
        run_body(base, run_len);
        base = subspaceNext(base, outer_mask, fixed_bits);
    }
}

/**
 * Run body(idx) for every index with (idx & ~free_mask) == fixed_bits,
 * in ascending order per chunk (run decomposition and parallel policy of
 * forEachSubspaceRun).
 */
template <class Body>
void
forEachInSubspace(Basis free_mask, Basis fixed_bits, Body &&body)
{
    forEachSubspaceRun(free_mask, fixed_bits,
                       [&](Basis base, std::size_t len) {
                           for (std::size_t j = 0; j < len; ++j)
                               body(base + static_cast<Basis>(j));
                       });
}

} // namespace chocoq::sim

#endif // CHOCOQ_SIM_SUBSPACE_HPP
