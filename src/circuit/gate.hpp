/**
 * @file
 * Gate-level intermediate representation.
 *
 * The gate set covers the basis gates of the target devices plus the
 * composite gates the Choco-Q compilation flow produces before lowering:
 * multi-controlled phase (the P(beta) of Lemma 2), multi-controlled X,
 * the XY rotation used by the cyclic-Hamiltonian baseline [47], and the
 * two-qubit ZZ rotation used by objective/penalty Hamiltonians.
 */

#ifndef CHOCOQ_CIRCUIT_GATE_HPP
#define CHOCOQ_CIRCUIT_GATE_HPP

#include <string>
#include <vector>

namespace chocoq::circuit
{

/** All gate kinds understood by the simulator and the transpiler. */
enum class GateType
{
    H,      ///< Hadamard.
    X,      ///< Pauli X.
    Y,      ///< Pauli Y.
    Z,      ///< Pauli Z.
    S,      ///< sqrt(Z).
    Sdg,    ///< S dagger.
    T,      ///< fourth root of Z.
    Tdg,    ///< T dagger.
    RX,     ///< exp(-i theta X / 2).
    RY,     ///< exp(-i theta Y / 2).
    RZ,     ///< exp(-i theta Z / 2).
    P,      ///< Phase gate diag(1, e^{i phi}).
    CX,     ///< Controlled X; qubits = {control, target}.
    CZ,     ///< Controlled Z; symmetric.
    CP,     ///< Controlled phase; symmetric.
    SWAP,   ///< Swap; qubits = {a, b}.
    CCX,    ///< Toffoli; qubits = {c1, c2, target}.
    RZZ,    ///< exp(-i theta Z(x)Z / 2); qubits = {a, b}.
    XY,     ///< exp(-i beta (X(x)X + Y(x)Y)); qubits = {a, b}.
    MCP,    ///< Multi-controlled phase on all listed qubits (symmetric).
    MCX,    ///< Multi-controlled X; last listed qubit is the target.
    BARRIER ///< Scheduling barrier; no unitary action.
};

/** One gate instance. */
struct Gate
{
    GateType type;
    /** Qubit operands; role depends on the gate type (see GateType). */
    std::vector<int> qubits;
    /** Rotation angle / phase, if the gate is parameterized. */
    double param = 0.0;
};

/** Short mnemonic, e.g. "cx". */
std::string gateName(GateType type);

/** True for gate types that carry an angle parameter. */
bool gateHasParam(GateType type);

} // namespace chocoq::circuit

#endif // CHOCOQ_CIRCUIT_GATE_HPP
