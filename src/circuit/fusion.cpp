#include "circuit/fusion.hpp"

#include <cmath>

#include "common/error.hpp"

namespace chocoq::circuit
{

namespace
{

Basis
bitOf(int q)
{
    return Basis{1} << q;
}

/**
 * Fraction of the full state the gate's dedicated unfused kernel
 * touches (the traffic the fused sweep saves). Single-qubit diagonals
 * and RZZ use full-dimension kernels; phase masks enumerate only the
 * 2^(n-m) matching amplitudes.
 */
double
sweepFraction(const Gate &g)
{
    switch (g.type) {
      case GateType::Z:
      case GateType::S:
      case GateType::Sdg:
      case GateType::T:
      case GateType::Tdg:
      case GateType::RZ:
      case GateType::P:
      case GateType::RZZ:
        return 1.0;
      case GateType::CZ:
      case GateType::CP:
        return 0.25;
      case GateType::MCP:
        return std::ldexp(1.0, -static_cast<int>(g.qubits.size()));
      default:
        return 0.0;
    }
}

} // namespace

bool
isDiagonalGate(GateType type)
{
    switch (type) {
      case GateType::Z:
      case GateType::S:
      case GateType::Sdg:
      case GateType::T:
      case GateType::Tdg:
      case GateType::RZ:
      case GateType::P:
      case GateType::CZ:
      case GateType::CP:
      case GateType::RZZ:
      case GateType::MCP:
        return true;
      default:
        return false;
    }
}

bool
appendDiagonalFactors(const Gate &g, FusedDiagonal &out)
{
    const double theta = g.param;
    switch (g.type) {
      case GateType::Z:
        out.terms.push_back({bitOf(g.qubits[0]), M_PI});
        break;
      case GateType::S:
        out.terms.push_back({bitOf(g.qubits[0]), M_PI / 2});
        break;
      case GateType::Sdg:
        out.terms.push_back({bitOf(g.qubits[0]), -M_PI / 2});
        break;
      case GateType::T:
        out.terms.push_back({bitOf(g.qubits[0]), M_PI / 4});
        break;
      case GateType::Tdg:
        out.terms.push_back({bitOf(g.qubits[0]), -M_PI / 4});
        break;
      case GateType::P:
        out.terms.push_back({bitOf(g.qubits[0]), theta});
        break;
      case GateType::RZ:
        // diag(e^{-i t/2}, e^{+i t/2}) = e^{-i t/2} diag(1, e^{i t}).
        out.globalAngle += -theta / 2;
        out.terms.push_back({bitOf(g.qubits[0]), theta});
        break;
      case GateType::CZ:
        out.terms.push_back({bitOf(g.qubits[0]) | bitOf(g.qubits[1]), M_PI});
        break;
      case GateType::CP:
        out.terms.push_back({bitOf(g.qubits[0]) | bitOf(g.qubits[1]), theta});
        break;
      case GateType::MCP: {
        Basis mask = 0;
        for (int q : g.qubits)
            mask |= bitOf(q);
        out.terms.push_back({mask, theta});
        break;
      }
      case GateType::RZZ: {
        // Even parity of {a, b} gets e^{-i t/2}, odd e^{+i t/2}:
        // e^{-i t/2} x P_a(t) x P_b(t) x P_ab(-2t) reproduces all four
        // patterns (00: global; 01/10: +t; 11: +2t-2t).
        const Basis a = bitOf(g.qubits[0]);
        const Basis b = bitOf(g.qubits[1]);
        out.globalAngle += -theta / 2;
        out.terms.push_back({a, theta});
        out.terms.push_back({b, theta});
        out.terms.push_back({a | b, -2 * theta});
        break;
      }
      default:
        return false;
    }
    out.gateCount += 1;
    return true;
}

FusedCircuit
fuseDiagonals(const Circuit &c, const FusionOptions &opts)
{
    FusedCircuit out;
    out.numQubits = c.numQubits();

    FusedDiagonal run;
    double run_fraction = 0.0;
    std::vector<const Gate *> run_gates;

    const auto flush = [&]() {
        if (run_gates.empty())
            return;
        if (run_gates.size() >= opts.minGates
            && run_fraction >= opts.minSweepFraction) {
            FusedOp op;
            op.diagonal = true;
            op.diag = std::move(run);
            out.fusedGates += run_gates.size();
            out.diagonalBlocks += 1;
            out.ops.push_back(std::move(op));
        } else {
            // Below the cost model: the per-gate sparse kernels win.
            for (const Gate *g : run_gates) {
                FusedOp op;
                op.gate = *g;
                out.ops.push_back(std::move(op));
            }
        }
        run = FusedDiagonal{};
        run_fraction = 0.0;
        run_gates.clear();
    };

    for (const Gate &g : c.gates()) {
        if (g.type == GateType::BARRIER) {
            flush();
            FusedOp op;
            op.gate = g;
            out.ops.push_back(std::move(op));
            continue;
        }
        out.sourceGates += 1;
        if (isDiagonalGate(g.type)) {
            const bool folded = appendDiagonalFactors(g, run);
            CHOCOQ_ASSERT(folded, "diagonal gate without factorization");
            run_fraction += sweepFraction(g);
            run_gates.push_back(&g);
        } else {
            flush();
            FusedOp op;
            op.gate = g;
            out.ops.push_back(std::move(op));
        }
    }
    flush();
    return out;
}

} // namespace chocoq::circuit
