/**
 * @file
 * Quantum circuit container with builder helpers and depth analysis.
 */

#ifndef CHOCOQ_CIRCUIT_CIRCUIT_HPP
#define CHOCOQ_CIRCUIT_CIRCUIT_HPP

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "circuit/gate.hpp"

namespace chocoq::circuit
{

/**
 * An ordered list of gates over a fixed-width qubit register.
 *
 * The register is split into data qubits [0, numData) that carry problem
 * variables and ancilla qubits [numData, numQubits) introduced by the
 * transpiler (e.g. the V-chain lowering of multi-controlled phase gates).
 */
class Circuit
{
  public:
    /** Circuit over @p num_data data qubits and no ancillas yet. */
    explicit Circuit(int num_data = 0);

    int numQubits() const { return numQubits_; }
    int numData() const { return numData_; }

    /** Grow the register by one ancilla qubit; returns its index. */
    int addAncilla();

    /** Ensure the register has at least @p count ancilla qubits. */
    void reserveAncillas(int count);

    const std::vector<Gate> &gates() const { return gates_; }
    std::size_t size() const { return gates_.size(); }

    /** Append a gate (validates qubit indices). */
    void add(Gate g);

    /** Append all gates of @p other (register widths must match). */
    void append(const Circuit &other);

    /// @name Builder helpers.
    /// @{
    void h(int q) { add({GateType::H, {q}, 0.0}); }
    void x(int q) { add({GateType::X, {q}, 0.0}); }
    void y(int q) { add({GateType::Y, {q}, 0.0}); }
    void z(int q) { add({GateType::Z, {q}, 0.0}); }
    void s(int q) { add({GateType::S, {q}, 0.0}); }
    void sdg(int q) { add({GateType::Sdg, {q}, 0.0}); }
    void t(int q) { add({GateType::T, {q}, 0.0}); }
    void tdg(int q) { add({GateType::Tdg, {q}, 0.0}); }
    void rx(int q, double theta) { add({GateType::RX, {q}, theta}); }
    void ry(int q, double theta) { add({GateType::RY, {q}, theta}); }
    void rz(int q, double theta) { add({GateType::RZ, {q}, theta}); }
    void p(int q, double phi) { add({GateType::P, {q}, phi}); }
    void cx(int c, int t) { add({GateType::CX, {c, t}, 0.0}); }
    void cz(int a, int b) { add({GateType::CZ, {a, b}, 0.0}); }
    void cp(int a, int b, double phi) { add({GateType::CP, {a, b}, phi}); }
    void swap(int a, int b) { add({GateType::SWAP, {a, b}, 0.0}); }
    void ccx(int a, int b, int t) { add({GateType::CCX, {a, b, t}, 0.0}); }
    void rzz(int a, int b, double theta)
    {
        add({GateType::RZZ, {a, b}, theta});
    }
    void xy(int a, int b, double beta) { add({GateType::XY, {a, b}, beta}); }
    void mcp(std::vector<int> qs, double phi)
    {
        add({GateType::MCP, std::move(qs), phi});
    }
    void mcx(std::vector<int> controls_then_target)
    {
        add({GateType::MCX, std::move(controls_then_target), 0.0});
    }
    void barrier();
    /// @}

    /**
     * ASAP-scheduled circuit depth: each gate occupies all its operand
     * qubits for one layer; barriers synchronize the whole register.
     */
    int depth() const;

    /** Total non-barrier gate count. */
    std::size_t gateCount() const;

    /** Count of gates acting on two or more qubits (excludes barriers). */
    std::size_t multiQubitGateCount() const;

    /** Histogram of gate mnemonics. */
    std::map<std::string, std::size_t> gateHistogram() const;

    /** One-line-per-gate textual dump (debugging / examples). */
    std::string str() const;

  private:
    int numData_ = 0;
    int numQubits_ = 0;
    std::vector<Gate> gates_;
};

} // namespace chocoq::circuit

#endif // CHOCOQ_CIRCUIT_CIRCUIT_HPP
