/**
 * @file
 * Lowering of composite gates into the basic-gate basis {H, X, RZ, CX}.
 *
 * The paper's deployability story (Section IV-B) hinges on the cost of this
 * lowering: Choco-Q's G gates and multi-controlled phase gates transpile
 * with linear gate count and depth, while generic unitary synthesis is
 * exponential. Multi-controlled phases use a Toffoli V-chain with reusable
 * ancilla qubits; all identities are exact up to a global phase (verified
 * against dense matrices in the test suite).
 */

#ifndef CHOCOQ_CIRCUIT_TRANSPILE_HPP
#define CHOCOQ_CIRCUIT_TRANSPILE_HPP

#include "circuit/circuit.hpp"

namespace chocoq::circuit
{

/** Options controlling the lowering pass. */
struct TranspileOptions
{
    /**
     * Keep CZ as a basis gate (Heron-class devices such as IBM Fez expose
     * CZ natively). When false, CZ lowers to H-CX-H.
     */
    bool nativeCz = false;
};

/**
 * Lower @p input to the basic basis. Ancilla qubits required by
 * multi-controlled gates are appended to the register; they are returned
 * to |0> after every use and are shared across all gates of the circuit.
 */
Circuit transpile(const Circuit &input, const TranspileOptions &opts = {});

/** True when the circuit contains only basis gates (H, X, RZ, CX[, CZ]). */
bool isLowered(const Circuit &c, const TranspileOptions &opts = {});

} // namespace chocoq::circuit

#endif // CHOCOQ_CIRCUIT_TRANSPILE_HPP
