#include "circuit/circuit.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace chocoq::circuit
{

std::string
gateName(GateType type)
{
    switch (type) {
      case GateType::H: return "h";
      case GateType::X: return "x";
      case GateType::Y: return "y";
      case GateType::Z: return "z";
      case GateType::S: return "s";
      case GateType::Sdg: return "sdg";
      case GateType::T: return "t";
      case GateType::Tdg: return "tdg";
      case GateType::RX: return "rx";
      case GateType::RY: return "ry";
      case GateType::RZ: return "rz";
      case GateType::P: return "p";
      case GateType::CX: return "cx";
      case GateType::CZ: return "cz";
      case GateType::CP: return "cp";
      case GateType::SWAP: return "swap";
      case GateType::CCX: return "ccx";
      case GateType::RZZ: return "rzz";
      case GateType::XY: return "xy";
      case GateType::MCP: return "mcp";
      case GateType::MCX: return "mcx";
      case GateType::BARRIER: return "barrier";
    }
    return "?";
}

bool
gateHasParam(GateType type)
{
    switch (type) {
      case GateType::RX:
      case GateType::RY:
      case GateType::RZ:
      case GateType::P:
      case GateType::CP:
      case GateType::RZZ:
      case GateType::XY:
      case GateType::MCP:
        return true;
      default:
        return false;
    }
}

Circuit::Circuit(int num_data) : numData_(num_data), numQubits_(num_data)
{
    CHOCOQ_ASSERT(num_data >= 0, "negative register width");
}

int
Circuit::addAncilla()
{
    return numQubits_++;
}

void
Circuit::reserveAncillas(int count)
{
    const int want = numData_ + count;
    if (numQubits_ < want)
        numQubits_ = want;
}

void
Circuit::add(Gate g)
{
    if (g.type != GateType::BARRIER) {
        CHOCOQ_ASSERT(!g.qubits.empty(), "gate without operands");
        for (std::size_t i = 0; i < g.qubits.size(); ++i) {
            const int q = g.qubits[i];
            CHOCOQ_ASSERT(q >= 0 && q < numQubits_,
                          "gate operand out of register");
            for (std::size_t j = i + 1; j < g.qubits.size(); ++j)
                CHOCOQ_ASSERT(q != g.qubits[j], "duplicate gate operand");
        }
    }
    gates_.push_back(std::move(g));
}

void
Circuit::append(const Circuit &other)
{
    CHOCOQ_ASSERT(other.numQubits() <= numQubits_,
                  "appending a wider circuit");
    for (const auto &g : other.gates())
        gates_.push_back(g);
}

void
Circuit::barrier()
{
    gates_.push_back({GateType::BARRIER, {}, 0.0});
}

int
Circuit::depth() const
{
    std::vector<int> level(numQubits_, 0);
    int max_level = 0;
    for (const auto &g : gates_) {
        if (g.type == GateType::BARRIER) {
            std::fill(level.begin(), level.end(), max_level);
            continue;
        }
        int at = 0;
        for (int q : g.qubits)
            at = std::max(at, level[q]);
        ++at;
        for (int q : g.qubits)
            level[q] = at;
        max_level = std::max(max_level, at);
    }
    return max_level;
}

std::size_t
Circuit::gateCount() const
{
    std::size_t n = 0;
    for (const auto &g : gates_)
        if (g.type != GateType::BARRIER)
            ++n;
    return n;
}

std::size_t
Circuit::multiQubitGateCount() const
{
    std::size_t n = 0;
    for (const auto &g : gates_)
        if (g.type != GateType::BARRIER && g.qubits.size() >= 2)
            ++n;
    return n;
}

std::map<std::string, std::size_t>
Circuit::gateHistogram() const
{
    std::map<std::string, std::size_t> hist;
    for (const auto &g : gates_)
        if (g.type != GateType::BARRIER)
            ++hist[gateName(g.type)];
    return hist;
}

std::string
Circuit::str() const
{
    std::ostringstream os;
    os << "circuit(" << numData_ << " data + " << (numQubits_ - numData_)
       << " ancilla qubits, " << gateCount() << " gates, depth " << depth()
       << ")\n";
    for (const auto &g : gates_) {
        os << "  " << gateName(g.type);
        for (int q : g.qubits)
            os << " q" << q;
        if (gateHasParam(g.type))
            os << " (" << g.param << ")";
        os << "\n";
    }
    return os.str();
}

} // namespace chocoq::circuit
