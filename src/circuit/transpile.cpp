#include "circuit/transpile.hpp"

#include <cmath>

#include "common/error.hpp"

namespace chocoq::circuit
{

namespace
{

constexpr double kPi = 3.14159265358979323846;

/** Ancilla pool shared by all multi-controlled lowerings of one circuit. */
class AncillaPool
{
  public:
    explicit AncillaPool(Circuit &out) : out_(out) {}

    /** Borrow @p k ancilla qubits (allocated on first use, then reused). */
    std::vector<int>
    borrow(int k)
    {
        while (static_cast<int>(pool_.size()) < k)
            pool_.push_back(out_.addAncilla());
        return {pool_.begin(), pool_.begin() + k};
    }

  private:
    Circuit &out_;
    std::vector<int> pool_;
};

/** Exact Toffoli in {H, T/Tdg(=RZ), CX} (global phase e^{i*pi/8}). */
void
emitCcx(Circuit &out, int a, int b, int t)
{
    auto rzq = [&](int q, double angle) { out.rz(q, angle); };
    out.h(t);
    out.cx(b, t);
    rzq(t, -kPi / 4);
    out.cx(a, t);
    rzq(t, kPi / 4);
    out.cx(b, t);
    rzq(t, -kPi / 4);
    out.cx(a, t);
    rzq(b, kPi / 4);
    rzq(t, kPi / 4);
    out.h(t);
    out.cx(a, b);
    rzq(a, kPi / 4);
    rzq(b, -kPi / 4);
    out.cx(a, b);
}

/** Exact controlled-phase via 2 CX and 3 RZ (global phase e^{i*phi/4}). */
void
emitCp(Circuit &out, int a, int b, double phi)
{
    out.rz(a, phi / 2);
    out.cx(a, b);
    out.rz(b, -phi / 2);
    out.cx(a, b);
    out.rz(b, phi / 2);
}

/** RZZ(theta) = exp(-i theta ZZ / 2) via the standard CX-RZ-CX sandwich. */
void
emitRzz(Circuit &out, int a, int b, double theta)
{
    out.cx(a, b);
    out.rz(b, theta);
    out.cx(a, b);
}

/**
 * Multi-controlled phase: phase e^{i phi} iff all qubits in @p qs are |1>.
 * k >= 3 uses a Toffoli V-chain accumulating the AND of the first k-1
 * qubits into ancillas, then a CP against the last qubit, then uncompute.
 */
void
emitMcp(Circuit &out, AncillaPool &pool, const std::vector<int> &qs,
        double phi)
{
    const int k = static_cast<int>(qs.size());
    CHOCOQ_ASSERT(k >= 1, "mcp without operands");
    if (k == 1) {
        out.rz(qs[0], phi); // P up to global phase.
        return;
    }
    if (k == 2) {
        emitCp(out, qs[0], qs[1], phi);
        return;
    }
    const std::vector<int> anc = pool.borrow(k - 2);
    // Compute chain.
    emitCcx(out, qs[0], qs[1], anc[0]);
    for (int i = 2; i < k - 1; ++i)
        emitCcx(out, anc[i - 2], qs[i], anc[i - 1]);
    // Phase.
    emitCp(out, anc[k - 3], qs[k - 1], phi);
    // Uncompute in reverse order.
    for (int i = k - 2; i >= 2; --i)
        emitCcx(out, anc[i - 2], qs[i], anc[i - 1]);
    emitCcx(out, qs[0], qs[1], anc[0]);
}

/** XY(beta) = exp(-i beta (XX + YY)) = RXX(2 beta) * RYY(2 beta). */
void
emitXy(Circuit &out, int a, int b, double beta)
{
    const double theta = 2.0 * beta;
    // RXX(theta): H-basis change around RZZ.
    out.h(a);
    out.h(b);
    emitRzz(out, a, b, theta);
    out.h(a);
    out.h(b);
    // RYY(theta): V = S H per qubit; circuit is V^dagger, RZZ, V where
    // V^dagger applies Sdg first then H (Sdg = RZ(-pi/2) up to phase).
    out.rz(a, -kPi / 2);
    out.rz(b, -kPi / 2);
    out.h(a);
    out.h(b);
    emitRzz(out, a, b, theta);
    out.h(a);
    out.h(b);
    out.rz(a, kPi / 2);
    out.rz(b, kPi / 2);
}

void
lowerGate(Circuit &out, AncillaPool &pool, const Gate &g,
          const TranspileOptions &opts)
{
    switch (g.type) {
      case GateType::H:
      case GateType::X:
      case GateType::RZ:
      case GateType::CX:
        out.add(g);
        return;
      case GateType::Y:
        // Y = i X Z: up to global phase, Z then X.
        out.rz(g.qubits[0], kPi);
        out.x(g.qubits[0]);
        return;
      case GateType::Z:
        out.rz(g.qubits[0], kPi);
        return;
      case GateType::S:
        out.rz(g.qubits[0], kPi / 2);
        return;
      case GateType::Sdg:
        out.rz(g.qubits[0], -kPi / 2);
        return;
      case GateType::T:
        out.rz(g.qubits[0], kPi / 4);
        return;
      case GateType::Tdg:
        out.rz(g.qubits[0], -kPi / 4);
        return;
      case GateType::RX:
        // RX = H RZ H.
        out.h(g.qubits[0]);
        out.rz(g.qubits[0], g.param);
        out.h(g.qubits[0]);
        return;
      case GateType::RY:
        // RY = S (H RZ H) Sdg; circuit order applies Sdg first.
        out.rz(g.qubits[0], -kPi / 2);
        out.h(g.qubits[0]);
        out.rz(g.qubits[0], g.param);
        out.h(g.qubits[0]);
        out.rz(g.qubits[0], kPi / 2);
        return;
      case GateType::P:
        out.rz(g.qubits[0], g.param);
        return;
      case GateType::CZ:
        if (opts.nativeCz) {
            out.add(g);
        } else {
            out.h(g.qubits[1]);
            out.cx(g.qubits[0], g.qubits[1]);
            out.h(g.qubits[1]);
        }
        return;
      case GateType::CP:
        emitCp(out, g.qubits[0], g.qubits[1], g.param);
        return;
      case GateType::SWAP:
        out.cx(g.qubits[0], g.qubits[1]);
        out.cx(g.qubits[1], g.qubits[0]);
        out.cx(g.qubits[0], g.qubits[1]);
        return;
      case GateType::CCX:
        emitCcx(out, g.qubits[0], g.qubits[1], g.qubits[2]);
        return;
      case GateType::RZZ:
        emitRzz(out, g.qubits[0], g.qubits[1], g.param);
        return;
      case GateType::XY:
        emitXy(out, g.qubits[0], g.qubits[1], g.param);
        return;
      case GateType::MCP:
        emitMcp(out, pool, g.qubits, g.param);
        return;
      case GateType::MCX: {
        // MCX = H(target) . MCP(pi) over all operands . H(target).
        const int t = g.qubits.back();
        out.h(t);
        emitMcp(out, pool, g.qubits, kPi);
        out.h(t);
        return;
      }
      case GateType::BARRIER:
        out.barrier();
        return;
    }
    CHOCOQ_ASSERT(false, "unhandled gate in transpile");
}

} // namespace

Circuit
transpile(const Circuit &input, const TranspileOptions &opts)
{
    Circuit out(input.numData());
    // Pre-extend the register to cover ancillas already present upstream.
    out.reserveAncillas(input.numQubits() - input.numData());
    AncillaPool pool(out);
    for (const auto &g : input.gates())
        lowerGate(out, pool, g, opts);
    return out;
}

bool
isLowered(const Circuit &c, const TranspileOptions &opts)
{
    for (const auto &g : c.gates()) {
        switch (g.type) {
          case GateType::H:
          case GateType::X:
          case GateType::RZ:
          case GateType::CX:
          case GateType::BARRIER:
            continue;
          case GateType::CZ:
            if (opts.nativeCz)
                continue;
            return false;
          default:
            return false;
        }
    }
    return true;
}

} // namespace chocoq::circuit
