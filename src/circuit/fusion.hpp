/**
 * @file
 * Gate-fusion pass: merge runs of adjacent diagonal gates into single
 * FusedDiagonal ops.
 *
 * Every diagonal gate in the IR (Z, S, T, P, RZ, CZ, CP, MCP, RZZ and
 * their adjoints) is, up to a global phase, a product of mask-phase
 * factors e^{i alpha} applied to the basis states whose index has all
 * bits of a mask set. A run of such gates therefore collapses into one
 * term list that the simulator applies with a single sweep over the
 * state (sim::StateVector::applyMaskPhaseProduct) instead of one sweep
 * per gate. Deep ansatz layers are dominated by exactly these gates —
 * the objective phase of every QAOA design lowers to P/CP/MCP/RZ
 * chains — so fusion trades k memory passes for one pass plus k cheap
 * mask tests per amplitude, a direct bandwidth win in the roofline
 * sense.
 *
 * The pass is simulation-side only: transpile() still lowers to basic
 * gates for hardware-facing artifacts, and noisy trajectory execution
 * keeps per-gate granularity so error channels attach to individual
 * gates. See docs/simulator.md for the cost model and equivalence
 * contract (fused execution is equivalent within floating-point
 * reassociation, ~1e-15 per gate; the functional solver path has a
 * separate bit-identical fusion, see core/layer_fusion.hpp).
 */

#ifndef CHOCOQ_CIRCUIT_FUSION_HPP
#define CHOCOQ_CIRCUIT_FUSION_HPP

#include <cstddef>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/bitops.hpp"

namespace chocoq::circuit
{

/** One factor of a fused diagonal: multiply amplitudes of basis states
 * with (idx & mask) == mask by e^{i angle}. */
struct MaskPhase
{
    Basis mask = 0;
    double angle = 0.0;
};

/** A run of diagonal gates collapsed into one sweep. */
struct FusedDiagonal
{
    /** Mask-phase factors in source-gate order. */
    std::vector<MaskPhase> terms;
    /** Accumulated global phase angle (RZ/RZZ contribute e^{-i theta/2}). */
    double globalAngle = 0.0;
    /** Number of source gates folded into this op. */
    std::size_t gateCount = 0;
};

/** One step of a fused circuit: a passthrough gate or a diagonal run. */
struct FusedOp
{
    /** True when this op is a fused diagonal block. */
    bool diagonal = false;
    /** Source gate (valid when !diagonal; barrier = no unitary action). */
    Gate gate{GateType::BARRIER, {}, 0.0};
    /** Fused diagonal block (valid when diagonal). */
    FusedDiagonal diag;
};

/** Fusion heuristics. */
struct FusionOptions
{
    /**
     * Minimum estimated unfused traffic, in units of full-state sweeps
     * (sum over the run's gates of the fraction of amplitudes their
     * dedicated kernel touches), before a run is fused. The fused sweep
     * costs one full pass of ceil(n/8) table multiplies per amplitude
     * (~2-4x one dedicated full-sweep kernel), so short cheap runs —
     * two CZ gates touch half a state in total — stay on the per-gate
     * kernels. Measured breakeven on the bench box sits between 2 and 4
     * full-sweep units; the default is the conservative end so fusion
     * never loses more than it wins on borderline runs.
     */
    double minSweepFraction = 2.0;
    /** Never fuse runs shorter than this many gates. */
    std::size_t minGates = 2;
};

/** Result of the fusion pass. */
struct FusedCircuit
{
    int numQubits = 0;
    std::vector<FusedOp> ops;
    /** Non-barrier gates in the source circuit. */
    std::size_t sourceGates = 0;
    /** Source gates absorbed into FusedDiagonal blocks. */
    std::size_t fusedGates = 0;
    /** Number of FusedDiagonal blocks emitted. */
    std::size_t diagonalBlocks = 0;
};

/** True for gate types the pass can fold into a FusedDiagonal. */
bool isDiagonalGate(GateType type);

/**
 * Decompose one diagonal gate into mask-phase factors, appending to
 * @p out (terms plus global angle). Returns false (and leaves @p out
 * untouched) when the gate is not diagonal.
 */
bool appendDiagonalFactors(const Gate &g, FusedDiagonal &out);

/**
 * Run the fusion pass: maximal runs of adjacent diagonal gates that
 * clear the FusionOptions cost model become FusedDiagonal ops; all
 * other gates (and runs below the threshold) pass through unchanged, in
 * order. Barriers pass through and end the current run.
 */
FusedCircuit fuseDiagonals(const Circuit &c, const FusionOptions &opts = {});

} // namespace chocoq::circuit

#endif // CHOCOQ_CIRCUIT_FUSION_HPP
