/**
 * @file
 * Derivative-free optimizer interface.
 *
 * The paper updates QAOA parameters with constrained optimization by
 * linear approximation (COBYLA, [39]) for every design. This module
 * provides a from-scratch COBYLA-style linear-approximation trust-region
 * method plus two widely used alternatives (Nelder-Mead, SPSA) for the
 * ablation and robustness experiments.
 */

#ifndef CHOCOQ_OPTIMIZE_OPTIMIZER_HPP
#define CHOCOQ_OPTIMIZE_OPTIMIZER_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace chocoq::optimize
{

/** Objective callback: parameters -> scalar cost (to minimize). */
using ObjectiveFn = std::function<double(const std::vector<double> &)>;

/** Per-iteration trace entry. */
struct TracePoint
{
    int iteration = 0;
    double best = 0.0;
};

/** Optimization outcome. */
struct OptResult
{
    std::vector<double> best;
    double bestValue = 0.0;
    /** Number of objective evaluations consumed. */
    int evaluations = 0;
    /** Number of optimizer iterations performed. */
    int iterations = 0;
    /** Best-so-far value after each iteration (convergence curves). */
    std::vector<TracePoint> trace;
};

/** Common options. */
struct OptOptions
{
    int maxIterations = 150;
    /** Initial step / trust-region radius. */
    double initialStep = 0.5;
    /** Convergence radius: stop when the step shrinks below this. */
    double tolerance = 1e-4;
    /** Seed for stochastic methods (SPSA). */
    std::uint64_t seed = 1;
    /**
     * Optional cooperative-cancellation hook, invoked at the top of
     * every optimizer iteration (before that iteration's evaluations).
     * It may throw to abort the run; the exception propagates out of
     * minimize() with the incumbent state discarded. When it returns
     * normally it must be side-effect-free with respect to the
     * optimization: calling it never changes iterates or random
     * streams, so results are bit-identical with or without a hook
     * installed (tested property).
     */
    std::function<void()> checkpoint;
};

/**
 * Resumable optimizer execution (step machine). A run exposes the next
 * parameter point it needs evaluated; the driver computes f(pending())
 * however it likes — sequentially, or batched across several racing
 * runs — and feeds the value back through supply(), which advances the
 * internal state machine to the next point or to completion.
 *
 * The machine performs exactly the computation of the corresponding
 * sequential algorithm in exactly the same order (iterate updates,
 * random draws, trace pushes, checkpoint invocations at iteration
 * tops), so driving a run one value at a time is bit-identical to the
 * pre-machine minimize() loops — and a lockstep driver interleaving
 * several runs leaves each run's arithmetic untouched (tested
 * property). OptOptions::checkpoint fires inside supply() at iteration
 * boundaries and may throw; the run is then unusable except for
 * result()/halt().
 */
class OptimizerRun
{
  public:
    virtual ~OptimizerRun() = default;

    /** True once the run has produced its final result. */
    virtual bool finished() const = 0;

    /** Parameter point awaiting evaluation (valid while !finished();
     * invalidated by the next supply call). */
    virtual const std::vector<double> &pending() const = 0;

    /** Feed back f(pending()); advances to the next point or finishes. */
    virtual void supply(double value) = 0;

    /**
     * Stop early (racing-start elimination): finalizes result() from
     * the incumbent state — best point seen so far, partial
     * evaluation/iteration totals — and marks the run finished.
     * Meaningful once at least one iteration completed.
     */
    virtual void halt() = 0;

    /** Accumulated result; final once finished(). */
    virtual const OptResult &result() const = 0;
};

/** Abstract derivative-free minimizer. */
class Optimizer
{
  public:
    virtual ~Optimizer() = default;

    /** Algorithm name for reports. */
    virtual std::string name() const = 0;

    /** Begin a resumable run from @p x0 (performs no evaluations; the
     * first pending() is the initial point the algorithm probes). */
    virtual std::unique_ptr<OptimizerRun>
    start(const std::vector<double> &x0, const OptOptions &opts) const = 0;

    /** Minimize @p f starting from @p x0: drives start() to completion
     * with one synchronous evaluation per pending point. */
    OptResult minimize(const ObjectiveFn &f, const std::vector<double> &x0,
                       const OptOptions &opts) const;
};

/**
 * Factory by name: "cobyla", "nelder-mead", or "spsa".
 *
 * @param seed Explicit construction seed for stochastic methods, so a
 * caller running many jobs concurrently gets bit-identical results for
 * identical (job, seed) pairs regardless of scheduling order. With 0
 * (the default for direct construction) stochastic streams draw from
 * OptOptions::seed alone; the engine always passes its
 * EngineOptions::seed, so engine-driven SPSA streams are determined by
 * (engine seed, options seed) jointly. Deterministic methods ignore it
 * either way.
 */
std::unique_ptr<Optimizer> makeOptimizer(const std::string &name,
                                         std::uint64_t seed = 0);

} // namespace chocoq::optimize

#endif // CHOCOQ_OPTIMIZE_OPTIMIZER_HPP
