/**
 * @file
 * Derivative-free optimizer interface.
 *
 * The paper updates QAOA parameters with constrained optimization by
 * linear approximation (COBYLA, [39]) for every design. This module
 * provides a from-scratch COBYLA-style linear-approximation trust-region
 * method plus two widely used alternatives (Nelder-Mead, SPSA) for the
 * ablation and robustness experiments.
 */

#ifndef CHOCOQ_OPTIMIZE_OPTIMIZER_HPP
#define CHOCOQ_OPTIMIZE_OPTIMIZER_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace chocoq::optimize
{

/** Objective callback: parameters -> scalar cost (to minimize). */
using ObjectiveFn = std::function<double(const std::vector<double> &)>;

/** Per-iteration trace entry. */
struct TracePoint
{
    int iteration = 0;
    double best = 0.0;
};

/** Optimization outcome. */
struct OptResult
{
    std::vector<double> best;
    double bestValue = 0.0;
    /** Number of objective evaluations consumed. */
    int evaluations = 0;
    /** Number of optimizer iterations performed. */
    int iterations = 0;
    /** Best-so-far value after each iteration (convergence curves). */
    std::vector<TracePoint> trace;
};

/** Common options. */
struct OptOptions
{
    int maxIterations = 150;
    /** Initial step / trust-region radius. */
    double initialStep = 0.5;
    /** Convergence radius: stop when the step shrinks below this. */
    double tolerance = 1e-4;
    /** Seed for stochastic methods (SPSA). */
    std::uint64_t seed = 1;
    /**
     * Optional cooperative-cancellation hook, invoked at the top of
     * every optimizer iteration (before that iteration's evaluations).
     * It may throw to abort the run; the exception propagates out of
     * minimize() with the incumbent state discarded. When it returns
     * normally it must be side-effect-free with respect to the
     * optimization: calling it never changes iterates or random
     * streams, so results are bit-identical with or without a hook
     * installed (tested property).
     */
    std::function<void()> checkpoint;
};

/** Abstract derivative-free minimizer. */
class Optimizer
{
  public:
    virtual ~Optimizer() = default;

    /** Algorithm name for reports. */
    virtual std::string name() const = 0;

    /** Minimize @p f starting from @p x0. */
    virtual OptResult minimize(const ObjectiveFn &f,
                               const std::vector<double> &x0,
                               const OptOptions &opts) const = 0;
};

/**
 * Factory by name: "cobyla", "nelder-mead", or "spsa".
 *
 * @param seed Explicit construction seed for stochastic methods, so a
 * caller running many jobs concurrently gets bit-identical results for
 * identical (job, seed) pairs regardless of scheduling order. With 0
 * (the default for direct construction) stochastic streams draw from
 * OptOptions::seed alone; the engine always passes its
 * EngineOptions::seed, so engine-driven SPSA streams are determined by
 * (engine seed, options seed) jointly. Deterministic methods ignore it
 * either way.
 */
std::unique_ptr<Optimizer> makeOptimizer(const std::string &name,
                                         std::uint64_t seed = 0);

} // namespace chocoq::optimize

#endif // CHOCOQ_OPTIMIZE_OPTIMIZER_HPP
