#include "optimize/neldermead.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace chocoq::optimize
{

namespace
{

constexpr double kAlpha = 1.0;  // reflection
constexpr double kGamma = 2.0;  // expansion
constexpr double kRho = 0.5;    // contraction
constexpr double kSigma = 0.5;  // shrink

/**
 * Nelder-Mead step machine. Stage flow:
 *   InitVertex (evaluate the m+1 simplex vertices in index order) ->
 *   per iteration: checkpoint, sort, trace, terminate on spread, then
 *   Reflect -> (accept | Expand | Contract -> (accept | ShrinkVertex,
 *   evaluating the shrunk non-best vertices in index order)) -> next
 *   iteration or Done.
 * Evaluation order, vertex updates, and trace pushes are verbatim the
 * pre-machine sequential loop (bit-identical when driven one value at
 * a time).
 */
class NelderMeadRun final : public OptimizerRun
{
  public:
    NelderMeadRun(const std::vector<double> &x0, const OptOptions &opts)
        : opts_(opts), m_(x0.size()), verts_(m_ + 1, x0),
          vals_(m_ + 1, 0.0), order_(m_ + 1), centroid_(m_)
    {
        CHOCOQ_ASSERT(m_ >= 1, "nelder-mead needs at least one parameter");
        for (std::size_t i = 0; i < m_; ++i)
            verts_[i + 1][i] += opts.initialStep;
    }

    bool finished() const override { return stage_ == Stage::Done; }

    const std::vector<double> &
    pending() const override
    {
        CHOCOQ_ASSERT(stage_ != Stage::Done, "pending() on finished run");
        switch (stage_) {
        case Stage::Reflect:
            return refl_;
        case Stage::Expand:
            return expd_;
        case Stage::Contract:
            return contr_;
        default:
            return verts_[idx_];
        }
    }

    void
    supply(double value) override
    {
        CHOCOQ_ASSERT(stage_ != Stage::Done, "supply() on finished run");
        ++out_.evaluations;
        switch (stage_) {
        case Stage::InitVertex:
            vals_[idx_] = value;
            if (++idx_ > m_)
                startIteration();
            break;
        case Stage::Reflect:
            refl_val_ = value;
            if (refl_val_ < vals_[best_]) {
                blend(kGamma, expd_);
                stage_ = Stage::Expand;
            } else if (refl_val_ < vals_[second_worst_]) {
                verts_[worst_] = std::move(refl_);
                vals_[worst_] = refl_val_;
                startIteration();
            } else {
                blend(-kRho, contr_);
                stage_ = Stage::Contract;
            }
            break;
        case Stage::Expand:
            if (value < refl_val_) {
                verts_[worst_] = std::move(expd_);
                vals_[worst_] = value;
            } else {
                verts_[worst_] = std::move(refl_);
                vals_[worst_] = refl_val_;
            }
            startIteration();
            break;
        case Stage::Contract:
            if (value < vals_[worst_]) {
                verts_[worst_] = std::move(contr_);
                vals_[worst_] = value;
                startIteration();
            } else {
                beginShrink();
            }
            break;
        case Stage::ShrinkVertex:
            vals_[idx_] = value;
            advanceShrink();
            break;
        case Stage::Done:
            break;
        }
    }

    void
    halt() override
    {
        if (stage_ == Stage::Done)
            return;
        std::size_t limit = vals_.size();
        if (stage_ == Stage::InitVertex)
            limit = std::max<std::size_t>(idx_, 1);
        const std::size_t bi = static_cast<std::size_t>(
            std::min_element(vals_.begin(), vals_.begin() + limit)
            - vals_.begin());
        out_.best = verts_[bi];
        out_.bestValue = vals_[bi];
        stage_ = Stage::Done;
    }

    const OptResult &result() const override { return out_; }

  private:
    enum class Stage
    {
        InitVertex,
        Reflect,
        Expand,
        Contract,
        ShrinkVertex,
        Done
    };

    /** centroid + coeff * (centroid - worst vertex) -> @p x. */
    void
    blend(double coeff, std::vector<double> &x)
    {
        x.resize(m_);
        for (std::size_t c = 0; c < m_; ++c)
            x[c] = centroid_[c] + coeff * (centroid_[c] - verts_[worst_][c]);
    }

    void
    startIteration()
    {
        if (out_.iterations >= opts_.maxIterations) {
            finish();
            return;
        }
        if (opts_.checkpoint)
            opts_.checkpoint();
        ++out_.iterations;
        std::iota(order_.begin(), order_.end(), 0);
        std::sort(order_.begin(), order_.end(),
                  [&](std::size_t a, std::size_t b) {
                      return vals_[a] < vals_[b];
                  });
        best_ = order_.front();
        worst_ = order_.back();
        second_worst_ = order_[m_ - 1];

        // Termination on simplex size.
        double spread = 0.0;
        for (std::size_t c = 0; c < m_; ++c)
            spread = std::max(
                spread, std::abs(verts_[best_][c] - verts_[worst_][c]));
        out_.trace.push_back({out_.iterations, vals_[best_]});
        if (spread < opts_.tolerance) {
            finish();
            return;
        }

        // Centroid of all but the worst.
        std::fill(centroid_.begin(), centroid_.end(), 0.0);
        for (std::size_t i = 0; i <= m_; ++i) {
            if (i == worst_)
                continue;
            for (std::size_t c = 0; c < m_; ++c)
                centroid_[c] += verts_[i][c];
        }
        for (double &v : centroid_)
            v /= static_cast<double>(m_);

        blend(kAlpha, refl_);
        stage_ = Stage::Reflect;
    }

    void
    beginShrink()
    {
        // Shrink towards the best vertex: the vertex updates are
        // mutually independent, so applying them all up front and then
        // evaluating in ascending index order (skipping the best)
        // reproduces the sequential update-then-evaluate loop exactly.
        for (std::size_t i = 0; i <= m_; ++i) {
            if (i == best_)
                continue;
            for (std::size_t c = 0; c < m_; ++c)
                verts_[i][c] = verts_[best_][c]
                               + kSigma * (verts_[i][c] - verts_[best_][c]);
        }
        idx_ = best_ == 0 ? 1 : 0;
        stage_ = Stage::ShrinkVertex;
    }

    void
    advanceShrink()
    {
        ++idx_;
        if (idx_ == best_)
            ++idx_;
        if (idx_ > m_)
            startIteration();
    }

    void
    finish()
    {
        const std::size_t bi = static_cast<std::size_t>(
            std::min_element(vals_.begin(), vals_.end()) - vals_.begin());
        out_.best = verts_[bi];
        out_.bestValue = vals_[bi];
        stage_ = Stage::Done;
    }

    const OptOptions opts_;
    const std::size_t m_;
    std::vector<std::vector<double>> verts_;
    std::vector<double> vals_;
    std::vector<std::size_t> order_;
    std::vector<double> centroid_;
    std::vector<double> refl_, expd_, contr_;
    double refl_val_ = 0.0;
    std::size_t idx_ = 0;
    std::size_t best_ = 0, worst_ = 0, second_worst_ = 0;
    Stage stage_ = Stage::InitVertex;
    OptResult out_;
};

} // namespace

std::unique_ptr<OptimizerRun>
NelderMead::start(const std::vector<double> &x0, const OptOptions &opts) const
{
    return std::make_unique<NelderMeadRun>(x0, opts);
}

} // namespace chocoq::optimize
