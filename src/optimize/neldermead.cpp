#include "optimize/neldermead.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace chocoq::optimize
{

OptResult
NelderMead::minimize(const ObjectiveFn &f, const std::vector<double> &x0,
                     const OptOptions &opts) const
{
    const std::size_t m = x0.size();
    CHOCOQ_ASSERT(m >= 1, "nelder-mead needs at least one parameter");
    constexpr double kAlpha = 1.0;  // reflection
    constexpr double kGamma = 2.0;  // expansion
    constexpr double kRho = 0.5;    // contraction
    constexpr double kSigma = 0.5;  // shrink

    OptResult out;
    auto eval = [&](const std::vector<double> &x) {
        ++out.evaluations;
        return f(x);
    };

    std::vector<std::vector<double>> verts(m + 1, x0);
    std::vector<double> vals(m + 1);
    for (std::size_t i = 0; i < m; ++i)
        verts[i + 1][i] += opts.initialStep;
    for (std::size_t i = 0; i <= m; ++i)
        vals[i] = eval(verts[i]);

    std::vector<std::size_t> order(m + 1);
    for (int iter = 0; iter < opts.maxIterations; ++iter) {
        if (opts.checkpoint)
            opts.checkpoint();
        ++out.iterations;
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return vals[a] < vals[b];
                  });
        const std::size_t best = order.front();
        const std::size_t worst = order.back();
        const std::size_t second_worst = order[m - 1];

        // Termination on simplex size.
        double spread = 0.0;
        for (std::size_t c = 0; c < m; ++c)
            spread = std::max(spread,
                              std::abs(verts[best][c] - verts[worst][c]));
        out.trace.push_back({out.iterations, vals[best]});
        if (spread < opts.tolerance)
            break;

        // Centroid of all but the worst.
        std::vector<double> centroid(m, 0.0);
        for (std::size_t i = 0; i <= m; ++i) {
            if (i == worst)
                continue;
            for (std::size_t c = 0; c < m; ++c)
                centroid[c] += verts[i][c];
        }
        for (double &v : centroid)
            v /= static_cast<double>(m);

        auto blend = [&](double coeff) {
            std::vector<double> x(m);
            for (std::size_t c = 0; c < m; ++c)
                x[c] = centroid[c] + coeff * (centroid[c] - verts[worst][c]);
            return x;
        };

        std::vector<double> refl = blend(kAlpha);
        const double refl_val = eval(refl);
        if (refl_val < vals[best]) {
            std::vector<double> expd = blend(kGamma);
            const double expd_val = eval(expd);
            if (expd_val < refl_val) {
                verts[worst] = std::move(expd);
                vals[worst] = expd_val;
            } else {
                verts[worst] = std::move(refl);
                vals[worst] = refl_val;
            }
            continue;
        }
        if (refl_val < vals[second_worst]) {
            verts[worst] = std::move(refl);
            vals[worst] = refl_val;
            continue;
        }
        std::vector<double> contr = blend(-kRho);
        const double contr_val = eval(contr);
        if (contr_val < vals[worst]) {
            verts[worst] = std::move(contr);
            vals[worst] = contr_val;
            continue;
        }
        // Shrink towards the best vertex.
        for (std::size_t i = 0; i <= m; ++i) {
            if (i == best)
                continue;
            for (std::size_t c = 0; c < m; ++c)
                verts[i][c] = verts[best][c]
                              + kSigma * (verts[i][c] - verts[best][c]);
            vals[i] = eval(verts[i]);
        }
    }

    const std::size_t bi = static_cast<std::size_t>(
        std::min_element(vals.begin(), vals.end()) - vals.begin());
    out.best = verts[bi];
    out.bestValue = vals[bi];
    return out;
}

} // namespace chocoq::optimize
