/**
 * @file
 * COBYLA-style linear-approximation trust-region minimizer.
 *
 * Powell's COBYLA [39] interpolates the objective linearly on a simplex of
 * m+1 points and moves within a shrinking trust region. This is a
 * from-scratch implementation of that core mechanism for unconstrained
 * parameter spaces (QAOA angles), which is how the paper uses it.
 */

#ifndef CHOCOQ_OPTIMIZE_COBYLA_HPP
#define CHOCOQ_OPTIMIZE_COBYLA_HPP

#include "optimize/optimizer.hpp"

namespace chocoq::optimize
{

/** Linear-approximation trust-region method (Powell-style). */
class Cobyla : public Optimizer
{
  public:
    std::string name() const override { return "cobyla"; }

    std::unique_ptr<OptimizerRun> start(const std::vector<double> &x0,
                                        const OptOptions &opts) const override;
};

} // namespace chocoq::optimize

#endif // CHOCOQ_OPTIMIZE_COBYLA_HPP
