#include "optimize/cobyla.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace chocoq::optimize
{

namespace
{

/** Solve A x = b (dense, small) with partial pivoting; returns false when
 * the system is numerically singular. */
bool
solveLinear(std::vector<std::vector<double>> a, std::vector<double> b,
            std::vector<double> &x)
{
    const std::size_t m = b.size();
    for (std::size_t col = 0; col < m; ++col) {
        std::size_t piv = col;
        for (std::size_t r = col + 1; r < m; ++r)
            if (std::abs(a[r][col]) > std::abs(a[piv][col]))
                piv = r;
        if (std::abs(a[piv][col]) < 1e-12)
            return false;
        std::swap(a[piv], a[col]);
        std::swap(b[piv], b[col]);
        for (std::size_t r = col + 1; r < m; ++r) {
            const double factor = a[r][col] / a[col][col];
            if (factor == 0.0)
                continue;
            for (std::size_t c = col; c < m; ++c)
                a[r][c] -= factor * a[col][c];
            b[r] -= factor * b[col];
        }
    }
    x.assign(m, 0.0);
    for (std::size_t ri = m; ri-- > 0;) {
        double acc = b[ri];
        for (std::size_t c = ri + 1; c < m; ++c)
            acc -= a[ri][c] * x[c];
        x[ri] = acc / a[ri][ri];
    }
    return true;
}

} // namespace

OptResult
Cobyla::minimize(const ObjectiveFn &f, const std::vector<double> &x0,
                 const OptOptions &opts) const
{
    const std::size_t m = x0.size();
    CHOCOQ_ASSERT(m >= 1, "cobyla needs at least one parameter");

    OptResult out;
    double rho = opts.initialStep;

    // Simplex: vertex 0 plus axis offsets, all with cached values.
    std::vector<std::vector<double>> verts(m + 1, x0);
    std::vector<double> vals(m + 1, 0.0);
    auto eval = [&](const std::vector<double> &x) {
        ++out.evaluations;
        return f(x);
    };
    vals[0] = eval(verts[0]);
    for (std::size_t i = 0; i < m; ++i) {
        verts[i + 1][i] += rho;
        vals[i + 1] = eval(verts[i + 1]);
    }

    auto best_index = [&]() {
        return static_cast<std::size_t>(
            std::min_element(vals.begin(), vals.end()) - vals.begin());
    };
    auto worst_index = [&]() {
        return static_cast<std::size_t>(
            std::max_element(vals.begin(), vals.end()) - vals.begin());
    };

    auto rebuild = [&](std::size_t around) {
        const std::vector<double> center = verts[around];
        const double center_val = vals[around];
        verts.assign(m + 1, center);
        vals.assign(m + 1, center_val);
        for (std::size_t i = 0; i < m; ++i) {
            verts[i + 1][i] += rho;
            vals[i + 1] = eval(verts[i + 1]);
        }
    };

    for (int iter = 0; iter < opts.maxIterations; ++iter) {
        if (opts.checkpoint)
            opts.checkpoint();
        ++out.iterations;
        const std::size_t bi = best_index();

        // Linear model around the best vertex: (v_j - v_b) . g = f_j - f_b.
        std::vector<std::vector<double>> a;
        std::vector<double> b;
        for (std::size_t j = 0; j <= m; ++j) {
            if (j == bi)
                continue;
            std::vector<double> row(m);
            for (std::size_t c = 0; c < m; ++c)
                row[c] = verts[j][c] - verts[bi][c];
            a.push_back(std::move(row));
            b.push_back(vals[j] - vals[bi]);
        }
        std::vector<double> g;
        if (!solveLinear(std::move(a), std::move(b), g)) {
            // Degenerate geometry: re-anchor an axis simplex.
            rebuild(bi);
            out.trace.push_back({out.iterations, vals[best_index()]});
            continue;
        }
        double gn = 0.0;
        for (double v : g)
            gn += v * v;
        gn = std::sqrt(gn);
        if (gn < 1e-14) {
            rho *= 0.5;
            if (rho < opts.tolerance)
                break;
            rebuild(bi);
            out.trace.push_back({out.iterations, vals[best_index()]});
            continue;
        }

        // Trust-region step against the model gradient.
        std::vector<double> cand = verts[bi];
        for (std::size_t c = 0; c < m; ++c)
            cand[c] -= rho * g[c] / gn;
        const double cand_val = eval(cand);

        const std::size_t wi = worst_index();
        if (cand_val < vals[bi]) {
            // Good step: replace the worst vertex and keep the radius.
            verts[wi] = std::move(cand);
            vals[wi] = cand_val;
        } else if (cand_val < vals[wi]) {
            // Mild progress: still improves the simplex.
            verts[wi] = std::move(cand);
            vals[wi] = cand_val;
            rho *= 0.7;
        } else {
            rho *= 0.5;
        }
        out.trace.push_back({out.iterations, vals[best_index()]});
        if (rho < opts.tolerance)
            break;
    }

    const std::size_t bi = best_index();
    out.best = verts[bi];
    out.bestValue = vals[bi];
    return out;
}

} // namespace chocoq::optimize
