#include "optimize/cobyla.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace chocoq::optimize
{

namespace
{

/** Solve A x = b (dense, small) with partial pivoting; returns false when
 * the system is numerically singular. */
bool
solveLinear(std::vector<std::vector<double>> a, std::vector<double> b,
            std::vector<double> &x)
{
    const std::size_t m = b.size();
    for (std::size_t col = 0; col < m; ++col) {
        std::size_t piv = col;
        for (std::size_t r = col + 1; r < m; ++r)
            if (std::abs(a[r][col]) > std::abs(a[piv][col]))
                piv = r;
        if (std::abs(a[piv][col]) < 1e-12)
            return false;
        std::swap(a[piv], a[col]);
        std::swap(b[piv], b[col]);
        for (std::size_t r = col + 1; r < m; ++r) {
            const double factor = a[r][col] / a[col][col];
            if (factor == 0.0)
                continue;
            for (std::size_t c = col; c < m; ++c)
                a[r][c] -= factor * a[col][c];
            b[r] -= factor * b[col];
        }
    }
    x.assign(m, 0.0);
    for (std::size_t ri = m; ri-- > 0;) {
        double acc = b[ri];
        for (std::size_t c = ri + 1; c < m; ++c)
            acc -= a[ri][c] * x[c];
        x[ri] = acc / a[ri][ri];
    }
    return true;
}

/**
 * COBYLA step machine. Stage flow:
 *   InitVertex (evaluate vertex 0 then the m axis vertices) -> per
 *   iteration: checkpoint, fit the linear model around the best vertex;
 *   degenerate geometry or tiny gradient re-anchors an axis simplex
 *   (RebuildVertex evaluates its m fresh vertices), otherwise Candidate
 *   evaluates the trust-region step and the simplex/radius update runs
 *   -> next iteration or Done.
 * Evaluation order, radius updates, and trace pushes are verbatim the
 * pre-machine sequential loop (bit-identical when driven one value at
 * a time).
 */
class CobylaRun final : public OptimizerRun
{
  public:
    CobylaRun(const std::vector<double> &x0, const OptOptions &opts)
        : opts_(opts), m_(x0.size()), rho_(opts.initialStep),
          verts_(m_ + 1, x0), vals_(m_ + 1, 0.0)
    {
        CHOCOQ_ASSERT(m_ >= 1, "cobyla needs at least one parameter");
        // Simplex: vertex 0 plus axis offsets.
        for (std::size_t i = 0; i < m_; ++i)
            verts_[i + 1][i] += rho_;
    }

    bool finished() const override { return stage_ == Stage::Done; }

    const std::vector<double> &
    pending() const override
    {
        CHOCOQ_ASSERT(stage_ != Stage::Done, "pending() on finished run");
        if (stage_ == Stage::Candidate)
            return cand_;
        return verts_[idx_];
    }

    void
    supply(double value) override
    {
        CHOCOQ_ASSERT(stage_ != Stage::Done, "supply() on finished run");
        ++out_.evaluations;
        switch (stage_) {
        case Stage::InitVertex:
            vals_[idx_] = value;
            if (++idx_ > m_)
                startIteration();
            break;
        case Stage::RebuildVertex:
            vals_[idx_] = value;
            if (++idx_ > m_) {
                out_.trace.push_back({out_.iterations, vals_[bestIndex()]});
                startIteration();
            }
            break;
        case Stage::Candidate: {
            const double cand_val = value;
            const std::size_t wi = worstIndex();
            if (cand_val < vals_[bi_]) {
                // Good step: replace the worst vertex and keep the radius.
                verts_[wi] = std::move(cand_);
                vals_[wi] = cand_val;
            } else if (cand_val < vals_[wi]) {
                // Mild progress: still improves the simplex.
                verts_[wi] = std::move(cand_);
                vals_[wi] = cand_val;
                rho_ *= 0.7;
            } else {
                rho_ *= 0.5;
            }
            out_.trace.push_back({out_.iterations, vals_[bestIndex()]});
            if (rho_ < opts_.tolerance)
                finish();
            else
                startIteration();
            break;
        }
        case Stage::Done:
            break;
        }
    }

    void
    halt() override
    {
        if (stage_ == Stage::Done)
            return;
        // Best over the vertices that hold evaluated (or inherited
        // rebuild-center) values.
        std::size_t limit = vals_.size();
        if (stage_ == Stage::InitVertex)
            limit = std::max<std::size_t>(idx_, 1);
        const std::size_t bi = static_cast<std::size_t>(
            std::min_element(vals_.begin(), vals_.begin() + limit)
            - vals_.begin());
        out_.best = verts_[bi];
        out_.bestValue = vals_[bi];
        stage_ = Stage::Done;
    }

    const OptResult &result() const override { return out_; }

  private:
    enum class Stage { InitVertex, Candidate, RebuildVertex, Done };

    std::size_t
    bestIndex() const
    {
        return static_cast<std::size_t>(
            std::min_element(vals_.begin(), vals_.end()) - vals_.begin());
    }

    std::size_t
    worstIndex() const
    {
        return static_cast<std::size_t>(
            std::max_element(vals_.begin(), vals_.end()) - vals_.begin());
    }

    void
    startIteration()
    {
        if (out_.iterations >= opts_.maxIterations) {
            finish();
            return;
        }
        if (opts_.checkpoint)
            opts_.checkpoint();
        ++out_.iterations;
        bi_ = bestIndex();

        // Linear model around the best vertex: (v_j - v_b) . g = f_j - f_b.
        std::vector<std::vector<double>> a;
        std::vector<double> b;
        for (std::size_t j = 0; j <= m_; ++j) {
            if (j == bi_)
                continue;
            std::vector<double> row(m_);
            for (std::size_t c = 0; c < m_; ++c)
                row[c] = verts_[j][c] - verts_[bi_][c];
            a.push_back(std::move(row));
            b.push_back(vals_[j] - vals_[bi_]);
        }
        std::vector<double> g;
        if (!solveLinear(std::move(a), std::move(b), g)) {
            // Degenerate geometry: re-anchor an axis simplex.
            beginRebuild();
            return;
        }
        double gn = 0.0;
        for (double v : g)
            gn += v * v;
        gn = std::sqrt(gn);
        if (gn < 1e-14) {
            rho_ *= 0.5;
            if (rho_ < opts_.tolerance) {
                finish();
                return;
            }
            beginRebuild();
            return;
        }

        // Trust-region step against the model gradient.
        cand_ = verts_[bi_];
        for (std::size_t c = 0; c < m_; ++c)
            cand_[c] -= rho_ * g[c] / gn;
        stage_ = Stage::Candidate;
    }

    void
    beginRebuild()
    {
        const std::vector<double> center = verts_[bi_];
        const double center_val = vals_[bi_];
        verts_.assign(m_ + 1, center);
        vals_.assign(m_ + 1, center_val);
        for (std::size_t i = 0; i < m_; ++i)
            verts_[i + 1][i] += rho_;
        idx_ = 1;
        stage_ = Stage::RebuildVertex;
    }

    void
    finish()
    {
        const std::size_t bi = bestIndex();
        out_.best = verts_[bi];
        out_.bestValue = vals_[bi];
        stage_ = Stage::Done;
    }

    const OptOptions opts_;
    const std::size_t m_;
    double rho_;
    std::vector<std::vector<double>> verts_;
    std::vector<double> vals_;
    std::vector<double> cand_;
    std::size_t idx_ = 0;
    std::size_t bi_ = 0;
    Stage stage_ = Stage::InitVertex;
    OptResult out_;
};

} // namespace

std::unique_ptr<OptimizerRun>
Cobyla::start(const std::vector<double> &x0, const OptOptions &opts) const
{
    return std::make_unique<CobylaRun>(x0, opts);
}

} // namespace chocoq::optimize
