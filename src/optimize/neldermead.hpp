/**
 * @file
 * Nelder-Mead downhill-simplex minimizer.
 */

#ifndef CHOCOQ_OPTIMIZE_NELDERMEAD_HPP
#define CHOCOQ_OPTIMIZE_NELDERMEAD_HPP

#include "optimize/optimizer.hpp"

namespace chocoq::optimize
{

/** Classic Nelder-Mead with standard reflection coefficients. */
class NelderMead : public Optimizer
{
  public:
    std::string name() const override { return "nelder-mead"; }

    std::unique_ptr<OptimizerRun> start(const std::vector<double> &x0,
                                        const OptOptions &opts) const override;
};

} // namespace chocoq::optimize

#endif // CHOCOQ_OPTIMIZE_NELDERMEAD_HPP
