#include "optimize/optimizer.hpp"

#include "common/error.hpp"
#include "optimize/cobyla.hpp"
#include "optimize/neldermead.hpp"
#include "optimize/spsa.hpp"

namespace chocoq::optimize
{

OptResult
Optimizer::minimize(const ObjectiveFn &f, const std::vector<double> &x0,
                    const OptOptions &opts) const
{
    auto run = start(x0, opts);
    while (!run->finished())
        run->supply(f(run->pending()));
    return run->result();
}

std::unique_ptr<Optimizer>
makeOptimizer(const std::string &name, std::uint64_t seed)
{
    if (name == "cobyla")
        return std::make_unique<Cobyla>();
    if (name == "nelder-mead")
        return std::make_unique<NelderMead>();
    if (name == "spsa")
        return std::make_unique<Spsa>(seed);
    CHOCOQ_FATAL("unknown optimizer '" << name
                 << "' (expected cobyla, nelder-mead, or spsa)");
}

} // namespace chocoq::optimize
