#include "optimize/spsa.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace chocoq::optimize
{

namespace
{

/**
 * SPSA step machine. Stage flow:
 *   Init (evaluate x0) -> per iteration k: checkpoint, draw delta,
 *   Plus (evaluate x + ck delta) -> Minus (evaluate x - ck delta),
 *   update x / best / trace -> next iteration or Final (evaluate the
 *   final iterate) -> Done.
 * The evaluation sequence, random draws, and update arithmetic are
 * verbatim the pre-machine sequential loop, so driving this machine is
 * bit-identical to it (evaluations = 1 + 2*iterations + 1).
 */
class SpsaRun final : public OptimizerRun
{
  public:
    SpsaRun(std::uint64_t ctor_seed, const std::vector<double> &x0,
            const OptOptions &opts)
        : opts_(opts),
          // Both seeds feed the stream: the per-call options seed
          // (distinct per multi-start restart) and the construction
          // seed (distinct per job).
          rng_(ctor_seed == 0
                   ? opts.seed
                   : opts.seed ^ (ctor_seed * 0x9E3779B97F4A7C15ull)),
          m_(x0.size()), x_(x0), best_(x0), a_(opts.initialStep),
          c_(std::max(0.1 * opts.initialStep, 1e-3)),
          big_a_(0.1 * opts.maxIterations), delta_(m_), xp_(m_), xm_(m_)
    {
        CHOCOQ_ASSERT(m_ >= 1, "spsa needs at least one parameter");
    }

    bool finished() const override { return stage_ == Stage::Done; }

    const std::vector<double> &
    pending() const override
    {
        CHOCOQ_ASSERT(stage_ != Stage::Done, "pending() on finished run");
        switch (stage_) {
        case Stage::Plus:
            return xp_;
        case Stage::Minus:
            return xm_;
        default:
            // Init probes x0 (== x_) and Final probes the last iterate.
            return x_;
        }
    }

    void
    supply(double value) override
    {
        CHOCOQ_ASSERT(stage_ != Stage::Done, "supply() on finished run");
        ++out_.evaluations;
        switch (stage_) {
        case Stage::Init:
            best_val_ = value;
            beginIteration();
            break;
        case Stage::Plus:
            fp_ = value;
            stage_ = Stage::Minus;
            break;
        case Stage::Minus: {
            const double fm = value;
            for (std::size_t i = 0; i < m_; ++i)
                x_[i] -= ak_ * (fp_ - fm) / (2.0 * ck_ * delta_[i]);
            const double fx = std::min(fp_, fm);
            const auto &cand = fp_ < fm ? xp_ : xm_;
            if (fx < best_val_) {
                best_val_ = fx;
                best_ = cand;
            }
            out_.trace.push_back({out_.iterations, best_val_});
            if (ak_ < opts_.tolerance) {
                stage_ = Stage::Final;
            } else {
                ++k_;
                beginIteration();
            }
            break;
        }
        case Stage::Final:
            // Final candidate may beat the best perturbed point.
            if (value < best_val_) {
                best_val_ = value;
                best_ = x_;
            }
            out_.best = best_;
            out_.bestValue = best_val_;
            stage_ = Stage::Done;
            break;
        case Stage::Done:
            break;
        }
    }

    void
    halt() override
    {
        if (stage_ == Stage::Done)
            return;
        out_.best = best_;
        out_.bestValue = best_val_;
        stage_ = Stage::Done;
    }

    const OptResult &result() const override { return out_; }

  private:
    enum class Stage { Init, Plus, Minus, Final, Done };

    void
    beginIteration()
    {
        if (k_ >= opts_.maxIterations) {
            stage_ = Stage::Final;
            return;
        }
        if (opts_.checkpoint)
            opts_.checkpoint();
        ++out_.iterations;
        ak_ = a_ / std::pow(k_ + 1.0 + big_a_, 0.602);
        ck_ = c_ / std::pow(k_ + 1.0, 0.101);
        for (std::size_t i = 0; i < m_; ++i)
            delta_[i] = rng_.chance(0.5) ? 1.0 : -1.0;
        for (std::size_t i = 0; i < m_; ++i) {
            xp_[i] = x_[i] + ck_ * delta_[i];
            xm_[i] = x_[i] - ck_ * delta_[i];
        }
        stage_ = Stage::Plus;
    }

    const OptOptions opts_;
    Rng rng_;
    const std::size_t m_;
    std::vector<double> x_;
    std::vector<double> best_;
    double best_val_ = 0.0;
    const double a_;
    const double c_;
    const double big_a_;
    std::vector<double> delta_, xp_, xm_;
    int k_ = 0;
    double ak_ = 0.0, ck_ = 0.0, fp_ = 0.0;
    Stage stage_ = Stage::Init;
    OptResult out_;
};

} // namespace

std::unique_ptr<OptimizerRun>
Spsa::start(const std::vector<double> &x0, const OptOptions &opts) const
{
    return std::make_unique<SpsaRun>(seed_, x0, opts);
}

} // namespace chocoq::optimize
