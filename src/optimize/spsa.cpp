#include "optimize/spsa.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace chocoq::optimize
{

OptResult
Spsa::minimize(const ObjectiveFn &f, const std::vector<double> &x0,
               const OptOptions &opts) const
{
    const std::size_t m = x0.size();
    CHOCOQ_ASSERT(m >= 1, "spsa needs at least one parameter");

    OptResult out;
    // Both seeds feed the stream: the per-call options seed (distinct per
    // multi-start restart) and the construction seed (distinct per job).
    Rng rng(seed_ == 0 ? opts.seed
                       : opts.seed ^ (seed_ * 0x9E3779B97F4A7C15ull));
    auto eval = [&](const std::vector<double> &x) {
        ++out.evaluations;
        return f(x);
    };

    std::vector<double> x = x0;
    std::vector<double> best = x0;
    double best_val = eval(x0);

    const double a = opts.initialStep;
    const double c = std::max(0.1 * opts.initialStep, 1e-3);
    const double big_a = 0.1 * opts.maxIterations;

    std::vector<double> delta(m), xp(m), xm(m);
    for (int k = 0; k < opts.maxIterations; ++k) {
        if (opts.checkpoint)
            opts.checkpoint();
        ++out.iterations;
        const double ak = a / std::pow(k + 1.0 + big_a, 0.602);
        const double ck = c / std::pow(k + 1.0, 0.101);
        for (std::size_t i = 0; i < m; ++i)
            delta[i] = rng.chance(0.5) ? 1.0 : -1.0;
        for (std::size_t i = 0; i < m; ++i) {
            xp[i] = x[i] + ck * delta[i];
            xm[i] = x[i] - ck * delta[i];
        }
        const double fp = eval(xp);
        const double fm = eval(xm);
        for (std::size_t i = 0; i < m; ++i)
            x[i] -= ak * (fp - fm) / (2.0 * ck * delta[i]);

        const double fx = std::min(fp, fm);
        const auto &cand = fp < fm ? xp : xm;
        if (fx < best_val) {
            best_val = fx;
            best = cand;
        }
        out.trace.push_back({out.iterations, best_val});
        if (ak < opts.tolerance)
            break;
    }

    // Final candidate may beat the best perturbed point.
    const double final_val = eval(x);
    if (final_val < best_val) {
        best_val = final_val;
        best = x;
    }
    out.best = best;
    out.bestValue = best_val;
    return out;
}

} // namespace chocoq::optimize
