/**
 * @file
 * Simultaneous perturbation stochastic approximation (SPSA).
 */

#ifndef CHOCOQ_OPTIMIZE_SPSA_HPP
#define CHOCOQ_OPTIMIZE_SPSA_HPP

#include "optimize/optimizer.hpp"

namespace chocoq::optimize
{

/** SPSA with the standard gain schedules (Spall's coefficients). */
class Spsa : public Optimizer
{
  public:
    /**
     * @param seed Construction-time stream seed. 0 (default) draws the
     * perturbation stream from OptOptions::seed alone (legacy behavior);
     * a non-zero value is mixed into every stream so independently
     * constructed optimizers — e.g. one per concurrent solve job — have
     * fully caller-determined randomness regardless of scheduling order.
     */
    explicit Spsa(std::uint64_t seed = 0) : seed_(seed) {}

    std::string name() const override { return "spsa"; }

    std::unique_ptr<OptimizerRun> start(const std::vector<double> &x0,
                                        const OptOptions &opts) const override;

  private:
    std::uint64_t seed_;
};

} // namespace chocoq::optimize

#endif // CHOCOQ_OPTIMIZE_SPSA_HPP
