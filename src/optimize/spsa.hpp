/**
 * @file
 * Simultaneous perturbation stochastic approximation (SPSA).
 */

#ifndef CHOCOQ_OPTIMIZE_SPSA_HPP
#define CHOCOQ_OPTIMIZE_SPSA_HPP

#include "optimize/optimizer.hpp"

namespace chocoq::optimize
{

/** SPSA with the standard gain schedules (Spall's coefficients). */
class Spsa : public Optimizer
{
  public:
    std::string name() const override { return "spsa"; }

    OptResult minimize(const ObjectiveFn &f, const std::vector<double> &x0,
                       const OptOptions &opts) const override;
};

} // namespace chocoq::optimize

#endif // CHOCOQ_OPTIMIZE_SPSA_HPP
