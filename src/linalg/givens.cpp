#include "linalg/givens.hpp"

#include <cmath>

#include "common/error.hpp"

namespace chocoq::linalg
{

GivensSynthesis
synthesizeTwoLevel(const Matrix &u, int num_qubits, double tol)
{
    CHOCOQ_ASSERT(u.rows() == u.cols(), "synthesis requires square matrix");
    CHOCOQ_ASSERT(u.rows() == (std::size_t{1} << num_qubits),
                  "dimension must be 2^num_qubits");

    Matrix w = u;
    const std::size_t dim = w.rows();
    GivensSynthesis out;

    // Eliminate below-diagonal entries column by column. Each non-trivial
    // elimination is one two-level rotation acting on basis states r-1, r.
    for (std::size_t c = 0; c + 1 < dim; ++c) {
        for (std::size_t r = dim - 1; r > c; --r) {
            const Cplx b = w.at(r, c);
            if (std::abs(b) <= tol)
                continue;
            const Cplx a = w.at(r - 1, c);
            const double nr = std::hypot(std::abs(a), std::abs(b));
            if (nr <= tol)
                continue;
            const Cplx ga = std::conj(a) / nr;
            const Cplx gb = std::conj(b) / nr;
            // Apply the rotation to rows r-1 and r.
            for (std::size_t j = c; j < dim; ++j) {
                const Cplx x = w.at(r - 1, j);
                const Cplx y = w.at(r, j);
                w.at(r - 1, j) = ga * x + gb * y;
                w.at(r, j) = -std::conj(gb) * x + std::conj(ga) * y;
            }
            ++out.rotations;
        }
    }

    // Gray-code implementation of a two-level rotation between arbitrary
    // basis states: up to 2*(n-1) CX ladders on each side plus a controlled
    // single-qubit rotation that itself costs about 2n basic gates
    // (multi-control collapse), giving ~6n basic gates per rotation.
    const std::size_t per_rotation =
        6 * static_cast<std::size_t>(num_qubits) + 2;
    out.basicGates = out.rotations * per_rotation;
    // Two-level rotations on overlapping qubits serialize almost entirely;
    // treat depth as gate count (the paper's Trotter depths are likewise
    // serial).
    out.depth = out.basicGates;
    return out;
}

} // namespace chocoq::linalg
