/**
 * @file
 * Dense complex matrices and vectors.
 *
 * This is the reference-math substrate: unit tests compare the fast
 * state-vector kernels and the Lemma-2 circuit decomposition against dense
 * operators built here, and the Trotter baseline of Figure 12 uses these
 * matrices for its (intentionally exponential) tensor computations.
 */

#ifndef CHOCOQ_LINALG_MATRIX_HPP
#define CHOCOQ_LINALG_MATRIX_HPP

#include <complex>
#include <cstddef>
#include <vector>

namespace chocoq::linalg
{

using Cplx = std::complex<double>;
using CVec = std::vector<Cplx>;

/** Dense row-major complex matrix. Allocations are MemBytes-tracked. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix();

    /** Zero-initialized rows x cols matrix. */
    Matrix(std::size_t rows, std::size_t cols);

    Matrix(const Matrix &other);
    Matrix(Matrix &&other) noexcept;
    Matrix &operator=(const Matrix &other);
    Matrix &operator=(Matrix &&other) noexcept;
    ~Matrix();

    /** Identity matrix of dimension n. */
    static Matrix identity(std::size_t n);

    /**
     * Build a 2x2 matrix from row-major entries.
     */
    static Matrix make2(Cplx a, Cplx b, Cplx c, Cplx d);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    Cplx &at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
    const Cplx &
    at(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    /** Raw storage access (row-major). */
    CVec &data() { return data_; }
    const CVec &data() const { return data_; }

    Matrix operator+(const Matrix &rhs) const;
    Matrix operator-(const Matrix &rhs) const;
    Matrix operator*(const Matrix &rhs) const;
    Matrix operator*(Cplx scalar) const;

    /** Conjugate transpose. */
    Matrix dagger() const;

    /** Kronecker product: this (x) rhs. */
    Matrix kron(const Matrix &rhs) const;

    /** Matrix-vector product. */
    CVec apply(const CVec &v) const;

    /** Largest |entry| difference against @p rhs. */
    double maxAbsDiff(const Matrix &rhs) const;

    /** Largest |entry|. */
    double maxAbs() const;

    /** True when U U^dagger == I within @p tol. */
    bool isUnitary(double tol = 1e-9) const;

    /** True when H == H^dagger within @p tol. */
    bool isHermitian(double tol = 1e-9) const;

  private:
    void track();
    void untrack();

    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    CVec data_;
    std::size_t trackedBytes_ = 0;
};

/**
 * Compare two matrices up to a global phase.
 * @return The max entry difference after the optimal phase alignment.
 */
double phaseDistance(const Matrix &a, const Matrix &b);

/** Inner product <a|b> with the physics convention (conjugate a). */
Cplx dot(const CVec &a, const CVec &b);

/** Euclidean norm of a complex vector. */
double norm(const CVec &v);

} // namespace chocoq::linalg

#endif // CHOCOQ_LINALG_MATRIX_HPP
