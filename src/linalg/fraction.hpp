/**
 * @file
 * Exact rational arithmetic.
 *
 * The move-basis computation (nullspace of the constraint matrix C over the
 * rationals, Section III of the paper) must be exact: floating-point
 * elimination can turn a {-1,0,1} basis vector into near-integers and break
 * the commute-Hamiltonian construction. Fraction is a minimal exact
 * rational with __int128 intermediates to avoid overflow on the problem
 * sizes in this repository.
 */

#ifndef CHOCOQ_LINALG_FRACTION_HPP
#define CHOCOQ_LINALG_FRACTION_HPP

#include <cstdint>
#include <numeric>

#include "common/error.hpp"

namespace chocoq::linalg
{

/** Exact rational number num/den with den > 0 and gcd(num,den) == 1. */
class Fraction
{
  public:
    /** Zero. */
    constexpr Fraction() : num_(0), den_(1) {}

    /** Integer value. */
    constexpr Fraction(std::int64_t v) : num_(v), den_(1) {} // NOLINT

    /** num/den; normalizes sign and gcd. */
    Fraction(std::int64_t num, std::int64_t den) : num_(num), den_(den)
    {
        normalize();
    }

    std::int64_t num() const { return num_; }
    std::int64_t den() const { return den_; }

    bool isZero() const { return num_ == 0; }
    bool isInteger() const { return den_ == 1; }

    double toDouble() const
    {
        return static_cast<double>(num_) / static_cast<double>(den_);
    }

    Fraction
    operator+(const Fraction &rhs) const
    {
        return fromWide(static_cast<__int128>(num_) * rhs.den_
                            + static_cast<__int128>(rhs.num_) * den_,
                        static_cast<__int128>(den_) * rhs.den_);
    }

    Fraction
    operator-(const Fraction &rhs) const
    {
        return fromWide(static_cast<__int128>(num_) * rhs.den_
                            - static_cast<__int128>(rhs.num_) * den_,
                        static_cast<__int128>(den_) * rhs.den_);
    }

    Fraction
    operator*(const Fraction &rhs) const
    {
        return fromWide(static_cast<__int128>(num_) * rhs.num_,
                        static_cast<__int128>(den_) * rhs.den_);
    }

    Fraction
    operator/(const Fraction &rhs) const
    {
        CHOCOQ_ASSERT(!rhs.isZero(), "fraction division by zero");
        return fromWide(static_cast<__int128>(num_) * rhs.den_,
                        static_cast<__int128>(den_) * rhs.num_);
    }

    Fraction operator-() const { return Fraction(-num_, den_); }

    bool
    operator==(const Fraction &rhs) const
    {
        return num_ == rhs.num_ && den_ == rhs.den_;
    }
    bool operator!=(const Fraction &rhs) const { return !(*this == rhs); }

    bool
    operator<(const Fraction &rhs) const
    {
        return static_cast<__int128>(num_) * rhs.den_
               < static_cast<__int128>(rhs.num_) * den_;
    }

  private:
    static Fraction
    fromWide(__int128 num, __int128 den)
    {
        CHOCOQ_ASSERT(den != 0, "fraction with zero denominator");
        if (den < 0) {
            num = -num;
            den = -den;
        }
        __int128 g = gcdWide(num < 0 ? -num : num, den);
        if (g > 1) {
            num /= g;
            den /= g;
        }
        CHOCOQ_ASSERT(num <= INT64_MAX && num >= INT64_MIN
                          && den <= INT64_MAX,
                      "fraction overflow");
        Fraction f;
        f.num_ = static_cast<std::int64_t>(num);
        f.den_ = static_cast<std::int64_t>(den);
        return f;
    }

    static __int128
    gcdWide(__int128 a, __int128 b)
    {
        while (b != 0) {
            __int128 t = a % b;
            a = b;
            b = t;
        }
        return a == 0 ? 1 : a;
    }

    void
    normalize()
    {
        CHOCOQ_ASSERT(den_ != 0, "fraction with zero denominator");
        if (den_ < 0) {
            num_ = -num_;
            den_ = -den_;
        }
        std::int64_t g = std::gcd(num_ < 0 ? -num_ : num_, den_);
        if (g > 1) {
            num_ /= g;
            den_ /= g;
        }
    }

    std::int64_t num_;
    std::int64_t den_;
};

} // namespace chocoq::linalg

#endif // CHOCOQ_LINALG_FRACTION_HPP
