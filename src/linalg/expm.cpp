#include "linalg/expm.hpp"

#include <cmath>

#include "common/error.hpp"

namespace chocoq::linalg
{

namespace
{

/** Infinity norm (max absolute row sum). */
double
infNorm(const Matrix &a)
{
    double m = 0.0;
    for (std::size_t r = 0; r < a.rows(); ++r) {
        double row = 0.0;
        for (std::size_t c = 0; c < a.cols(); ++c)
            row += std::abs(a.at(r, c));
        m = std::max(m, row);
    }
    return m;
}

} // namespace

Matrix
expm(const Matrix &a)
{
    CHOCOQ_ASSERT(a.rows() == a.cols(), "expm requires a square matrix");
    const std::size_t n = a.rows();

    // Scale so the norm is below 0.5, then square back.
    int squarings = 0;
    double nrm = infNorm(a);
    while (nrm > 0.5) {
        nrm *= 0.5;
        ++squarings;
    }
    const double scale = std::ldexp(1.0, -squarings);
    Matrix x = a * Cplx{scale, 0.0};

    // Taylor series; with norm <= 0.5 roughly 20 terms give ~1e-18 tails.
    Matrix result = Matrix::identity(n);
    Matrix term = Matrix::identity(n);
    for (int k = 1; k <= 24; ++k) {
        term = term * x;
        term = term * Cplx{1.0 / static_cast<double>(k), 0.0};
        result = result + term;
        if (term.maxAbs() < 1e-18)
            break;
    }

    for (int s = 0; s < squarings; ++s)
        result = result * result;
    return result;
}

Matrix
expUnitary(const Matrix &h, double t)
{
    return expm(h * Cplx{0.0, -t});
}

} // namespace chocoq::linalg
