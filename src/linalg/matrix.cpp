#include "linalg/matrix.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/membytes.hpp"

namespace chocoq::linalg
{

Matrix::Matrix() = default;

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, Cplx{0.0, 0.0})
{
    track();
}

Matrix::Matrix(const Matrix &other)
    : rows_(other.rows_), cols_(other.cols_), data_(other.data_)
{
    track();
}

Matrix::Matrix(Matrix &&other) noexcept
    : rows_(other.rows_), cols_(other.cols_), data_(std::move(other.data_)),
      trackedBytes_(other.trackedBytes_)
{
    other.trackedBytes_ = 0;
    other.rows_ = other.cols_ = 0;
}

Matrix &
Matrix::operator=(const Matrix &other)
{
    if (this != &other) {
        untrack();
        rows_ = other.rows_;
        cols_ = other.cols_;
        data_ = other.data_;
        track();
    }
    return *this;
}

Matrix &
Matrix::operator=(Matrix &&other) noexcept
{
    if (this != &other) {
        untrack();
        rows_ = other.rows_;
        cols_ = other.cols_;
        data_ = std::move(other.data_);
        trackedBytes_ = other.trackedBytes_;
        other.trackedBytes_ = 0;
        other.rows_ = other.cols_ = 0;
    }
    return *this;
}

Matrix::~Matrix()
{
    untrack();
}

void
Matrix::track()
{
    trackedBytes_ = data_.size() * sizeof(Cplx);
    MemBytes::add(trackedBytes_);
}

void
Matrix::untrack()
{
    if (trackedBytes_ > 0) {
        MemBytes::sub(trackedBytes_);
        trackedBytes_ = 0;
    }
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m.at(i, i) = 1.0;
    return m;
}

Matrix
Matrix::make2(Cplx a, Cplx b, Cplx c, Cplx d)
{
    Matrix m(2, 2);
    m.at(0, 0) = a;
    m.at(0, 1) = b;
    m.at(1, 0) = c;
    m.at(1, 1) = d;
    return m;
}

Matrix
Matrix::operator+(const Matrix &rhs) const
{
    CHOCOQ_ASSERT(rows_ == rhs.rows_ && cols_ == rhs.cols_,
                  "matrix add shape mismatch");
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] + rhs.data_[i];
    return out;
}

Matrix
Matrix::operator-(const Matrix &rhs) const
{
    CHOCOQ_ASSERT(rows_ == rhs.rows_ && cols_ == rhs.cols_,
                  "matrix sub shape mismatch");
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] - rhs.data_[i];
    return out;
}

Matrix
Matrix::operator*(const Matrix &rhs) const
{
    CHOCOQ_ASSERT(cols_ == rhs.rows_, "matrix mul shape mismatch");
    Matrix out(rows_, rhs.cols_);
    // Cache-friendly ikj order.
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const Cplx a = at(i, k);
            if (a == Cplx{0.0, 0.0})
                continue;
            const Cplx *rhs_row = &rhs.data_[k * rhs.cols_];
            Cplx *out_row = &out.data_[i * rhs.cols_];
            for (std::size_t j = 0; j < rhs.cols_; ++j)
                out_row[j] += a * rhs_row[j];
        }
    }
    return out;
}

Matrix
Matrix::operator*(Cplx scalar) const
{
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] * scalar;
    return out;
}

Matrix
Matrix::dagger() const
{
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            out.at(c, r) = std::conj(at(r, c));
    return out;
}

Matrix
Matrix::kron(const Matrix &rhs) const
{
    Matrix out(rows_ * rhs.rows_, cols_ * rhs.cols_);
    for (std::size_t r1 = 0; r1 < rows_; ++r1)
        for (std::size_t c1 = 0; c1 < cols_; ++c1) {
            const Cplx a = at(r1, c1);
            if (a == Cplx{0.0, 0.0})
                continue;
            for (std::size_t r2 = 0; r2 < rhs.rows_; ++r2)
                for (std::size_t c2 = 0; c2 < rhs.cols_; ++c2)
                    out.at(r1 * rhs.rows_ + r2, c1 * rhs.cols_ + c2) =
                        a * rhs.at(r2, c2);
        }
    return out;
}

CVec
Matrix::apply(const CVec &v) const
{
    CHOCOQ_ASSERT(v.size() == cols_, "matvec shape mismatch");
    CVec out(rows_, Cplx{0.0, 0.0});
    for (std::size_t r = 0; r < rows_; ++r) {
        Cplx acc{0.0, 0.0};
        const Cplx *row = &data_[r * cols_];
        for (std::size_t c = 0; c < cols_; ++c)
            acc += row[c] * v[c];
        out[r] = acc;
    }
    return out;
}

double
Matrix::maxAbsDiff(const Matrix &rhs) const
{
    CHOCOQ_ASSERT(rows_ == rhs.rows_ && cols_ == rhs.cols_,
                  "maxAbsDiff shape mismatch");
    double m = 0.0;
    for (std::size_t i = 0; i < data_.size(); ++i)
        m = std::max(m, std::abs(data_[i] - rhs.data_[i]));
    return m;
}

double
Matrix::maxAbs() const
{
    double m = 0.0;
    for (const auto &x : data_)
        m = std::max(m, std::abs(x));
    return m;
}

bool
Matrix::isUnitary(double tol) const
{
    if (rows_ != cols_)
        return false;
    Matrix prod = (*this) * dagger();
    return prod.maxAbsDiff(identity(rows_)) < tol;
}

bool
Matrix::isHermitian(double tol) const
{
    if (rows_ != cols_)
        return false;
    return maxAbsDiff(dagger()) < tol;
}

double
phaseDistance(const Matrix &a, const Matrix &b)
{
    CHOCOQ_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(),
                  "phaseDistance shape mismatch");
    // Find the entry of largest magnitude in a to anchor the phase.
    std::size_t best = 0;
    double best_abs = -1.0;
    for (std::size_t i = 0; i < a.data().size(); ++i) {
        if (std::abs(a.data()[i]) > best_abs) {
            best_abs = std::abs(a.data()[i]);
            best = i;
        }
    }
    if (best_abs < 1e-14)
        return b.maxAbs();
    Cplx phase = b.data()[best] / a.data()[best];
    const double mag = std::abs(phase);
    if (mag < 1e-14)
        return a.maxAbsDiff(b);
    phase /= mag;
    double m = 0.0;
    for (std::size_t i = 0; i < a.data().size(); ++i)
        m = std::max(m, std::abs(a.data()[i] * phase - b.data()[i]));
    return m;
}

Cplx
dot(const CVec &a, const CVec &b)
{
    CHOCOQ_ASSERT(a.size() == b.size(), "dot shape mismatch");
    Cplx acc{0.0, 0.0};
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += std::conj(a[i]) * b[i];
    return acc;
}

double
norm(const CVec &v)
{
    double acc = 0.0;
    for (const auto &x : v)
        acc += std::norm(x);
    return std::sqrt(acc);
}

} // namespace chocoq::linalg
