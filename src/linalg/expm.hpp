/**
 * @file
 * Matrix exponentials.
 *
 * expm() computes exp(A) for an arbitrary square complex matrix with
 * scaling-and-squaring plus a Taylor series evaluated to machine precision.
 * expUnitary() is the convenience wrapper exp(-i t H) used to build exact
 * Hamiltonian-evolution references in tests and in the Trotter baseline.
 */

#ifndef CHOCOQ_LINALG_EXPM_HPP
#define CHOCOQ_LINALG_EXPM_HPP

#include "linalg/matrix.hpp"

namespace chocoq::linalg
{

/** exp(A) by scaling-and-squaring with a truncated Taylor series. */
Matrix expm(const Matrix &a);

/** exp(-i t H) for a (Hermitian) generator H. */
Matrix expUnitary(const Matrix &h, double t);

} // namespace chocoq::linalg

#endif // CHOCOQ_LINALG_EXPM_HPP
