/**
 * @file
 * Standard single-qubit operators and tensor-product builders.
 *
 * These are the sigma matrices of Equation (5) in the paper, plus the usual
 * Pauli set. Used to build dense reference Hamiltonians in tests and in the
 * Trotter baseline of Figure 12.
 */

#ifndef CHOCOQ_LINALG_PAULIS_HPP
#define CHOCOQ_LINALG_PAULIS_HPP

#include <vector>

#include "linalg/matrix.hpp"

namespace chocoq::linalg
{

/** Identity. */
inline Matrix
pauliI()
{
    return Matrix::identity(2);
}

/** Pauli X. */
inline Matrix
pauliX()
{
    return Matrix::make2(0, 1, 1, 0);
}

/** Pauli Y. */
inline Matrix
pauliY()
{
    return Matrix::make2(0, Cplx{0, -1}, Cplx{0, 1}, 0);
}

/** Pauli Z. */
inline Matrix
pauliZ()
{
    return Matrix::make2(1, 0, 0, -1);
}

/**
 * sigma^{+1} of Eq. (5): maps |0> to |1> ([[0,0],[1,0]]).
 */
inline Matrix
sigmaRaise()
{
    return Matrix::make2(0, 0, 1, 0);
}

/**
 * sigma^{-1} of Eq. (5): maps |1> to |0> ([[0,1],[0,0]]).
 */
inline Matrix
sigmaLower()
{
    return Matrix::make2(0, 1, 0, 0);
}

/** sigma^{u} for u in {-1, 0, +1} per Eq. (5). */
inline Matrix
sigmaOf(int u)
{
    if (u > 0)
        return sigmaRaise();
    if (u < 0)
        return sigmaLower();
    return pauliI();
}

/**
 * Tensor product over qubits of per-qubit 2x2 operators.
 *
 * ops[0] acts on qubit 0, which by the Choco-Q index convention is the
 * LOW bit of the basis index. The returned matrix therefore equals
 * ops[n-1] (x) ... (x) ops[0] in the usual big-endian kron order.
 */
inline Matrix
kronAll(const std::vector<Matrix> &ops)
{
    Matrix out = Matrix::identity(1);
    for (const auto &op : ops)
        out = op.kron(out);
    return out;
}

/** Single-qubit operator embedded on qubit @p q of an @p n qubit register. */
inline Matrix
embed1q(const Matrix &op, int q, int n)
{
    std::vector<Matrix> ops;
    ops.reserve(n);
    for (int i = 0; i < n; ++i)
        ops.push_back(i == q ? op : pauliI());
    return kronAll(ops);
}

} // namespace chocoq::linalg

#endif // CHOCOQ_LINALG_PAULIS_HPP
