/**
 * @file
 * Two-level (Givens) unitary synthesis.
 *
 * The Trotter baseline of Figure 12 must decompose each small-step unitary
 * into basic gates. The textbook route is two-level decomposition: QR-style
 * elimination with complex Givens rotations, where each surviving rotation
 * is a two-level unitary that costs a Gray-code chain of CX gates plus a
 * controlled single-qubit rotation. This module performs the elimination on
 * the dense matrix (intentionally exponential in qubit count — that is the
 * comparison the paper makes) and reports gate/depth estimates.
 */

#ifndef CHOCOQ_LINALG_GIVENS_HPP
#define CHOCOQ_LINALG_GIVENS_HPP

#include <cstddef>

#include "linalg/matrix.hpp"

namespace chocoq::linalg
{

/** Result of a two-level synthesis pass. */
struct GivensSynthesis
{
    /** Number of non-trivial two-level rotations. */
    std::size_t rotations = 0;
    /** Estimated basic-gate count (Gray-code CX chains + 1q rotations). */
    std::size_t basicGates = 0;
    /** Estimated circuit depth in basic gates. */
    std::size_t depth = 0;
};

/**
 * Decompose @p u into two-level rotations and report the synthesis cost.
 *
 * @param u Unitary of dimension 2^n.
 * @param num_qubits n; used to cost each two-level rotation.
 * @param tol Entries below this magnitude count as already eliminated.
 */
GivensSynthesis synthesizeTwoLevel(const Matrix &u, int num_qubits,
                                   double tol = 1e-12);

} // namespace chocoq::linalg

#endif // CHOCOQ_LINALG_GIVENS_HPP
