#include "device/device.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace chocoq::device
{

DeviceModel
fez()
{
    DeviceModel d;
    d.name = "Fez";
    d.nativeCz = true;
    d.err1q = 3e-4;
    d.err2qNative = 0.003; // CZ fidelity 99.7%
    d.czFactor = 1.0;
    d.readoutErr = 0.01;
    d.t1q = 32e-9;
    d.t2q = 68e-9;
    d.tReadout = 2e-6;
    d.tShotOverhead = 15e-6;
    return d;
}

DeviceModel
osaka()
{
    DeviceModel d;
    d.name = "Osaka";
    d.nativeCz = false;
    d.err1q = 5e-4;
    d.err2qNative = 0.007; // ECR fidelity 99.3%
    d.czFactor = 3.0;      // CZ = 3 single-direction ECR
    d.readoutErr = 0.02;
    d.t1q = 35e-9;
    d.t2q = 533e-9;
    d.tReadout = 4e-6;
    d.tShotOverhead = 80e-6;
    return d;
}

DeviceModel
sherbrooke()
{
    DeviceModel d = osaka();
    d.name = "Sherbrooke";
    d.err2qNative = 0.007;
    d.readoutErr = 0.015;
    d.tShotOverhead = 70e-6;
    return d;
}

std::vector<DeviceModel>
allDevices()
{
    return {fez(), osaka(), sherbrooke()};
}

DeviceModel
deviceByName(const std::string &name)
{
    std::string key = name;
    std::transform(key.begin(), key.end(), key.begin(),
                   [](unsigned char ch) { return std::tolower(ch); });
    if (key == "fez")
        return fez();
    if (key == "osaka")
        return osaka();
    if (key == "sherbrooke")
        return sherbrooke();
    CHOCOQ_FATAL("unknown device '" << name
                 << "' (expected fez, osaka, or sherbrooke)");
}

sim::NoiseModel
noiseOf(const DeviceModel &dev)
{
    sim::NoiseModel noise;
    noise.p1q = dev.err1q;
    // A logical CX/CZ costs czFactor native gates on ECR devices.
    noise.p2q = dev.err2qNative * dev.czFactor;
    noise.readout = dev.readoutErr;
    return noise;
}

LatencyEstimate
estimateLatency(const DeviceModel &dev, int basis_depth, int iterations,
                int circuits_per_iteration, int shots,
                double compile_seconds, double classical_seconds)
{
    LatencyEstimate out;
    out.compileSeconds = compile_seconds;
    out.classicalSeconds = classical_seconds;
    // Circuit wall time per shot: depth is dominated by two-qubit layers
    // (each logical CX costs czFactor native gates back-to-back).
    const double circuit_time =
        static_cast<double>(basis_depth) * dev.t2q * dev.czFactor * 0.5
        + dev.tReadout + dev.tShotOverhead;
    out.quantumSeconds = static_cast<double>(iterations)
                         * static_cast<double>(circuits_per_iteration)
                         * static_cast<double>(shots) * circuit_time;
    return out;
}

} // namespace chocoq::device
