/**
 * @file
 * IBM-device models (Section V-A/V-C) and the end-to-end latency model.
 *
 * The paper evaluates on three IBMQ systems: Fez (159-qubit Heron r2,
 * native CZ at 99.7% fidelity) and Osaka/Sherbrooke (127-qubit Eagle r3,
 * single-direction ECR at 99.3%; a CZ costs three ECR gates). Since this
 * repository replaces cloud hardware with simulation, each device is
 * reduced to the parameters that drive the paper's hardware results:
 * gate error rates (-> noise trajectories), gate/readout/shot timings
 * (-> latency estimates), and the native two-qubit gate.
 */

#ifndef CHOCOQ_DEVICE_DEVICE_HPP
#define CHOCOQ_DEVICE_DEVICE_HPP

#include <string>
#include <vector>

#include "sim/executor.hpp"

namespace chocoq::device
{

/** Calibration summary of one quantum device. */
struct DeviceModel
{
    std::string name;
    /** Native two-qubit basis gate is CZ (Heron) vs ECR (Eagle). */
    bool nativeCz = false;
    /** Single-qubit gate error probability. */
    double err1q = 0.0;
    /** Native two-qubit gate error probability. */
    double err2qNative = 0.0;
    /** Native 2q gates needed per CZ/CX (3 on single-direction ECR). */
    double czFactor = 1.0;
    /** Per-bit readout error probability. */
    double readoutErr = 0.0;
    /** Single-qubit gate duration (seconds). */
    double t1q = 0.0;
    /** Native two-qubit gate duration (seconds). */
    double t2q = 0.0;
    /** Readout duration (seconds). */
    double tReadout = 0.0;
    /** Fixed per-shot overhead: reset, delays, control-system latency. */
    double tShotOverhead = 0.0;
};

/** IBM Fez: Heron r2, QAOA-friendly native CZ (99.7%). */
DeviceModel fez();

/** IBM Osaka: Eagle r3, single-direction ECR (99.3%). */
DeviceModel osaka();

/** IBM Sherbrooke: Eagle r3, single-direction ECR (99.3%). */
DeviceModel sherbrooke();

/** All three platforms in the paper's order. */
std::vector<DeviceModel> allDevices();

/** Look up by lower-case name. */
DeviceModel deviceByName(const std::string &name);

/** Trajectory-noise parameters implied by the calibration. */
sim::NoiseModel noiseOf(const DeviceModel &dev);

/** End-to-end latency estimate split like Fig. 11(b). */
struct LatencyEstimate
{
    double compileSeconds = 0.0;
    double quantumSeconds = 0.0;
    double classicalSeconds = 0.0;

    double
    total() const
    {
        return compileSeconds + quantumSeconds + classicalSeconds;
    }
};

/**
 * Estimate the end-to-end latency of an iterative run on a device.
 *
 * @param dev Device model.
 * @param basis_depth Transpiled circuit depth (basic gates).
 * @param iterations Optimizer iterations.
 * @param circuits_per_iteration Circuit instances evaluated per iteration.
 * @param shots Shots per circuit execution.
 * @param compile_seconds Measured compilation time (classical).
 * @param classical_seconds Measured parameter-update time (classical).
 */
LatencyEstimate estimateLatency(const DeviceModel &dev, int basis_depth,
                                int iterations, int circuits_per_iteration,
                                int shots, double compile_seconds,
                                double classical_seconds);

} // namespace chocoq::device

#endif // CHOCOQ_DEVICE_DEVICE_HPP
