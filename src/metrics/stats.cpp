#include "metrics/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace chocoq::metrics
{

RunStats
computeStats(const model::Problem &p, const std::map<Basis, double> &dist,
             const model::ExactResult &exact, double lambda)
{
    CHOCOQ_ASSERT(exact.feasible, "stats need a feasible ground truth");
    RunStats out;
    double total = 0.0;
    double expect_cost = 0.0;
    for (const auto &[x, prob] : dist) {
        total += prob;
        const double obj = p.minimizedObjectiveOf(x);
        const int viol = p.violation(x);
        expect_cost += prob * (obj + lambda * viol);
        if (viol == 0) {
            out.inConstraintsRate += prob;
            if (obj <= exact.optimum + 1e-9)
                out.successRate += prob;
        }
    }
    if (total <= 0.0)
        return out;
    out.successRate /= total;
    out.inConstraintsRate /= total;
    expect_cost /= total;

    // Eq. 17 with a guard for near-zero optimal values.
    const double denom = std::max(std::abs(exact.optimum), 1.0);
    out.arg = std::abs(expect_cost - exact.optimum) / denom;
    return out;
}

RunStats
averageStats(const std::vector<RunStats> &all)
{
    RunStats acc;
    if (all.empty())
        return acc;
    for (const auto &s : all) {
        acc.successRate += s.successRate;
        acc.inConstraintsRate += s.inConstraintsRate;
        acc.arg += s.arg;
    }
    const double inv = 1.0 / static_cast<double>(all.size());
    acc.successRate *= inv;
    acc.inConstraintsRate *= inv;
    acc.arg *= inv;
    return acc;
}

} // namespace chocoq::metrics
