/**
 * @file
 * Evaluation metrics of Section V-A: success rate, in-constraints rate,
 * and approximation ratio gap (Eq. 17).
 */

#ifndef CHOCOQ_METRICS_STATS_HPP
#define CHOCOQ_METRICS_STATS_HPP

#include <map>

#include "common/bitops.hpp"
#include "model/exact.hpp"
#include "model/problem.hpp"

namespace chocoq::metrics
{

/** Algorithmic quality metrics for one solver run on one case. */
struct RunStats
{
    /** Probability mass on optimal solutions. */
    double successRate = 0.0;
    /** Probability mass on feasible solutions. */
    double inConstraintsRate = 0.0;
    /** Approximation ratio gap (Eq. 17), lambda-penalized. */
    double arg = 0.0;
};

/**
 * Compute the three metrics from an output distribution.
 *
 * @param p The problem instance.
 * @param dist Normalized outcome distribution over the full variable space.
 * @param exact Ground truth from the classical reference solver.
 * @param lambda Penalty weight in the ARG expectation (paper uses 10).
 */
RunStats computeStats(const model::Problem &p,
                      const std::map<Basis, double> &dist,
                      const model::ExactResult &exact, double lambda = 10.0);

/** Average a set of RunStats element-wise. */
RunStats averageStats(const std::vector<RunStats> &all);

} // namespace chocoq::metrics

#endif // CHOCOQ_METRICS_STATS_HPP
