#include "service/job.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"
#include "obs/trace.hpp"
#include "problems/suite.hpp"

namespace chocoq::service
{

namespace
{

bool
knownSolver(const std::string &name)
{
    return name == "choco-q" || name == "penalty" || name == "cyclic"
           || name == "hea";
}

/**
 * Range-checked integer field. Requests come from untrusted input, and
 * a float-to-integer cast whose truncated value doesn't fit the
 * destination type is undefined behavior — so reject out-of-range or
 * non-integral values with a clean per-request error instead.
 */
long long
checkedInt(const Json &v, const char *key, long long lo, long long hi,
           long long fallback)
{
    const Json *field = v.find(key);
    if (!field)
        return fallback;
    const double raw = field->asNumber(static_cast<double>(fallback));
    if (!(raw >= static_cast<double>(lo) && raw <= static_cast<double>(hi))
        || raw != std::floor(raw))
        CHOCOQ_FATAL("field '" << key << "' must be an integer in ["
                     << lo << ", " << hi << "], got " << raw);
    return static_cast<long long>(raw);
}

} // namespace

SolveJob
jobFromJson(const Json &v, const spec::SpecLimits &limits)
{
    if (!v.isObject())
        CHOCOQ_FATAL("job request must be a JSON object");
    SolveJob job;
    job.id = v.getString("id", "");
    job.solver = v.getString("solver", job.solver);
    if (!knownSolver(job.solver))
        CHOCOQ_FATAL("unknown solver '" << job.solver
                     << "' (expected choco-q, penalty, cyclic, or hea)");

    // Exactly one way to name the problem: a registry case (scale/case),
    // an inline spec ("problem"), or a prior submission ("problem_ref").
    // Mixing them would make one silently win; reject instead.
    const Json *inline_spec = v.find("problem");
    const Json *ref = v.find("problem_ref");
    const bool named_case = v.find("scale") || v.find("case");
    if (inline_spec && ref)
        CHOCOQ_FATAL("fields 'problem' and 'problem_ref' are mutually "
                     "exclusive");
    if ((inline_spec || ref) && named_case)
        CHOCOQ_FATAL("fields 'scale'/'case' cannot be combined with an "
                     "inline 'problem' or a 'problem_ref'");
    if (inline_spec) {
        job.problem = std::make_shared<const spec::ProblemSpec>(
            spec::parseProblemSpec(*inline_spec, limits));
    } else if (ref) {
        if (ref->kind() != Json::Kind::String
            || !spec::validProblemRef(ref->asString()))
            CHOCOQ_FATAL("field 'problem_ref' must be a 16-hex-char "
                         "canonical problem hash (the problem_ref echoed "
                         "by a prior inline submission's result)");
        job.problemRef = ref->asString();
    }

    job.scale = v.getString("scale", job.scale);
    if (!problems::scaleByName(job.scale))
        CHOCOQ_FATAL("unknown scale '" << job.scale << "' (expected F1..K4)");
    job.caseIndex = static_cast<unsigned>(
        checkedInt(v, "case", 0, 1u << 30, 0));
    // Seeds may exceed 2^53; a string value carries the full 64 bits
    // (JSON numbers are doubles and would round).
    if (const Json *seed = v.find("seed")) {
        if (seed->kind() == Json::Kind::String)
            job.seed = std::strtoull(seed->asString().c_str(), nullptr, 10);
        else
            job.seed = static_cast<std::uint64_t>(checkedInt(
                v, "seed", 0, (1ll << 53),
                static_cast<long long>(job.seed)));
    }
    job.shots = static_cast<int>(
        checkedInt(v, "shots", 0, 1 << 30, job.shots));
    job.device = v.getString("device", "");
    job.layers = static_cast<int>(checkedInt(v, "layers", 0, 1 << 20, 0));
    job.maxIterations =
        static_cast<int>(checkedInt(v, "iters", 0, 1 << 30, 0));
    job.keepStarts =
        static_cast<int>(checkedInt(v, "keep_starts", 0, 1 << 20, 0));
    job.batchWidth =
        static_cast<int>(checkedInt(v, "batch_width", 0, 1 << 12, 0));
    if (const Json *fusion = v.find("fusion")) {
        if (fusion->kind() != Json::Kind::Bool)
            CHOCOQ_FATAL("field 'fusion' must be a boolean");
        job.fusion = fusion->asBool(true);
    }
    job.deadlineMs = v.getNumber("deadline_ms", 0.0);
    if (job.deadlineMs < 0.0)
        CHOCOQ_FATAL("field 'deadline_ms' must be non-negative");
    if (const Json *trace = v.find("trace")) {
        if (trace->kind() != Json::Kind::Bool)
            CHOCOQ_FATAL("field 'trace' must be a boolean");
        job.trace = trace->asBool(false);
    }
    return job;
}

SolveJob
jobFromJsonLine(const std::string &line, const spec::SpecLimits &limits)
{
    return jobFromJson(Json::parse(line), limits);
}

std::string
distHashHex(std::uint64_t hash)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016" PRIx64, hash);
    return std::string(buf);
}

Json
jobToJsonRequest(const SolveJob &job)
{
    Json out = Json::object();
    out.set("id", job.id);
    out.set("solver", job.solver);
    // The three problem namings are mutually exclusive on the wire, so
    // emit only the one this job uses.
    if (job.problem) {
        out.set("problem", job.problem->wire);
    } else if (!job.problemRef.empty()) {
        out.set("problem_ref", job.problemRef);
    } else {
        out.set("scale", job.scale);
        out.set("case", static_cast<double>(job.caseIndex));
    }
    if (job.seed <= (1ull << 53)) {
        out.set("seed", static_cast<double>(job.seed));
    } else {
        char buf[24];
        std::snprintf(buf, sizeof buf, "%" PRIu64, job.seed);
        out.set("seed", std::string(buf));
    }
    out.set("shots", job.shots);
    if (!job.device.empty())
        out.set("device", job.device);
    out.set("layers", job.layers);
    out.set("iters", job.maxIterations);
    out.set("keep_starts", job.keepStarts);
    out.set("batch_width", job.batchWidth);
    out.set("fusion", job.fusion);
    out.set("deadline_ms", job.deadlineMs);
    out.set("trace", job.trace);
    return out;
}

Json
resultToJson(const SolveResult &r)
{
    Json out = Json::object();
    out.set("id", r.id);
    out.set("status", r.status);
    if (!r.error.empty())
        out.set("error", r.error);
    if (r.status != "ok") {
        out.set("queue_ms", r.queueMs);
        // Cancelled/expired jobs that reached a worker also report how
        // long they ran and where, so clients can see how much work a
        // late cancel or deadline actually wasted.
        if (r.worker >= 0) {
            out.set("solve_ms", r.solveMs);
            out.set("worker", r.worker);
        }
        // A traced job reports its timeline whatever its fate — the
        // spans show where a cancel or deadline actually landed.
        if (r.trace)
            out.set("trace", r.trace->toJson(/*mark_respond=*/true));
        return out;
    }
    out.set("problem", r.problem);
    if (!r.problemRef.empty())
        out.set("problem_ref", r.problemRef);
    if (r.refreshed)
        out.set("refreshed", true);
    out.set("solver", r.solver);
    out.set("best_cost", r.bestCost);
    out.set("top_state", static_cast<double>(r.topState));
    out.set("top_probability", r.topProbability);
    out.set("top_feasible", r.topFeasible);
    out.set("top_objective", r.topObjective);
    out.set("feasible_mass", r.feasibleMass);
    out.set("dist_hash", distHashHex(r.distHash));
    out.set("iterations", r.iterations);
    out.set("evaluations", r.evaluations);
    out.set("cache_hit", r.cacheHit);
    out.set("compile_s", r.compileSeconds);
    out.set("sim_s", r.simSeconds);
    out.set("classical_s", r.classicalSeconds);
    out.set("queue_ms", r.queueMs);
    out.set("solve_ms", r.solveMs);
    out.set("worker", r.worker);
    if (r.trace)
        out.set("trace", r.trace->toJson(/*mark_respond=*/true));
    return out;
}

} // namespace chocoq::service
