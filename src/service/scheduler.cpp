#include "service/scheduler.hpp"

#include <algorithm>
#include <exception>
#include <iostream>

namespace chocoq::service
{

Scheduler::Scheduler(int workers)
{
    const int n = std::max(workers, 1);
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        auto w = std::make_unique<Worker>();
        w->context.id = i;
        workers_.push_back(std::move(w));
    }
    // Threads start only after every Worker exists: workerLoop scans all
    // victims' deques.
    for (auto &w : workers_)
        w->thread = std::thread([this, worker = w.get()] {
            workerLoop(*worker);
        });
}

Scheduler::~Scheduler()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto &w : workers_)
        w->thread.join();
}

void
Scheduler::submit(Task task)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        workers_[next_]->queue.push_back(std::move(task));
        next_ = (next_ + 1) % workers_.size();
        ++inflight_;
    }
    work_cv_.notify_one();
}

void
Scheduler::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return inflight_ == 0; });
}

long long
Scheduler::nowMs() const
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
}

std::size_t
Scheduler::queuedTasks() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const auto &w : workers_)
        n += w->queue.size();
    return n;
}

std::size_t
Scheduler::inflightTasks() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return inflight_;
}

std::vector<Scheduler::WorkerSnapshot>
Scheduler::workerSnapshots() const
{
    const long long now = nowMs();
    std::vector<WorkerSnapshot> out;
    out.reserve(workers_.size());
    for (const auto &w : workers_) {
        WorkerSnapshot s;
        s.id = w->context.id;
        s.busySinceMs = w->busySinceMs.load(std::memory_order_acquire);
        s.busy = s.busySinceMs >= 0;
        s.busyMs =
            s.busy ? static_cast<double>(now - s.busySinceMs) : 0.0;
        s.tasksDone = w->tasksDone.load(std::memory_order_relaxed);
        s.tasksStolen = w->tasksStolen.load(std::memory_order_relaxed);
        out.push_back(s);
    }
    return out;
}

bool
Scheduler::takeTask(Worker &self, Task &out)
{
    // Own deque first (front: oldest of my queue), then steal from the
    // back of the next busy victim in ring order.
    if (!self.queue.empty()) {
        out = std::move(self.queue.front());
        self.queue.pop_front();
        return true;
    }
    const std::size_t n = workers_.size();
    const std::size_t me = static_cast<std::size_t>(self.context.id);
    for (std::size_t d = 1; d < n; ++d) {
        Worker &victim = *workers_[(me + d) % n];
        if (!victim.queue.empty()) {
            out = std::move(victim.queue.back());
            victim.queue.pop_back();
            self.tasksStolen.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
    return false;
}

void
Scheduler::workerLoop(Worker &self)
{
    while (true) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock, [&] {
                if (stop_)
                    return true;
                if (!self.queue.empty())
                    return true;
                for (const auto &w : workers_)
                    if (!w->queue.empty())
                        return true;
                return false;
            });
            if (!takeTask(self, task)) {
                if (stop_)
                    return;
                continue; // raced with another thief; wait again
            }
        }

        // A throwing task (SolveService catches solver errors, but user
        // result callbacks are arbitrary code) must not escape the
        // thread body — that would std::terminate the whole pool — and
        // must still count as finished or wait() would hang forever.
        self.busySinceMs.store(nowMs(), std::memory_order_release);
        try {
            task(self.context);
        } catch (const std::exception &e) {
            std::cerr << "scheduler: task on worker " << self.context.id
                      << " threw: " << e.what() << "\n";
        } catch (...) {
            std::cerr << "scheduler: task on worker " << self.context.id
                      << " threw a non-std exception\n";
        }
        self.busySinceMs.store(-1, std::memory_order_release);
        self.tasksDone.fetch_add(1, std::memory_order_relaxed);

        {
            std::lock_guard<std::mutex> lock(mu_);
            --inflight_;
            if (inflight_ == 0)
                idle_cv_.notify_all();
        }
    }
}

} // namespace chocoq::service
