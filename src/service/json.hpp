/**
 * @file
 * Minimal JSON value type, parser, and writer for the solve service.
 *
 * The service speaks JSONL (one JSON object per line) on its request and
 * result streams, and the benchmark reports are JSON documents. The repo
 * deliberately has no third-party dependencies beyond the test/bench
 * frameworks, so this is a small self-contained implementation: full
 * JSON grammar on input (objects, arrays, strings with escapes, numbers,
 * booleans, null), round-trip-exact doubles on output. Object members
 * preserve insertion order, which keeps emitted result lines stable and
 * diffable.
 */

#ifndef CHOCOQ_SERVICE_JSON_HPP
#define CHOCOQ_SERVICE_JSON_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace chocoq::service
{

/** One JSON value (tagged union over the six JSON kinds). */
class Json
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Json() = default;
    Json(bool b) : kind_(Kind::Bool), bool_(b) {}
    Json(double v) : kind_(Kind::Number), number_(v) {}
    Json(int v) : kind_(Kind::Number), number_(v) {}
    Json(std::int64_t v)
        : kind_(Kind::Number), number_(static_cast<double>(v))
    {}
    Json(const char *s) : kind_(Kind::String), string_(s) {}
    Json(std::string s) : kind_(Kind::String), string_(std::move(s)) {}

    static Json array();
    static Json object();

    /**
     * Parse one JSON document. Throws FatalError (with position info) on
     * malformed input or trailing garbage.
     */
    static Json parse(const std::string &text);

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Object member by key, or nullptr (also for non-objects). The
     * mutable overload lets post-processors edit a parsed document in
     * place (bench_micro's roofline annotation of BENCH_kernels.json). */
    const Json *find(const std::string &key) const;
    Json *find(const std::string &key);

    /** Typed accessors with defaults (wrong kind returns the default). */
    bool asBool(bool fallback = false) const;
    double asNumber(double fallback = 0.0) const;
    std::string asString(std::string fallback = "") const;

    /** Object member lookup + typed access in one step. */
    bool getBool(const std::string &key, bool fallback) const;
    double getNumber(const std::string &key, double fallback) const;
    std::string getString(const std::string &key,
                          std::string fallback) const;

    /** Append to an array value (converts a Null value to an array). */
    Json &push(Json v);
    /** Set an object member (converts a Null value to an object). */
    Json &set(const std::string &key, Json v);

    const std::vector<Json> &items() const { return array_; }
    std::vector<Json> &items() { return array_; }
    const std::vector<std::pair<std::string, Json>> &members() const
    {
        return object_;
    }

    /** Compact single-line serialization (JSONL-friendly). */
    std::string dump() const;
    /** Pretty serialization with two-space indentation. */
    std::string pretty() const;

  private:
    void write(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Json> array_;
    std::vector<std::pair<std::string, Json>> object_;
};

} // namespace chocoq::service

#endif // CHOCOQ_SERVICE_JSON_HPP
