/**
 * @file
 * Network front-end of the solve service: a long-lived TCP accept loop
 * speaking the JSONL protocol (docs/protocol.md) per connection, plus
 * the shared request-stream plumbing the stdin batch mode is built on.
 *
 * Design: two front-end modes over one worker pool and one wire
 * contract (results are bit-identical between them — the tests enforce
 * it).
 *
 * - Thread-per-connection (the default, ServerOptions::eventLoop =
 *   false): one lightweight reader thread per connection. Trivial to
 *   reason about and fine for tens of connections; connection setup
 *   serializes with the workers (thread spawn) and each idle
 *   connection costs a thread.
 * - Event loop (eventLoop = true): non-blocking sockets multiplexed by
 *   a small fixed set of poll(2) shard threads, each owning a private
 *   connection table (no cross-shard lock on the hot path). Reads are
 *   level-triggered into a per-connection LineFramer; writes that
 *   cannot complete in one send(2) are buffered and resumed when the
 *   loop reports POLLOUT, so a slow reader costs buffered bytes, never
 *   a blocked thread. This is the mode for hundreds-to-thousands of
 *   concurrent connections (docs/service.md#event-loop-front-end).
 *
 * Requests are parsed off the socket and fed into the shared
 * SolveService scheduler; each result is serialized back on the
 * connection that submitted it, in completion order, under a
 * per-connection write lock. Overload protection is explicit: when the
 * server-wide in-flight bound is reached, a request is answered
 * immediately with a "rejected" line instead of queueing without bound
 * (the client owns the retry policy; see docs/protocol.md).
 *
 * Shutdown contract (graceful drain): requestStop() — or the SIGINT /
 * SIGTERM handler in chocoq_serve that calls it — closes the listener,
 * stops reading new requests, lets every accepted job finish and its
 * result flush to its connection, then closes the connections. drain()
 * blocks until that has happened.
 */

#ifndef CHOCOQ_SERVICE_SERVER_HPP
#define CHOCOQ_SERVICE_SERVER_HPP

#include <atomic>
#include <cstddef>
#include <istream>
#include <list>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "service/service.hpp"

namespace chocoq::service
{

/** True when @p s is well-formed UTF-8 (shortest-form, no surrogates,
 * <= U+10FFFF). Request lines are rejected up front when this fails so
 * result streams never echo invalid byte sequences back out. */
bool utf8Valid(const std::string &s);

/** Limits shared by every JSONL request front-end (stdin and socket). */
struct StreamLimits
{
    /**
     * Longest accepted request line in bytes (excluding the newline).
     * A longer line is failed with a per-line error response and
     * discarded without buffering more than this many bytes of it.
     * 0 disables the check (batch fixtures only; the socket path always
     * enforces a bound).
     */
    std::size_t maxLineBytes = 1 << 20;
    /** Resource guards for inline problem specs (see spec/spec.hpp);
     * an over-cap spec fails per-line like any other invalid field. */
    spec::SpecLimits spec;
};

/** Control-request kinds carried on the same JSONL stream as jobs. */
enum class ControlKind
{
    /** Not a control request: a job (or a skip/error). */
    None,
    /** {"type":"cancel","id":...}: cancel active jobs with that id. */
    Cancel,
    /** {"type":"health"}: service liveness/queue probe. */
    Health,
    /** {"type":"stats"}: cumulative metrics-registry snapshot. */
    Stats,
};

/** What became of one raw request line. */
struct ParsedLine
{
    /** Blank line or # comment: produce no response at all. */
    bool skip = false;
    /** Parse outcome when not skipped. */
    bool ok = false;
    /** Control request ({"type":...}); job/error unused when set. */
    ControlKind control = ControlKind::None;
    /** Target job id of a Cancel control request. */
    std::string cancelId;
    /** Valid when ok. */
    SolveJob job;
    /** Error response when !ok (status "error", id "line-N"). */
    SolveResult error;
};

/**
 * Classify one raw request line: blank/comment lines are skipped,
 * oversized (@p oversized, decided by the caller's line reader),
 * non-UTF-8, malformed-JSON, and invalid-field lines (including inline
 * problem specs failing validation or the resource guards in @p limits)
 * become per-line error results named "line-@p lineno", and everything
 * else parses into a SolveJob (with an empty id defaulted to
 * "job-@p lineno"). Never throws on hostile input — that is the point.
 */
ParsedLine parseRequestLine(const std::string &line, long lineno,
                            bool oversized = false,
                            const spec::SpecLimits &limits = {});

/** Counters of one batch-stream run. */
struct StreamStats
{
    long submitted = 0;
    /** Failed results: per-line errors plus jobs whose status != ok. */
    long failed = 0;
    /** {"type":"cancel"} control requests processed. */
    long cancelRequests = 0;
    /** {"type":"health"} probes answered. */
    long healthProbes = 0;
    /** {"type":"stats"} probes answered. */
    long statsProbes = 0;
};

/** One {"type":"health"} response body (shared by both front-ends). */
Json healthToJson(const SolveService::Health &h);

/** One {"type":"stats"} response body (shared by both front-ends):
 * {"type","status"} followed by every section of
 * SolveService::metricsToJson(). */
Json statsToJson(const SolveService &service);

/**
 * Bounded line-framing state machine shared by the socket front-ends:
 * the runJsonlStream framing rules — oversized lines fail per-line and
 * are discarded through their newline without ever buffering more than
 * the bound, and a truncated final "tail" line is still a request —
 * applied to an incrementally fed byte buffer instead of an istream.
 * Single-threaded by design: each connection owns one.
 */
class LineFramer
{
  public:
    /** @p maxLineBytes 0 falls back to the 1 MiB socket default. */
    explicit LineFramer(std::size_t maxLineBytes = 1 << 20)
        : maxLine_(maxLineBytes > 0 ? maxLineBytes : (std::size_t{1} << 20))
    {}

    /** One framed line. An oversized line comes back with empty text
     * and oversized set — its bytes are already discarded. */
    struct Line
    {
        std::string text;
        long lineno = 0;
        bool oversized = false;
    };

    /** Append raw received bytes. While inside the tail of an
     * oversized line, bytes up to its newline are dropped unbuffered. */
    void feed(const char *data, std::size_t n);

    /** Pop the next complete line (or an oversized verdict the moment
     * the partial buffer exceeds the bound). False = need more bytes. */
    bool next(Line &out);

    /** The truncated final line at EOF/close, if any. Consumes it. */
    bool tail(Line &out);

    /** Inside the unterminated tail of an oversized line? */
    bool discarding() const { return discarding_; }

    /** Bytes buffered awaiting a newline. */
    std::size_t buffered() const { return buf_.size() - start_; }

  private:
    std::string buf_;
    std::size_t start_ = 0;
    std::size_t maxLine_;
    long lineno_ = 0;
    bool discarding_ = false;
};

/**
 * The stdin/file batch front-end: read JSONL requests from @p in until
 * EOF (with a bounded line reader — oversized lines fail per-line, a
 * truncated final line without a newline is still processed), submit
 * them to @p service, and stream one JSON result per line to @p out in
 * completion order. Blocks until every job has completed. Used by
 * `chocoq_serve` without --listen and exercised directly by the
 * hostile-input tests.
 */
StreamStats runJsonlStream(std::istream &in, std::ostream &out,
                           SolveService &service,
                           const StreamLimits &limits = {});

/** Server configuration (see docs/protocol.md for the wire contract). */
struct ServerOptions
{
    /** TCP port to listen on; 0 picks an ephemeral port (see port()). */
    int port = 0;
    /** Bind address. Loopback by default: chocoq_serve is an operator
     * tool, exposing it beyond the host is an explicit decision. */
    std::string bindAddress = "127.0.0.1";
    /** listen(2) backlog. */
    int backlog = 16;
    /**
     * Server-wide bound on jobs accepted but not yet completed. A
     * request arriving at the bound is answered immediately with a
     * status "rejected" line (never silently dropped, never queued
     * without bound). 0 = unbounded.
     */
    int maxInflight = 256;
    /**
     * Bounded wait-queue for over-capacity requests (--queue-wait): a
     * request arriving at the maxInflight bound is held on its reader
     * thread for up to this long — or until its own deadline_ms would
     * expire in queue, whichever is sooner — before the "rejected"
     * answer. Holding on the reader thread is deliberate: the
     * connection stops reading further requests while one waits, so
     * TCP backpressure propagates to the sender and at most one
     * request per connection is in limbo. Time spent waiting counts
     * against the job's deadline_ms. 0 = reject immediately (the
     * pre-existing behavior).
     */
    int queueWaitMs = 0;
    /** Resource guards for inline problem specs on this server. */
    spec::SpecLimits specLimits;
    /**
     * Close a connection after this long with no bytes received and no
     * job of its own in flight. 0 = never. Results of in-flight jobs
     * always flush before an idle close.
     */
    int idleTimeoutMs = 0;
    /**
     * Requests accepted per connection before the server answers with a
     * "rejected" line and closes it (after flushing in-flight results).
     * 0 = unlimited.
     */
    int maxRequestsPerConn = 0;
    /**
     * Concurrently open connections (one reader thread each). A
     * connection accepted past the bound is answered with a single
     * "rejected" line and closed immediately. 0 = unbounded.
     */
    int maxConnections = 64;
    /** Longest accepted request line on a connection, in bytes
     * (0 falls back to the 1 MiB default — the socket path always
     * enforces a bound). */
    std::size_t maxLineBytes = 1 << 20;
    /**
     * Kernel send timeout per result write. A client that stops
     * reading fills its socket buffer; without a bound the blocked
     * write would pin a solver worker (and wedge drain) forever.
     * After the timeout the connection is marked broken and its
     * remaining results are dropped. 0 = block forever.
     */
    int sendTimeoutMs = 10000;
    /** Poll granularity of the accept/read loops; bounds how stale the
     * stop flag and idle clocks can get. */
    int pollTickMs = 20;
    /**
     * Front-end mode: false = one reader thread per connection (the
     * original design, simplest to debug), true = the poll(2) event
     * loop (sharded connection tables, non-blocking reads/writes) for
     * large connection counts. Identical wire behavior either way.
     */
    bool eventLoop = false;
    /** Event-loop shard threads (connections are distributed
     * round-robin at accept). Clamped to >= 1. Only read when
     * eventLoop is set. */
    int eventLoopShards = 2;
    /**
     * Event-loop write backpressure: once a connection's buffered
     * unsent output exceeds this many bytes, the loop stops reading
     * its requests until the buffer drains below the bound (TCP
     * backpressure then reaches the sender). Results of already
     * accepted jobs still append past the bound — the true cap is
     * this plus maxInflight result lines — so a slow reader can never
     * deadlock its own completions. 0 = never pause reads.
     */
    std::size_t maxWriteBufferBytes = std::size_t{4} << 20;
    /**
     * SO_SNDBUF override on accepted connections, in bytes (0 = OS
     * default). Shrinking it makes write backpressure trip early —
     * used by the torture tests; rarely useful in production.
     */
    int sendBufferBytes = 0;
    /**
     * Optional fault injector shared with the service (non-owning).
     * Wire-level sites: conn_reset (an accepted connection is RST
     * before serving) and read_delay (a pause after each socket read).
     * nullptr = no injection.
     */
    FaultInjector *fault = nullptr;
};

/** Monotonic counters over the server's lifetime. */
struct ServerStats
{
    long connectionsAccepted = 0;
    long connectionsOpen = 0;
    /** Requests accepted into the scheduler (not skips or rejects). */
    long requestsAccepted = 0;
    /** Accepted jobs that completed with a non-ok status
     * (error/expired), mirroring batch mode's failed count. */
    long jobsFailed = 0;
    /** Results written back (includes per-line error responses). */
    long resultsWritten = 0;
    /** Requests answered with status "rejected" (overload or
     * per-connection limit). */
    long rejected = 0;
    /** Over-capacity requests that waited in the bounded queue
     * (--queue-wait) and were then accepted when a slot freed. */
    long queueWaited = 0;
    /** Connections refused at the maxConnections bound. */
    long connectionsRejected = 0;
    /** Per-line error responses (malformed input). */
    long lineErrors = 0;
    long idleCloses = 0;
    /** {"type":"cancel"} requests processed. */
    long cancelRequests = 0;
    /** {"type":"health"} probes answered. */
    long healthProbes = 0;
    /** {"type":"stats"} probes answered. */
    long statsProbes = 0;
    /** Jobs that finished "cancelled" (explicit cancel or disconnect). */
    long jobsCancelled = 0;
    /** Connections dropped mid-job, cancelling their in-flight work.
     * Counted at most once per connection, whichever of the read-error
     * or failed-write paths observes the drop first. */
    long disconnectCancels = 0;
    /** Event loop only: result writes send(2) could not complete in
     * one call — the remainder was buffered and resumed via POLLOUT. */
    long partialWrites = 0;
    /** Accepted connections reset by fault injection (conn_reset). */
    long faultConnResets = 0;
};

/**
 * The TCP front-end. Owns the listening socket, the accept thread, and
 * either one thread per live connection or the event-loop shard
 * threads (ServerOptions::eventLoop); jobs run on the SolveService
 * passed in (shared compile cache and worker pool across connections).
 */
class Server
{
  public:
    /** @p service must outlive the server. */
    Server(SolveService &service, ServerOptions opts = {});

    /** Drains (stop + join) if still running. */
    ~Server();

    /** Bind, listen, and start accepting. Throws FatalError when the
     * port cannot be bound. */
    void start();

    /** Port actually bound (resolves port 0 to the ephemeral choice). */
    int port() const { return port_; }

    /**
     * Flip the drain flag: stop accepting connections and reading new
     * requests. Safe to call from a signal handler's forwarding thread
     * or any other thread; returns immediately. drain() completes the
     * shutdown.
     */
    void requestStop() { stop_.store(true, std::memory_order_relaxed); }

    /**
     * Graceful drain: requestStop(), then wait for every accepted job
     * to finish and its result to flush, close all connections and the
     * listener, and join the threads. Idempotent.
     */
    void drain();

    ServerStats stats() const;

  private:
    struct Connection;
    struct EventShard;

    void acceptLoop();
    void serveConnection(const std::shared_ptr<Connection> &conn);
    /** Parse one complete request line and either submit it, answer
     * with a per-line error, or answer with a backpressure rejection
     * (waiting out the bounded queue first when --queue-wait is set).
     * Returns true only when a job was accepted into the scheduler
     * (the per-connection request budget counts exactly those). */
    bool handleLine(const std::shared_ptr<Connection> &conn,
                    const std::string &line, long lineno);
    /** Answer a cancel/health control request on this connection. */
    void handleControl(const std::shared_ptr<Connection> &conn,
                       const ParsedLine &parsed);
    /** Cancel every job this connection still has in flight (the
     * client dropped: nobody is left to read the results). Counts
     * disconnectCancels at most once per connection. */
    void cancelConnectionJobs(const std::shared_ptr<Connection> &conn);
    /** One non-blocking attempt at an in-flight slot. */
    bool tryReserveInflight();
    /** Reserve an in-flight slot, waiting up to the queue-wait budget
     * (bounded by @p job's remaining deadline, which is decremented by
     * the time spent waiting). Thread-per-connection mode only — the
     * event loop parks instead of blocking. False = caller must
     * reject. */
    bool reserveInflightSlot(SolveJob &job);
    /** Counters + cancellation token + scheduler submit for a job that
     * already holds an in-flight slot (both front-ends). */
    void submitAccepted(const std::shared_ptr<Connection> &conn,
                        SolveJob &&job);
    /** Answer a status "rejected" over-capacity line for @p id. */
    void rejectCapacity(const std::shared_ptr<Connection> &conn,
                        const std::string &id);
    /** Answer a per-connection request-limit rejection, echoing the
     * request id when @p line parses (load shedding: id only, never
     * full validation). */
    void rejectAtLimit(const std::shared_ptr<Connection> &conn,
                       const std::string &line, long lineno);
    void writeLine(const std::shared_ptr<Connection> &conn,
                   const std::string &line);

    // Event-loop front-end (all run on the owning shard's thread
    // unless noted; see the connection state machine in
    // docs/service.md#event-loop-front-end).
    void eventShardLoop(EventShard &sh);
    /** Frame and dispatch every complete buffered line; stops early
     * when the connection parks on a full server. */
    void eventProcessBuffer(const std::shared_ptr<Connection> &conn);
    /** Classify and dispatch one framed line (submit / control /
     * per-line error / park / reject). */
    void eventDispatchLine(const std::shared_ptr<Connection> &conn,
                           LineFramer::Line &&ln);
    /** Answer the truncated final line at EOF / idle close. */
    void eventAnswerTail(const std::shared_ptr<Connection> &conn);
    /** One recv(2) worth of progress on a readable connection. */
    void eventHandleReadable(EventShard &sh,
                             const std::shared_ptr<Connection> &conn);
    /** Timers + state transitions: parked-job retry, idle timeout,
     * write-stall detection, finish (half-close) and close deadlines. */
    void eventHousekeep(EventShard &sh,
                        const std::shared_ptr<Connection> &conn,
                        bool draining);
    /** Retry / expire a parked over-capacity request. */
    void eventResolveParked(const std::shared_ptr<Connection> &conn,
                            bool draining);
    /** Close the fd and undo the open-connection accounting. */
    void eventFinalize(const std::shared_ptr<Connection> &conn);
    /** Flush buffered output; writeMu must be held. False = peer gone
     * (the connection was marked broken). */
    bool flushOutputLocked(const std::shared_ptr<Connection> &conn);
    /** Mark broken + cancel in-flight jobs; writeMu must be held. */
    void markBrokenLocked(const std::shared_ptr<Connection> &conn);
    /** Interrupt a shard's poll(2) (self-pipe). Any thread. */
    void wakeShard(EventShard &sh);

    SolveService &service_;
    ServerOptions opts_;
    /** Connection-setup and first-response latency, recorded into the
     * service's metrics registry so the stats probe and bench_service's
     * socket suite read one source of truth. accept_ms is accept() to
     * handler start (server-controlled); idle_before_first_request_ms
     * is accept() to the connection's first received byte — the
     * client's connect-to-send turnaround, which open-loop harnesses
     * stretch arbitrarily by holding idle connections; first_byte_ms is
     * first received request byte to the first response byte written,
     * the server-side latency that used to be polluted by that idle
     * time when it was measured from accept(). */
    obs::Histogram &acceptMs_;
    obs::Histogram &idleBeforeFirstRequestMs_;
    obs::Histogram &firstByteMs_;
    /** Live connection count as a gauge (mirrors connectionsOpen_). */
    obs::Gauge &connOpenGauge_;
    int listenFd_ = -1;
    int port_ = 0;
    std::atomic<bool> stop_{false};
    bool started_ = false;
    bool drained_ = false;
    /** Jobs accepted into the scheduler, not yet completed. */
    std::atomic<long> inflight_{0};

    std::thread acceptThread_;
    /** Event-loop shard threads (empty in thread-per-connection mode;
     * sized and started by start(), joined by drain()). */
    std::vector<std::unique_ptr<EventShard>> shards_;
    std::mutex mu_; // guards connThreads_ and finishedConns_
    /** Live + not-yet-reaped connection reader threads (std::list:
     * stable iterators let a thread mark itself finished). */
    std::list<std::thread> connThreads_;
    /** Threads that have run to completion, ready to join: the accept
     * loop reaps these every tick so a long-lived server does not
     * accumulate one zombie thread per connection ever served. */
    std::vector<std::list<std::thread>::iterator> finishedConns_;

    void reapFinishedConnections();

    // Stats counters (relaxed: observability only).
    std::atomic<long> connectionsAccepted_{0};
    std::atomic<long> connectionsOpen_{0};
    std::atomic<long> requestsAccepted_{0};
    std::atomic<long> jobsFailed_{0};
    std::atomic<long> resultsWritten_{0};
    std::atomic<long> rejected_{0};
    std::atomic<long> queueWaited_{0};
    std::atomic<long> connectionsRejected_{0};
    std::atomic<long> lineErrors_{0};
    std::atomic<long> idleCloses_{0};
    std::atomic<long> cancelRequests_{0};
    std::atomic<long> healthProbes_{0};
    std::atomic<long> statsProbes_{0};
    std::atomic<long> jobsCancelled_{0};
    std::atomic<long> disconnectCancels_{0};
    std::atomic<long> faultConnResets_{0};
    std::atomic<long> partialWrites_{0};
};

/**
 * Minimal blocking JSONL client over loopback, for the socket tests,
 * bench_service's socket-mode measurement, and ad-hoc tooling. Not part
 * of the serving data path.
 */
class JsonlClient
{
  public:
    /** Connect to 127.0.0.1:@p port. Throws FatalError on failure. */
    explicit JsonlClient(int port);
    ~JsonlClient();

    JsonlClient(const JsonlClient &) = delete;
    JsonlClient &operator=(const JsonlClient &) = delete;

    /** Send @p line plus a trailing newline. */
    void sendLine(const std::string &line);
    /** Send exact bytes (hostile-input tests build partial lines). */
    void sendRaw(const std::string &bytes);
    /** Half-close the write side: the server sees EOF and finishes the
     * connection after flushing in-flight results. */
    void shutdownWrite();
    /**
     * Abortive close: SO_LINGER{1,0} + close sends an RST instead of a
     * FIN, modeling a client that vanished mid-job (crash, network
     * partition). The server detects the reset and cancels this
     * connection's in-flight jobs; a plain close after half-close
     * would be indistinguishable from a patient client.
     */
    void abortConnection();

    /**
     * Read one newline-terminated line (the newline is stripped).
     * Returns false on EOF or after @p timeout_ms without a complete
     * line.
     */
    bool readLine(std::string &out, int timeout_ms = 10000);

    /** Raw socket fd, for tests that need pathological I/O patterns
     * (byte-at-a-time reads, tiny SO_RCVBUF) the line API hides. */
    int fd() const { return fd_; }

  private:
    int fd_ = -1;
    std::string buf_;
};

} // namespace chocoq::service

#endif // CHOCOQ_SERVICE_SERVER_HPP
