/**
 * @file
 * Network front-end of the solve service: a long-lived TCP accept loop
 * speaking the JSONL protocol (docs/protocol.md) per connection, plus
 * the shared request-stream plumbing the stdin batch mode is built on.
 *
 * Design: one lightweight thread per connection (job granularity is
 * milliseconds-to-seconds, so connection counts are small compared to
 * job counts and the thread-per-connection model keeps the read loop,
 * idle-timeout bookkeeping, and per-connection write ordering trivial).
 * Requests are parsed off the socket and fed into the shared
 * SolveService scheduler; each result is serialized back on the
 * connection that submitted it, in completion order, under a
 * per-connection write lock. Overload protection is explicit: when the
 * server-wide in-flight bound is reached, a request is answered
 * immediately with a "rejected" line instead of queueing without bound
 * (the client owns the retry policy; see docs/protocol.md).
 *
 * Shutdown contract (graceful drain): requestStop() — or the SIGINT /
 * SIGTERM handler in chocoq_serve that calls it — closes the listener,
 * stops reading new requests, lets every accepted job finish and its
 * result flush to its connection, then closes the connections. drain()
 * blocks until that has happened.
 */

#ifndef CHOCOQ_SERVICE_SERVER_HPP
#define CHOCOQ_SERVICE_SERVER_HPP

#include <atomic>
#include <cstddef>
#include <istream>
#include <list>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "service/service.hpp"

namespace chocoq::service
{

/** True when @p s is well-formed UTF-8 (shortest-form, no surrogates,
 * <= U+10FFFF). Request lines are rejected up front when this fails so
 * result streams never echo invalid byte sequences back out. */
bool utf8Valid(const std::string &s);

/** Limits shared by every JSONL request front-end (stdin and socket). */
struct StreamLimits
{
    /**
     * Longest accepted request line in bytes (excluding the newline).
     * A longer line is failed with a per-line error response and
     * discarded without buffering more than this many bytes of it.
     * 0 disables the check (batch fixtures only; the socket path always
     * enforces a bound).
     */
    std::size_t maxLineBytes = 1 << 20;
    /** Resource guards for inline problem specs (see spec/spec.hpp);
     * an over-cap spec fails per-line like any other invalid field. */
    spec::SpecLimits spec;
};

/** Control-request kinds carried on the same JSONL stream as jobs. */
enum class ControlKind
{
    /** Not a control request: a job (or a skip/error). */
    None,
    /** {"type":"cancel","id":...}: cancel active jobs with that id. */
    Cancel,
    /** {"type":"health"}: service liveness/queue probe. */
    Health,
    /** {"type":"stats"}: cumulative metrics-registry snapshot. */
    Stats,
};

/** What became of one raw request line. */
struct ParsedLine
{
    /** Blank line or # comment: produce no response at all. */
    bool skip = false;
    /** Parse outcome when not skipped. */
    bool ok = false;
    /** Control request ({"type":...}); job/error unused when set. */
    ControlKind control = ControlKind::None;
    /** Target job id of a Cancel control request. */
    std::string cancelId;
    /** Valid when ok. */
    SolveJob job;
    /** Error response when !ok (status "error", id "line-N"). */
    SolveResult error;
};

/**
 * Classify one raw request line: blank/comment lines are skipped,
 * oversized (@p oversized, decided by the caller's line reader),
 * non-UTF-8, malformed-JSON, and invalid-field lines (including inline
 * problem specs failing validation or the resource guards in @p limits)
 * become per-line error results named "line-@p lineno", and everything
 * else parses into a SolveJob (with an empty id defaulted to
 * "job-@p lineno"). Never throws on hostile input — that is the point.
 */
ParsedLine parseRequestLine(const std::string &line, long lineno,
                            bool oversized = false,
                            const spec::SpecLimits &limits = {});

/** Counters of one batch-stream run. */
struct StreamStats
{
    long submitted = 0;
    /** Failed results: per-line errors plus jobs whose status != ok. */
    long failed = 0;
    /** {"type":"cancel"} control requests processed. */
    long cancelRequests = 0;
    /** {"type":"health"} probes answered. */
    long healthProbes = 0;
    /** {"type":"stats"} probes answered. */
    long statsProbes = 0;
};

/** One {"type":"health"} response body (shared by both front-ends). */
Json healthToJson(const SolveService::Health &h);

/** One {"type":"stats"} response body (shared by both front-ends):
 * {"type","status"} followed by every section of
 * SolveService::metricsToJson(). */
Json statsToJson(const SolveService &service);

/**
 * The stdin/file batch front-end: read JSONL requests from @p in until
 * EOF (with a bounded line reader — oversized lines fail per-line, a
 * truncated final line without a newline is still processed), submit
 * them to @p service, and stream one JSON result per line to @p out in
 * completion order. Blocks until every job has completed. Used by
 * `chocoq_serve` without --listen and exercised directly by the
 * hostile-input tests.
 */
StreamStats runJsonlStream(std::istream &in, std::ostream &out,
                           SolveService &service,
                           const StreamLimits &limits = {});

/** Server configuration (see docs/protocol.md for the wire contract). */
struct ServerOptions
{
    /** TCP port to listen on; 0 picks an ephemeral port (see port()). */
    int port = 0;
    /** Bind address. Loopback by default: chocoq_serve is an operator
     * tool, exposing it beyond the host is an explicit decision. */
    std::string bindAddress = "127.0.0.1";
    /** listen(2) backlog. */
    int backlog = 16;
    /**
     * Server-wide bound on jobs accepted but not yet completed. A
     * request arriving at the bound is answered immediately with a
     * status "rejected" line (never silently dropped, never queued
     * without bound). 0 = unbounded.
     */
    int maxInflight = 256;
    /**
     * Bounded wait-queue for over-capacity requests (--queue-wait): a
     * request arriving at the maxInflight bound is held on its reader
     * thread for up to this long — or until its own deadline_ms would
     * expire in queue, whichever is sooner — before the "rejected"
     * answer. Holding on the reader thread is deliberate: the
     * connection stops reading further requests while one waits, so
     * TCP backpressure propagates to the sender and at most one
     * request per connection is in limbo. Time spent waiting counts
     * against the job's deadline_ms. 0 = reject immediately (the
     * pre-existing behavior).
     */
    int queueWaitMs = 0;
    /** Resource guards for inline problem specs on this server. */
    spec::SpecLimits specLimits;
    /**
     * Close a connection after this long with no bytes received and no
     * job of its own in flight. 0 = never. Results of in-flight jobs
     * always flush before an idle close.
     */
    int idleTimeoutMs = 0;
    /**
     * Requests accepted per connection before the server answers with a
     * "rejected" line and closes it (after flushing in-flight results).
     * 0 = unlimited.
     */
    int maxRequestsPerConn = 0;
    /**
     * Concurrently open connections (one reader thread each). A
     * connection accepted past the bound is answered with a single
     * "rejected" line and closed immediately. 0 = unbounded.
     */
    int maxConnections = 64;
    /** Longest accepted request line on a connection, in bytes
     * (0 falls back to the 1 MiB default — the socket path always
     * enforces a bound). */
    std::size_t maxLineBytes = 1 << 20;
    /**
     * Kernel send timeout per result write. A client that stops
     * reading fills its socket buffer; without a bound the blocked
     * write would pin a solver worker (and wedge drain) forever.
     * After the timeout the connection is marked broken and its
     * remaining results are dropped. 0 = block forever.
     */
    int sendTimeoutMs = 10000;
    /** Poll granularity of the accept/read loops; bounds how stale the
     * stop flag and idle clocks can get. */
    int pollTickMs = 20;
    /**
     * Optional fault injector shared with the service (non-owning).
     * Wire-level sites: conn_reset (an accepted connection is RST
     * before serving) and read_delay (a pause after each socket read).
     * nullptr = no injection.
     */
    FaultInjector *fault = nullptr;
};

/** Monotonic counters over the server's lifetime. */
struct ServerStats
{
    long connectionsAccepted = 0;
    long connectionsOpen = 0;
    /** Requests accepted into the scheduler (not skips or rejects). */
    long requestsAccepted = 0;
    /** Accepted jobs that completed with a non-ok status
     * (error/expired), mirroring batch mode's failed count. */
    long jobsFailed = 0;
    /** Results written back (includes per-line error responses). */
    long resultsWritten = 0;
    /** Requests answered with status "rejected" (overload or
     * per-connection limit). */
    long rejected = 0;
    /** Over-capacity requests that waited in the bounded queue
     * (--queue-wait) and were then accepted when a slot freed. */
    long queueWaited = 0;
    /** Connections refused at the maxConnections bound. */
    long connectionsRejected = 0;
    /** Per-line error responses (malformed input). */
    long lineErrors = 0;
    long idleCloses = 0;
    /** {"type":"cancel"} requests processed. */
    long cancelRequests = 0;
    /** {"type":"health"} probes answered. */
    long healthProbes = 0;
    /** {"type":"stats"} probes answered. */
    long statsProbes = 0;
    /** Jobs that finished "cancelled" (explicit cancel or disconnect). */
    long jobsCancelled = 0;
    /** Connections dropped mid-job, cancelling their in-flight work. */
    long disconnectCancels = 0;
    /** Accepted connections reset by fault injection (conn_reset). */
    long faultConnResets = 0;
};

/**
 * The TCP front-end. Owns the listening socket, the accept thread, and
 * one thread per live connection; jobs run on the SolveService passed
 * in (shared compile cache and worker pool across connections).
 */
class Server
{
  public:
    /** @p service must outlive the server. */
    Server(SolveService &service, ServerOptions opts = {});

    /** Drains (stop + join) if still running. */
    ~Server();

    /** Bind, listen, and start accepting. Throws FatalError when the
     * port cannot be bound. */
    void start();

    /** Port actually bound (resolves port 0 to the ephemeral choice). */
    int port() const { return port_; }

    /**
     * Flip the drain flag: stop accepting connections and reading new
     * requests. Safe to call from a signal handler's forwarding thread
     * or any other thread; returns immediately. drain() completes the
     * shutdown.
     */
    void requestStop() { stop_.store(true, std::memory_order_relaxed); }

    /**
     * Graceful drain: requestStop(), then wait for every accepted job
     * to finish and its result to flush, close all connections and the
     * listener, and join the threads. Idempotent.
     */
    void drain();

    ServerStats stats() const;

  private:
    struct Connection;

    void acceptLoop();
    void serveConnection(const std::shared_ptr<Connection> &conn);
    /** Parse one complete request line and either submit it, answer
     * with a per-line error, or answer with a backpressure rejection
     * (waiting out the bounded queue first when --queue-wait is set).
     * Returns true only when a job was accepted into the scheduler
     * (the per-connection request budget counts exactly those). */
    bool handleLine(const std::shared_ptr<Connection> &conn,
                    const std::string &line, long lineno);
    /** Answer a cancel/health control request on this connection. */
    void handleControl(const std::shared_ptr<Connection> &conn,
                       const ParsedLine &parsed);
    /** Cancel every job this connection still has in flight (the
     * client dropped: nobody is left to read the results). */
    void cancelConnectionJobs(const std::shared_ptr<Connection> &conn);
    /** Reserve an in-flight slot, waiting up to the queue-wait budget
     * (bounded by @p job's remaining deadline, which is decremented by
     * the time spent waiting). False = caller must reject. */
    bool reserveInflightSlot(SolveJob &job);
    void writeLine(const std::shared_ptr<Connection> &conn,
                   const std::string &line);

    SolveService &service_;
    ServerOptions opts_;
    /** Connection-setup latency, split at the point the ROADMAP item
     * asked for: accept() to handler-thread start, and accept() to the
     * connection's first received byte. Recorded into the service's
     * metrics registry so the stats probe and bench_service's socket
     * suite read one source of truth. */
    obs::Histogram &acceptMs_;
    obs::Histogram &firstByteMs_;
    /** Live connection count as a gauge (mirrors connectionsOpen_). */
    obs::Gauge &connOpenGauge_;
    int listenFd_ = -1;
    int port_ = 0;
    std::atomic<bool> stop_{false};
    bool started_ = false;
    bool drained_ = false;
    /** Jobs accepted into the scheduler, not yet completed. */
    std::atomic<long> inflight_{0};

    std::thread acceptThread_;
    std::mutex mu_; // guards connThreads_ and finishedConns_
    /** Live + not-yet-reaped connection reader threads (std::list:
     * stable iterators let a thread mark itself finished). */
    std::list<std::thread> connThreads_;
    /** Threads that have run to completion, ready to join: the accept
     * loop reaps these every tick so a long-lived server does not
     * accumulate one zombie thread per connection ever served. */
    std::vector<std::list<std::thread>::iterator> finishedConns_;

    void reapFinishedConnections();

    // Stats counters (relaxed: observability only).
    std::atomic<long> connectionsAccepted_{0};
    std::atomic<long> connectionsOpen_{0};
    std::atomic<long> requestsAccepted_{0};
    std::atomic<long> jobsFailed_{0};
    std::atomic<long> resultsWritten_{0};
    std::atomic<long> rejected_{0};
    std::atomic<long> queueWaited_{0};
    std::atomic<long> connectionsRejected_{0};
    std::atomic<long> lineErrors_{0};
    std::atomic<long> idleCloses_{0};
    std::atomic<long> cancelRequests_{0};
    std::atomic<long> healthProbes_{0};
    std::atomic<long> statsProbes_{0};
    std::atomic<long> jobsCancelled_{0};
    std::atomic<long> disconnectCancels_{0};
    std::atomic<long> faultConnResets_{0};
};

/**
 * Minimal blocking JSONL client over loopback, for the socket tests,
 * bench_service's socket-mode measurement, and ad-hoc tooling. Not part
 * of the serving data path.
 */
class JsonlClient
{
  public:
    /** Connect to 127.0.0.1:@p port. Throws FatalError on failure. */
    explicit JsonlClient(int port);
    ~JsonlClient();

    JsonlClient(const JsonlClient &) = delete;
    JsonlClient &operator=(const JsonlClient &) = delete;

    /** Send @p line plus a trailing newline. */
    void sendLine(const std::string &line);
    /** Send exact bytes (hostile-input tests build partial lines). */
    void sendRaw(const std::string &bytes);
    /** Half-close the write side: the server sees EOF and finishes the
     * connection after flushing in-flight results. */
    void shutdownWrite();
    /**
     * Abortive close: SO_LINGER{1,0} + close sends an RST instead of a
     * FIN, modeling a client that vanished mid-job (crash, network
     * partition). The server detects the reset and cancels this
     * connection's in-flight jobs; a plain close after half-close
     * would be indistinguishable from a patient client.
     */
    void abortConnection();

    /**
     * Read one newline-terminated line (the newline is stripped).
     * Returns false on EOF or after @p timeout_ms without a complete
     * line.
     */
    bool readLine(std::string &out, int timeout_ms = 10000);

  private:
    int fd_ = -1;
    std::string buf_;
};

} // namespace chocoq::service

#endif // CHOCOQ_SERVICE_SERVER_HPP
