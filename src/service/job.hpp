/**
 * @file
 * Job model of the concurrent solve service.
 *
 * A SolveJob names one problem instance from the benchmark registry
 * (scale + case index — the generator regenerates it on demand, so job
 * streams need no materialized problem objects), one solver design, and
 * the per-job execution knobs: RNG seed, shots, device noise, iteration
 * budget, queueing deadline. A SolveResult carries the answer plus the
 * observability fields the throughput benchmarks aggregate (latency
 * split, cache-hit flag, worker id) and a bitwise distribution hash used
 * by the determinism tests: identical (job, seed) pairs must produce
 * identical hashes at any worker count.
 */

#ifndef CHOCOQ_SERVICE_JOB_HPP
#define CHOCOQ_SERVICE_JOB_HPP

#include <cstdint>
#include <memory>
#include <string>

#include "common/bitops.hpp"
#include "service/json.hpp"
#include "spec/spec.hpp"

namespace chocoq::obs
{
class Trace;
} // namespace chocoq::obs

namespace chocoq::service
{

/** One solve request. */
struct SolveJob
{
    /** Caller-chosen identifier echoed into the result. */
    std::string id;
    /** Solver design: choco-q (default), penalty, cyclic, or hea. */
    std::string solver = "choco-q";
    /** Benchmark scale name ("F1" .. "K4"). */
    std::string scale = "F1";
    /** Seeded case index within the scale. */
    unsigned caseIndex = 0;
    /**
     * Inline problem definition (wire key "problem"): a user-supplied
     * constrained binary program parsed and canonicalized by src/spec.
     * Mutually exclusive with scale/case and problem_ref. Shared, not
     * copied: the spec is immutable once parsed.
     */
    std::shared_ptr<const spec::ProblemSpec> problem;
    /**
     * Reference to a previously submitted inline problem by canonical
     * content hash (wire key "problem_ref", 16 hex chars): reuses the
     * registered model without resending the matrix. Empty = unused.
     */
    std::string problemRef;
    /** Master seed for every stochastic component of this job. */
    std::uint64_t seed = 7;
    /** Measurement shots for the final distribution; 0 = exact. */
    int shots = 0;
    /** Device model for noisy sampling ("", "fez", "osaka", "sherbrooke"). */
    std::string device;
    /** Ansatz layers; 0 keeps the solver default. */
    int layers = 0;
    /** Optimizer iteration budget; 0 keeps the solver default. */
    int maxIterations = 0;
    /**
     * Batched multi-start: number of starts that survive the screening
     * sweep and receive a full optimizer run. 0 optimizes every start.
     */
    int keepStarts = 0;
    /**
     * SoA batch width (EngineOptions::batchWidth): lanes per batched
     * evaluation sweep. 0 defers to the service default (auto). Results
     * are bit-identical across widths (tested property); the value is
     * hashed into the compile-cache key conservatively.
     */
    int batchWidth = 0;
    /**
     * Gate fusion (EngineOptions::fusion): fused layer application in
     * the variational loop. On by default; the off switch keeps the
     * cross-checked per-term kernels reachable from the wire. Part of
     * the compile-cache key (fused artifacts carry the fusion plan).
     */
    bool fusion = true;
    /**
     * End-to-end deadline in milliseconds from submission. The clock
     * keeps counting during execution: a job still queued past its
     * deadline fails as "expired" without running, and a job whose
     * deadline elapses mid-execution is cooperatively cancelled at the
     * next engine checkpoint and fails as "expired" too. 0 = no
     * deadline.
     */
    double deadlineMs = 0.0;
    /**
     * Request a span timeline for this job (wire key "trace"). The
     * result line then carries a "trace" object; see
     * docs/observability.md. Tracing never changes the answer: solver
     * outputs are bit-identical with trace on or off (tested property).
     */
    bool trace = false;
    /**
     * Front-end bookkeeping, not a wire field: milliseconds the
     * front-end spent parsing this request line, so a traced job's
     * timeline starts at parse begin ("parse" is span zero). Library
     * callers that build SolveJobs directly leave it 0 and the timeline
     * starts at submit.
     */
    double parseMs = 0.0;
};

/** One solve answer. */
struct SolveResult
{
    std::string id;
    /** "ok", "expired", "cancelled", "error", or — socket front-end
     * only — "rejected" (backpressure; see error for the message and
     * docs/protocol.md for the contract). "cancelled" covers explicit
     * cancel requests and client disconnects; deadline expiry always
     * reports "expired", queued or executing. */
    std::string status = "ok";
    std::string error;
    /** Resolved problem name (scale:config#index, or inline:<hash>). */
    std::string problem;
    /**
     * Canonical content hash of the problem this job ran, echoed for
     * inline and problem_ref jobs (empty for registry cases): clients
     * reuse it as the next request's "problem_ref".
     */
    std::string problemRef;
    std::string solver;

    /** Best variational cost (minimization form). */
    double bestCost = 0.0;
    /** Most probable output state and its properties. */
    Basis topState = 0;
    double topProbability = 0.0;
    bool topFeasible = false;
    /** Objective value (problem sense) of the top state. */
    double topObjective = 0.0;
    /** Probability mass on feasible states. */
    double feasibleMass = 0.0;
    /** FNV-1a over the exact output distribution (bitwise). */
    std::uint64_t distHash = 0;
    /**
     * Inline submissions only: this job re-registered a hash that had
     * been evicted from the problem registry, so previously issued
     * problem_refs to it are valid again (wire key "refreshed",
     * emitted only when true; pairs with the "ref_expired" error).
     */
    bool refreshed = false;

    int iterations = 0;
    int evaluations = 0;
    /** Whether compilation artifacts came from the cache. */
    bool cacheHit = false;
    double compileSeconds = 0.0;
    double simSeconds = 0.0;
    double classicalSeconds = 0.0;
    /** Time between submission and execution start. */
    double queueMs = 0.0;
    /** Execution wall time on the worker. */
    double solveMs = 0.0;
    /** Worker that ran the job. */
    int worker = -1;
    /** Span timeline, present only when the job asked for "trace":true
     * (null otherwise — tracing is zero-cost when unrequested). */
    std::shared_ptr<const obs::Trace> trace;
};

/**
 * Parse one JSONL request line. Recognized keys: id, solver, scale,
 * case, problem, problem_ref, seed, shots, device, layers, iters,
 * keep_starts, batch_width, fusion, deadline_ms.
 * Missing keys take the SolveJob defaults. Throws FatalError on
 * malformed JSON, an unknown scale/solver name, a problem spec that
 * fails validation or a resource guard in @p limits, or a request
 * mixing problem/problem_ref/scale.
 */
SolveJob jobFromJson(const Json &v, const spec::SpecLimits &limits = {});

/** Convenience: parse a raw JSONL line. */
SolveJob jobFromJsonLine(const std::string &line,
                         const spec::SpecLimits &limits = {});

/** Serialize a result to one JSONL object. */
Json resultToJson(const SolveResult &r);

/** The wire encoding of dist_hash: 16 lowercase hex chars (JSON
 * numbers are doubles and would round a 64-bit hash). One definition,
 * shared by the serializer and every bitwise cross-check. */
std::string distHashHex(std::uint64_t hash);

/**
 * Serialize a job to one JSONL request object (the inverse of
 * jobFromJson: every field is emitted, seeds above 2^53 as decimal
 * strings, so the request round-trips exactly). Used by the socket
 * tests and bench_service's socket probe — one serializer, so both
 * exercise the same wire fields.
 */
Json jobToJsonRequest(const SolveJob &job);

} // namespace chocoq::service

#endif // CHOCOQ_SERVICE_JOB_HPP
