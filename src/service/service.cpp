#include "service/service.hpp"

#include <chrono>
#include <cstring>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "device/device.hpp"
#include "problems/suite.hpp"
#include "solvers/cyclic.hpp"
#include "solvers/hea.hpp"
#include "solvers/penalty.hpp"

namespace chocoq::service
{

namespace
{

using Clock = std::chrono::steady_clock;

double
millisSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

/**
 * Per-job engine configuration: every stochastic stream (final
 * sampling, optimizer restarts, SPSA perturbations) is derived from the
 * job seed alone, so results depend only on (job, seed) — never on the
 * worker that ran the job or on submission order.
 */
void
configureEngine(core::EngineOptions &engine, const SolveJob &job,
                int default_iterations, WorkerContext &ctx)
{
    engine.seed = job.seed;
    engine.opt.seed = deriveSeed(job.seed, 1);
    if (job.maxIterations > 0)
        engine.opt.maxIterations = job.maxIterations;
    else if (default_iterations > 0)
        engine.opt.maxIterations = default_iterations;
    engine.shots = job.shots;
    if (!job.device.empty())
        engine.noise = device::noiseOf(device::deviceByName(job.device));
    engine.multiStartKeep = job.keepStarts;
    engine.fusion = job.fusion;
    engine.scratchPool = &ctx.scratch;
}

/** FNV-1a over the exact bits of the output distribution. */
std::uint64_t
hashDistribution(const std::map<Basis, double> &dist)
{
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
        for (int b = 0; b < 8; ++b) {
            h ^= (v >> (8 * b)) & 0xFF;
            h *= 1099511628211ull;
        }
    };
    for (const auto &[x, prob] : dist) {
        std::uint64_t bits;
        std::memcpy(&bits, &prob, sizeof bits);
        mix(x);
        mix(bits);
    }
    return h;
}

} // namespace

SolveService::SolveService(ServiceOptions opts)
    : opts_(opts), cache_(CompileCacheOptions{opts.cacheMaxBytes}),
      registry_(spec::ProblemRegistryOptions{opts.registryMaxBytes}),
      scheduler_(opts.workers)
{}

std::shared_ptr<const model::Problem>
SolveService::resolveProblem(const SolveJob &job, SolveResult &r)
{
    if (job.problem) {
        // First submission of this canonical hash registers the lowered
        // instance; every equivalent submission (row-permuted,
        // sign-flipped) resolves to that same instance, so the compile
        // cache sees literally one structure.
        bool reused = false;
        auto p = registry_.put(job.problem->hashHex,
                               [&job] { return job.problem->lower(); },
                               &reused);
        // The 64-bit hash indexes the registry, it does not prove
        // identity: a colliding spec must fail loudly, never silently
        // solve whichever model registered first.
        if (reused && !spec::canonicallyEqual(*job.problem, *p))
            CHOCOQ_FATAL("canonical hash collision on '"
                         << job.problem->hashHex
                         << "': this problem differs from the one "
                            "registered under the same hash; change the "
                            "model (e.g. an unused variable) or restart "
                            "the registry");
        r.problemRef = job.problem->hashHex;
        return p;
    }
    if (!job.problemRef.empty()) {
        auto p = registry_.get(job.problemRef);
        if (!p)
            CHOCOQ_FATAL("unknown problem_ref '" << job.problemRef
                         << "' (never submitted on this server, or "
                            "evicted from the registry; resubmit the "
                            "inline problem)");
        r.problemRef = job.problemRef;
        return p;
    }
    const auto scale = problems::scaleByName(job.scale);
    if (!scale)
        CHOCOQ_FATAL("unknown scale '" << job.scale
                     << "' (expected F1..K4)");
    return std::make_shared<const model::Problem>(
        problems::makeCase(*scale, job.caseIndex));
}

SolveResult
SolveService::execute(const SolveJob &job, WorkerContext &ctx)
{
    SolveResult r;
    r.id = job.id;
    r.solver = job.solver;
    Timer timer;
    try {
        const std::shared_ptr<const model::Problem> resolved =
            resolveProblem(job, r);
        const model::Problem &p = *resolved;
        r.problem = p.name();

        core::SolverOutcome outcome;
        if (job.solver == "choco-q") {
            core::ChocoQOptions o;
            if (job.layers > 0)
                o.layers = job.layers;
            configureEngine(o.engine, job, opts_.defaultIterations, ctx);
            const core::ChocoQSolver solver(o);
            std::shared_ptr<const core::ChocoQArtifacts> artifacts =
                opts_.useCache ? cache_.get(p, solver, &r.cacheHit)
                               : solver.compile(p);
            outcome = solver.solveCompiled(p, *artifacts);
        } else if (job.solver == "penalty") {
            solvers::PenaltyOptions o;
            if (job.layers > 0)
                o.layers = job.layers;
            configureEngine(o.engine, job, opts_.defaultIterations, ctx);
            outcome = solvers::PenaltyQaoaSolver(o).solve(p);
        } else if (job.solver == "cyclic") {
            solvers::CyclicOptions o;
            if (job.layers > 0)
                o.layers = job.layers;
            configureEngine(o.engine, job, opts_.defaultIterations, ctx);
            outcome = solvers::CyclicQaoaSolver(o).solve(p);
        } else if (job.solver == "hea") {
            solvers::HeaOptions o;
            if (job.layers > 0)
                o.layers = job.layers;
            o.seed = deriveSeed(job.seed, 2);
            configureEngine(o.engine, job, opts_.defaultIterations, ctx);
            outcome = solvers::HeaSolver(o).solve(p);
        } else {
            CHOCOQ_FATAL("unknown solver '" << job.solver << "'");
        }

        r.bestCost = outcome.bestCost;
        r.iterations = outcome.iterations;
        r.evaluations = outcome.evaluations;
        r.compileSeconds = outcome.compileSeconds;
        r.simSeconds = outcome.simSeconds;
        r.classicalSeconds = outcome.classicalSeconds;
        for (const auto &[x, prob] : outcome.distribution) {
            if (prob > r.topProbability) {
                r.topProbability = prob;
                r.topState = x;
            }
            if (p.isFeasible(x))
                r.feasibleMass += prob;
        }
        r.topFeasible = p.isFeasible(r.topState);
        r.topObjective = p.objectiveOf(r.topState);
        r.distHash = hashDistribution(outcome.distribution);
    } catch (const std::exception &e) {
        r.status = "error";
        r.error = e.what();
    }
    r.solveMs = timer.seconds() * 1e3;
    r.worker = ctx.id;
    return r;
}

void
SolveService::submit(SolveJob job, Callback done)
{
    const auto submitted = Clock::now();
    scheduler_.submit([this, job = std::move(job), done = std::move(done),
                       submitted](WorkerContext &ctx) {
        const double queue_ms = millisSince(submitted);
        SolveResult result;
        if (job.deadlineMs > 0.0 && queue_ms > job.deadlineMs) {
            result.id = job.id;
            result.solver = job.solver;
            result.status = "expired";
            result.error = "queueing deadline exceeded before execution";
            result.worker = ctx.id;
        } else {
            result = execute(job, ctx);
        }
        result.queueMs = queue_ms;
        if (done)
            done(result);
    });
}

void
SolveService::drain()
{
    scheduler_.wait();
}

std::vector<SolveResult>
SolveService::solveAll(const std::vector<SolveJob> &jobs)
{
    std::vector<SolveResult> results(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        // Each callback writes only its own pre-allocated slot: no lock.
        submit(jobs[i], [&results, i](const SolveResult &r) {
            results[i] = r;
        });
    }
    drain();
    return results;
}

} // namespace chocoq::service
