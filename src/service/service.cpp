#include "service/service.hpp"

#include <chrono>
#include <cstring>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "device/device.hpp"
#include "problems/suite.hpp"
#include "solvers/cyclic.hpp"
#include "solvers/hea.hpp"
#include "solvers/penalty.hpp"

namespace chocoq::service
{

namespace
{

using Clock = std::chrono::steady_clock;

double
millisSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

/**
 * Per-job engine configuration: every stochastic stream (final
 * sampling, optimizer restarts, SPSA perturbations) is derived from the
 * job seed alone, so results depend only on (job, seed) — never on the
 * worker that ran the job or on submission order.
 */
void
configureEngine(core::EngineOptions &engine, const SolveJob &job,
                int default_iterations, int default_batch_width,
                WorkerContext &ctx, CancelToken *token, obs::Trace *trace,
                obs::KernelCounterSink *kernels)
{
    engine.kernelCounters = kernels;
    engine.seed = job.seed;
    engine.opt.seed = deriveSeed(job.seed, 1);
    if (job.maxIterations > 0)
        engine.opt.maxIterations = job.maxIterations;
    else if (default_iterations > 0)
        engine.opt.maxIterations = default_iterations;
    engine.shots = job.shots;
    if (!job.device.empty())
        engine.noise = device::noiseOf(device::deviceByName(job.device));
    engine.multiStartKeep = job.keepStarts;
    engine.batchWidth =
        job.batchWidth > 0 ? job.batchWidth : default_batch_width;
    engine.fusion = job.fusion;
    engine.scratchPool = &ctx.scratch;
    // The cooperative-cancellation hook: the engine polls it at
    // iteration boundaries (optimizer loops, batch sweeps, the final
    // distribution). Calling it never perturbs results — a job that is
    // never cancelled is bit-identical with or without a token, and a
    // traced job only timestamps the checkpoint (folded into one
    // "optimize" span), so outputs stay bit-identical with trace on.
    if (token || trace)
        engine.checkpoint = [token, trace] {
            if (token)
                token->throwIfCancelled();
            if (trace)
                trace->markIteration();
        };
}

/** FNV-1a over the exact bits of the output distribution. */
std::uint64_t
hashDistribution(const std::map<Basis, double> &dist)
{
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
        for (int b = 0; b < 8; ++b) {
            h ^= (v >> (8 * b)) & 0xFF;
            h *= 1099511628211ull;
        }
    };
    for (const auto &[x, prob] : dist) {
        std::uint64_t bits;
        std::memcpy(&bits, &prob, sizeof bits);
        mix(x);
        mix(bits);
    }
    return h;
}

} // namespace

SolveService::SolveService(ServiceOptions opts)
    : opts_(opts), metrics_(opts.metricsEnabled),
      jobsSubmitted_(metrics_.counter("jobs.submitted")),
      jobsStarted_(metrics_.counter("jobs.started")),
      jobsCompleted_(metrics_.counter("jobs.completed")),
      jobsOk_(metrics_.counter("jobs.ok")),
      jobsError_(metrics_.counter("jobs.error")),
      jobsCancelled_(metrics_.counter("jobs.cancelled")),
      jobsExpired_(metrics_.counter("jobs.expired")),
      jobsInflight_(metrics_.gauge("jobs.inflight")),
      stageQueueMs_(metrics_.histogram("stage.queue_ms")),
      stageCompileMs_(metrics_.histogram("stage.compile_ms")),
      stageSolveMs_(metrics_.histogram("stage.solve_ms")),
      stageTotalMs_(metrics_.histogram("stage.total_ms")),
      kernelBytes_(metrics_.counter("kernels.bytes")),
      kernelFlops_(metrics_.counter("kernels.flops")),
      cache_(CompileCacheOptions{
          opts.cacheMaxBytes, &metrics_.histogram("cache.compile_ms")}),
      registry_(spec::ProblemRegistryOptions{
          opts.registryMaxBytes,
          &metrics_.histogram("registry.lower_ms")}),
      scheduler_(opts.workers)
{
    for (std::size_t k = 0; k < obs::kKernelCount; ++k) {
        const std::string base =
            std::string("kernels.")
            + obs::kernelName(static_cast<obs::KernelId>(k));
        kernelCounters_[k].calls = &metrics_.counter(base + ".calls");
        kernelCounters_[k].amps = &metrics_.counter(base + ".amps");
    }
    if (opts_.stallThresholdMs > 0)
        watchdog_ = std::thread([this] { watchdogLoop(); });
}

SolveService::~SolveService()
{
    if (watchdog_.joinable()) {
        {
            std::lock_guard<std::mutex> lock(watchdogMu_);
            watchdogStop_ = true;
        }
        watchdogCv_.notify_all();
        watchdog_.join();
    }
}

void
SolveService::watchdogLoop()
{
    // One flag per stuck task: remember the busy-start timestamp
    // already reported per worker so a long stall counts once, and a
    // new task stalling on the same worker counts again.
    std::vector<long long> flagged(
        static_cast<std::size_t>(scheduler_.workers()), -1);
    std::unique_lock<std::mutex> lock(watchdogMu_);
    while (!watchdogStop_) {
        watchdogCv_.wait_for(
            lock, std::chrono::milliseconds(opts_.watchdogTickMs),
            [this] { return watchdogStop_; });
        if (watchdogStop_)
            break;
        lock.unlock();
        for (const auto &w : scheduler_.workerSnapshots()) {
            const auto idx = static_cast<std::size_t>(w.id);
            if (w.busy && w.busyMs >= opts_.stallThresholdMs
                && flagged[idx] != w.busySinceMs) {
                flagged[idx] = w.busySinceMs;
                stallsFlagged_.fetch_add(1, std::memory_order_relaxed);
            }
        }
        lock.lock();
    }
}

std::shared_ptr<const model::Problem>
SolveService::resolveProblem(const SolveJob &job, SolveResult &r)
{
    if (job.problem) {
        // First submission of this canonical hash registers the lowered
        // instance; every equivalent submission (row-permuted,
        // sign-flipped) resolves to that same instance, so the compile
        // cache sees literally one structure.
        bool reused = false;
        bool refreshed = false;
        auto p = registry_.put(job.problem->hashHex,
                               [&job] { return job.problem->lower(); },
                               &reused, &refreshed);
        r.refreshed = refreshed;
        // The 64-bit hash indexes the registry, it does not prove
        // identity: a colliding spec must fail loudly, never silently
        // solve whichever model registered first.
        if (reused && !spec::canonicallyEqual(*job.problem, *p))
            CHOCOQ_FATAL("canonical hash collision on '"
                         << job.problem->hashHex
                         << "': this problem differs from the one "
                            "registered under the same hash; change the "
                            "model (e.g. an unused variable) or restart "
                            "the registry");
        r.problemRef = job.problem->hashHex;
        return p;
    }
    if (!job.problemRef.empty()) {
        spec::ProblemRegistry::RefOutcome outcome =
            spec::ProblemRegistry::RefOutcome::Unknown;
        auto p = registry_.get(job.problemRef, &outcome);
        if (!p) {
            // The stable "ref_expired:" prefix is the wire contract
            // (docs/protocol.md): evicted refs are retriable by
            // resubmitting the inline problem, unknown refs are not.
            if (outcome == spec::ProblemRegistry::RefOutcome::Expired)
                throw FatalError(
                    "ref_expired: problem_ref '" + job.problemRef
                    + "' was evicted from the registry (generation "
                    + std::to_string(registry_.generation())
                    + "); resubmit the inline problem to re-register it");
            CHOCOQ_FATAL("unknown problem_ref '" << job.problemRef
                         << "' (never submitted on this server; check "
                            "the hash or resubmit the inline problem)");
        }
        r.problemRef = job.problemRef;
        return p;
    }
    const auto scale = problems::scaleByName(job.scale);
    if (!scale)
        CHOCOQ_FATAL("unknown scale '" << job.scale
                     << "' (expected F1..K4)");
    return std::make_shared<const model::Problem>(
        problems::makeCase(*scale, job.caseIndex));
}

void
SolveService::finishCancelled(SolveResult &r, CancelReason reason,
                              bool started) const
{
    const char *where = started ? "during execution" : "before execution";
    if (reason == CancelReason::Deadline) {
        r.status = "expired";
        r.error = started
                      ? std::string("deadline exceeded during execution")
                      : std::string(
                            "queueing deadline exceeded before execution");
        expiredJobs_.fetch_add(1, std::memory_order_relaxed);
    } else {
        r.status = "cancelled";
        r.error = std::string("cancelled ") + where + " ("
                  + cancelReasonName(reason) + ")";
        cancelledJobs_.fetch_add(1, std::memory_order_relaxed);
    }
}

SolveResult
SolveService::execute(const SolveJob &job, WorkerContext &ctx,
                      CancelToken *token, obs::Trace *trace)
{
    SolveResult r;
    r.id = job.id;
    r.solver = job.solver;
    jobsStarted_.add();
    Timer timer;
    // Per-job kernel-mix sink. One sink per job: workers execute one
    // job at a time and every kernel records on the calling thread
    // before its OpenMP region opens, so plain (non-atomic) tallies are
    // race-free. Detached (null) when neither metrics nor tracing want
    // it — that configuration is the bench_service observability
    // baseline, so the <2% overhead gate covers the sink-off path.
    obs::KernelCounterSink sink;
    obs::KernelCounterSink *const sinkPtr =
        (metrics_.enabled() || trace) ? &sink : nullptr;
    // Index of the currently open trace span, so the error paths can
    // close whatever stage the job died in (kNoSpan = none open).
    constexpr std::size_t kNoSpan = static_cast<std::size_t>(-1);
    std::size_t openSpan = kNoSpan;
    try {
        // Fault sites fire before any real work so an injected failure
        // never leaves half-built cache or registry state behind. The
        // stall keeps the worker visibly busy (the watchdog sees it)
        // while still honoring cancels and deadlines.
        if (opts_.fault
            && opts_.fault->fire(FaultInjector::Site::WorkerStall))
            sleepCancellably(
                opts_.fault->durationMs(FaultInjector::Site::WorkerStall),
                token);
        if (opts_.fault
            && opts_.fault->fire(FaultInjector::Site::AllocFail))
            throw FatalError("injected allocation failure (fault-spec "
                             "alloc_fail)");
        if (token)
            token->throwIfCancelled();

        if (trace)
            openSpan = trace->begin("resolve");
        const std::shared_ptr<const model::Problem> resolved =
            resolveProblem(job, r);
        if (trace) {
            trace->end(openSpan);
            openSpan = kNoSpan;
        }
        const model::Problem &p = *resolved;
        r.problem = p.name();

        core::SolverOutcome outcome;
        if (job.solver == "choco-q") {
            core::ChocoQOptions o;
            if (job.layers > 0)
                o.layers = job.layers;
            configureEngine(o.engine, job, opts_.defaultIterations,
                            opts_.defaultBatchWidth, ctx, token, trace,
                            sinkPtr);
            const core::ChocoQSolver solver(o);
            if (trace)
                openSpan = trace->begin("compile");
            Timer compileTimer;
            std::shared_ptr<const core::ChocoQArtifacts> artifacts =
                opts_.useCache ? cache_.get(p, solver, &r.cacheHit)
                               : solver.compile(p);
            stageCompileMs_.record(compileTimer.seconds() * 1e3);
            if (trace) {
                trace->end(openSpan,
                           !opts_.useCache  ? "cache_off"
                           : r.cacheHit     ? "cache_hit"
                                            : "cache_miss");
                openSpan = trace->begin("solve");
            }
            outcome = solver.solveCompiled(p, *artifacts);
        } else if (job.solver == "penalty") {
            solvers::PenaltyOptions o;
            if (job.layers > 0)
                o.layers = job.layers;
            configureEngine(o.engine, job, opts_.defaultIterations,
                            opts_.defaultBatchWidth, ctx, token, trace,
                            sinkPtr);
            if (trace)
                openSpan = trace->begin("solve");
            outcome = solvers::PenaltyQaoaSolver(o).solve(p);
            // No cacheable artifact stage: solve() compiles inline and
            // reports the split in compileSeconds.
            stageCompileMs_.record(outcome.compileSeconds * 1e3);
        } else if (job.solver == "cyclic") {
            solvers::CyclicOptions o;
            if (job.layers > 0)
                o.layers = job.layers;
            configureEngine(o.engine, job, opts_.defaultIterations,
                            opts_.defaultBatchWidth, ctx, token, trace,
                            sinkPtr);
            if (trace)
                openSpan = trace->begin("solve");
            outcome = solvers::CyclicQaoaSolver(o).solve(p);
            stageCompileMs_.record(outcome.compileSeconds * 1e3);
        } else if (job.solver == "hea") {
            solvers::HeaOptions o;
            if (job.layers > 0)
                o.layers = job.layers;
            o.seed = deriveSeed(job.seed, 2);
            configureEngine(o.engine, job, opts_.defaultIterations,
                            opts_.defaultBatchWidth, ctx, token, trace,
                            sinkPtr);
            if (trace)
                openSpan = trace->begin("solve");
            outcome = solvers::HeaSolver(o).solve(p);
            stageCompileMs_.record(outcome.compileSeconds * 1e3);
        } else {
            CHOCOQ_FATAL("unknown solver '" << job.solver << "'");
        }
        if (trace) {
            trace->closeIterations();
            trace->end(openSpan);
            openSpan = kNoSpan;
        }

        r.bestCost = outcome.bestCost;
        r.iterations = outcome.iterations;
        r.evaluations = outcome.evaluations;
        r.compileSeconds = outcome.compileSeconds;
        r.simSeconds = outcome.simSeconds;
        r.classicalSeconds = outcome.classicalSeconds;
        for (const auto &[x, prob] : outcome.distribution) {
            if (prob > r.topProbability) {
                r.topProbability = prob;
                r.topState = x;
            }
            if (p.isFeasible(x))
                r.feasibleMass += prob;
        }
        r.topFeasible = p.isFeasible(r.topState);
        r.topObjective = p.objectiveOf(r.topState);
        r.distHash = hashDistribution(outcome.distribution);
    } catch (const Cancelled &c) {
        finishCancelled(r, c.reason(), /*started=*/true);
        if (trace) {
            trace->closeIterations();
            if (openSpan != kNoSpan)
                trace->end(openSpan, r.status);
        }
    } catch (const std::exception &e) {
        r.status = "error";
        r.error = e.what();
        if (trace) {
            trace->closeIterations();
            if (openSpan != kNoSpan)
                trace->end(openSpan, "error");
        }
    }
    if (sinkPtr && !sink.empty()) {
        recordKernels(sink);
        // Echo the job's kernel mix into its timeline as a zero-width
        // annotation span, so chocoq_trace renders the per-job roofline
        // inputs next to the stage bars.
        if (trace)
            trace->add("kernels", trace->sinceOriginMs(), 0.0,
                       sink.summary());
    }
    r.solveMs = timer.seconds() * 1e3;
    stageSolveMs_.record(r.solveMs);
    r.worker = ctx.id;
    return r;
}

void
SolveService::recordKernels(const obs::KernelCounterSink &sink)
{
    for (std::size_t k = 0; k < obs::kKernelCount; ++k) {
        const obs::KernelTally &t =
            sink.tally(static_cast<obs::KernelId>(k));
        if (t.calls == 0)
            continue;
        kernelCounters_[k].calls->add(static_cast<double>(t.calls));
        kernelCounters_[k].amps->add(static_cast<double>(t.amps));
    }
    kernelBytes_.add(sink.totalBytes());
    kernelFlops_.add(sink.totalFlops());
}

void
SolveService::registerToken(const std::string &id,
                            const std::shared_ptr<CancelToken> &token)
{
    std::lock_guard<std::mutex> lock(activeMu_);
    active_.emplace(id, token);
}

void
SolveService::unregisterToken(const std::string &id,
                              const CancelToken *token)
{
    std::lock_guard<std::mutex> lock(activeMu_);
    const auto range = active_.equal_range(id);
    for (auto it = range.first; it != range.second; ++it) {
        if (it->second.get() == token) {
            active_.erase(it);
            return;
        }
    }
}

int
SolveService::cancel(const std::string &id, CancelReason reason)
{
    std::lock_guard<std::mutex> lock(activeMu_);
    int n = 0;
    const auto range = active_.equal_range(id);
    for (auto it = range.first; it != range.second; ++it) {
        it->second->requestCancel(reason);
        ++n;
    }
    return n;
}

SolveService::Health
SolveService::health() const
{
    Health h;
    h.workers = scheduler_.workers();
    h.queued = scheduler_.queuedTasks();
    h.inflight = scheduler_.inflightTasks();
    h.perWorker = scheduler_.workerSnapshots();
    for (const auto &w : h.perWorker) {
        if (!w.busy)
            continue;
        ++h.running;
        if (opts_.stallThresholdMs > 0
            && w.busyMs >= opts_.stallThresholdMs)
            ++h.stalledNow;
    }
    h.stallsFlagged = stallsFlagged_.load(std::memory_order_relaxed);
    h.cancelledJobs = cancelledJobs_.load(std::memory_order_relaxed);
    h.expiredJobs = expiredJobs_.load(std::memory_order_relaxed);
    return h;
}

Json
SolveService::metricsToJson() const
{
    Json out = metrics_.toJson();

    const CompileCache::Stats cs = cache_.stats();
    Json cache = Json::object();
    cache.set("hits", static_cast<double>(cs.hits));
    cache.set("misses", static_cast<double>(cs.misses));
    cache.set("evictions", static_cast<double>(cs.evictions));
    cache.set("entries", static_cast<double>(cs.entries));
    cache.set("bytes", static_cast<double>(cs.bytes));
    cache.set("max_bytes", static_cast<double>(cs.maxBytes));
    cache.set("hit_rate", cs.hitRate());
    out.set("cache", std::move(cache));

    const spec::ProblemRegistry::Stats rs = registry_.stats();
    Json reg = Json::object();
    reg.set("inserted", static_cast<double>(rs.inserted));
    reg.set("reused", static_cast<double>(rs.reused));
    reg.set("ref_hits", static_cast<double>(rs.refHits));
    reg.set("ref_misses", static_cast<double>(rs.refMisses));
    reg.set("ref_expired", static_cast<double>(rs.refExpired));
    reg.set("evictions", static_cast<double>(rs.evictions));
    reg.set("generation", static_cast<double>(rs.generation));
    reg.set("refreshes", static_cast<double>(rs.refreshes));
    reg.set("entries", static_cast<double>(rs.entries));
    reg.set("bytes", static_cast<double>(rs.bytes));
    reg.set("max_bytes", static_cast<double>(rs.maxBytes));
    out.set("registry", std::move(reg));

    Json sched = Json::object();
    sched.set("workers", scheduler_.workers());
    sched.set("queued", static_cast<double>(scheduler_.queuedTasks()));
    sched.set("inflight",
              static_cast<double>(scheduler_.inflightTasks()));
    sched.set("stalls_flagged",
              static_cast<double>(
                  stallsFlagged_.load(std::memory_order_relaxed)));
    Json per_worker = Json::array();
    for (const auto &w : scheduler_.workerSnapshots()) {
        Json ws = Json::object();
        ws.set("id", w.id);
        ws.set("busy", w.busy);
        ws.set("tasks_done", static_cast<double>(w.tasksDone));
        ws.set("tasks_stolen", static_cast<double>(w.tasksStolen));
        per_worker.push(std::move(ws));
    }
    sched.set("per_worker", std::move(per_worker));
    out.set("scheduler", std::move(sched));
    return out;
}

void
SolveService::recordCompletion(const SolveResult &r)
{
    stageQueueMs_.record(r.queueMs);
    stageTotalMs_.record(r.queueMs + r.solveMs);
    if (r.status == "ok")
        jobsOk_.add();
    else if (r.status == "error")
        jobsError_.add();
    else if (r.status == "cancelled")
        jobsCancelled_.add();
    else if (r.status == "expired")
        jobsExpired_.add();
    jobsCompleted_.add();
    jobsInflight_.add(-1.0);
}

std::shared_ptr<CancelToken>
SolveService::submit(SolveJob job, Callback done,
                     std::shared_ptr<CancelToken> token)
{
    const auto submitted = Clock::now();
    if (!token)
        token = std::make_shared<CancelToken>();
    if (job.deadlineMs > 0.0)
        token->armDeadline(submitted
                           + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   job.deadlineMs)));
    registerToken(job.id, token);
    jobsSubmitted_.add();
    jobsInflight_.add(1.0);
    // Traced jobs allocate their timeline here; untraced jobs carry a
    // null pointer and every recording site below no-ops (the zero-cost
    // contract). The origin sits at parse start when the front-end
    // measured one, so "parse" is span zero with no negative offsets.
    std::shared_ptr<obs::Trace> trace;
    double queue_start_ms = 0.0;
    if (job.trace) {
        auto origin = submitted;
        if (job.parseMs > 0.0)
            origin -= std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double, std::milli>(job.parseMs));
        trace = std::make_shared<obs::Trace>(origin);
        if (job.parseMs > 0.0)
            trace->add("parse", 0.0, job.parseMs);
        queue_start_ms = trace->sinceOriginMs();
    }
    scheduler_.submit([this, job = std::move(job), done = std::move(done),
                       submitted, token, trace,
                       queue_start_ms](WorkerContext &ctx) {
        const double queue_ms = millisSince(submitted);
        if (trace)
            trace->add("queue", queue_start_ms, queue_ms);
        SolveResult result;
        if (token->cancelled()) {
            // Cancelled (or expired) while still queued: report without
            // running, freeing the worker for the next job immediately.
            result.id = job.id;
            result.solver = job.solver;
            result.worker = ctx.id;
            finishCancelled(result, token->reason(), /*started=*/false);
        } else {
            result = execute(job, ctx, token.get(), trace.get());
        }
        result.queueMs = queue_ms;
        result.trace = trace;
        unregisterToken(job.id, token.get());
        // Metrics land before the callback: a client acting on its
        // final result (the stats probe right after a drained load)
        // reads counts that already include this job.
        recordCompletion(result);
        if (done)
            done(result);
    });
    return token;
}

void
SolveService::drain()
{
    scheduler_.wait();
}

std::vector<SolveResult>
SolveService::solveAll(const std::vector<SolveJob> &jobs)
{
    std::vector<SolveResult> results(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        // Each callback writes only its own pre-allocated slot: no lock.
        submit(jobs[i], [&results, i](const SolveResult &r) {
            results[i] = r;
        });
    }
    drain();
    return results;
}

} // namespace chocoq::service
