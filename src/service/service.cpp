#include "service/service.hpp"

#include <chrono>
#include <cstring>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "device/device.hpp"
#include "problems/suite.hpp"
#include "solvers/cyclic.hpp"
#include "solvers/hea.hpp"
#include "solvers/penalty.hpp"

namespace chocoq::service
{

namespace
{

using Clock = std::chrono::steady_clock;

double
millisSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

/**
 * Per-job engine configuration: every stochastic stream (final
 * sampling, optimizer restarts, SPSA perturbations) is derived from the
 * job seed alone, so results depend only on (job, seed) — never on the
 * worker that ran the job or on submission order.
 */
void
configureEngine(core::EngineOptions &engine, const SolveJob &job,
                int default_iterations, WorkerContext &ctx,
                CancelToken *token)
{
    engine.seed = job.seed;
    engine.opt.seed = deriveSeed(job.seed, 1);
    if (job.maxIterations > 0)
        engine.opt.maxIterations = job.maxIterations;
    else if (default_iterations > 0)
        engine.opt.maxIterations = default_iterations;
    engine.shots = job.shots;
    if (!job.device.empty())
        engine.noise = device::noiseOf(device::deviceByName(job.device));
    engine.multiStartKeep = job.keepStarts;
    engine.fusion = job.fusion;
    engine.scratchPool = &ctx.scratch;
    // The cooperative-cancellation hook: the engine polls it at
    // iteration boundaries (optimizer loops, batch sweeps, the final
    // distribution). Calling it never perturbs results — a job that is
    // never cancelled is bit-identical with or without a token.
    if (token)
        engine.checkpoint = [token] { token->throwIfCancelled(); };
}

/** FNV-1a over the exact bits of the output distribution. */
std::uint64_t
hashDistribution(const std::map<Basis, double> &dist)
{
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
        for (int b = 0; b < 8; ++b) {
            h ^= (v >> (8 * b)) & 0xFF;
            h *= 1099511628211ull;
        }
    };
    for (const auto &[x, prob] : dist) {
        std::uint64_t bits;
        std::memcpy(&bits, &prob, sizeof bits);
        mix(x);
        mix(bits);
    }
    return h;
}

} // namespace

SolveService::SolveService(ServiceOptions opts)
    : opts_(opts), cache_(CompileCacheOptions{opts.cacheMaxBytes}),
      registry_(spec::ProblemRegistryOptions{opts.registryMaxBytes}),
      scheduler_(opts.workers)
{
    if (opts_.stallThresholdMs > 0)
        watchdog_ = std::thread([this] { watchdogLoop(); });
}

SolveService::~SolveService()
{
    if (watchdog_.joinable()) {
        {
            std::lock_guard<std::mutex> lock(watchdogMu_);
            watchdogStop_ = true;
        }
        watchdogCv_.notify_all();
        watchdog_.join();
    }
}

void
SolveService::watchdogLoop()
{
    // One flag per stuck task: remember the busy-start timestamp
    // already reported per worker so a long stall counts once, and a
    // new task stalling on the same worker counts again.
    std::vector<long long> flagged(
        static_cast<std::size_t>(scheduler_.workers()), -1);
    std::unique_lock<std::mutex> lock(watchdogMu_);
    while (!watchdogStop_) {
        watchdogCv_.wait_for(
            lock, std::chrono::milliseconds(opts_.watchdogTickMs),
            [this] { return watchdogStop_; });
        if (watchdogStop_)
            break;
        lock.unlock();
        for (const auto &w : scheduler_.workerSnapshots()) {
            const auto idx = static_cast<std::size_t>(w.id);
            if (w.busy && w.busyMs >= opts_.stallThresholdMs
                && flagged[idx] != w.busySinceMs) {
                flagged[idx] = w.busySinceMs;
                stallsFlagged_.fetch_add(1, std::memory_order_relaxed);
            }
        }
        lock.lock();
    }
}

std::shared_ptr<const model::Problem>
SolveService::resolveProblem(const SolveJob &job, SolveResult &r)
{
    if (job.problem) {
        // First submission of this canonical hash registers the lowered
        // instance; every equivalent submission (row-permuted,
        // sign-flipped) resolves to that same instance, so the compile
        // cache sees literally one structure.
        bool reused = false;
        bool refreshed = false;
        auto p = registry_.put(job.problem->hashHex,
                               [&job] { return job.problem->lower(); },
                               &reused, &refreshed);
        r.refreshed = refreshed;
        // The 64-bit hash indexes the registry, it does not prove
        // identity: a colliding spec must fail loudly, never silently
        // solve whichever model registered first.
        if (reused && !spec::canonicallyEqual(*job.problem, *p))
            CHOCOQ_FATAL("canonical hash collision on '"
                         << job.problem->hashHex
                         << "': this problem differs from the one "
                            "registered under the same hash; change the "
                            "model (e.g. an unused variable) or restart "
                            "the registry");
        r.problemRef = job.problem->hashHex;
        return p;
    }
    if (!job.problemRef.empty()) {
        spec::ProblemRegistry::RefOutcome outcome =
            spec::ProblemRegistry::RefOutcome::Unknown;
        auto p = registry_.get(job.problemRef, &outcome);
        if (!p) {
            // The stable "ref_expired:" prefix is the wire contract
            // (docs/protocol.md): evicted refs are retriable by
            // resubmitting the inline problem, unknown refs are not.
            if (outcome == spec::ProblemRegistry::RefOutcome::Expired)
                throw FatalError(
                    "ref_expired: problem_ref '" + job.problemRef
                    + "' was evicted from the registry (generation "
                    + std::to_string(registry_.generation())
                    + "); resubmit the inline problem to re-register it");
            CHOCOQ_FATAL("unknown problem_ref '" << job.problemRef
                         << "' (never submitted on this server; check "
                            "the hash or resubmit the inline problem)");
        }
        r.problemRef = job.problemRef;
        return p;
    }
    const auto scale = problems::scaleByName(job.scale);
    if (!scale)
        CHOCOQ_FATAL("unknown scale '" << job.scale
                     << "' (expected F1..K4)");
    return std::make_shared<const model::Problem>(
        problems::makeCase(*scale, job.caseIndex));
}

void
SolveService::finishCancelled(SolveResult &r, CancelReason reason,
                              bool started) const
{
    const char *where = started ? "during execution" : "before execution";
    if (reason == CancelReason::Deadline) {
        r.status = "expired";
        r.error = started
                      ? std::string("deadline exceeded during execution")
                      : std::string(
                            "queueing deadline exceeded before execution");
        expiredJobs_.fetch_add(1, std::memory_order_relaxed);
    } else {
        r.status = "cancelled";
        r.error = std::string("cancelled ") + where + " ("
                  + cancelReasonName(reason) + ")";
        cancelledJobs_.fetch_add(1, std::memory_order_relaxed);
    }
}

SolveResult
SolveService::execute(const SolveJob &job, WorkerContext &ctx,
                      CancelToken *token)
{
    SolveResult r;
    r.id = job.id;
    r.solver = job.solver;
    Timer timer;
    try {
        // Fault sites fire before any real work so an injected failure
        // never leaves half-built cache or registry state behind. The
        // stall keeps the worker visibly busy (the watchdog sees it)
        // while still honoring cancels and deadlines.
        if (opts_.fault
            && opts_.fault->fire(FaultInjector::Site::WorkerStall))
            sleepCancellably(
                opts_.fault->durationMs(FaultInjector::Site::WorkerStall),
                token);
        if (opts_.fault
            && opts_.fault->fire(FaultInjector::Site::AllocFail))
            throw FatalError("injected allocation failure (fault-spec "
                             "alloc_fail)");
        if (token)
            token->throwIfCancelled();

        const std::shared_ptr<const model::Problem> resolved =
            resolveProblem(job, r);
        const model::Problem &p = *resolved;
        r.problem = p.name();

        core::SolverOutcome outcome;
        if (job.solver == "choco-q") {
            core::ChocoQOptions o;
            if (job.layers > 0)
                o.layers = job.layers;
            configureEngine(o.engine, job, opts_.defaultIterations, ctx,
                            token);
            const core::ChocoQSolver solver(o);
            std::shared_ptr<const core::ChocoQArtifacts> artifacts =
                opts_.useCache ? cache_.get(p, solver, &r.cacheHit)
                               : solver.compile(p);
            outcome = solver.solveCompiled(p, *artifacts);
        } else if (job.solver == "penalty") {
            solvers::PenaltyOptions o;
            if (job.layers > 0)
                o.layers = job.layers;
            configureEngine(o.engine, job, opts_.defaultIterations, ctx,
                            token);
            outcome = solvers::PenaltyQaoaSolver(o).solve(p);
        } else if (job.solver == "cyclic") {
            solvers::CyclicOptions o;
            if (job.layers > 0)
                o.layers = job.layers;
            configureEngine(o.engine, job, opts_.defaultIterations, ctx,
                            token);
            outcome = solvers::CyclicQaoaSolver(o).solve(p);
        } else if (job.solver == "hea") {
            solvers::HeaOptions o;
            if (job.layers > 0)
                o.layers = job.layers;
            o.seed = deriveSeed(job.seed, 2);
            configureEngine(o.engine, job, opts_.defaultIterations, ctx,
                            token);
            outcome = solvers::HeaSolver(o).solve(p);
        } else {
            CHOCOQ_FATAL("unknown solver '" << job.solver << "'");
        }

        r.bestCost = outcome.bestCost;
        r.iterations = outcome.iterations;
        r.evaluations = outcome.evaluations;
        r.compileSeconds = outcome.compileSeconds;
        r.simSeconds = outcome.simSeconds;
        r.classicalSeconds = outcome.classicalSeconds;
        for (const auto &[x, prob] : outcome.distribution) {
            if (prob > r.topProbability) {
                r.topProbability = prob;
                r.topState = x;
            }
            if (p.isFeasible(x))
                r.feasibleMass += prob;
        }
        r.topFeasible = p.isFeasible(r.topState);
        r.topObjective = p.objectiveOf(r.topState);
        r.distHash = hashDistribution(outcome.distribution);
    } catch (const Cancelled &c) {
        finishCancelled(r, c.reason(), /*started=*/true);
    } catch (const std::exception &e) {
        r.status = "error";
        r.error = e.what();
    }
    r.solveMs = timer.seconds() * 1e3;
    r.worker = ctx.id;
    return r;
}

void
SolveService::registerToken(const std::string &id,
                            const std::shared_ptr<CancelToken> &token)
{
    std::lock_guard<std::mutex> lock(activeMu_);
    active_.emplace(id, token);
}

void
SolveService::unregisterToken(const std::string &id,
                              const CancelToken *token)
{
    std::lock_guard<std::mutex> lock(activeMu_);
    const auto range = active_.equal_range(id);
    for (auto it = range.first; it != range.second; ++it) {
        if (it->second.get() == token) {
            active_.erase(it);
            return;
        }
    }
}

int
SolveService::cancel(const std::string &id, CancelReason reason)
{
    std::lock_guard<std::mutex> lock(activeMu_);
    int n = 0;
    const auto range = active_.equal_range(id);
    for (auto it = range.first; it != range.second; ++it) {
        it->second->requestCancel(reason);
        ++n;
    }
    return n;
}

SolveService::Health
SolveService::health() const
{
    Health h;
    h.workers = scheduler_.workers();
    h.queued = scheduler_.queuedTasks();
    h.inflight = scheduler_.inflightTasks();
    h.perWorker = scheduler_.workerSnapshots();
    for (const auto &w : h.perWorker) {
        if (!w.busy)
            continue;
        ++h.running;
        if (opts_.stallThresholdMs > 0
            && w.busyMs >= opts_.stallThresholdMs)
            ++h.stalledNow;
    }
    h.stallsFlagged = stallsFlagged_.load(std::memory_order_relaxed);
    h.cancelledJobs = cancelledJobs_.load(std::memory_order_relaxed);
    h.expiredJobs = expiredJobs_.load(std::memory_order_relaxed);
    return h;
}

std::shared_ptr<CancelToken>
SolveService::submit(SolveJob job, Callback done,
                     std::shared_ptr<CancelToken> token)
{
    const auto submitted = Clock::now();
    if (!token)
        token = std::make_shared<CancelToken>();
    if (job.deadlineMs > 0.0)
        token->armDeadline(submitted
                           + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   job.deadlineMs)));
    registerToken(job.id, token);
    scheduler_.submit([this, job = std::move(job), done = std::move(done),
                       submitted, token](WorkerContext &ctx) {
        const double queue_ms = millisSince(submitted);
        SolveResult result;
        if (token->cancelled()) {
            // Cancelled (or expired) while still queued: report without
            // running, freeing the worker for the next job immediately.
            result.id = job.id;
            result.solver = job.solver;
            result.worker = ctx.id;
            finishCancelled(result, token->reason(), /*started=*/false);
        } else {
            result = execute(job, ctx, token.get());
        }
        result.queueMs = queue_ms;
        unregisterToken(job.id, token.get());
        if (done)
            done(result);
    });
    return token;
}

void
SolveService::drain()
{
    scheduler_.wait();
}

std::vector<SolveResult>
SolveService::solveAll(const std::vector<SolveJob> &jobs)
{
    std::vector<SolveResult> results(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        // Each callback writes only its own pre-allocated slot: no lock.
        submit(jobs[i], [&results, i](const SolveResult &r) {
            results[i] = r;
        });
    }
    drain();
    return results;
}

} // namespace chocoq::service
