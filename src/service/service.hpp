/**
 * @file
 * The concurrent solve service: the orchestration layer between job
 * streams (JSONL requests, benchmark suites, library callers) and the
 * solver/engine stack.
 *
 * Composition per job: the scheduler parks the job on a worker; the
 * worker resolves the problem instance — regenerated from the benchmark
 * registry, or, for inline specs and problem_refs, the canonical
 * instance shared through the ProblemRegistry — then pulls compilation
 * artifacts from the shared CompileCache (compile once, solve many),
 * and runs the variational loop on its private scratch pool with every
 * stochastic stream derived from the job seed — so a (job, seed) pair
 * is bit-identical at any worker count and any submission order, while
 * throughput scales with workers.
 */

#ifndef CHOCOQ_SERVICE_SERVICE_HPP
#define CHOCOQ_SERVICE_SERVICE_HPP

#include <functional>
#include <vector>

#include "service/compile_cache.hpp"
#include "service/job.hpp"
#include "service/scheduler.hpp"
#include "spec/registry.hpp"

namespace chocoq::service
{

/** Service configuration. */
struct ServiceOptions
{
    /** Concurrent solve workers. Composes with CHOCOQ_THREADS: total
     * CPU demand is roughly workers x CHOCOQ_THREADS (see README). */
    int workers = 1;
    /** Share compilation artifacts across structurally equal jobs. */
    bool useCache = true;
    /** Artifact-retention byte budget for the compilation cache
     * (CompileCacheOptions::maxBytes; 0 = unbounded). */
    std::size_t cacheMaxBytes = CompileCacheOptions{}.maxBytes;
    /** Retention byte budget for inline-problem registrations
     * (spec::ProblemRegistryOptions::maxBytes; 0 = unbounded). */
    std::size_t registryMaxBytes = spec::ProblemRegistryOptions{}.maxBytes;
    /** Optimizer iteration budget for jobs that don't set their own;
     * 0 keeps each solver's default. */
    int defaultIterations = 0;
};

/** Concurrent solve service over the registry problems. */
class SolveService
{
  public:
    /** Result sink; invoked on a worker thread as each job finishes. */
    using Callback = std::function<void(const SolveResult &)>;

    explicit SolveService(ServiceOptions opts = {});

    int workers() const { return scheduler_.workers(); }

    /**
     * Enqueue one job. @p done (optional) fires on the worker thread
     * that ran the job; it must be thread-safe against other callbacks.
     */
    void submit(SolveJob job, Callback done = nullptr);

    /** Block until every submitted job has completed. */
    void drain();

    /** Submit all jobs and return results in submission order. */
    std::vector<SolveResult> solveAll(const std::vector<SolveJob> &jobs);

    CompileCache::Stats cacheStats() const { return cache_.stats(); }

    /** Inline-problem registry counters (submissions, ref reuse, LRU). */
    spec::ProblemRegistry::Stats registryStats() const
    {
        return registry_.stats();
    }

    /**
     * Execute one job synchronously in @p ctx, bypassing the queue.
     * Public for tests and single-shot tooling; submit() is the normal
     * entry point.
     */
    SolveResult execute(const SolveJob &job, WorkerContext &ctx);

  private:
    /**
     * Resolve the problem a job names: the registered instance for
     * inline specs (registering on first sight) and problem_refs, a
     * freshly generated registry case otherwise. Throws FatalError on
     * an unknown scale or an unknown/evicted problem_ref.
     */
    std::shared_ptr<const model::Problem> resolveProblem(const SolveJob &job,
                                                         SolveResult &r);

    ServiceOptions opts_;
    CompileCache cache_;
    spec::ProblemRegistry registry_;
    Scheduler scheduler_;
};

} // namespace chocoq::service

#endif // CHOCOQ_SERVICE_SERVICE_HPP
