/**
 * @file
 * The concurrent solve service: the orchestration layer between job
 * streams (JSONL requests, benchmark suites, library callers) and the
 * solver/engine stack.
 *
 * Composition per job: the scheduler parks the job on a worker; the
 * worker resolves the problem instance — regenerated from the benchmark
 * registry, or, for inline specs and problem_refs, the canonical
 * instance shared through the ProblemRegistry — then pulls compilation
 * artifacts from the shared CompileCache (compile once, solve many),
 * and runs the variational loop on its private scratch pool with every
 * stochastic stream derived from the job seed — so a (job, seed) pair
 * is bit-identical at any worker count and any submission order, while
 * throughput scales with workers.
 */

#ifndef CHOCOQ_SERVICE_SERVICE_HPP
#define CHOCOQ_SERVICE_SERVICE_HPP

#include <array>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/roofline.hpp"
#include "obs/trace.hpp"
#include "service/compile_cache.hpp"
#include "service/fault.hpp"
#include "service/job.hpp"
#include "service/scheduler.hpp"
#include "spec/registry.hpp"

namespace chocoq::service
{

/** Service configuration. */
struct ServiceOptions
{
    /** Concurrent solve workers. Composes with CHOCOQ_THREADS: total
     * CPU demand is roughly workers x CHOCOQ_THREADS (see README). */
    int workers = 1;
    /** Share compilation artifacts across structurally equal jobs. */
    bool useCache = true;
    /** Artifact-retention byte budget for the compilation cache
     * (CompileCacheOptions::maxBytes; 0 = unbounded). */
    std::size_t cacheMaxBytes = CompileCacheOptions{}.maxBytes;
    /** Retention byte budget for inline-problem registrations
     * (spec::ProblemRegistryOptions::maxBytes; 0 = unbounded). */
    std::size_t registryMaxBytes = spec::ProblemRegistryOptions{}.maxBytes;
    /** Optimizer iteration budget for jobs that don't set their own;
     * 0 keeps each solver's default. */
    int defaultIterations = 0;
    /** SoA batch width for jobs that don't set their own
     * (EngineOptions::batchWidth); 0 keeps the engine's automatic
     * width. Purely a performance knob: results are bit-identical
     * across widths (tested property). */
    int defaultBatchWidth = 0;
    /**
     * Watchdog threshold: a worker busy on one job for longer than
     * this is flagged as stalled (counted once per stuck task, surfaced
     * by health() and the serve summary). 0 disables the watchdog
     * thread entirely — the library default, so embedding callers pay
     * nothing; chocoq_serve enables it.
     */
    int stallThresholdMs = 0;
    /** Watchdog polling period (only used when the watchdog is on). */
    int watchdogTickMs = 20;
    /**
     * Optional fault injector (non-owning; must outlive the service).
     * nullptr — the default — means no injection anywhere: the fault
     * paths are never consulted and execution is bitwise identical to
     * a build without the harness.
     */
    FaultInjector *fault = nullptr;
    /**
     * Metrics are always-on operationally (<2% jobs/sec overhead,
     * measured by bench_service's observability probe); false turns
     * every recorder into a no-op and exists only as that probe's
     * baseline.
     */
    bool metricsEnabled = true;
};

/** Concurrent solve service over the registry problems. */
class SolveService
{
  public:
    /** Result sink; invoked on a worker thread as each job finishes. */
    using Callback = std::function<void(const SolveResult &)>;

    /** Point-in-time service health, for the {"type":"health"} probe
     * and the serve summaries. */
    struct Health
    {
        int workers = 0;
        /** Jobs waiting in worker deques (not started). */
        std::size_t queued = 0;
        /** Jobs currently executing on a worker. */
        std::size_t running = 0;
        /** Jobs submitted and not finished (queued + running). */
        std::size_t inflight = 0;
        /** Workers busy past the stall threshold right now. */
        int stalledNow = 0;
        /** Stuck-task episodes the watchdog has flagged (cumulative). */
        std::uint64_t stallsFlagged = 0;
        /** Jobs that finished as "cancelled" / "expired". */
        std::uint64_t cancelledJobs = 0;
        std::uint64_t expiredJobs = 0;
        std::vector<Scheduler::WorkerSnapshot> perWorker;
    };

    explicit SolveService(ServiceOptions opts = {});

    ~SolveService();

    int workers() const { return scheduler_.workers(); }

    /**
     * Enqueue one job. @p done (optional) fires on the worker thread
     * that ran the job; it must be thread-safe against other callbacks.
     * Returns the job's cancellation token: any holder may
     * requestCancel() it, and a job.deadlineMs > 0 arms its deadline
     * clock (counting from now, through queueing and execution).
     * @p token (optional) supplies the token instead — callers that
     * track tokens externally (the TCP front-end, per connection) pass
     * one they already hold, avoiding any window where a job runs
     * untracked.
     */
    std::shared_ptr<CancelToken>
    submit(SolveJob job, Callback done = nullptr,
           std::shared_ptr<CancelToken> token = nullptr);

    /**
     * Cooperatively cancel every active (queued or executing) job with
     * this id; returns how many matched. Already-finished jobs don't
     * match — cancelling them is a harmless no-op.
     */
    int cancel(const std::string &id,
               CancelReason reason = CancelReason::Requested);

    /** Queue depth, in-flight counts, worker liveness, stall counters. */
    Health health() const;

    /** Block until every submitted job has completed. */
    void drain();

    /** Submit all jobs and return results in submission order. */
    std::vector<SolveResult> solveAll(const std::vector<SolveJob> &jobs);

    CompileCache::Stats cacheStats() const { return cache_.stats(); }

    /** The service's metric registry (counters, gauges, histograms).
     * Front-ends register their own metrics here — one registry per
     * service, one stats probe reading it. */
    obs::MetricsRegistry &metrics() { return metrics_; }
    const obs::MetricsRegistry &metrics() const { return metrics_; }

    /**
     * Cumulative observability snapshot: the metric registry's
     * counters/gauges/histograms plus "cache", "registry" and
     * "scheduler" sections. The body of the {"type":"stats"} probe
     * (docs/protocol.md) and of --metrics-file snapshot lines.
     */
    Json metricsToJson() const;

    /** Inline-problem registry counters (submissions, ref reuse, LRU). */
    spec::ProblemRegistry::Stats registryStats() const
    {
        return registry_.stats();
    }

    /**
     * Execute one job synchronously in @p ctx, bypassing the queue.
     * Public for tests and single-shot tooling; submit() is the normal
     * entry point. @p token (optional) is polled at engine iteration
     * boundaries; a fired token stops the solve cooperatively and the
     * result reports "cancelled" (or "expired" for a deadline).
     * @p trace (optional) collects the job's span timeline; submit()
     * passes one for jobs with trace=true. Tracing never changes the
     * answer (bit-identical outputs, tested property).
     */
    SolveResult execute(const SolveJob &job, WorkerContext &ctx,
                        CancelToken *token = nullptr,
                        obs::Trace *trace = nullptr);

  private:
    void registerToken(const std::string &id,
                       const std::shared_ptr<CancelToken> &token);
    void unregisterToken(const std::string &id, const CancelToken *token);
    void watchdogLoop();
    /** Fill a cancelled/expired result from a fired token. */
    void finishCancelled(SolveResult &r, CancelReason reason,
                         bool started) const;
    /**
     * Resolve the problem a job names: the registered instance for
     * inline specs (registering on first sight) and problem_refs, a
     * freshly generated registry case otherwise. Throws FatalError on
     * an unknown scale or an unknown/evicted problem_ref.
     */
    std::shared_ptr<const model::Problem> resolveProblem(const SolveJob &job,
                                                         SolveResult &r);
    /** Count one finished job into the registry (status counter +
     * queue/total stage histograms), before the done callback fires so
     * a client acting on its last result reads final counts. */
    void recordCompletion(const SolveResult &r);
    /** Fold one job's kernel mix into the kernels.* counters. */
    void recordKernels(const obs::KernelCounterSink &sink);

    ServiceOptions opts_;
    /** Declared before cache_/registry_: their options carry pointers
     * into this registry's histograms. */
    obs::MetricsRegistry metrics_;
    /** Hot-path metric handles, bound once at construction so job-rate
     * recording never does a name lookup. */
    obs::Counter &jobsSubmitted_;
    obs::Counter &jobsStarted_;
    obs::Counter &jobsCompleted_;
    obs::Counter &jobsOk_;
    obs::Counter &jobsError_;
    obs::Counter &jobsCancelled_;
    obs::Counter &jobsExpired_;
    obs::Gauge &jobsInflight_;
    obs::Histogram &stageQueueMs_;
    obs::Histogram &stageCompileMs_;
    obs::Histogram &stageSolveMs_;
    obs::Histogram &stageTotalMs_;
    /** Per-kernel mix counters (kernels.<name>.calls / .amps) plus the
     * derived traffic totals (kernels.bytes / kernels.flops), bound at
     * construction like the stage metrics above: per-job aggregation
     * never does a name lookup. */
    struct KernelCounterPair
    {
        obs::Counter *calls = nullptr;
        obs::Counter *amps = nullptr;
    };
    std::array<KernelCounterPair, obs::kKernelCount> kernelCounters_;
    obs::Counter &kernelBytes_;
    obs::Counter &kernelFlops_;
    CompileCache cache_;
    spec::ProblemRegistry registry_;
    Scheduler scheduler_;

    /** Tokens of active (queued or executing) jobs, keyed by job id. */
    mutable std::mutex activeMu_;
    std::unordered_multimap<std::string, std::shared_ptr<CancelToken>>
        active_;

    mutable std::atomic<std::uint64_t> stallsFlagged_{0};
    mutable std::atomic<std::uint64_t> cancelledJobs_{0};
    mutable std::atomic<std::uint64_t> expiredJobs_{0};

    std::mutex watchdogMu_;
    std::condition_variable watchdogCv_;
    bool watchdogStop_ = false;
    std::thread watchdog_;
};

} // namespace chocoq::service

#endif // CHOCOQ_SERVICE_SERVICE_HPP
