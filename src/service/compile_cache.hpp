/**
 * @file
 * Compilation cache for the Choco-Q pipeline.
 *
 * Choco-Q's compilation (elimination plan, per-assignment feasibility
 * search, reduced move bases, commute terms, objective tables, layer
 * fusion plans) depends only on the problem's constraint matrix, its
 * objective polynomial, and the compile-relevant solver options — not
 * on seeds, shots, iteration budgets, or noise. Benchmark suites and
 * production traffic repeat the same structures with varied execution
 * knobs, so the cache keys artifacts by exactly those inputs and serves
 * the shared immutable ChocoQArtifacts to every matching job: compile
 * once, solve many.
 *
 * Concurrency: lookups are single-flight. The first requester of a key
 * inserts a future and compiles outside the lock; concurrent requesters
 * of the same key block on that future instead of compiling twice.
 *
 * Retention: completed entries are kept in LRU order under a byte
 * budget (CompileCacheOptions::maxBytes, measured with
 * ChocoQArtifacts::memoryBytes). When an insertion pushes the total
 * over budget, least-recently-used completed entries are dropped;
 * in-flight compilations are never evicted (waiters hold their future).
 * An evicted structure simply recompiles on its next request — results
 * are unaffected, only the hit rate is (tested property).
 */

#ifndef CHOCOQ_SERVICE_COMPILE_CACHE_HPP
#define CHOCOQ_SERVICE_COMPILE_CACHE_HPP

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>

#include "common/lru.hpp"
#include "core/chocoq_solver.hpp"

namespace chocoq::obs
{
class Histogram;
} // namespace chocoq::obs

namespace chocoq::service
{

/**
 * Structural cache key: constraint matrix, objective polynomial (exact
 * coefficient bits), and the compile-relevant ChocoQOptions (including
 * the fusion flag — fused artifacts carry their layer plans). Problem
 * *names* are deliberately excluded — two differently named but
 * structurally identical instances share one compilation.
 */
std::string compileKey(const model::Problem &p,
                       const core::ChocoQOptions &opts);

/** Cache retention configuration. */
struct CompileCacheOptions
{
    /**
     * Byte budget for retained artifacts (0 = unbounded). The default
     * comfortably holds thousands of benchmark-suite structures while
     * bounding a long-lived service against unbounded structure churn.
     */
    std::size_t maxBytes = std::size_t{256} << 20;

    /**
     * Optional latency histogram fed the wall time of every miss-path
     * compilation (the single-flight owner's compile, in milliseconds).
     * Hits record nothing — they cost a map lookup, not a compile. The
     * pointer must outlive the cache; the service wires in its
     * MetricsRegistry's "cache.compile_ms".
     */
    obs::Histogram *compileHistogram = nullptr;
};

/** Thread-safe, single-flight, LRU-bounded cache of compilation
 * artifacts. */
class CompileCache
{
  public:
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        /** Completed entries dropped by the byte budget. */
        std::uint64_t evictions = 0;
        std::size_t entries = 0;
        /** Bytes held by completed entries (memoryBytes estimates). */
        std::size_t bytes = 0;
        /** Configured budget (0 = unbounded). */
        std::size_t maxBytes = 0;

        double
        hitRate() const
        {
            const std::uint64_t total = hits + misses;
            return total == 0
                       ? 0.0
                       : static_cast<double>(hits)
                             / static_cast<double>(total);
        }
    };

    explicit CompileCache(CompileCacheOptions opts = {})
        : opts_(opts), map_(common::LruMap<std::string, Entry>::Options{
                           opts.maxBytes, /*minEntries=*/0})
    {}

    /**
     * Artifacts for @p p compiled by @p solver, computing them on the
     * first request for this structure. @p hit (optional) reports
     * whether this call was served from the cache. Rethrows the
     * compiler's FatalError (e.g. infeasible problem) to every waiter;
     * a failed compilation is not cached.
     */
    std::shared_ptr<const core::ChocoQArtifacts>
    get(const model::Problem &p, const core::ChocoQSolver &solver,
        bool *hit = nullptr);

    Stats stats() const;

    void clear();

  private:
    using Future =
        std::shared_future<std::shared_ptr<const core::ChocoQArtifacts>>;

    struct Entry
    {
        Future future;
        /** Set when the owner's compilation completed successfully.
         * Only ready entries are evictable: in-flight waiters hold the
         * future and eviction would break single-flight. */
        bool ready = false;
        /**
         * Insertion identity. An owner finishing a compile may find the
         * map slot re-populated (clear() ran mid-compile and another
         * thread re-requested the key); the generation check keeps its
         * bookkeeping off that newer in-flight entry.
         */
        std::uint64_t generation = 0;
    };

    CompileCacheOptions opts_;
    mutable std::mutex mu_;
    /** Recency + byte accounting live in the shared LRU core; this
     * class layers single-flight and the ready-only eviction guard. */
    common::LruMap<std::string, Entry> map_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t nextGeneration_ = 1;
};

} // namespace chocoq::service

#endif // CHOCOQ_SERVICE_COMPILE_CACHE_HPP
