/**
 * @file
 * Compilation cache for the Choco-Q pipeline.
 *
 * Choco-Q's compilation (elimination plan, per-assignment feasibility
 * search, reduced move bases, commute terms, objective tables) depends
 * only on the problem's constraint matrix, its objective polynomial, and
 * the compile-relevant solver options — not on seeds, shots, iteration
 * budgets, or noise. Benchmark suites and production traffic repeat the
 * same structures with varied execution knobs, so the cache keys
 * artifacts by exactly those inputs and serves the shared immutable
 * ChocoQArtifacts to every matching job: compile once, solve many.
 *
 * Concurrency: lookups are single-flight. The first requester of a key
 * inserts a future and compiles outside the lock; concurrent requesters
 * of the same key block on that future instead of compiling twice.
 */

#ifndef CHOCOQ_SERVICE_COMPILE_CACHE_HPP
#define CHOCOQ_SERVICE_COMPILE_CACHE_HPP

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/chocoq_solver.hpp"

namespace chocoq::service
{

/**
 * Structural cache key: constraint matrix, objective polynomial (exact
 * coefficient bits), and the compile-relevant ChocoQOptions. Problem
 * *names* are deliberately excluded — two differently named but
 * structurally identical instances share one compilation.
 */
std::string compileKey(const model::Problem &p,
                       const core::ChocoQOptions &opts);

/** Thread-safe, single-flight cache of Choco-Q compilation artifacts. */
class CompileCache
{
  public:
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::size_t entries = 0;

        double
        hitRate() const
        {
            const std::uint64_t total = hits + misses;
            return total == 0
                       ? 0.0
                       : static_cast<double>(hits)
                             / static_cast<double>(total);
        }
    };

    /**
     * Artifacts for @p p compiled by @p solver, computing them on the
     * first request for this structure. @p hit (optional) reports
     * whether this call was served from the cache. Rethrows the
     * compiler's FatalError (e.g. infeasible problem) to every waiter;
     * a failed compilation is not cached.
     */
    std::shared_ptr<const core::ChocoQArtifacts>
    get(const model::Problem &p, const core::ChocoQSolver &solver,
        bool *hit = nullptr);

    Stats stats() const;

    void clear();

  private:
    using Future =
        std::shared_future<std::shared_ptr<const core::ChocoQArtifacts>>;

    mutable std::mutex mu_;
    std::unordered_map<std::string, Future> map_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace chocoq::service

#endif // CHOCOQ_SERVICE_COMPILE_CACHE_HPP
