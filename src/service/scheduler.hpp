/**
 * @file
 * Work-stealing thread-pool scheduler for solve jobs.
 *
 * Each worker owns a deque and a WorkerContext holding its private
 * scratch-state pool: submissions are spread round-robin across the
 * deques, a worker pops from the front of its own deque (FIFO for
 * fairness/latency), and an idle worker steals from the back of a
 * victim's deque. Job granularity is milliseconds-to-seconds, so one
 * mutex guarding the deques is nowhere near contended — the point of the
 * per-worker structure is affinity (a worker's scratch buffers stay warm
 * across its queue run) and starvation-freedom, not lock-free popping.
 *
 * Determinism contract: the scheduler decides only *where and when* a
 * task runs, never its inputs. Tasks derive all randomness from their
 * job seed and write only task-local state plus their own result slot,
 * so outputs are independent of worker count and steal order (tested
 * property).
 */

#ifndef CHOCOQ_SERVICE_SCHEDULER_HPP
#define CHOCOQ_SERVICE_SCHEDULER_HPP

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/scratch.hpp"

namespace chocoq::service
{

/** Per-worker execution state handed to every task the worker runs. */
struct WorkerContext
{
    /** Worker index in [0, workers). */
    int id = 0;
    /** The worker's private scratch pool (reused across its jobs). */
    sim::ScratchPool scratch;
};

/** Fixed-size work-stealing thread pool. */
class Scheduler
{
  public:
    using Task = std::function<void(WorkerContext &)>;

    /**
     * Liveness snapshot of one worker, for the service watchdog and the
     * health probe. busySinceMs is the scheduler-relative start time of
     * the task currently running (-1 when idle); it doubles as an
     * episode id — the watchdog flags each stuck task at most once by
     * remembering the busySinceMs value it already reported.
     */
    struct WorkerSnapshot
    {
        int id = 0;
        bool busy = false;
        /** Milliseconds the current task has been running (0 if idle). */
        double busyMs = 0.0;
        /** Raw busy-start timestamp (ms since scheduler start; -1 idle). */
        long long busySinceMs = -1;
        /** Tasks completed by this worker so far. */
        std::uint64_t tasksDone = 0;
        /** Tasks this worker stole from another worker's deque. */
        std::uint64_t tasksStolen = 0;
    };

    /** Start @p workers threads (clamped to >= 1). */
    explicit Scheduler(int workers);

    /** Drains nothing: joins after finishing all submitted tasks. */
    ~Scheduler();

    int workers() const { return static_cast<int>(workers_.size()); }

    /** Enqueue a task (round-robin across worker deques). */
    void submit(Task task);

    /** Block until every submitted task has finished. */
    void wait();

    /** Tasks sitting in deques, not yet picked up by a worker. */
    std::size_t queuedTasks() const;

    /** Tasks submitted and not yet finished (queued + running). */
    std::size_t inflightTasks() const;

    /** Point-in-time liveness of every worker (lock-free reads). */
    std::vector<WorkerSnapshot> workerSnapshots() const;

  private:
    struct Worker
    {
        std::deque<Task> queue;
        std::thread thread;
        WorkerContext context;
        /** ms since scheduler start when the running task began; -1 idle. */
        std::atomic<long long> busySinceMs{-1};
        std::atomic<std::uint64_t> tasksDone{0};
        std::atomic<std::uint64_t> tasksStolen{0};
    };

    void workerLoop(Worker &self);
    bool takeTask(Worker &self, Task &out);
    long long nowMs() const;

    std::vector<std::unique_ptr<Worker>> workers_;
    const std::chrono::steady_clock::time_point start_ =
        std::chrono::steady_clock::now();
    mutable std::mutex mu_;
    std::condition_variable work_cv_;
    std::condition_variable idle_cv_;
    /** Tasks submitted but not yet finished. */
    std::size_t inflight_ = 0;
    /** Round-robin submission cursor. */
    std::size_t next_ = 0;
    bool stop_ = false;
};

} // namespace chocoq::service

#endif // CHOCOQ_SERVICE_SCHEDULER_HPP
