#include "service/compile_cache.hpp"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "obs/metrics.hpp"

namespace chocoq::service
{

namespace
{

void
appendUint(std::string &out, std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRIu64, v);
    out += buf;
}

void
appendInt(std::string &out, long long v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%lld", v);
    out += buf;
}

/** Exact double identity: the raw bit pattern, so keys never collide
 * through decimal formatting. */
void
appendDoubleBits(std::string &out, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    char buf[20];
    std::snprintf(buf, sizeof buf, "%016" PRIx64, bits);
    out += buf;
}

} // namespace

std::string
compileKey(const model::Problem &p, const core::ChocoQOptions &opts)
{
    std::string key;
    key.reserve(256);
    appendInt(key, p.numVars());
    key += p.sense() == model::Sense::Minimize ? "|min" : "|max";

    key += "|C:";
    for (const auto &row : p.constraints()) {
        for (const int c : row.coeffs) {
            appendInt(key, c);
            key.push_back(',');
        }
        key.push_back('=');
        appendInt(key, row.rhs);
        key.push_back(';');
    }

    key += "|f:";
    for (const auto &[vars, coeff] : p.objective().terms()) {
        for (const int v : vars) {
            appendInt(key, v);
            key.push_back('.');
        }
        key.push_back(':');
        appendDoubleBits(key, coeff);
        key.push_back(';');
    }

    // Compile-relevant options only: layers/engine/gateLevelLoop shape
    // the run, not the artifacts.
    key += "|e:";
    appendInt(key, opts.eliminate);
    key += "|m:";
    appendUint(key, opts.moveSetFactor);
    key += opts.genericSynthesisPadding ? "|pad" : "|nopad";
    // Fusion is the engine option that shapes the artifacts (they
    // carry the FusedLayerPlan), so it is part of the key. The batch
    // width is keyed conservatively alongside it: artifacts are in fact
    // width-agnostic (results are bit-identical across widths), but the
    // split keeps "same key => same engine configuration" a simple
    // invariant for cache-hit accounting.
    key += opts.engine.fusion ? "|fz" : "|nofz";
    key += "|bw:";
    appendInt(key, opts.engine.batchWidth);
    return key;
}

std::shared_ptr<const core::ChocoQArtifacts>
CompileCache::get(const model::Problem &p, const core::ChocoQSolver &solver,
                  bool *hit)
{
    const std::string key = compileKey(p, solver.options());

    std::promise<std::shared_ptr<const core::ChocoQArtifacts>> promise;
    Future future;
    bool owner = false;
    std::uint64_t generation = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (Entry *entry = map_.find(key)) {
            future = entry->future;
            ++hits_;
        } else {
            future = promise.get_future().share();
            Entry fresh;
            fresh.future = future;
            fresh.generation = nextGeneration_++;
            generation = fresh.generation;
            map_.insert(key, std::move(fresh));
            owner = true;
            ++misses_;
        }
    }
    if (hit)
        *hit = !owner;
    if (!owner)
        return future.get(); // rethrows the owner's compile error, if any

    try {
        const auto compileStart = std::chrono::steady_clock::now();
        auto artifacts = solver.compile(p);
        if (opts_.compileHistogram)
            opts_.compileHistogram->record(
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - compileStart)
                    .count());
        promise.set_value(artifacts);
        {
            std::lock_guard<std::mutex> lock(mu_);
            // Touch only our own insertion: clear() may have dropped it
            // mid-compile and a later request re-inserted the key with
            // a fresh in-flight entry that must stay unevictable.
            Entry *entry = map_.peek(key);
            if (entry && entry->generation == generation) {
                entry->ready = true;
                map_.setBytes(key, artifacts->memoryBytes());
                // Walk the cold end, skipping in-flight entries: their
                // waiters hold the future, and eviction would re-run a
                // compilation already paid for.
                map_.evictOverBudget(
                    [](const std::string &, const Entry &e) {
                        return e.ready;
                    },
                    [](const std::string &, const Entry &) {});
            }
        }
        return artifacts;
    } catch (...) {
        // Don't cache failures: drop the entry so a later (possibly
        // fixed) request recompiles, then propagate to every waiter.
        {
            std::lock_guard<std::mutex> lock(mu_);
            Entry *entry = map_.peek(key);
            if (entry && entry->generation == generation)
                map_.erase(key);
        }
        promise.set_exception(std::current_exception());
        throw;
    }
}

CompileCache::Stats
CompileCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    Stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = map_.evictions();
    s.entries = map_.size();
    s.bytes = map_.bytes();
    s.maxBytes = opts_.maxBytes;
    return s;
}

void
CompileCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    hits_ = 0;
    misses_ = 0;
}

} // namespace chocoq::service
