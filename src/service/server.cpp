#include "service/server.hpp"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "common/error.hpp"

namespace chocoq::service
{

namespace
{

using Clock = std::chrono::steady_clock;

double
millisSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

/** Whether @p line is blank or a # comment (the JSONL skip rule). */
bool
isSkippableLine(const std::string &line)
{
    const std::size_t start = line.find_first_not_of(" \t\r");
    return start == std::string::npos || line[start] == '#';
}

SolveResult
lineError(long lineno, const std::string &message)
{
    SolveResult r;
    r.id = "line-" + std::to_string(lineno);
    r.status = "error";
    r.error = message;
    return r;
}

/** send(2) the whole buffer; MSG_NOSIGNAL so a client that disappeared
 * mid-result costs a dropped line, not a SIGPIPE'd process. Returns
 * false once the peer is gone. */
bool
sendAll(int fd, const char *data, std::size_t len)
{
    while (len > 0) {
        const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

/**
 * Graceful close: half-close the write side, then discard inbound
 * bytes until the peer closes (bounded by @p max_wait_ms). close(2) on
 * a socket with unread receive-queue data sends an RST, and an RST
 * makes the peer's stack discard delivered-but-unread data — i.e. the
 * very result/rejection lines just flushed. Reading to EOF first makes
 * the close clean; a stale peer costs at most the bound.
 */
void
drainAndClose(int fd, int max_wait_ms)
{
    ::shutdown(fd, SHUT_WR);
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(max_wait_ms);
    char sink[4096];
    while (true) {
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - Clock::now())
                .count();
        if (left <= 0)
            break;
        pollfd p{fd, POLLIN, 0};
        const int pr = ::poll(&p, 1, static_cast<int>(left));
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (pr == 0)
            break;
        if (::recv(fd, sink, sizeof sink, 0) <= 0)
            break; // EOF or error: the peer is done
    }
    ::close(fd);
}

/** Bound on waiting for a peer to acknowledge a close (see
 * drainAndClose). */
constexpr int kCloseLingerMs = 1000;

} // namespace

bool
utf8Valid(const std::string &s)
{
    const auto *p = reinterpret_cast<const unsigned char *>(s.data());
    const std::size_t n = s.size();
    for (std::size_t i = 0; i < n;) {
        const unsigned char c = p[i];
        std::size_t len;
        unsigned cp;
        if (c < 0x80) {
            ++i;
            continue;
        } else if ((c & 0xE0) == 0xC0) {
            len = 2;
            cp = c & 0x1Fu;
        } else if ((c & 0xF0) == 0xE0) {
            len = 3;
            cp = c & 0x0Fu;
        } else if ((c & 0xF8) == 0xF0) {
            len = 4;
            cp = c & 0x07u;
        } else {
            return false; // stray continuation or 0xF8+ lead byte
        }
        if (i + len > n)
            return false; // truncated sequence
        for (std::size_t k = 1; k < len; ++k) {
            if ((p[i + k] & 0xC0) != 0x80)
                return false;
            cp = (cp << 6) | (p[i + k] & 0x3Fu);
        }
        // Shortest form, no UTF-16 surrogates, <= U+10FFFF.
        static constexpr unsigned kMin[5] = {0, 0, 0x80, 0x800, 0x10000};
        if (cp < kMin[len] || cp > 0x10FFFF
            || (cp >= 0xD800 && cp <= 0xDFFF))
            return false;
        i += len;
    }
    return true;
}

ParsedLine
parseRequestLine(const std::string &line, long lineno, bool oversized,
                 const spec::SpecLimits &limits)
{
    // Stamp parse start so a traced job's timeline opens with the real
    // "parse" span (two clock reads per line, noise next to ms-scale
    // jobs). parseMs is service-internal, never a wire field.
    const auto parse_start = Clock::now();
    ParsedLine out;
    if (oversized) {
        out.error = lineError(
            lineno, "request line exceeds the size limit and was discarded");
        return out;
    }
    if (isSkippableLine(line)) {
        out.skip = true;
        return out;
    }
    if (!utf8Valid(line)) {
        out.error = lineError(lineno, "request line is not valid UTF-8");
        return out;
    }
    try {
        const Json v = Json::parse(line);
        // Control requests ride the same stream as jobs, discriminated
        // by a "type" field (a job object has none).
        if (const Json *type = v.isObject() ? v.find("type") : nullptr) {
            if (type->kind() != Json::Kind::String)
                CHOCOQ_FATAL("field 'type' must be a string");
            const std::string kind = type->asString();
            if (kind == "cancel") {
                const Json *id = v.find("id");
                if (!id || id->kind() != Json::Kind::String
                    || id->asString().empty())
                    CHOCOQ_FATAL("cancel request needs a non-empty "
                                 "string 'id' naming the job to cancel");
                out.control = ControlKind::Cancel;
                out.cancelId = id->asString();
            } else if (kind == "health") {
                out.control = ControlKind::Health;
            } else if (kind == "stats") {
                out.control = ControlKind::Stats;
            } else {
                CHOCOQ_FATAL("unknown request type '" << kind
                             << "' (expected cancel, health, or stats)");
            }
            out.ok = true;
            return out;
        }
        out.job = jobFromJson(v, limits);
    } catch (const std::exception &e) {
        // A malformed request fails that request, not the stream.
        out.error = lineError(lineno, e.what());
        return out;
    }
    if (out.job.id.empty())
        out.job.id = "job-" + std::to_string(lineno);
    out.job.parseMs = millisSince(parse_start);
    out.ok = true;
    return out;
}

Json
healthToJson(const SolveService::Health &h)
{
    Json out = Json::object();
    out.set("type", std::string("health"));
    out.set("status", std::string("ok"));
    out.set("workers", h.workers);
    out.set("queued", static_cast<double>(h.queued));
    out.set("running", static_cast<double>(h.running));
    out.set("inflight", static_cast<double>(h.inflight));
    out.set("stalled", h.stalledNow);
    out.set("stalls_flagged", static_cast<double>(h.stallsFlagged));
    out.set("cancelled_jobs", static_cast<double>(h.cancelledJobs));
    out.set("expired_jobs", static_cast<double>(h.expiredJobs));
    return out;
}

Json
statsToJson(const SolveService &service)
{
    Json out = Json::object();
    out.set("type", std::string("stats"));
    out.set("status", std::string("ok"));
    // The envelope keys lead; then every metricsToJson section
    // (counters/gauges/histograms/cache/registry/scheduler) in order.
    const Json m = service.metricsToJson();
    for (const auto &[key, value] : m.members())
        out.set(key, value);
    return out;
}

namespace
{

/**
 * Bounded line reader over an istream: like std::getline but a line
 * longer than @p max_bytes is reported oversized and skipped to its
 * newline without ever buffering more than max_bytes of it. Returns
 * false at EOF with nothing read. A truncated final line (EOF, no
 * newline) is returned like any other — it is still a request.
 */
bool
getBoundedLine(std::istream &in, std::string &line, std::size_t max_bytes,
               bool &oversized)
{
    line.clear();
    oversized = false;
    bool read_any = false;
    std::streambuf *sb = in.rdbuf();
    for (int ch = sb->sbumpc();; ch = sb->sbumpc()) {
        if (ch == std::streambuf::traits_type::eof()) {
            if (!read_any)
                in.setstate(std::ios::eofbit | std::ios::failbit);
            return read_any;
        }
        read_any = true;
        if (ch == '\n')
            return true;
        if (max_bytes > 0 && line.size() >= max_bytes) {
            oversized = true;
            line.clear(); // keep only the bound, drop the rest
            // Discard through the newline (or EOF) without buffering.
            for (int c = sb->sbumpc();
                 c != std::streambuf::traits_type::eof(); c = sb->sbumpc())
                if (c == '\n')
                    break;
            return true;
        }
        line.push_back(static_cast<char>(ch));
    }
}

} // namespace

StreamStats
runJsonlStream(std::istream &in, std::ostream &out, SolveService &service,
               const StreamLimits &limits)
{
    StreamStats stats;
    std::mutex out_mu;
    std::string line;
    long lineno = 0;
    bool oversized = false;
    while (getBoundedLine(in, line, limits.maxLineBytes, oversized)) {
        ++lineno;
        ParsedLine parsed =
            parseRequestLine(line, lineno, oversized, limits.spec);
        if (parsed.skip)
            continue;
        if (!parsed.ok) {
            std::lock_guard<std::mutex> lock(out_mu);
            out << resultToJson(parsed.error).dump() << "\n";
            out.flush();
            ++stats.failed;
            continue;
        }
        if (parsed.control == ControlKind::Cancel) {
            const int n = service.cancel(parsed.cancelId);
            ++stats.cancelRequests;
            Json ack = Json::object();
            ack.set("type", std::string("cancel"));
            ack.set("id", parsed.cancelId);
            ack.set("status", std::string("ok"));
            ack.set("cancelled", n);
            std::lock_guard<std::mutex> lock(out_mu);
            out << ack.dump() << "\n";
            out.flush();
            continue;
        }
        if (parsed.control == ControlKind::Health) {
            ++stats.healthProbes;
            const Json h = healthToJson(service.health());
            std::lock_guard<std::mutex> lock(out_mu);
            out << h.dump() << "\n";
            out.flush();
            continue;
        }
        if (parsed.control == ControlKind::Stats) {
            ++stats.statsProbes;
            const Json s = statsToJson(service);
            std::lock_guard<std::mutex> lock(out_mu);
            out << s.dump() << "\n";
            out.flush();
            continue;
        }
        ++stats.submitted;
        service.submit(std::move(parsed.job),
                       [&](const SolveResult &r) {
                           std::lock_guard<std::mutex> lock(out_mu);
                           out << resultToJson(r).dump() << "\n";
                           out.flush();
                           if (r.status != "ok")
                               ++stats.failed;
                       });
    }
    service.drain();
    return stats;
}

// --------------------------------------------------------------- Server

/** Per-connection state shared between the read loop and the result
 * callbacks still in flight on worker threads. */
struct Server::Connection
{
    int fd = -1;
    /** When accept() returned this connection, anchoring the
     * accept_ms / first_byte_ms setup-latency split. */
    Clock::time_point acceptedAt;
    /** First-byte latency recorded yet? Only the reader thread touches
     * it. */
    bool sawFirstByte = false;
    /** Serializes result lines (callbacks fire on worker threads). */
    std::mutex writeMu;
    /** This connection's jobs accepted but not yet written back. */
    std::atomic<long> inflight{0};
    /** Set when a write hit a dead peer; stops further writes early. */
    std::atomic<bool> broken{false};

    /** Cancellation tokens of this connection's in-flight jobs. The
     * token is registered before submit() and removed by the result
     * callback, so a connection drop can cancel exactly the jobs
     * nobody is left to read. */
    std::mutex tokensMu;
    std::vector<std::shared_ptr<CancelToken>> tokens;

    void addToken(const std::shared_ptr<CancelToken> &t)
    {
        std::lock_guard<std::mutex> lock(tokensMu);
        tokens.push_back(t);
    }

    void removeToken(const CancelToken *t)
    {
        std::lock_guard<std::mutex> lock(tokensMu);
        for (auto it = tokens.begin(); it != tokens.end(); ++it) {
            if (it->get() == t) {
                tokens.erase(it);
                return;
            }
        }
    }

    /** Returns how many in-flight tokens were cancelled. */
    int cancelAll(CancelReason reason)
    {
        std::lock_guard<std::mutex> lock(tokensMu);
        for (const auto &t : tokens)
            t->requestCancel(reason);
        return static_cast<int>(tokens.size());
    }
};

Server::Server(SolveService &service, ServerOptions opts)
    : service_(service), opts_(opts),
      acceptMs_(service.metrics().histogram("server.accept_ms")),
      firstByteMs_(service.metrics().histogram("server.first_byte_ms")),
      connOpenGauge_(service.metrics().gauge("server.connections_open"))
{}

Server::~Server()
{
    drain();
}

void
Server::start()
{
    CHOCOQ_ASSERT(!started_, "Server::start called twice");
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        CHOCOQ_FATAL("socket(): " << std::strerror(errno));
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
    if (::inet_pton(AF_INET, opts_.bindAddress.c_str(), &addr.sin_addr)
        != 1) {
        ::close(listenFd_);
        listenFd_ = -1;
        CHOCOQ_FATAL("invalid bind address '" << opts_.bindAddress << "'");
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr), sizeof addr)
        != 0) {
        const int err = errno;
        ::close(listenFd_);
        listenFd_ = -1;
        CHOCOQ_FATAL("cannot bind " << opts_.bindAddress << ":"
                     << opts_.port << ": " << std::strerror(err));
    }
    if (::listen(listenFd_, opts_.backlog) != 0) {
        const int err = errno;
        ::close(listenFd_);
        listenFd_ = -1;
        CHOCOQ_FATAL("listen(): " << std::strerror(err));
    }
    socklen_t len = sizeof addr;
    ::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr), &len);
    port_ = ntohs(addr.sin_port);

    started_ = true;
    acceptThread_ = std::thread([this] { acceptLoop(); });
}

void
Server::reapFinishedConnections()
{
    std::vector<std::list<std::thread>::iterator> done;
    {
        std::lock_guard<std::mutex> lock(mu_);
        done.swap(finishedConns_);
    }
    for (const auto it : done) {
        it->join();
        std::lock_guard<std::mutex> lock(mu_);
        connThreads_.erase(it);
    }
}

void
Server::acceptLoop()
{
    while (!stop_.load(std::memory_order_relaxed)) {
        // Reap completed connection threads so a long-lived server does
        // not hold one exited-but-unjoined thread per connection served.
        reapFinishedConnections();

        pollfd p{listenFd_, POLLIN, 0};
        const int pr = ::poll(&p, 1, opts_.pollTickMs);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (pr == 0)
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            // Only a dead listener ends the loop. Resource pressure
            // (EMFILE/ENFILE/ENOBUFS/...) is transient: the next poll
            // tick retries once connections close and free fds —
            // breaking here would leave a live server that silently
            // never accepts again.
            if (errno == EBADF || errno == EINVAL)
                break;
            continue;
        }
        // Fault site conn_reset: the accepted connection is reset (RST,
        // via zero-linger close) before serving anything, modeling a
        // flaky network path or a proxy dropping connections.
        if (opts_.fault
            && opts_.fault->fire(FaultInjector::Site::ConnReset)) {
            linger lg{1, 0};
            ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
            ::close(fd);
            faultConnResets_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }

        // Result lines are small and latency-sensitive; don't batch them.
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        // Bound result writes: a client that stops reading must cost a
        // broken connection, not a solver worker blocked in send().
        if (opts_.sendTimeoutMs > 0) {
            timeval tv{};
            tv.tv_sec = opts_.sendTimeoutMs / 1000;
            tv.tv_usec = (opts_.sendTimeoutMs % 1000) * 1000;
            ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
        }

        // Thread-per-connection means the connection bound is also the
        // thread bound; past it, answer with one rejection and close.
        if (opts_.maxConnections > 0
            && connectionsOpen_.load(std::memory_order_relaxed)
                   >= static_cast<long>(opts_.maxConnections)) {
            SolveResult r;
            r.status = "rejected";
            r.error = "server at connection capacity ("
                      + std::to_string(opts_.maxConnections)
                      + " open); retry later";
            const std::string line = resultToJson(r).dump() + "\n";
            sendAll(fd, line.data(), line.size());
            // Non-blocking discard of whatever arrived with the
            // connect, so close() doesn't RST the rejection line away
            // (must not stall the accept loop; a peer still mid-write
            // can race this, which costs it only this line).
            char sink[4096];
            while (::recv(fd, sink, sizeof sink, MSG_DONTWAIT) > 0) {}
            ::close(fd);
            connectionsRejected_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }

        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        conn->acceptedAt = Clock::now();
        connectionsAccepted_.fetch_add(1, std::memory_order_relaxed);
        connectionsOpen_.fetch_add(1, std::memory_order_relaxed);
        connOpenGauge_.add(1.0);
        std::lock_guard<std::mutex> lock(mu_);
        connThreads_.emplace_back();
        const auto self = std::prev(connThreads_.end());
        try {
            *self = std::thread([this, conn, self] {
                serveConnection(conn);
                // Hand the thread object back for reaping (last action:
                // the reaper's join() still waits for this function to
                // return).
                std::lock_guard<std::mutex> lock(mu_);
                finishedConns_.push_back(self);
            });
        } catch (const std::system_error &) {
            // Thread exhaustion is transient like EMFILE: answer like
            // the connection cap (no silent drop), undo the accept
            // accounting, keep the server alive.
            connThreads_.erase(self);
            SolveResult r;
            r.status = "rejected";
            r.error = "server cannot spawn a connection handler; "
                      "retry later";
            const std::string line = resultToJson(r).dump() + "\n";
            sendAll(fd, line.data(), line.size());
            ::close(fd);
            connectionsAccepted_.fetch_sub(1, std::memory_order_relaxed);
            connectionsOpen_.fetch_sub(1, std::memory_order_relaxed);
            connOpenGauge_.add(-1.0);
            connectionsRejected_.fetch_add(1, std::memory_order_relaxed);
        }
    }
}

void
Server::writeLine(const std::shared_ptr<Connection> &conn,
                  const std::string &line)
{
    if (conn->broken.load(std::memory_order_relaxed))
        return;
    std::lock_guard<std::mutex> lock(conn->writeMu);
    std::string framed = line;
    framed.push_back('\n');
    if (!sendAll(conn->fd, framed.data(), framed.size())) {
        conn->broken.store(true, std::memory_order_relaxed);
        // The peer is provably gone (a write failed): nobody will read
        // this connection's remaining results, so stop computing them.
        if (conn->cancelAll(CancelReason::Disconnected) > 0)
            disconnectCancels_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    resultsWritten_.fetch_add(1, std::memory_order_relaxed);
}

bool
Server::reserveInflightSlot(SolveJob &job)
{
    // Reserve the slot first (fetch_add, not load-then-add): concurrent
    // reader threads racing a plain check could all pass it and
    // overshoot the bound by connections-1 jobs.
    const auto tryReserve = [this] {
        const long reserved =
            inflight_.fetch_add(1, std::memory_order_relaxed);
        if (opts_.maxInflight > 0
            && reserved >= static_cast<long>(opts_.maxInflight)) {
            inflight_.fetch_sub(1, std::memory_order_relaxed);
            return false;
        }
        return true;
    };
    if (tryReserve())
        return true;
    if (opts_.queueWaitMs <= 0)
        return false;

    // Bounded wait-queue: hold this request on its reader thread until
    // a slot frees, its deadline_ms would expire in queue, or the
    // configured wait cap runs out. Drain (stop_) also ends the wait —
    // a shutdown must not hang on a full queue.
    double budget_ms = opts_.queueWaitMs;
    if (job.deadlineMs > 0.0)
        budget_ms = std::min(budget_ms, job.deadlineMs);
    const auto start = Clock::now();
    while (!stop_.load(std::memory_order_relaxed)) {
        const double waited = millisSince(start);
        if (waited >= budget_ms)
            break;
        const double left = budget_ms - waited;
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min<long long>(opts_.pollTickMs,
                                static_cast<long long>(left) + 1)));
        if (!tryReserve())
            continue;
        if (job.deadlineMs > 0.0) {
            // Queue time counts against the deadline; a slot that
            // frees exactly as the deadline passes is still a timeout.
            job.deadlineMs -= millisSince(start);
            if (job.deadlineMs <= 0.0) {
                inflight_.fetch_sub(1, std::memory_order_relaxed);
                return false;
            }
        }
        queueWaited_.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    return false;
}

void
Server::handleControl(const std::shared_ptr<Connection> &conn,
                      const ParsedLine &parsed)
{
    if (parsed.control == ControlKind::Cancel) {
        // Cancellation is server-wide by id, not per-connection: an
        // operator can open a second connection to cancel a job a
        // wedged first connection submitted.
        const int n = service_.cancel(parsed.cancelId);
        cancelRequests_.fetch_add(1, std::memory_order_relaxed);
        Json ack = Json::object();
        ack.set("type", std::string("cancel"));
        ack.set("id", parsed.cancelId);
        ack.set("status", std::string("ok"));
        ack.set("cancelled", n);
        writeLine(conn, ack.dump());
        return;
    }
    if (parsed.control == ControlKind::Stats) {
        statsProbes_.fetch_add(1, std::memory_order_relaxed);
        Json s = statsToJson(service_);
        // Server-level section: the front-end's own counters, which the
        // embedded service cannot see.
        Json server = Json::object();
        const ServerStats ss = stats();
        server.set("connections_accepted",
                   static_cast<double>(ss.connectionsAccepted));
        server.set("connections_open",
                   static_cast<double>(ss.connectionsOpen));
        server.set("connections_rejected",
                   static_cast<double>(ss.connectionsRejected));
        server.set("requests_accepted",
                   static_cast<double>(ss.requestsAccepted));
        server.set("results_written",
                   static_cast<double>(ss.resultsWritten));
        server.set("rejected", static_cast<double>(ss.rejected));
        server.set("queue_waited", static_cast<double>(ss.queueWaited));
        server.set("line_errors", static_cast<double>(ss.lineErrors));
        server.set("idle_closes", static_cast<double>(ss.idleCloses));
        server.set("cancel_requests",
                   static_cast<double>(ss.cancelRequests));
        server.set("health_probes",
                   static_cast<double>(ss.healthProbes));
        server.set("stats_probes", static_cast<double>(ss.statsProbes));
        server.set("jobs_failed", static_cast<double>(ss.jobsFailed));
        server.set("jobs_cancelled",
                   static_cast<double>(ss.jobsCancelled));
        server.set("disconnect_cancels",
                   static_cast<double>(ss.disconnectCancels));
        server.set("fault_conn_resets",
                   static_cast<double>(ss.faultConnResets));
        server.set("inflight",
                   static_cast<double>(
                       inflight_.load(std::memory_order_relaxed)));
        s.set("server", std::move(server));
        writeLine(conn, s.dump());
        return;
    }
    healthProbes_.fetch_add(1, std::memory_order_relaxed);
    Json h = healthToJson(service_.health());
    // Server-level view rides along with the service's counters.
    h.set("connections_open",
          static_cast<double>(
              connectionsOpen_.load(std::memory_order_relaxed)));
    h.set("server_inflight",
          static_cast<double>(inflight_.load(std::memory_order_relaxed)));
    writeLine(conn, h.dump());
}

void
Server::cancelConnectionJobs(const std::shared_ptr<Connection> &conn)
{
    if (conn->cancelAll(CancelReason::Disconnected) > 0)
        disconnectCancels_.fetch_add(1, std::memory_order_relaxed);
}

bool
Server::handleLine(const std::shared_ptr<Connection> &conn,
                   const std::string &line, long lineno)
{
    ParsedLine parsed =
        parseRequestLine(line, lineno, false, opts_.specLimits);
    if (parsed.skip)
        return false;
    if (!parsed.ok) {
        lineErrors_.fetch_add(1, std::memory_order_relaxed);
        writeLine(conn, resultToJson(parsed.error).dump());
        return false;
    }
    if (parsed.control != ControlKind::None) {
        // Control requests never consume an in-flight slot or the
        // per-connection budget: they must work on a loaded server.
        handleControl(conn, parsed);
        return false;
    }
    // Backpressure: a request over the server-wide in-flight bound is
    // answered with "rejected" instead of queueing without bound —
    // immediately by default, after the bounded wait queue when
    // --queue-wait is configured.
    if (!reserveInflightSlot(parsed.job)) {
        SolveResult r;
        r.id = parsed.job.id;
        r.status = "rejected";
        r.error = "server at capacity (" + std::to_string(opts_.maxInflight)
                  + " jobs in flight"
                  + (opts_.queueWaitMs > 0 ? ", wait queue timed out" : "")
                  + "); retry later";
        rejected_.fetch_add(1, std::memory_order_relaxed);
        writeLine(conn, resultToJson(r).dump());
        return false;
    }
    requestsAccepted_.fetch_add(1, std::memory_order_relaxed);
    conn->inflight.fetch_add(1, std::memory_order_relaxed);
    // Track the token before submitting so there is no window where the
    // job runs but a connection drop cannot reach it.
    auto token = std::make_shared<CancelToken>();
    conn->addToken(token);
    service_.submit(std::move(parsed.job),
                    [this, conn, raw_token = token.get()](
                        const SolveResult &r) {
                        conn->removeToken(raw_token);
                        if (r.status != "ok")
                            jobsFailed_.fetch_add(
                                1, std::memory_order_relaxed);
                        if (r.status == "cancelled")
                            jobsCancelled_.fetch_add(
                                1, std::memory_order_relaxed);
                        writeLine(conn, resultToJson(r).dump());
                        conn->inflight.fetch_sub(1,
                                                 std::memory_order_release);
                        inflight_.fetch_sub(1, std::memory_order_relaxed);
                    },
                    token);
    return true;
}

void
Server::serveConnection(const std::shared_ptr<Connection> &conn)
{
    // accept -> handler-thread start: thread-spawn plus scheduling
    // latency, the part of the old conflated conn_setup number the
    // server controls. The remainder to the first received byte is the
    // client's connect-to-send turnaround plus the network.
    acceptMs_.record(millisSince(conn->acceptedAt));
    std::string buf;
    long lineno = 0;
    long served = 0;
    bool discarding = false; // inside the tail of an oversized line
    /** A buffered partial line must still be answered when the read
     * loop ends without its newline (EOF half-close or idle close) —
     * never silence for received bytes. */
    bool answer_tail = false;
    auto last_activity = Clock::now();
    // The socket path always bounds request lines (a peer that never
    // sends a newline must not grow the buffer without limit).
    const std::size_t max_line =
        opts_.maxLineBytes > 0 ? opts_.maxLineBytes : (std::size_t{1} << 20);

    const auto atConnLimit = [&] {
        return opts_.maxRequestsPerConn > 0
               && served >= opts_.maxRequestsPerConn;
    };
    // Echo the request id when the over-limit line parses, so the
    // client can correlate the rejection. Only the id is read — this is
    // the load-shedding path, so it must not pay full request
    // validation (in particular not inline-problem parsing and
    // canonicalization) for a line it is about to reject.
    const auto rejectAtLimit = [&](const std::string &line, long n) {
        std::string id;
        if (utf8Valid(line)) { // never echo invalid bytes back out
            try {
                id = Json::parse(line).getString("id", "");
                if (id.empty())
                    id = "job-" + std::to_string(n);
            } catch (const std::exception &) {
                // fall through to the synthesized line id
            }
        }
        SolveResult r;
        r.id = id.empty() ? "line-" + std::to_string(n) : id;
        r.status = "rejected";
        r.error = "per-connection request limit ("
                  + std::to_string(opts_.maxRequestsPerConn)
                  + ") reached; open a new connection";
        rejected_.fetch_add(1, std::memory_order_relaxed);
        writeLine(conn, resultToJson(r).dump());
    };

    while (!stop_.load(std::memory_order_relaxed)) {
        pollfd p{conn->fd, POLLIN, 0};
        const int pr = ::poll(&p, 1, opts_.pollTickMs);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (pr == 0) {
            // A running job counts as activity: the idle window starts
            // from (at most one tick before) its last result, so a
            // long job's client keeps the full grace period to follow
            // up, not zero.
            if (conn->inflight.load(std::memory_order_acquire) > 0) {
                last_activity = Clock::now();
            } else if (opts_.idleTimeoutMs > 0
                       && millisSince(last_activity)
                              > opts_.idleTimeoutMs) {
                idleCloses_.fetch_add(1, std::memory_order_relaxed);
                answer_tail = true;
                break;
            }
            continue;
        }
        char chunk[65536];
        const ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
        if (n == 0) {
            // EOF is a half-close, not a drop: the client is done
            // sending but still reading (socket_client works exactly
            // this way), so in-flight jobs run to completion and flush.
            answer_tail = true;
            break;
        }
        if (n < 0) {
            if (errno == EINTR)
                continue;
            // A read error (ECONNRESET and kin) means the client is
            // gone; nobody will read this connection's results, so
            // cancel its in-flight jobs instead of finishing them.
            cancelConnectionJobs(conn);
            break;
        }
        // Fault site read_delay: a pause between the socket read and
        // request processing, modeling a saturated or lossy link.
        if (opts_.fault
            && opts_.fault->fire(FaultInjector::Site::ReadDelay))
            std::this_thread::sleep_for(std::chrono::milliseconds(
                opts_.fault->durationMs(FaultInjector::Site::ReadDelay)));
        last_activity = Clock::now();
        if (!conn->sawFirstByte) {
            conn->sawFirstByte = true;
            firstByteMs_.record(millisSince(conn->acceptedAt));
        }
        buf.append(chunk, static_cast<std::size_t>(n));

        // Frame complete lines with an offset walk (one erase per recv,
        // not one per line — a pipelined burst would otherwise memmove
        // the buffer tail quadratically).
        bool close_now = false;
        std::size_t start = 0;
        std::size_t pos;
        while ((pos = buf.find('\n', start)) != std::string::npos) {
            std::string line = buf.substr(start, pos - start);
            start = pos + 1;
            if (discarding) { // remainder of an oversized line
                discarding = false;
                continue;
            }
            ++lineno;
            if (line.size() > max_line) {
                // The whole line arrived in one read burst before the
                // partial-buffer bound could trip: same oversize error.
                lineErrors_.fetch_add(1, std::memory_order_relaxed);
                writeLine(conn,
                          resultToJson(parseRequestLine("", lineno,
                                                        /*oversized=*/true)
                                           .error)
                              .dump());
                continue;
            }
            if (isSkippableLine(line))
                continue;
            if (close_now || atConnLimit()) {
                // Never silence: every pipelined request at or behind
                // the limit gets its own rejection before the close (a
                // partial tail died unreceived — the close itself is
                // its answer).
                rejectAtLimit(line, lineno);
                close_now = true;
                continue;
            }
            // Only accepted jobs consume the per-connection budget
            // (malformed and capacity-rejected lines do not).
            if (handleLine(conn, line, lineno))
                ++served;
        }
        buf.erase(0, start);
        if (close_now)
            break;
        if (!discarding && buf.size() > max_line) {
            // Oversized line still missing its newline: fail it now and
            // drop bytes until the newline arrives.
            ++lineno;
            lineErrors_.fetch_add(1, std::memory_order_relaxed);
            writeLine(
                conn,
                resultToJson(
                    parseRequestLine("", lineno, /*oversized=*/true).error)
                    .dump());
            buf.clear();
            discarding = true;
        } else if (discarding) {
            buf.clear(); // still inside the oversized line's tail
        }
    }

    // Truncated final line (EOF or idle close without a newline) is
    // still a request: a half-written job must produce a response — an
    // error, or the limit rejection — never silence.
    if (answer_tail && !discarding && !buf.empty()) {
        ++lineno;
        if (!isSkippableLine(buf)) {
            if (atConnLimit())
                rejectAtLimit(buf, lineno);
            else
                handleLine(conn, buf, lineno);
        }
    }

    // Flush before close: every accepted job's result reaches the wire
    // (drain and idle-close both wait here).
    while (conn->inflight.load(std::memory_order_acquire) > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    drainAndClose(conn->fd, kCloseLingerMs);
    conn->fd = -1;
    connectionsOpen_.fetch_sub(1, std::memory_order_relaxed);
    connOpenGauge_.add(-1.0);
}

void
Server::drain()
{
    if (!started_ || drained_)
        return;
    requestStop();
    if (acceptThread_.joinable())
        acceptThread_.join();
    // Close the listener immediately: clients connecting mid-drain get
    // connection-refused rather than a backlog slot that never answers.
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    // No new connections past this point; join the readers (each waits
    // for its own in-flight results to flush). Joining everything left
    // in the list covers reaped-pending and live threads alike, so the
    // finished-iterator queue is simply dropped.
    std::list<std::thread> readers;
    {
        std::lock_guard<std::mutex> lock(mu_);
        readers.swap(connThreads_);
        finishedConns_.clear();
    }
    for (auto &t : readers)
        if (t.joinable())
            t.join();
    {
        // A reader that finished mid-drain pushed its (now stale)
        // iterator after the clear above; drop those too. Nothing
        // dereferences them — the accept loop is gone — this just
        // leaves no dangling state behind.
        std::lock_guard<std::mutex> lock(mu_);
        finishedConns_.clear();
    }
    service_.drain();
    drained_ = true;
}

ServerStats
Server::stats() const
{
    ServerStats s;
    s.connectionsAccepted =
        connectionsAccepted_.load(std::memory_order_relaxed);
    s.connectionsOpen = connectionsOpen_.load(std::memory_order_relaxed);
    s.requestsAccepted = requestsAccepted_.load(std::memory_order_relaxed);
    s.jobsFailed = jobsFailed_.load(std::memory_order_relaxed);
    s.resultsWritten = resultsWritten_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.queueWaited = queueWaited_.load(std::memory_order_relaxed);
    s.connectionsRejected =
        connectionsRejected_.load(std::memory_order_relaxed);
    s.lineErrors = lineErrors_.load(std::memory_order_relaxed);
    s.idleCloses = idleCloses_.load(std::memory_order_relaxed);
    s.cancelRequests = cancelRequests_.load(std::memory_order_relaxed);
    s.healthProbes = healthProbes_.load(std::memory_order_relaxed);
    s.statsProbes = statsProbes_.load(std::memory_order_relaxed);
    s.jobsCancelled = jobsCancelled_.load(std::memory_order_relaxed);
    s.disconnectCancels =
        disconnectCancels_.load(std::memory_order_relaxed);
    s.faultConnResets = faultConnResets_.load(std::memory_order_relaxed);
    return s;
}

// ---------------------------------------------------------- JsonlClient

JsonlClient::JsonlClient(int port)
{
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        CHOCOQ_FATAL("socket(): " << std::strerror(errno));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr), sizeof addr)
        != 0) {
        const int err = errno;
        ::close(fd_);
        fd_ = -1;
        CHOCOQ_FATAL("cannot connect to 127.0.0.1:" << port << ": "
                     << std::strerror(err));
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

JsonlClient::~JsonlClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
JsonlClient::sendLine(const std::string &line)
{
    sendRaw(line + "\n");
}

void
JsonlClient::sendRaw(const std::string &bytes)
{
    if (!sendAll(fd_, bytes.data(), bytes.size()))
        CHOCOQ_FATAL("send(): " << std::strerror(errno));
}

void
JsonlClient::shutdownWrite()
{
    ::shutdown(fd_, SHUT_WR);
}

void
JsonlClient::abortConnection()
{
    if (fd_ < 0)
        return;
    // Zero-linger close: the kernel sends RST instead of FIN, so the
    // server's next read fails with ECONNRESET — the signal that
    // triggers disconnect cancellation.
    linger lg{1, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
    ::close(fd_);
    fd_ = -1;
}

bool
JsonlClient::readLine(std::string &out, int timeout_ms)
{
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    while (true) {
        const std::size_t pos = buf_.find('\n');
        if (pos != std::string::npos) {
            out = buf_.substr(0, pos);
            buf_.erase(0, pos + 1);
            return true;
        }
        const auto left = std::chrono::duration_cast<
            std::chrono::milliseconds>(deadline - Clock::now());
        if (left.count() <= 0)
            return false;
        pollfd p{fd_, POLLIN, 0};
        const int pr = ::poll(&p, 1, static_cast<int>(left.count()));
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (pr == 0)
            return false;
        char chunk[65536];
        const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
        if (n <= 0)
            return false;
        buf_.append(chunk, static_cast<std::size_t>(n));
    }
}

} // namespace chocoq::service
