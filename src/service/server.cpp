#include "service/server.hpp"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "common/error.hpp"

namespace chocoq::service
{

namespace
{

using Clock = std::chrono::steady_clock;

double
millisSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

/** Whether @p line is blank or a # comment (the JSONL skip rule). */
bool
isSkippableLine(const std::string &line)
{
    const std::size_t start = line.find_first_not_of(" \t\r");
    return start == std::string::npos || line[start] == '#';
}

SolveResult
lineError(long lineno, const std::string &message)
{
    SolveResult r;
    r.id = "line-" + std::to_string(lineno);
    r.status = "error";
    r.error = message;
    return r;
}

/** send(2) the whole buffer; MSG_NOSIGNAL so a client that disappeared
 * mid-result costs a dropped line, not a SIGPIPE'd process. Returns
 * false once the peer is gone. */
bool
sendAll(int fd, const char *data, std::size_t len)
{
    while (len > 0) {
        const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

/**
 * Graceful close: half-close the write side, then discard inbound
 * bytes until the peer closes (bounded by @p max_wait_ms). close(2) on
 * a socket with unread receive-queue data sends an RST, and an RST
 * makes the peer's stack discard delivered-but-unread data — i.e. the
 * very result/rejection lines just flushed. Reading to EOF first makes
 * the close clean; a stale peer costs at most the bound.
 */
void
drainAndClose(int fd, int max_wait_ms)
{
    ::shutdown(fd, SHUT_WR);
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(max_wait_ms);
    char sink[4096];
    while (true) {
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - Clock::now())
                .count();
        if (left <= 0)
            break;
        pollfd p{fd, POLLIN, 0};
        const int pr = ::poll(&p, 1, static_cast<int>(left));
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (pr == 0)
            break;
        if (::recv(fd, sink, sizeof sink, 0) <= 0)
            break; // EOF or error: the peer is done
    }
    ::close(fd);
}

/** Bound on waiting for a peer to acknowledge a close (see
 * drainAndClose). */
constexpr int kCloseLingerMs = 1000;

} // namespace

bool
utf8Valid(const std::string &s)
{
    const auto *p = reinterpret_cast<const unsigned char *>(s.data());
    const std::size_t n = s.size();
    for (std::size_t i = 0; i < n;) {
        const unsigned char c = p[i];
        std::size_t len;
        unsigned cp;
        if (c < 0x80) {
            ++i;
            continue;
        } else if ((c & 0xE0) == 0xC0) {
            len = 2;
            cp = c & 0x1Fu;
        } else if ((c & 0xF0) == 0xE0) {
            len = 3;
            cp = c & 0x0Fu;
        } else if ((c & 0xF8) == 0xF0) {
            len = 4;
            cp = c & 0x07u;
        } else {
            return false; // stray continuation or 0xF8+ lead byte
        }
        if (i + len > n)
            return false; // truncated sequence
        for (std::size_t k = 1; k < len; ++k) {
            if ((p[i + k] & 0xC0) != 0x80)
                return false;
            cp = (cp << 6) | (p[i + k] & 0x3Fu);
        }
        // Shortest form, no UTF-16 surrogates, <= U+10FFFF.
        static constexpr unsigned kMin[5] = {0, 0, 0x80, 0x800, 0x10000};
        if (cp < kMin[len] || cp > 0x10FFFF
            || (cp >= 0xD800 && cp <= 0xDFFF))
            return false;
        i += len;
    }
    return true;
}

ParsedLine
parseRequestLine(const std::string &line, long lineno, bool oversized,
                 const spec::SpecLimits &limits)
{
    // Stamp parse start so a traced job's timeline opens with the real
    // "parse" span (two clock reads per line, noise next to ms-scale
    // jobs). parseMs is service-internal, never a wire field.
    const auto parse_start = Clock::now();
    ParsedLine out;
    if (oversized) {
        out.error = lineError(
            lineno, "request line exceeds the size limit and was discarded");
        return out;
    }
    if (isSkippableLine(line)) {
        out.skip = true;
        return out;
    }
    if (!utf8Valid(line)) {
        out.error = lineError(lineno, "request line is not valid UTF-8");
        return out;
    }
    try {
        const Json v = Json::parse(line);
        // Control requests ride the same stream as jobs, discriminated
        // by a "type" field (a job object has none).
        if (const Json *type = v.isObject() ? v.find("type") : nullptr) {
            if (type->kind() != Json::Kind::String)
                CHOCOQ_FATAL("field 'type' must be a string");
            const std::string kind = type->asString();
            if (kind == "cancel") {
                const Json *id = v.find("id");
                if (!id || id->kind() != Json::Kind::String
                    || id->asString().empty())
                    CHOCOQ_FATAL("cancel request needs a non-empty "
                                 "string 'id' naming the job to cancel");
                out.control = ControlKind::Cancel;
                out.cancelId = id->asString();
            } else if (kind == "health") {
                out.control = ControlKind::Health;
            } else if (kind == "stats") {
                out.control = ControlKind::Stats;
            } else {
                CHOCOQ_FATAL("unknown request type '" << kind
                             << "' (expected cancel, health, or stats)");
            }
            out.ok = true;
            return out;
        }
        out.job = jobFromJson(v, limits);
    } catch (const std::exception &e) {
        // A malformed request fails that request, not the stream.
        out.error = lineError(lineno, e.what());
        return out;
    }
    if (out.job.id.empty())
        out.job.id = "job-" + std::to_string(lineno);
    out.job.parseMs = millisSince(parse_start);
    out.ok = true;
    return out;
}

Json
healthToJson(const SolveService::Health &h)
{
    Json out = Json::object();
    out.set("type", std::string("health"));
    out.set("status", std::string("ok"));
    out.set("workers", h.workers);
    out.set("queued", static_cast<double>(h.queued));
    out.set("running", static_cast<double>(h.running));
    out.set("inflight", static_cast<double>(h.inflight));
    out.set("stalled", h.stalledNow);
    out.set("stalls_flagged", static_cast<double>(h.stallsFlagged));
    out.set("cancelled_jobs", static_cast<double>(h.cancelledJobs));
    out.set("expired_jobs", static_cast<double>(h.expiredJobs));
    return out;
}

Json
statsToJson(const SolveService &service)
{
    Json out = Json::object();
    out.set("type", std::string("stats"));
    out.set("status", std::string("ok"));
    // The envelope keys lead; then every metricsToJson section
    // (counters/gauges/histograms/cache/registry/scheduler) in order.
    const Json m = service.metricsToJson();
    for (const auto &[key, value] : m.members())
        out.set(key, value);
    return out;
}

namespace
{

/**
 * Bounded line reader over an istream: like std::getline but a line
 * longer than @p max_bytes is reported oversized and skipped to its
 * newline without ever buffering more than max_bytes of it. Returns
 * false at EOF with nothing read. A truncated final line (EOF, no
 * newline) is returned like any other — it is still a request.
 */
bool
getBoundedLine(std::istream &in, std::string &line, std::size_t max_bytes,
               bool &oversized)
{
    line.clear();
    oversized = false;
    bool read_any = false;
    std::streambuf *sb = in.rdbuf();
    for (int ch = sb->sbumpc();; ch = sb->sbumpc()) {
        if (ch == std::streambuf::traits_type::eof()) {
            if (!read_any)
                in.setstate(std::ios::eofbit | std::ios::failbit);
            return read_any;
        }
        read_any = true;
        if (ch == '\n')
            return true;
        if (max_bytes > 0 && line.size() >= max_bytes) {
            oversized = true;
            line.clear(); // keep only the bound, drop the rest
            // Discard through the newline (or EOF) without buffering.
            for (int c = sb->sbumpc();
                 c != std::streambuf::traits_type::eof(); c = sb->sbumpc())
                if (c == '\n')
                    break;
            return true;
        }
        line.push_back(static_cast<char>(ch));
    }
}

} // namespace

// ----------------------------------------------------------- LineFramer

void
LineFramer::feed(const char *data, std::size_t n)
{
    if (discarding_) {
        // Inside the tail of an oversized line (already answered):
        // drop bytes unbuffered until its newline goes by.
        const auto *nl =
            static_cast<const char *>(std::memchr(data, '\n', n));
        if (nl == nullptr)
            return;
        discarding_ = false;
        const std::size_t skip = static_cast<std::size_t>(nl - data) + 1;
        data += skip;
        n -= skip;
        if (n == 0)
            return;
    }
    buf_.append(data, n);
}

bool
LineFramer::next(Line &out)
{
    const std::size_t pos = buf_.find('\n', start_);
    if (pos == std::string::npos) {
        if (!discarding_ && buf_.size() - start_ > maxLine_) {
            // Oversized line still missing its newline: fail it now
            // (bounded memory) and drop bytes until the newline
            // arrives. feed() handles the rest of the discard.
            out = Line{std::string(), ++lineno_, true};
            buf_.clear();
            start_ = 0;
            discarding_ = true;
            return true;
        }
        if (start_ > 0) { // one compaction per feed/drain cycle
            buf_.erase(0, start_);
            start_ = 0;
        }
        return false;
    }
    std::string text = buf_.substr(start_, pos - start_);
    start_ = pos + 1;
    if (start_ >= buf_.size()) {
        buf_.clear();
        start_ = 0;
    }
    out.lineno = ++lineno_;
    // A whole oversized line can arrive in one burst before the
    // partial-buffer bound trips: same oversize verdict either way.
    out.oversized = text.size() > maxLine_;
    out.text = out.oversized ? std::string() : std::move(text);
    return true;
}

bool
LineFramer::tail(Line &out)
{
    if (discarding_ || start_ >= buf_.size())
        return false;
    // A partial line over the bound already came back oversized from
    // next(), so a surviving tail is always within it.
    out.text = buf_.substr(start_);
    out.lineno = ++lineno_;
    out.oversized = false;
    buf_.clear();
    start_ = 0;
    return true;
}

StreamStats
runJsonlStream(std::istream &in, std::ostream &out, SolveService &service,
               const StreamLimits &limits)
{
    StreamStats stats;
    std::mutex out_mu;
    std::string line;
    long lineno = 0;
    bool oversized = false;
    while (getBoundedLine(in, line, limits.maxLineBytes, oversized)) {
        ++lineno;
        ParsedLine parsed =
            parseRequestLine(line, lineno, oversized, limits.spec);
        if (parsed.skip)
            continue;
        if (!parsed.ok) {
            std::lock_guard<std::mutex> lock(out_mu);
            out << resultToJson(parsed.error).dump() << "\n";
            out.flush();
            ++stats.failed;
            continue;
        }
        if (parsed.control == ControlKind::Cancel) {
            const int n = service.cancel(parsed.cancelId);
            ++stats.cancelRequests;
            Json ack = Json::object();
            ack.set("type", std::string("cancel"));
            ack.set("id", parsed.cancelId);
            ack.set("status", std::string("ok"));
            ack.set("cancelled", n);
            std::lock_guard<std::mutex> lock(out_mu);
            out << ack.dump() << "\n";
            out.flush();
            continue;
        }
        if (parsed.control == ControlKind::Health) {
            ++stats.healthProbes;
            const Json h = healthToJson(service.health());
            std::lock_guard<std::mutex> lock(out_mu);
            out << h.dump() << "\n";
            out.flush();
            continue;
        }
        if (parsed.control == ControlKind::Stats) {
            ++stats.statsProbes;
            const Json s = statsToJson(service);
            std::lock_guard<std::mutex> lock(out_mu);
            out << s.dump() << "\n";
            out.flush();
            continue;
        }
        ++stats.submitted;
        service.submit(std::move(parsed.job),
                       [&](const SolveResult &r) {
                           std::lock_guard<std::mutex> lock(out_mu);
                           out << resultToJson(r).dump() << "\n";
                           out.flush();
                           if (r.status != "ok")
                               ++stats.failed;
                       });
    }
    service.drain();
    return stats;
}

// --------------------------------------------------------------- Server

/** Per-connection state shared between the read loop (a dedicated
 * thread or an event-loop shard) and the result callbacks still in
 * flight on worker threads. */
struct Server::Connection
{
    int fd = -1;
    /** When accept() returned this connection, anchoring accept_ms and
     * idle_before_first_request_ms. */
    Clock::time_point acceptedAt;
    /** Idle-before-first-request recorded yet? Only the reader (thread
     * or shard) touches it. */
    bool sawFirstByte = false;
    /** Serializes result lines (callbacks fire on worker threads). In
     * event mode it also guards fd teardown, outBuf/outOff, and
     * lastWriteProgress. */
    std::mutex writeMu;
    /** When the first request byte arrived, anchoring first_byte_ms
     * (first request byte -> first response byte). Stamped once by the
     * reader, read by the response path; writeMu guards the handoff
     * because responses are written from worker threads. */
    Clock::time_point firstByteAt;
    bool firstByteStamped = false; // writeMu
    bool sawFirstWrite = false;    // writeMu
    /** This connection's jobs accepted but not yet written back. */
    std::atomic<long> inflight{0};
    /** Set when a write hit a dead peer; stops further writes early. */
    std::atomic<bool> broken{false};
    /** disconnectCancels already counted for this connection? Both the
     * read-error and failed-write paths can observe the same drop; the
     * stat is exactly-once per connection. */
    std::atomic<bool> disconnectCounted{false};

    // ---- Event-loop state (unused in thread-per-connection mode).
    // Owned by the shard thread except where a comment says otherwise.
    /** Owning shard; non-null exactly in event mode. */
    EventShard *shard = nullptr;
    LineFramer framer;
    /** Jobs accepted from this connection (per-connection limit). */
    long served = 0;
    /** Per-connection request limit hit: remaining buffered lines get
     * rejections, then the connection finishes. */
    bool limitClose = false;
    /** No more requests will be read (EOF, idle close, limit close, or
     * drain); the connection finishes once in-flight results flush. */
    bool readClosed = false;
    /** SHUT_WR sent; waiting (bounded) for the peer's close so the
     * flushed results are not RST-discarded — the event-loop
     * equivalent of drainAndClose. */
    bool wrShutdown = false;
    Clock::time_point closeDeadline;
    /** Idle-timeout clock. */
    Clock::time_point lastActivity;
    /** Parked over-capacity request (--queue-wait): reading pauses so
     * at most one request per connection waits and TCP backpressure
     * reaches the sender — the non-blocking twin of holding the
     * reader thread. */
    bool parked = false;
    SolveJob parkedJob;
    double parkedBudgetMs = 0.0;
    Clock::time_point parkedAt;
    /** Outbound bytes send(2) could not take, resumed via POLLOUT.
     * Guarded by writeMu; outOff is the consumed prefix. */
    std::string outBuf;
    std::size_t outOff = 0;
    /** Last time a send made progress (stall detection). writeMu. */
    Clock::time_point lastWriteProgress;

    /** Pending unsent bytes. writeMu must be held. */
    std::size_t pendingOutLocked() const { return outBuf.size() - outOff; }

    /** Cancellation tokens of this connection's in-flight jobs. The
     * token is registered before submit() and removed by the result
     * callback, so a connection drop can cancel exactly the jobs
     * nobody is left to read. */
    std::mutex tokensMu;
    std::vector<std::shared_ptr<CancelToken>> tokens;

    void addToken(const std::shared_ptr<CancelToken> &t)
    {
        std::lock_guard<std::mutex> lock(tokensMu);
        tokens.push_back(t);
    }

    void removeToken(const CancelToken *t)
    {
        std::lock_guard<std::mutex> lock(tokensMu);
        for (auto it = tokens.begin(); it != tokens.end(); ++it) {
            if (it->get() == t) {
                tokens.erase(it);
                return;
            }
        }
    }

    /** Returns how many in-flight tokens were cancelled. */
    int cancelAll(CancelReason reason)
    {
        std::lock_guard<std::mutex> lock(tokensMu);
        for (const auto &t : tokens)
            t->requestCancel(reason);
        return static_cast<int>(tokens.size());
    }
};

/**
 * One event-loop shard: a poll(2) thread owning a private connection
 * table. The only cross-thread surface is the incoming queue (accept
 * loop hands new connections over) and the self-pipe that interrupts
 * poll when another thread changes state the shard should notice (new
 * connection, buffered output, a job completion).
 */
struct Server::EventShard
{
    std::thread thread;
    /** Self-pipe: [0] read end polled by the shard, [1] written by
     * wakeShard. Both non-blocking. */
    int wakeRd = -1;
    int wakeWr = -1;
    std::mutex mu; // guards incoming
    std::vector<std::shared_ptr<Connection>> incoming;
    /** Shard-thread private. */
    std::vector<std::shared_ptr<Connection>> conns;

    ~EventShard()
    {
        if (wakeRd >= 0)
            ::close(wakeRd);
        if (wakeWr >= 0)
            ::close(wakeWr);
    }
};

Server::Server(SolveService &service, ServerOptions opts)
    : service_(service), opts_(opts),
      acceptMs_(service.metrics().histogram("server.accept_ms")),
      idleBeforeFirstRequestMs_(service.metrics().histogram(
          "server.idle_before_first_request_ms")),
      firstByteMs_(service.metrics().histogram("server.first_byte_ms")),
      connOpenGauge_(service.metrics().gauge("server.connections_open"))
{}

Server::~Server()
{
    drain();
}

void
Server::start()
{
    CHOCOQ_ASSERT(!started_, "Server::start called twice");
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        CHOCOQ_FATAL("socket(): " << std::strerror(errno));
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
    if (::inet_pton(AF_INET, opts_.bindAddress.c_str(), &addr.sin_addr)
        != 1) {
        ::close(listenFd_);
        listenFd_ = -1;
        CHOCOQ_FATAL("invalid bind address '" << opts_.bindAddress << "'");
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr), sizeof addr)
        != 0) {
        const int err = errno;
        ::close(listenFd_);
        listenFd_ = -1;
        CHOCOQ_FATAL("cannot bind " << opts_.bindAddress << ":"
                     << opts_.port << ": " << std::strerror(err));
    }
    if (::listen(listenFd_, opts_.backlog) != 0) {
        const int err = errno;
        ::close(listenFd_);
        listenFd_ = -1;
        CHOCOQ_FATAL("listen(): " << std::strerror(err));
    }
    socklen_t len = sizeof addr;
    ::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr), &len);
    port_ = ntohs(addr.sin_port);

    if (opts_.eventLoop) {
        const int n = std::max(1, opts_.eventLoopShards);
        for (int i = 0; i < n; ++i) {
            auto sh = std::make_unique<EventShard>();
            int pipefd[2];
            if (::pipe(pipefd) != 0) {
                ::close(listenFd_);
                listenFd_ = -1;
                shards_.clear();
                CHOCOQ_FATAL("pipe(): " << std::strerror(errno));
            }
            ::fcntl(pipefd[0], F_SETFL,
                    ::fcntl(pipefd[0], F_GETFL, 0) | O_NONBLOCK);
            ::fcntl(pipefd[1], F_SETFL,
                    ::fcntl(pipefd[1], F_GETFL, 0) | O_NONBLOCK);
            sh->wakeRd = pipefd[0];
            sh->wakeWr = pipefd[1];
            shards_.push_back(std::move(sh));
        }
        for (auto &sh : shards_) {
            EventShard *raw = sh.get();
            raw->thread = std::thread([this, raw] { eventShardLoop(*raw); });
        }
    }

    started_ = true;
    acceptThread_ = std::thread([this] { acceptLoop(); });
}

void
Server::reapFinishedConnections()
{
    std::vector<std::list<std::thread>::iterator> done;
    {
        std::lock_guard<std::mutex> lock(mu_);
        done.swap(finishedConns_);
    }
    for (const auto it : done) {
        it->join();
        std::lock_guard<std::mutex> lock(mu_);
        connThreads_.erase(it);
    }
}

void
Server::acceptLoop()
{
    while (!stop_.load(std::memory_order_relaxed)) {
        // Reap completed connection threads so a long-lived server does
        // not hold one exited-but-unjoined thread per connection served.
        reapFinishedConnections();

        pollfd p{listenFd_, POLLIN, 0};
        const int pr = ::poll(&p, 1, opts_.pollTickMs);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (pr == 0)
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            // Only a dead listener ends the loop. Resource pressure
            // (EMFILE/ENFILE/ENOBUFS/...) is transient: the next poll
            // tick retries once connections close and free fds —
            // breaking here would leave a live server that silently
            // never accepts again.
            if (errno == EBADF || errno == EINVAL)
                break;
            continue;
        }
        // Fault site conn_reset: the accepted connection is reset (RST,
        // via zero-linger close) before serving anything, modeling a
        // flaky network path or a proxy dropping connections.
        if (opts_.fault
            && opts_.fault->fire(FaultInjector::Site::ConnReset)) {
            linger lg{1, 0};
            ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
            ::close(fd);
            faultConnResets_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }

        // Result lines are small and latency-sensitive; don't batch them.
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        if (opts_.sendBufferBytes > 0)
            ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &opts_.sendBufferBytes,
                         sizeof opts_.sendBufferBytes);
        // Bound result writes: a client that stops reading must cost a
        // broken connection, not a solver worker blocked in send().
        if (opts_.sendTimeoutMs > 0) {
            timeval tv{};
            tv.tv_sec = opts_.sendTimeoutMs / 1000;
            tv.tv_usec = (opts_.sendTimeoutMs % 1000) * 1000;
            ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
        }

        // Thread-per-connection means the connection bound is also the
        // thread bound; past it, answer with one rejection and close.
        if (opts_.maxConnections > 0
            && connectionsOpen_.load(std::memory_order_relaxed)
                   >= static_cast<long>(opts_.maxConnections)) {
            SolveResult r;
            r.status = "rejected";
            r.error = "server at connection capacity ("
                      + std::to_string(opts_.maxConnections)
                      + " open); retry later";
            const std::string line = resultToJson(r).dump() + "\n";
            sendAll(fd, line.data(), line.size());
            // Non-blocking discard of whatever arrived with the
            // connect, so close() doesn't RST the rejection line away
            // (must not stall the accept loop; a peer still mid-write
            // can race this, which costs it only this line).
            char sink[4096];
            while (::recv(fd, sink, sizeof sink, MSG_DONTWAIT) > 0) {}
            ::close(fd);
            connectionsRejected_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }

        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        conn->acceptedAt = Clock::now();
        const long accepted =
            connectionsAccepted_.fetch_add(1, std::memory_order_relaxed);
        connectionsOpen_.fetch_add(1, std::memory_order_relaxed);
        connOpenGauge_.add(1.0);

        if (!shards_.empty()) {
            // Event mode: non-blocking fd, round-robin shard handoff.
            // No thread spawn, no shared connection table — the shard
            // owns it from here.
            ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
            conn->framer = LineFramer(opts_.maxLineBytes);
            conn->lastActivity = Clock::now();
            EventShard &sh = *shards_[static_cast<std::size_t>(accepted)
                                      % shards_.size()];
            conn->shard = &sh;
            {
                std::lock_guard<std::mutex> lock(sh.mu);
                sh.incoming.push_back(std::move(conn));
            }
            wakeShard(sh);
            continue;
        }

        std::lock_guard<std::mutex> lock(mu_);
        connThreads_.emplace_back();
        const auto self = std::prev(connThreads_.end());
        try {
            *self = std::thread([this, conn, self] {
                serveConnection(conn);
                // Hand the thread object back for reaping (last action:
                // the reaper's join() still waits for this function to
                // return).
                std::lock_guard<std::mutex> lock(mu_);
                finishedConns_.push_back(self);
            });
        } catch (const std::system_error &) {
            // Thread exhaustion is transient like EMFILE: answer like
            // the connection cap (no silent drop), undo the accept
            // accounting, keep the server alive.
            connThreads_.erase(self);
            SolveResult r;
            r.status = "rejected";
            r.error = "server cannot spawn a connection handler; "
                      "retry later";
            const std::string line = resultToJson(r).dump() + "\n";
            sendAll(fd, line.data(), line.size());
            ::close(fd);
            connectionsAccepted_.fetch_sub(1, std::memory_order_relaxed);
            connectionsOpen_.fetch_sub(1, std::memory_order_relaxed);
            connOpenGauge_.add(-1.0);
            connectionsRejected_.fetch_add(1, std::memory_order_relaxed);
        }
    }
}

void
Server::wakeShard(EventShard &sh)
{
    // Self-pipe: interrupt the shard's poll. Non-blocking write; a
    // full pipe already has a wake pending, so EAGAIN is success.
    const char b = 1;
    [[maybe_unused]] const ssize_t n = ::write(sh.wakeWr, &b, 1);
}

void
Server::markBrokenLocked(const std::shared_ptr<Connection> &conn)
{
    conn->broken.store(true, std::memory_order_relaxed);
    // The peer is provably gone: nobody will read this connection's
    // remaining results, so stop computing them.
    cancelConnectionJobs(conn);
    if (conn->shard != nullptr)
        wakeShard(*conn->shard); // let the shard close and unregister
}

bool
Server::flushOutputLocked(const std::shared_ptr<Connection> &conn)
{
    while (conn->outOff < conn->outBuf.size()) {
        const ssize_t n =
            ::send(conn->fd, conn->outBuf.data() + conn->outOff,
                   conn->outBuf.size() - conn->outOff,
                   MSG_NOSIGNAL | MSG_DONTWAIT);
        if (n > 0) {
            conn->outOff += static_cast<std::size_t>(n);
            conn->lastWriteProgress = Clock::now();
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return true; // kernel buffer full: resume via POLLOUT
        markBrokenLocked(conn);
        return false;
    }
    conn->outBuf.clear();
    conn->outOff = 0;
    return true;
}

void
Server::writeLine(const std::shared_ptr<Connection> &conn,
                  const std::string &line)
{
    if (conn->broken.load(std::memory_order_relaxed))
        return;
    std::lock_guard<std::mutex> lock(conn->writeMu);

    if (conn->shard == nullptr) {
        // Thread-per-connection: a plain blocking send, bounded by the
        // socket's SO_SNDTIMEO.
        std::string framed = line;
        framed.push_back('\n');
        if (!sendAll(conn->fd, framed.data(), framed.size())) {
            conn->broken.store(true, std::memory_order_relaxed);
            cancelConnectionJobs(conn);
            return;
        }
        resultsWritten_.fetch_add(1, std::memory_order_relaxed);
        if (!conn->sawFirstWrite && conn->firstByteStamped) {
            conn->sawFirstWrite = true;
            firstByteMs_.record(millisSince(conn->firstByteAt));
        }
        return;
    }

    // Event mode: append, then flush opportunistically — the common
    // case completes right here and the loop never sees POLLOUT. A
    // partial send leaves the remainder buffered; the shard resumes it
    // when the socket drains (never blocking this worker thread).
    if (conn->fd < 0)
        return; // already finalized
    const bool hadPending = conn->outOff < conn->outBuf.size();
    conn->outBuf.append(line);
    conn->outBuf.push_back('\n');
    resultsWritten_.fetch_add(1, std::memory_order_relaxed);
    if (!conn->sawFirstWrite && conn->firstByteStamped) {
        conn->sawFirstWrite = true;
        firstByteMs_.record(millisSince(conn->firstByteAt));
    }
    if (!hadPending) {
        conn->lastWriteProgress = Clock::now();
        if (!flushOutputLocked(conn))
            return;
        if (conn->outOff < conn->outBuf.size()) {
            partialWrites_.fetch_add(1, std::memory_order_relaxed);
            wakeShard(*conn->shard); // start polling POLLOUT
        }
    }
}

bool
Server::tryReserveInflight()
{
    // Reserve the slot first (fetch_add, not load-then-add): concurrent
    // readers racing a plain check could all pass it and overshoot the
    // bound by readers-1 jobs.
    const long reserved = inflight_.fetch_add(1, std::memory_order_relaxed);
    if (opts_.maxInflight > 0
        && reserved >= static_cast<long>(opts_.maxInflight)) {
        inflight_.fetch_sub(1, std::memory_order_relaxed);
        return false;
    }
    return true;
}

bool
Server::reserveInflightSlot(SolveJob &job)
{
    if (tryReserveInflight())
        return true;
    if (opts_.queueWaitMs <= 0)
        return false;

    // Bounded wait-queue: hold this request on its reader thread until
    // a slot frees, its deadline_ms would expire in queue, or the
    // configured wait cap runs out. Drain (stop_) also ends the wait —
    // a shutdown must not hang on a full queue.
    double budget_ms = opts_.queueWaitMs;
    if (job.deadlineMs > 0.0)
        budget_ms = std::min(budget_ms, job.deadlineMs);
    const auto start = Clock::now();
    while (!stop_.load(std::memory_order_relaxed)) {
        const double waited = millisSince(start);
        if (waited >= budget_ms)
            break;
        const double left = budget_ms - waited;
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min<long long>(opts_.pollTickMs,
                                static_cast<long long>(left) + 1)));
        if (!tryReserveInflight())
            continue;
        if (job.deadlineMs > 0.0) {
            // Queue time counts against the deadline; a slot that
            // frees exactly as the deadline passes is still a timeout.
            job.deadlineMs -= millisSince(start);
            if (job.deadlineMs <= 0.0) {
                inflight_.fetch_sub(1, std::memory_order_relaxed);
                return false;
            }
        }
        queueWaited_.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    return false;
}

void
Server::handleControl(const std::shared_ptr<Connection> &conn,
                      const ParsedLine &parsed)
{
    if (parsed.control == ControlKind::Cancel) {
        // Cancellation is server-wide by id, not per-connection: an
        // operator can open a second connection to cancel a job a
        // wedged first connection submitted.
        const int n = service_.cancel(parsed.cancelId);
        cancelRequests_.fetch_add(1, std::memory_order_relaxed);
        Json ack = Json::object();
        ack.set("type", std::string("cancel"));
        ack.set("id", parsed.cancelId);
        ack.set("status", std::string("ok"));
        ack.set("cancelled", n);
        writeLine(conn, ack.dump());
        return;
    }
    if (parsed.control == ControlKind::Stats) {
        statsProbes_.fetch_add(1, std::memory_order_relaxed);
        Json s = statsToJson(service_);
        // Server-level section: the front-end's own counters, which the
        // embedded service cannot see.
        Json server = Json::object();
        const ServerStats ss = stats();
        server.set("connections_accepted",
                   static_cast<double>(ss.connectionsAccepted));
        server.set("connections_open",
                   static_cast<double>(ss.connectionsOpen));
        server.set("connections_rejected",
                   static_cast<double>(ss.connectionsRejected));
        server.set("requests_accepted",
                   static_cast<double>(ss.requestsAccepted));
        server.set("results_written",
                   static_cast<double>(ss.resultsWritten));
        server.set("rejected", static_cast<double>(ss.rejected));
        server.set("queue_waited", static_cast<double>(ss.queueWaited));
        server.set("line_errors", static_cast<double>(ss.lineErrors));
        server.set("idle_closes", static_cast<double>(ss.idleCloses));
        server.set("cancel_requests",
                   static_cast<double>(ss.cancelRequests));
        server.set("health_probes",
                   static_cast<double>(ss.healthProbes));
        server.set("stats_probes", static_cast<double>(ss.statsProbes));
        server.set("jobs_failed", static_cast<double>(ss.jobsFailed));
        server.set("jobs_cancelled",
                   static_cast<double>(ss.jobsCancelled));
        server.set("disconnect_cancels",
                   static_cast<double>(ss.disconnectCancels));
        server.set("fault_conn_resets",
                   static_cast<double>(ss.faultConnResets));
        server.set("partial_writes",
                   static_cast<double>(ss.partialWrites));
        server.set("event_loop", opts_.eventLoop);
        server.set("inflight",
                   static_cast<double>(
                       inflight_.load(std::memory_order_relaxed)));
        s.set("server", std::move(server));
        writeLine(conn, s.dump());
        return;
    }
    healthProbes_.fetch_add(1, std::memory_order_relaxed);
    Json h = healthToJson(service_.health());
    // Server-level view rides along with the service's counters.
    h.set("connections_open",
          static_cast<double>(
              connectionsOpen_.load(std::memory_order_relaxed)));
    h.set("server_inflight",
          static_cast<double>(inflight_.load(std::memory_order_relaxed)));
    writeLine(conn, h.dump());
}

void
Server::cancelConnectionJobs(const std::shared_ptr<Connection> &conn)
{
    // Requesting cancellation is idempotent per token; the *stat* is
    // exactly-once per connection — the read-error and failed-write
    // paths can both observe the same drop, and only the first counts.
    if (conn->cancelAll(CancelReason::Disconnected) > 0
        && !conn->disconnectCounted.exchange(true,
                                             std::memory_order_relaxed))
        disconnectCancels_.fetch_add(1, std::memory_order_relaxed);
}

void
Server::rejectCapacity(const std::shared_ptr<Connection> &conn,
                       const std::string &id)
{
    SolveResult r;
    r.id = id;
    r.status = "rejected";
    r.error = "server at capacity (" + std::to_string(opts_.maxInflight)
              + " jobs in flight"
              + (opts_.queueWaitMs > 0 ? ", wait queue timed out" : "")
              + "); retry later";
    rejected_.fetch_add(1, std::memory_order_relaxed);
    writeLine(conn, resultToJson(r).dump());
}

void
Server::rejectAtLimit(const std::shared_ptr<Connection> &conn,
                      const std::string &line, long lineno)
{
    // Echo the request id when the over-limit line parses, so the
    // client can correlate the rejection. Only the id is read — this is
    // the load-shedding path, so it must not pay full request
    // validation (in particular not inline-problem parsing and
    // canonicalization) for a line it is about to reject.
    std::string id;
    if (utf8Valid(line)) { // never echo invalid bytes back out
        try {
            id = Json::parse(line).getString("id", "");
            if (id.empty())
                id = "job-" + std::to_string(lineno);
        } catch (const std::exception &) {
            // fall through to the synthesized line id
        }
    }
    SolveResult r;
    r.id = id.empty() ? "line-" + std::to_string(lineno) : id;
    r.status = "rejected";
    r.error = "per-connection request limit ("
              + std::to_string(opts_.maxRequestsPerConn)
              + ") reached; open a new connection";
    rejected_.fetch_add(1, std::memory_order_relaxed);
    writeLine(conn, resultToJson(r).dump());
}

void
Server::submitAccepted(const std::shared_ptr<Connection> &conn,
                       SolveJob &&job)
{
    requestsAccepted_.fetch_add(1, std::memory_order_relaxed);
    conn->inflight.fetch_add(1, std::memory_order_relaxed);
    // Track the token before submitting so there is no window where the
    // job runs but a connection drop cannot reach it.
    auto token = std::make_shared<CancelToken>();
    conn->addToken(token);
    service_.submit(std::move(job),
                    [this, conn, raw_token = token.get()](
                        const SolveResult &r) {
                        conn->removeToken(raw_token);
                        if (r.status != "ok")
                            jobsFailed_.fetch_add(
                                1, std::memory_order_relaxed);
                        if (r.status == "cancelled")
                            jobsCancelled_.fetch_add(
                                1, std::memory_order_relaxed);
                        writeLine(conn, resultToJson(r).dump());
                        conn->inflight.fetch_sub(1,
                                                 std::memory_order_release);
                        inflight_.fetch_sub(1, std::memory_order_relaxed);
                        // Completion changes the finish/park calculus;
                        // don't leave it to the next tick.
                        if (conn->shard != nullptr)
                            wakeShard(*conn->shard);
                    },
                    token);
}

bool
Server::handleLine(const std::shared_ptr<Connection> &conn,
                   const std::string &line, long lineno)
{
    ParsedLine parsed =
        parseRequestLine(line, lineno, false, opts_.specLimits);
    if (parsed.skip)
        return false;
    if (!parsed.ok) {
        lineErrors_.fetch_add(1, std::memory_order_relaxed);
        writeLine(conn, resultToJson(parsed.error).dump());
        return false;
    }
    if (parsed.control != ControlKind::None) {
        // Control requests never consume an in-flight slot or the
        // per-connection budget: they must work on a loaded server.
        handleControl(conn, parsed);
        return false;
    }
    // Backpressure: a request over the server-wide in-flight bound is
    // answered with "rejected" instead of queueing without bound —
    // immediately by default, after the bounded wait queue when
    // --queue-wait is configured.
    if (!reserveInflightSlot(parsed.job)) {
        rejectCapacity(conn, parsed.job.id);
        return false;
    }
    submitAccepted(conn, std::move(parsed.job));
    return true;
}

void
Server::serveConnection(const std::shared_ptr<Connection> &conn)
{
    // accept -> handler-thread start: thread-spawn plus scheduling
    // latency, the server-controlled half of connection setup
    // (server.accept_ms / accept_ms_avg). The remainder to the first
    // received byte (server.idle_before_first_request_ms) is the
    // client's connect-to-send turnaround plus the network — open-loop
    // harnesses stretch it arbitrarily, which is why it is split out of
    // server.first_byte_ms (first request byte -> first response byte).
    acceptMs_.record(millisSince(conn->acceptedAt));
    // The bounded framing state machine is shared with the event loop
    // (and with batch mode's istream reader in spirit): oversized
    // lines fail per-line without unbounded buffering, and a truncated
    // final line is still a request.
    LineFramer framer(opts_.maxLineBytes);
    long served = 0;
    /** A buffered partial line must still be answered when the read
     * loop ends without its newline (EOF half-close or idle close) —
     * never silence for received bytes. */
    bool answer_tail = false;
    auto last_activity = Clock::now();

    const auto atConnLimit = [&] {
        return opts_.maxRequestsPerConn > 0
               && served >= opts_.maxRequestsPerConn;
    };

    while (!stop_.load(std::memory_order_relaxed)) {
        pollfd p{conn->fd, POLLIN, 0};
        const int pr = ::poll(&p, 1, opts_.pollTickMs);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (pr == 0) {
            // A running job counts as activity: the idle window starts
            // from (at most one tick before) its last result, so a
            // long job's client keeps the full grace period to follow
            // up, not zero.
            if (conn->inflight.load(std::memory_order_acquire) > 0) {
                last_activity = Clock::now();
            } else if (opts_.idleTimeoutMs > 0
                       && millisSince(last_activity)
                              > opts_.idleTimeoutMs) {
                idleCloses_.fetch_add(1, std::memory_order_relaxed);
                answer_tail = true;
                break;
            }
            continue;
        }
        char chunk[65536];
        const ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
        if (n == 0) {
            // EOF is a half-close, not a drop: the client is done
            // sending but still reading (socket_client works exactly
            // this way), so in-flight jobs run to completion and flush.
            answer_tail = true;
            break;
        }
        if (n < 0) {
            if (errno == EINTR)
                continue;
            // A read error (ECONNRESET and kin) means the client is
            // gone; nobody will read this connection's results, so
            // cancel its in-flight jobs instead of finishing them.
            cancelConnectionJobs(conn);
            break;
        }
        // Fault site read_delay: a pause between the socket read and
        // request processing, modeling a saturated or lossy link.
        if (opts_.fault
            && opts_.fault->fire(FaultInjector::Site::ReadDelay))
            std::this_thread::sleep_for(std::chrono::milliseconds(
                opts_.fault->durationMs(FaultInjector::Site::ReadDelay)));
        last_activity = Clock::now();
        if (!conn->sawFirstByte) {
            conn->sawFirstByte = true;
            idleBeforeFirstRequestMs_.record(
                millisSince(conn->acceptedAt));
            std::lock_guard<std::mutex> lock(conn->writeMu);
            conn->firstByteAt = Clock::now();
            conn->firstByteStamped = true;
        }
        framer.feed(chunk, static_cast<std::size_t>(n));

        bool close_now = false;
        LineFramer::Line ln;
        while (framer.next(ln)) {
            if (ln.oversized) {
                lineErrors_.fetch_add(1, std::memory_order_relaxed);
                writeLine(conn,
                          resultToJson(parseRequestLine("", ln.lineno,
                                                        /*oversized=*/true)
                                           .error)
                              .dump());
                continue;
            }
            if (isSkippableLine(ln.text))
                continue;
            if (close_now || atConnLimit()) {
                // Never silence: every pipelined request at or behind
                // the limit gets its own rejection before the close (a
                // partial tail died unreceived — the close itself is
                // its answer).
                rejectAtLimit(conn, ln.text, ln.lineno);
                close_now = true;
                continue;
            }
            // Only accepted jobs consume the per-connection budget
            // (malformed and capacity-rejected lines do not).
            if (handleLine(conn, ln.text, ln.lineno))
                ++served;
        }
        if (close_now)
            break;
    }

    // Truncated final line (EOF or idle close without a newline) is
    // still a request: a half-written job must produce a response — an
    // error, or the limit rejection — never silence.
    LineFramer::Line tail;
    if (answer_tail && framer.tail(tail) && !isSkippableLine(tail.text)) {
        if (atConnLimit())
            rejectAtLimit(conn, tail.text, tail.lineno);
        else
            handleLine(conn, tail.text, tail.lineno);
    }

    // Flush before close: every accepted job's result reaches the wire
    // (drain and idle-close both wait here).
    while (conn->inflight.load(std::memory_order_acquire) > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    drainAndClose(conn->fd, kCloseLingerMs);
    conn->fd = -1;
    connectionsOpen_.fetch_sub(1, std::memory_order_relaxed);
    connOpenGauge_.add(-1.0);
}

// ------------------------------------------------- event-loop front-end
//
// Connection state machine (one instance per connection, advanced only
// by its owning shard thread; docs/service.md#event-loop-front-end has
// the operator-facing version):
//
//   OPEN --(EOF / idle / limit / drain)--> READ_CLOSED
//   OPEN --(full server + --queue-wait)--> PARKED --> OPEN
//   READ_CLOSED --(inflight==0 && outBuf empty)--> WR_SHUTDOWN
//   WR_SHUTDOWN --(peer EOF | linger deadline)--> CLOSED
//   any --(recv error / failed write / write stall)--> BROKEN --> CLOSED
//
// Writes are the only cross-thread traffic: worker callbacks append
// under writeMu and flush opportunistically; what the kernel refuses
// rides in outBuf until the shard sees POLLOUT.

void
Server::eventHandleReadable(EventShard &sh,
                            const std::shared_ptr<Connection> &conn)
{
    (void)sh;
    if (conn->fd < 0 || conn->broken.load(std::memory_order_relaxed))
        return;
    char chunk[65536];
    const ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
    if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
            return;
        // ECONNRESET and kin: the client is gone; nobody will read
        // this connection's results, so cancel its in-flight jobs.
        cancelConnectionJobs(conn);
        conn->broken.store(true, std::memory_order_relaxed);
        eventFinalize(conn);
        return;
    }
    if (conn->wrShutdown) {
        if (n == 0)
            eventFinalize(conn); // clean close handshake complete
        return; // discard late bytes, like drainAndClose's sink
    }
    if (n == 0) {
        // EOF is a half-close, not a drop: answer the truncated tail,
        // then let in-flight jobs finish and their results flush.
        if (!conn->readClosed) {
            eventAnswerTail(conn);
            conn->readClosed = true;
        }
        return;
    }
    if (conn->readClosed)
        return; // no longer reading; late bytes die at close
    // Fault site read_delay: a pause after the socket read, modeling a
    // saturated or lossy link. It deliberately stalls the whole shard —
    // that is exactly what saturation does to an event loop.
    if (opts_.fault && opts_.fault->fire(FaultInjector::Site::ReadDelay))
        std::this_thread::sleep_for(std::chrono::milliseconds(
            opts_.fault->durationMs(FaultInjector::Site::ReadDelay)));
    conn->lastActivity = Clock::now();
    if (!conn->sawFirstByte) {
        conn->sawFirstByte = true;
        idleBeforeFirstRequestMs_.record(millisSince(conn->acceptedAt));
        std::lock_guard<std::mutex> lock(conn->writeMu);
        conn->firstByteAt = Clock::now();
        conn->firstByteStamped = true;
    }
    conn->framer.feed(chunk, static_cast<std::size_t>(n));
    eventProcessBuffer(conn);
}

void
Server::eventProcessBuffer(const std::shared_ptr<Connection> &conn)
{
    if (conn->fd < 0 || conn->broken.load(std::memory_order_relaxed)
        || conn->parked)
        return;
    const auto atConnLimit = [&] {
        return opts_.maxRequestsPerConn > 0
               && conn->served >= opts_.maxRequestsPerConn;
    };
    LineFramer::Line ln;
    while (!conn->parked && !conn->broken.load(std::memory_order_relaxed)
           && conn->framer.next(ln)) {
        if (ln.oversized) {
            lineErrors_.fetch_add(1, std::memory_order_relaxed);
            writeLine(conn,
                      resultToJson(parseRequestLine("", ln.lineno,
                                                    /*oversized=*/true)
                                       .error)
                          .dump());
            continue;
        }
        if (isSkippableLine(ln.text))
            continue;
        if (conn->limitClose || atConnLimit()) {
            // Never silence: every buffered request at or behind the
            // limit gets its own rejection before the close.
            rejectAtLimit(conn, ln.text, ln.lineno);
            conn->limitClose = true;
            continue;
        }
        eventDispatchLine(conn, std::move(ln));
    }
    if (conn->limitClose)
        conn->readClosed = true;
}

void
Server::eventDispatchLine(const std::shared_ptr<Connection> &conn,
                          LineFramer::Line &&ln)
{
    ParsedLine parsed =
        parseRequestLine(ln.text, ln.lineno, false, opts_.specLimits);
    if (parsed.skip)
        return;
    if (!parsed.ok) {
        lineErrors_.fetch_add(1, std::memory_order_relaxed);
        writeLine(conn, resultToJson(parsed.error).dump());
        return;
    }
    if (parsed.control != ControlKind::None) {
        // Control requests never consume an in-flight slot or the
        // per-connection budget: they must work on a loaded server.
        handleControl(conn, parsed);
        return;
    }
    if (tryReserveInflight()) {
        ++conn->served;
        submitAccepted(conn, std::move(parsed.job));
        return;
    }
    if (opts_.queueWaitMs > 0 && !stop_.load(std::memory_order_relaxed)) {
        // Park instead of blocking a reader thread: reading pauses so
        // at most one request per connection is in limbo (TCP
        // backpressure reaches the sender, exactly like the threaded
        // mode holding its reader), and the shard retries every tick.
        conn->parked = true;
        conn->parkedBudgetMs = opts_.queueWaitMs;
        if (parsed.job.deadlineMs > 0.0)
            conn->parkedBudgetMs =
                std::min(conn->parkedBudgetMs, parsed.job.deadlineMs);
        conn->parkedJob = std::move(parsed.job);
        conn->parkedAt = Clock::now();
        return;
    }
    rejectCapacity(conn, parsed.job.id);
}

void
Server::eventAnswerTail(const std::shared_ptr<Connection> &conn)
{
    // A parked request precedes any tail bytes; they stay buffered
    // until the park resolves (EOF is then re-observed by the loop).
    LineFramer::Line tail;
    if (conn->parked || !conn->framer.tail(tail)
        || isSkippableLine(tail.text))
        return;
    if (conn->limitClose
        || (opts_.maxRequestsPerConn > 0
            && conn->served >= opts_.maxRequestsPerConn)) {
        rejectAtLimit(conn, tail.text, tail.lineno);
        return;
    }
    eventDispatchLine(conn, std::move(tail));
}

void
Server::eventResolveParked(const std::shared_ptr<Connection> &conn,
                           bool draining)
{
    const double waited = millisSince(conn->parkedAt);
    if (!draining && waited < conn->parkedBudgetMs) {
        if (!tryReserveInflight())
            return; // budget left: keep waiting
        SolveJob job = std::move(conn->parkedJob);
        conn->parked = false;
        conn->parkedJob = SolveJob{};
        if (job.deadlineMs > 0.0) {
            // Queue time counts against the deadline; a slot that
            // frees exactly as the deadline passes is still a timeout.
            job.deadlineMs -= waited;
            if (job.deadlineMs <= 0.0) {
                inflight_.fetch_sub(1, std::memory_order_relaxed);
                rejectCapacity(conn, job.id);
                eventProcessBuffer(conn);
                return;
            }
        }
        queueWaited_.fetch_add(1, std::memory_order_relaxed);
        ++conn->served;
        submitAccepted(conn, std::move(job));
        eventProcessBuffer(conn); // resume lines queued behind the park
        return;
    }
    // Budget exhausted (or drain): the bounded wait ends in rejection,
    // like the threaded mode's reserveInflightSlot giving up.
    SolveJob job = std::move(conn->parkedJob);
    conn->parked = false;
    conn->parkedJob = SolveJob{};
    rejectCapacity(conn, job.id);
    eventProcessBuffer(conn);
}

void
Server::eventHousekeep(EventShard &sh,
                       const std::shared_ptr<Connection> &conn,
                       bool draining)
{
    (void)sh;
    if (conn->fd < 0)
        return;
    if (conn->broken.load(std::memory_order_relaxed)) {
        eventFinalize(conn);
        return;
    }
    const auto now = Clock::now();

    // Drain: stop reading new requests (the threaded loop's stop_
    // break); in-flight jobs still finish and flush below.
    if (draining && !conn->readClosed)
        conn->readClosed = true;

    if (conn->parked)
        eventResolveParked(conn, draining);

    // Write-stall detection: pending output making no progress for the
    // send timeout means the client stopped reading — the event-mode
    // SO_SNDTIMEO (kernel timeouts don't apply to non-blocking sends).
    if (opts_.sendTimeoutMs > 0) {
        std::lock_guard<std::mutex> lock(conn->writeMu);
        if (conn->pendingOutLocked() > 0
            && millisSince(conn->lastWriteProgress) > opts_.sendTimeoutMs)
            markBrokenLocked(conn);
    }
    if (conn->broken.load(std::memory_order_relaxed)) {
        eventFinalize(conn);
        return;
    }

    // Idle timeout, only while still reading. A running or parked job
    // counts as activity: the idle window starts from (at most one
    // tick after) its last result.
    if (!conn->readClosed) {
        if (conn->inflight.load(std::memory_order_acquire) > 0
            || conn->parked) {
            conn->lastActivity = now;
        } else if (opts_.idleTimeoutMs > 0
                   && millisSince(conn->lastActivity)
                          > opts_.idleTimeoutMs) {
            idleCloses_.fetch_add(1, std::memory_order_relaxed);
            eventAnswerTail(conn);
            conn->readClosed = true;
        }
    }

    if (conn->wrShutdown) {
        if (now >= conn->closeDeadline)
            eventFinalize(conn); // stale peer: the bounded wait is up
        return;
    }

    // Finished: nothing more will be read and everything accepted has
    // flushed. Half-close and wait (bounded) for the peer's close so
    // the flushed results are not RST-discarded — drainAndClose, event
    // style.
    bool pending_out;
    {
        std::lock_guard<std::mutex> lock(conn->writeMu);
        pending_out = conn->pendingOutLocked() > 0;
    }
    if (conn->readClosed && !conn->parked && !pending_out
        && conn->inflight.load(std::memory_order_acquire) == 0) {
        ::shutdown(conn->fd, SHUT_WR);
        conn->wrShutdown = true;
        conn->closeDeadline =
            now + std::chrono::milliseconds(kCloseLingerMs);
    }
}

void
Server::eventFinalize(const std::shared_ptr<Connection> &conn)
{
    if (conn->fd < 0)
        return;
    // A non-graceful close (broken/reset) can still have jobs in
    // flight: cancel them (exactly-once stat inside). Graceful closes
    // only get here at inflight == 0.
    if (conn->broken.load(std::memory_order_relaxed))
        cancelConnectionJobs(conn);
    {
        // fd teardown under writeMu: a worker mid-writeLine must never
        // see the fd recycled under it.
        std::lock_guard<std::mutex> lock(conn->writeMu);
        ::close(conn->fd);
        conn->fd = -1;
    }
    conn->parked = false;
    connectionsOpen_.fetch_sub(1, std::memory_order_relaxed);
    connOpenGauge_.add(-1.0);
}

void
Server::eventShardLoop(EventShard &sh)
{
    std::vector<pollfd> pfds;
    std::vector<std::shared_ptr<Connection>> polled;
    while (true) {
        // Intake connections the accept loop handed over.
        {
            std::vector<std::shared_ptr<Connection>> fresh;
            {
                std::lock_guard<std::mutex> lock(sh.mu);
                fresh.swap(sh.incoming);
            }
            for (auto &c : fresh) {
                // accept -> shard pickup: the event-mode analogue of
                // the thread-spawn latency this histogram was built to
                // expose.
                acceptMs_.record(millisSince(c->acceptedAt));
                sh.conns.push_back(std::move(c));
            }
        }
        const bool draining = stop_.load(std::memory_order_relaxed);

        // Housekeep every connection, drop the finalized ones, and
        // build the poll set from what remains.
        pfds.clear();
        polled.clear();
        pfds.push_back(pollfd{sh.wakeRd, POLLIN, 0});
        for (std::size_t i = 0; i < sh.conns.size();) {
            const auto conn = sh.conns[i]; // keep alive across erase
            eventHousekeep(sh, conn, draining);
            if (conn->fd < 0) {
                sh.conns[i] = std::move(sh.conns.back());
                sh.conns.pop_back();
                continue;
            }
            short ev = 0;
            std::size_t pending;
            {
                std::lock_guard<std::mutex> lock(conn->writeMu);
                pending = conn->pendingOutLocked();
            }
            if (pending > 0)
                ev |= POLLOUT;
            // Write backpressure: a connection whose output buffer is
            // over the bound stops being read until it drains (TCP
            // then pushes back on the sender).
            const bool paused = opts_.maxWriteBufferBytes > 0
                                && pending >= opts_.maxWriteBufferBytes;
            if (conn->wrShutdown) {
                ev |= POLLIN; // drainAndClose sink: read to peer EOF
            } else if (!conn->readClosed && !conn->parked && !paused) {
                ev |= POLLIN;
            }
            if (ev != 0) {
                // A connection wanting nothing stays out of the poll
                // set entirely: poll(2) reports POLLHUP/POLLERR even
                // for events=0 entries, which would busy-spin the loop
                // on a dropped-but-parked peer.
                pfds.push_back(pollfd{conn->fd, ev, 0});
                polled.push_back(conn);
            }
            ++i;
        }

        if (draining && sh.conns.empty()) {
            std::lock_guard<std::mutex> lock(sh.mu);
            if (sh.incoming.empty())
                break; // drained: every connection finished and closed
            continue;
        }

        const int pr = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                              opts_.pollTickMs);
        if (pr < 0) {
            if (errno != EINTR)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1)); // transient; keep ticking
            continue;
        }
        if (pr == 0)
            continue; // tick: housekeeping runs at the loop top
        if ((pfds[0].revents & POLLIN) != 0) {
            char sink[256];
            while (::read(sh.wakeRd, sink, sizeof sink) > 0) {}
        }
        for (std::size_t k = 0; k < polled.size(); ++k) {
            const short re = pfds[k + 1].revents;
            if (re == 0)
                continue;
            const auto &conn = polled[k];
            if ((re & POLLOUT) != 0) {
                std::lock_guard<std::mutex> lock(conn->writeMu);
                if (conn->fd >= 0
                    && !conn->broken.load(std::memory_order_relaxed))
                    flushOutputLocked(conn);
            }
            // Read only when this pass asked for POLLIN — unrequested
            // POLLERR/POLLHUP is left to whichever direction is active.
            if ((pfds[k + 1].events & POLLIN) != 0
                && (re & (POLLIN | POLLERR | POLLHUP)) != 0)
                eventHandleReadable(sh, conn);
        }
    }
}

void
Server::drain()
{
    if (!started_ || drained_)
        return;
    requestStop();
    if (acceptThread_.joinable())
        acceptThread_.join();
    // Close the listener immediately: clients connecting mid-drain get
    // connection-refused rather than a backlog slot that never answers.
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    // Event mode: wake the shards so they notice the drain, then join
    // them — each keeps flushing until every connection has finished
    // and closed.
    if (!shards_.empty()) {
        for (auto &sh : shards_)
            wakeShard(*sh);
        for (auto &sh : shards_)
            if (sh->thread.joinable())
                sh->thread.join();
        for (auto &sh : shards_) {
            // A connection accepted in the stop window can land in the
            // incoming queue after its shard exited: close it here
            // (the client sees a FIN with no response, the same as
            // connecting a moment later and being refused).
            std::lock_guard<std::mutex> lock(sh->mu);
            for (auto &conn : sh->incoming) {
                ::close(conn->fd);
                conn->fd = -1;
                connectionsOpen_.fetch_sub(1, std::memory_order_relaxed);
                connOpenGauge_.add(-1.0);
            }
            sh->incoming.clear();
        }
        shards_.clear();
    }
    // No new connections past this point; join the readers (each waits
    // for its own in-flight results to flush). Joining everything left
    // in the list covers reaped-pending and live threads alike, so the
    // finished-iterator queue is simply dropped.
    std::list<std::thread> readers;
    {
        std::lock_guard<std::mutex> lock(mu_);
        readers.swap(connThreads_);
        finishedConns_.clear();
    }
    for (auto &t : readers)
        if (t.joinable())
            t.join();
    {
        // A reader that finished mid-drain pushed its (now stale)
        // iterator after the clear above; drop those too. Nothing
        // dereferences them — the accept loop is gone — this just
        // leaves no dangling state behind.
        std::lock_guard<std::mutex> lock(mu_);
        finishedConns_.clear();
    }
    service_.drain();
    drained_ = true;
}

ServerStats
Server::stats() const
{
    ServerStats s;
    s.connectionsAccepted =
        connectionsAccepted_.load(std::memory_order_relaxed);
    s.connectionsOpen = connectionsOpen_.load(std::memory_order_relaxed);
    s.requestsAccepted = requestsAccepted_.load(std::memory_order_relaxed);
    s.jobsFailed = jobsFailed_.load(std::memory_order_relaxed);
    s.resultsWritten = resultsWritten_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.queueWaited = queueWaited_.load(std::memory_order_relaxed);
    s.connectionsRejected =
        connectionsRejected_.load(std::memory_order_relaxed);
    s.lineErrors = lineErrors_.load(std::memory_order_relaxed);
    s.idleCloses = idleCloses_.load(std::memory_order_relaxed);
    s.cancelRequests = cancelRequests_.load(std::memory_order_relaxed);
    s.healthProbes = healthProbes_.load(std::memory_order_relaxed);
    s.statsProbes = statsProbes_.load(std::memory_order_relaxed);
    s.jobsCancelled = jobsCancelled_.load(std::memory_order_relaxed);
    s.disconnectCancels =
        disconnectCancels_.load(std::memory_order_relaxed);
    s.faultConnResets = faultConnResets_.load(std::memory_order_relaxed);
    s.partialWrites = partialWrites_.load(std::memory_order_relaxed);
    return s;
}

// ---------------------------------------------------------- JsonlClient

JsonlClient::JsonlClient(int port)
{
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        CHOCOQ_FATAL("socket(): " << std::strerror(errno));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr), sizeof addr)
        != 0) {
        const int err = errno;
        ::close(fd_);
        fd_ = -1;
        CHOCOQ_FATAL("cannot connect to 127.0.0.1:" << port << ": "
                     << std::strerror(err));
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

JsonlClient::~JsonlClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
JsonlClient::sendLine(const std::string &line)
{
    sendRaw(line + "\n");
}

void
JsonlClient::sendRaw(const std::string &bytes)
{
    if (!sendAll(fd_, bytes.data(), bytes.size()))
        CHOCOQ_FATAL("send(): " << std::strerror(errno));
}

void
JsonlClient::shutdownWrite()
{
    ::shutdown(fd_, SHUT_WR);
}

void
JsonlClient::abortConnection()
{
    if (fd_ < 0)
        return;
    // Zero-linger close: the kernel sends RST instead of FIN, so the
    // server's next read fails with ECONNRESET — the signal that
    // triggers disconnect cancellation.
    linger lg{1, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
    ::close(fd_);
    fd_ = -1;
}

bool
JsonlClient::readLine(std::string &out, int timeout_ms)
{
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    while (true) {
        const std::size_t pos = buf_.find('\n');
        if (pos != std::string::npos) {
            out = buf_.substr(0, pos);
            buf_.erase(0, pos + 1);
            return true;
        }
        const auto left = std::chrono::duration_cast<
            std::chrono::milliseconds>(deadline - Clock::now());
        if (left.count() <= 0)
            return false;
        pollfd p{fd_, POLLIN, 0};
        const int pr = ::poll(&p, 1, static_cast<int>(left.count()));
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (pr == 0)
            return false;
        char chunk[65536];
        const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
        if (n <= 0)
            return false;
        buf_.append(chunk, static_cast<std::size_t>(n));
    }
}

} // namespace chocoq::service
