#include "service/fault.hpp"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "common/error.hpp"

namespace chocoq::service
{

const char *
cancelReasonName(CancelReason reason)
{
    switch (reason) {
      case CancelReason::None:
        return "none";
      case CancelReason::Requested:
        return "requested";
      case CancelReason::Deadline:
        return "deadline";
      case CancelReason::Disconnected:
        return "disconnected";
    }
    return "unknown";
}

const char *
Cancelled::what() const noexcept
{
    switch (reason_) {
      case CancelReason::Deadline:
        return "cancelled: deadline exceeded";
      case CancelReason::Disconnected:
        return "cancelled: client disconnected";
      default:
        return "cancelled: requested";
    }
}

void
CancelToken::requestCancel(CancelReason reason)
{
    int expected = static_cast<int>(CancelReason::None);
    reason_.compare_exchange_strong(expected, static_cast<int>(reason),
                                    std::memory_order_acq_rel);
}

void
CancelToken::armDeadline(Clock::time_point deadline)
{
    deadline_ = deadline;
    hasDeadline_.store(true, std::memory_order_release);
}

bool
CancelToken::cancelled()
{
    if (reason_.load(std::memory_order_acquire)
        != static_cast<int>(CancelReason::None))
        return true;
    if (hasDeadline_.load(std::memory_order_acquire)
        && Clock::now() >= deadline_) {
        // First observer latches the reason; a concurrent explicit
        // cancel losing the race is fine — either reason is truthful.
        requestCancel(CancelReason::Deadline);
        return true;
    }
    return false;
}

void
sleepCancellably(int ms, CancelToken *token)
{
    constexpr int kChunkMs = 5;
    int remaining = std::max(ms, 0);
    while (remaining > 0) {
        if (token)
            token->throwIfCancelled();
        const int step = std::min(remaining, kChunkMs);
        std::this_thread::sleep_for(std::chrono::milliseconds(step));
        remaining -= step;
    }
    if (token)
        token->throwIfCancelled();
}

namespace
{

/** splitmix64 finalizer: the per-check decision hash. */
std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

/** Parse one clause value "P" or "P:MS"; both pieces range-checked. */
void
parseClauseValue(const std::string &site, const std::string &value,
                 double &probability, int *duration_ms)
{
    std::string prob_text = value;
    const std::size_t colon = value.find(':');
    if (colon != std::string::npos) {
        if (!duration_ms)
            CHOCOQ_FATAL("fault-spec site '" << site
                         << "' takes no ':ms' duration");
        prob_text = value.substr(0, colon);
        const std::string ms_text = value.substr(colon + 1);
        char *end = nullptr;
        const long ms = std::strtol(ms_text.c_str(), &end, 10);
        if (ms_text.empty() || *end != '\0' || ms < 0 || ms > 3600000)
            CHOCOQ_FATAL("fault-spec duration for '" << site
                         << "' must be an integer in [0, 3600000] ms, got '"
                         << ms_text << "'");
        *duration_ms = static_cast<int>(ms);
    }
    char *end = nullptr;
    const double p = std::strtod(prob_text.c_str(), &end);
    if (prob_text.empty() || *end != '\0' || !(p >= 0.0 && p <= 1.0))
        CHOCOQ_FATAL("fault-spec probability for '" << site
                     << "' must be in [0, 1], got '" << prob_text << "'");
    probability = p;
}

} // namespace

FaultSpec
parseFaultSpec(const std::string &text)
{
    FaultSpec spec;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string clause = text.substr(pos, comma - pos);
        pos = comma + 1;
        if (clause.empty())
            continue;
        const std::size_t eq = clause.find('=');
        if (eq == std::string::npos)
            CHOCOQ_FATAL("fault-spec clause '" << clause
                         << "' must be site=prob[:ms] or seed=N");
        const std::string key = clause.substr(0, eq);
        const std::string value = clause.substr(eq + 1);
        if (key == "seed") {
            char *end = nullptr;
            spec.seed = std::strtoull(value.c_str(), &end, 10);
            if (value.empty() || *end != '\0')
                CHOCOQ_FATAL("fault-spec seed must be an unsigned integer, "
                             "got '" << value << "'");
        } else if (key == "stall") {
            parseClauseValue(key, value, spec.stallProbability,
                             &spec.stallMs);
        } else if (key == "alloc_fail") {
            parseClauseValue(key, value, spec.allocFailProbability, nullptr);
        } else if (key == "conn_reset") {
            parseClauseValue(key, value, spec.connResetProbability, nullptr);
        } else if (key == "read_delay") {
            parseClauseValue(key, value, spec.readDelayProbability,
                             &spec.readDelayMs);
        } else {
            CHOCOQ_FATAL("unknown fault-spec site '" << key
                         << "' (expected stall, alloc_fail, conn_reset, "
                            "read_delay, or seed)");
        }
    }
    return spec;
}

double
FaultInjector::probabilityOf(Site site) const
{
    switch (site) {
      case Site::WorkerStall:
        return spec_.stallProbability;
      case Site::AllocFail:
        return spec_.allocFailProbability;
      case Site::ConnReset:
        return spec_.connResetProbability;
      case Site::ReadDelay:
        return spec_.readDelayProbability;
    }
    return 0.0;
}

bool
FaultInjector::fire(Site site)
{
    const double p = probabilityOf(site);
    const auto idx = static_cast<std::size_t>(site);
    // Count the check even when p == 0 so enabling a site mid-analysis
    // (same seed, higher probability) keeps decision indices aligned.
    const std::uint64_t k =
        checks_[idx].fetch_add(1, std::memory_order_relaxed);
    if (p <= 0.0)
        return false;
    const std::uint64_t h =
        mix64(spec_.seed ^ mix64((static_cast<std::uint64_t>(site) << 32)
                                 ^ k));
    // Top 53 bits -> uniform double in [0, 1).
    const double u =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    const bool fired = u < p;
    if (fired)
        fired_[idx].fetch_add(1, std::memory_order_relaxed);
    return fired;
}

int
FaultInjector::durationMs(Site site) const
{
    switch (site) {
      case Site::WorkerStall:
        return spec_.stallMs;
      case Site::ReadDelay:
        return spec_.readDelayMs;
      default:
        return 0;
    }
}

FaultInjector::Counts
FaultInjector::counts() const
{
    Counts c;
    c.stalls = fired_[static_cast<std::size_t>(Site::WorkerStall)].load(
        std::memory_order_relaxed);
    c.allocFails = fired_[static_cast<std::size_t>(Site::AllocFail)].load(
        std::memory_order_relaxed);
    c.connResets = fired_[static_cast<std::size_t>(Site::ConnReset)].load(
        std::memory_order_relaxed);
    c.readDelays = fired_[static_cast<std::size_t>(Site::ReadDelay)].load(
        std::memory_order_relaxed);
    return c;
}

} // namespace chocoq::service
