/**
 * @file
 * Cooperative cancellation and deterministic fault injection for the
 * solve service.
 *
 * A CancelToken is the one channel through which the outside world can
 * stop a running job: the wire front-end (cancel request, client
 * disconnect), the deadline clock, and shutdown paths all set the same
 * atomic flag, and the engine polls it at iteration boundaries through
 * the checkpoint hooks (optimize::OptOptions::checkpoint /
 * core::EngineOptions::checkpoint). Polling is cooperative by design —
 * no thread is ever killed, so worker scratch pools and cache state
 * stay valid and the worker is immediately reusable after a
 * cancellation.
 *
 * The FaultInjector makes failure paths testable the way HPC AI500
 * argues systems claims must be: under *controlled* adversarial load.
 * Every injection decision is a pure function of (spec seed, site,
 * per-site check counter), so a given --fault-spec replays the exact
 * same fault sequence on every run regardless of thread timing. With no
 * spec configured the injector is absent (null pointer) and every hot
 * path is untouched — fault injection disabled is a bitwise no-op.
 */

#ifndef CHOCOQ_SERVICE_FAULT_HPP
#define CHOCOQ_SERVICE_FAULT_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <string>

namespace chocoq::service
{

/** Why a job stopped early (CancelToken state). */
enum class CancelReason
{
    /** Not cancelled. */
    None = 0,
    /** Explicit {"type":"cancel"} request or SolveService::cancel(). */
    Requested,
    /** deadline_ms elapsed (queued or executing). */
    Deadline,
    /** The submitting client's connection dropped mid-job. */
    Disconnected,
};

/** Stable lowercase name for a cancel reason (wire/messages). */
const char *cancelReasonName(CancelReason reason);

/** Thrown by CancelToken::throwIfCancelled() to unwind a solve. */
class Cancelled : public std::exception
{
  public:
    explicit Cancelled(CancelReason reason) : reason_(reason) {}

    CancelReason reason() const { return reason_; }

    const char *what() const noexcept override;

  private:
    CancelReason reason_;
};

/**
 * One job's cancellation state, shared (shared_ptr) between the
 * submitter, the wire front-end, and the worker executing the job.
 *
 * Thread contract: armDeadline() must happen before the token is shared
 * with other threads (SolveService arms it before enqueueing the job);
 * requestCancel() and the polling methods are safe from any thread.
 */
class CancelToken
{
  public:
    using Clock = std::chrono::steady_clock;

    /** Request cooperative cancellation; first reason wins. */
    void requestCancel(CancelReason reason = CancelReason::Requested);

    /**
     * Arm the absolute execution deadline. The clock keeps counting
     * while the job executes: polls past this instant flip the token
     * to CancelReason::Deadline.
     */
    void armDeadline(Clock::time_point deadline);

    /** True when cancelled (also latches an elapsed deadline). */
    bool cancelled();

    /** Reason observed so far (None while still running). */
    CancelReason reason() const
    {
        return static_cast<CancelReason>(
            reason_.load(std::memory_order_acquire));
    }

    /** Poll: throws Cancelled when the token has fired. */
    void throwIfCancelled()
    {
        if (cancelled())
            throw Cancelled(reason());
    }

  private:
    std::atomic<int> reason_{static_cast<int>(CancelReason::None)};
    std::atomic<bool> hasDeadline_{false};
    Clock::time_point deadline_{};
};

/**
 * Sleep for @p ms while staying cancellable: the sleep is chunked and
 * @p token (optional) is polled between chunks, so an injected stall
 * still honors cancel requests and deadlines. Throws Cancelled.
 */
void sleepCancellably(int ms, CancelToken *token);

/** Parsed --fault-spec configuration. All probabilities in [0, 1]. */
struct FaultSpec
{
    /** Seed of the injection decision stream (spec key "seed"). */
    std::uint64_t seed = 1;
    /** Worker stall before executing a job: probability + duration. */
    double stallProbability = 0.0;
    int stallMs = 100;
    /** Simulated allocation failure while preparing a job. */
    double allocFailProbability = 0.0;
    /** Accepted connection reset (RST) before serving it. */
    double connResetProbability = 0.0;
    /** Delay inserted after each socket read: probability + duration. */
    double readDelayProbability = 0.0;
    int readDelayMs = 20;

    bool enabled() const
    {
        return stallProbability > 0.0 || allocFailProbability > 0.0
               || connResetProbability > 0.0 || readDelayProbability > 0.0;
    }
};

/**
 * Parse the --fault-spec grammar: comma-separated `site=prob[:ms]`
 * clauses plus an optional `seed=N`. Sites: stall, alloc_fail,
 * conn_reset, read_delay; the `:ms` duration applies to stall and
 * read_delay. Example: "stall=0.5:400,conn_reset=0.1,seed=9".
 * Throws FatalError on malformed input.
 */
FaultSpec parseFaultSpec(const std::string &text);

/**
 * Deterministic fault-decision engine. fire(site) consults the spec
 * probability against a hash of (seed, site, k) where k is the site's
 * check counter — the k-th check at a site answers identically on
 * every run with the same spec.
 */
class FaultInjector
{
  public:
    enum class Site
    {
        WorkerStall = 0,
        AllocFail,
        ConnReset,
        ReadDelay,
    };
    static constexpr int kNumSites = 4;

    /** Injection counters, for summaries and the health probe. */
    struct Counts
    {
        std::uint64_t stalls = 0;
        std::uint64_t allocFails = 0;
        std::uint64_t connResets = 0;
        std::uint64_t readDelays = 0;
    };

    explicit FaultInjector(FaultSpec spec) : spec_(spec) {}

    /** Decide (deterministically) whether this check injects a fault. */
    bool fire(Site site);

    /** Injected duration for the timed sites (stall, read_delay). */
    int durationMs(Site site) const;

    const FaultSpec &spec() const { return spec_; }

    Counts counts() const;

  private:
    double probabilityOf(Site site) const;

    FaultSpec spec_;
    std::atomic<std::uint64_t> checks_[kNumSites] = {};
    std::atomic<std::uint64_t> fired_[kNumSites] = {};
};

} // namespace chocoq::service

#endif // CHOCOQ_SERVICE_FAULT_HPP
