#include "service/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"

namespace chocoq::service
{

namespace
{

/** Recursive-descent JSON parser over a flat character range. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Json
    document()
    {
        Json v = value();
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing characters after JSON value");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        CHOCOQ_FATAL("JSON parse error at offset " << pos_ << ": " << what);
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size()
               && (text_[pos_] == ' ' || text_[pos_] == '\t'
                   || text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        skipSpace();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeWord(const char *word)
    {
        std::size_t len = 0;
        while (word[len] != '\0')
            ++len;
        if (text_.compare(pos_, len, word) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    Json
    value()
    {
        // Depth cap: the parser is recursive and the input is untrusted
        // (chocoq_serve reads stdin); without it a line of 100k '['s
        // would overflow the stack instead of failing the request.
        if (depth_ >= kMaxDepth)
            fail("nesting exceeds the maximum depth of 256");
        switch (peek()) {
          case '{':
            return objectValue();
          case '[':
            return arrayValue();
          case '"':
            return Json(stringValue());
          case 't':
            if (consumeWord("true"))
                return Json(true);
            fail("invalid literal");
          case 'f':
            if (consumeWord("false"))
                return Json(false);
            fail("invalid literal");
          case 'n':
            if (consumeWord("null"))
                return Json();
            fail("invalid literal");
          default:
            return numberValue();
        }
    }

    Json
    objectValue()
    {
        ++depth_;
        expect('{');
        Json obj = Json::object();
        if (peek() == '}') {
            ++pos_;
            --depth_;
            return obj;
        }
        while (true) {
            if (peek() != '"')
                fail("expected object key");
            std::string key = stringValue();
            expect(':');
            obj.set(key, value());
            const char c = peek();
            ++pos_;
            if (c == '}') {
                --depth_;
                return obj;
            }
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    Json
    arrayValue()
    {
        ++depth_;
        expect('[');
        Json arr = Json::array();
        if (peek() == ']') {
            ++pos_;
            --depth_;
            return arr;
        }
        while (true) {
            arr.push(value());
            const char c = peek();
            ++pos_;
            if (c == ']') {
                --depth_;
                return arr;
            }
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    std::string
    stringValue()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                unsigned cp = hex4();
                // UTF-16 surrogate pair: a high surrogate must be
                // followed by an escaped low surrogate; combined they
                // name one supplementary-plane code point.
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    if (pos_ + 2 > text_.size() || text_[pos_] != '\\'
                        || text_[pos_ + 1] != 'u')
                        fail("high surrogate without a low surrogate");
                    pos_ += 2;
                    const unsigned lo = hex4();
                    if (lo < 0xDC00 || lo > 0xDFFF)
                        fail("invalid low surrogate");
                    cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    fail("unexpected low surrogate");
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                fail("unknown escape character");
            }
        }
    }

    unsigned
    hex4()
    {
        if (pos_ + 4 > text_.size())
            fail("truncated \\u escape");
        unsigned cp = 0;
        for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9')
                cp += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
                cp += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
                cp += static_cast<unsigned>(h - 'A' + 10);
            else
                fail("invalid \\u escape digit");
        }
        return cp;
    }

    static void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else if (cp < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
    }

    Json
    numberValue()
    {
        skipSpace();
        const std::size_t begin = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size()
               && ((text_[pos_] >= '0' && text_[pos_] <= '9')
                   || text_[pos_] == '.' || text_[pos_] == 'e'
                   || text_[pos_] == 'E' || text_[pos_] == '+'
                   || text_[pos_] == '-'))
            ++pos_;
        if (pos_ == begin)
            fail("expected a value");
        char *end = nullptr;
        const std::string tok = text_.substr(begin, pos_ - begin);
        const double v = std::strtod(tok.c_str(), &end);
        if (end == tok.c_str() || *end != '\0')
            fail("malformed number '" + tok + "'");
        return Json(v);
    }

    static constexpr int kMaxDepth = 256;

    const std::string &text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

void
writeEscaped(std::string &out, const std::string &s)
{
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c) & 0xFF);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

void
writeNumber(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        out += "null"; // JSON has no Inf/NaN
        return;
    }
    // Integers (the common case: counts, ids, hashes) print exactly;
    // everything else uses round-trip precision.
    if (v == std::floor(v) && std::fabs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.0f", v);
        out += buf;
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

} // namespace

Json
Json::array()
{
    Json v;
    v.kind_ = Kind::Array;
    return v;
}

Json
Json::object()
{
    Json v;
    v.kind_ = Kind::Object;
    return v;
}

Json
Json::parse(const std::string &text)
{
    return Parser(text).document();
}

const Json *
Json::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : object_)
        if (k == key)
            return &v;
    return nullptr;
}

Json *
Json::find(const std::string &key)
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (auto &[k, v] : object_)
        if (k == key)
            return &v;
    return nullptr;
}

bool
Json::asBool(bool fallback) const
{
    return kind_ == Kind::Bool ? bool_ : fallback;
}

double
Json::asNumber(double fallback) const
{
    return kind_ == Kind::Number ? number_ : fallback;
}

std::string
Json::asString(std::string fallback) const
{
    return kind_ == Kind::String ? string_ : fallback;
}

bool
Json::getBool(const std::string &key, bool fallback) const
{
    const Json *v = find(key);
    return v ? v->asBool(fallback) : fallback;
}

double
Json::getNumber(const std::string &key, double fallback) const
{
    const Json *v = find(key);
    return v ? v->asNumber(fallback) : fallback;
}

std::string
Json::getString(const std::string &key, std::string fallback) const
{
    const Json *v = find(key);
    return v ? v->asString(std::move(fallback)) : fallback;
}

Json &
Json::push(Json v)
{
    CHOCOQ_ASSERT(kind_ == Kind::Array || kind_ == Kind::Null,
                  "push on a non-array JSON value");
    kind_ = Kind::Array;
    array_.push_back(std::move(v));
    return *this;
}

Json &
Json::set(const std::string &key, Json v)
{
    CHOCOQ_ASSERT(kind_ == Kind::Object || kind_ == Kind::Null,
                  "set on a non-object JSON value");
    kind_ = Kind::Object;
    for (auto &[k, existing] : object_) {
        if (k == key) {
            existing = std::move(v);
            return *this;
        }
    }
    object_.emplace_back(key, std::move(v));
    return *this;
}

void
Json::write(std::string &out, int indent, int depth) const
{
    const auto newline = [&](int d) {
        if (indent > 0) {
            out.push_back('\n');
            out.append(static_cast<std::size_t>(indent * d), ' ');
        }
    };
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Number:
        writeNumber(out, number_);
        break;
      case Kind::String:
        writeEscaped(out, string_);
        break;
      case Kind::Array:
        out.push_back('[');
        for (std::size_t i = 0; i < array_.size(); ++i) {
            if (i > 0)
                out.push_back(',');
            newline(depth + 1);
            array_[i].write(out, indent, depth + 1);
        }
        if (!array_.empty())
            newline(depth);
        out.push_back(']');
        break;
      case Kind::Object:
        out.push_back('{');
        for (std::size_t i = 0; i < object_.size(); ++i) {
            if (i > 0)
                out.push_back(',');
            newline(depth + 1);
            writeEscaped(out, object_[i].first);
            out.push_back(':');
            if (indent > 0)
                out.push_back(' ');
            object_[i].second.write(out, indent, depth + 1);
        }
        if (!object_.empty())
            newline(depth);
        out.push_back('}');
        break;
    }
}

std::string
Json::dump() const
{
    std::string out;
    write(out, 0, 0);
    return out;
}

std::string
Json::pretty() const
{
    std::string out;
    write(out, 2, 0);
    return out;
}

} // namespace chocoq::service
