/**
 * @file
 * Wall-clock timer used by the benchmark harness and latency breakdowns.
 */

#ifndef CHOCOQ_COMMON_TIMER_HPP
#define CHOCOQ_COMMON_TIMER_HPP

#include <chrono>

namespace chocoq
{

/** Simple steady-clock stopwatch. Starts on construction. */
class Timer
{
  public:
    Timer() : start_(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Elapsed seconds since construction or the last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Elapsed milliseconds. */
    double ms() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace chocoq

#endif // CHOCOQ_COMMON_TIMER_HPP
