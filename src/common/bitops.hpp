/**
 * @file
 * Bit-manipulation helpers for basis-state indices.
 *
 * Convention used everywhere in Choco-Q: binary variable x_i (0-based) maps
 * to qubit i, which maps to bit i of a basis-state index. A bitstring
 * {x_0 = 1, x_1 = 0, x_2 = 1} is therefore the index 0b101 = 5.
 */

#ifndef CHOCOQ_COMMON_BITOPS_HPP
#define CHOCOQ_COMMON_BITOPS_HPP

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace chocoq
{

/** Basis-state index type; supports up to 63 qubits. */
using Basis = std::uint64_t;

/** Return bit @p q of @p idx (the value of variable/qubit q). */
inline int
getBit(Basis idx, int q)
{
    return static_cast<int>((idx >> q) & 1u);
}

/** Return @p idx with bit @p q set to @p v (v must be 0 or 1). */
inline Basis
setBit(Basis idx, int q, int v)
{
    return (idx & ~(Basis{1} << q)) | (Basis{static_cast<unsigned>(v)} << q);
}

/** Return @p idx with bit @p q flipped. */
inline Basis
flipBit(Basis idx, int q)
{
    return idx ^ (Basis{1} << q);
}

/** Number of set bits. */
inline int
popcount(Basis idx)
{
    return std::popcount(idx);
}

/** Convert the low @p n bits of @p idx to a 0/1 vector (x_0 first). */
inline std::vector<int>
toBits(Basis idx, int n)
{
    std::vector<int> bits(n);
    for (int i = 0; i < n; ++i)
        bits[i] = getBit(idx, i);
    return bits;
}

/** Convert a 0/1 vector (x_0 first) to a basis-state index. */
inline Basis
fromBits(const std::vector<int> &bits)
{
    Basis idx = 0;
    for (std::size_t i = 0; i < bits.size(); ++i)
        if (bits[i])
            idx |= Basis{1} << i;
    return idx;
}

/**
 * Render the low @p n bits as a string with x_0 leftmost, e.g. idx=5, n=4
 * gives "1010". This matches the variable-order convention of the paper's
 * examples (|1010> means x1=1, x2=0, x3=1, x4=0).
 */
inline std::string
bitString(Basis idx, int n)
{
    std::string s(n, '0');
    for (int i = 0; i < n; ++i)
        if (getBit(idx, i))
            s[i] = '1';
    return s;
}

} // namespace chocoq

#endif // CHOCOQ_COMMON_BITOPS_HPP
