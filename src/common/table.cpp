#include "common/table.hpp"

#include <cmath>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "common/error.hpp"

namespace chocoq
{

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{}

void
Table::addRow(std::vector<std::string> row)
{
    CHOCOQ_ASSERT(row.size() == headers_.size(),
                  "table row arity mismatches header");
    rows_.push_back(std::move(row));
}

void
Table::addRule()
{
    rows_.emplace_back();
}

std::string
Table::str() const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row,
                        std::ostringstream &os) {
        os << "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << " " << row[c]
               << std::string(width[c] - row[c].size(), ' ') << " |";
        }
        os << "\n";
    };
    auto emit_rule = [&](std::ostringstream &os) {
        os << "+";
        for (std::size_t c = 0; c < width.size(); ++c)
            os << std::string(width[c] + 2, '-') << "+";
        os << "\n";
    };

    std::ostringstream os;
    emit_rule(os);
    emit_row(headers_, os);
    emit_rule(os);
    for (const auto &row : rows_) {
        if (row.empty())
            emit_rule(os);
        else
            emit_row(row, os);
    }
    emit_rule(os);
    return os.str();
}

void
Table::print() const
{
    std::cout << str() << std::flush;
}

std::string
fmtNum(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    std::string s(buf);
    if (s.find('.') != std::string::npos) {
        while (!s.empty() && s.back() == '0')
            s.pop_back();
        if (!s.empty() && s.back() == '.')
            s.pop_back();
    }
    return s.empty() ? "0" : s;
}

std::string
fmtPct(double v, int digits)
{
    return fmtNum(v * 100.0, digits);
}

std::string
fmtPctOrFail(double v, double fail_below, int digits)
{
    if (v < fail_below)
        return "x";
    return fmtPct(v, digits);
}

} // namespace chocoq
