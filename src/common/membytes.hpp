/**
 * @file
 * Lightweight allocation accounting.
 *
 * Figure 12 of the paper compares the memory usage of Trotter-based
 * Hamiltonian decomposition against Choco-Q's equivalent decomposition.
 * The heavy allocations on both paths (dense matrices, circuit buffers)
 * register themselves here so the benchmark can report peak bytes without
 * overriding the global allocator.
 */

#ifndef CHOCOQ_COMMON_MEMBYTES_HPP
#define CHOCOQ_COMMON_MEMBYTES_HPP

#include <cstddef>

namespace chocoq
{

/** Tracks current and peak tracked-allocation footprint. */
class MemBytes
{
  public:
    /** Record an allocation of @p bytes. */
    static void add(std::size_t bytes);

    /** Record a deallocation of @p bytes. */
    static void sub(std::size_t bytes);

    /** Currently tracked live bytes. */
    static std::size_t current();

    /** Peak tracked bytes since the last resetPeak(). */
    static std::size_t peak();

    /** Reset the peak to the current value. */
    static void resetPeak();
};

/** RAII registration of a fixed-size allocation. */
class TrackedAlloc
{
  public:
    explicit TrackedAlloc(std::size_t bytes) : bytes_(bytes)
    {
        MemBytes::add(bytes_);
    }
    ~TrackedAlloc() { MemBytes::sub(bytes_); }

    TrackedAlloc(const TrackedAlloc &) = delete;
    TrackedAlloc &operator=(const TrackedAlloc &) = delete;

  private:
    std::size_t bytes_;
};

} // namespace chocoq

#endif // CHOCOQ_COMMON_MEMBYTES_HPP
