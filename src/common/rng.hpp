/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components (problem generators, shot sampling, noise
 * trajectories, optimizers) draw from a Rng instance that is seeded
 * explicitly, so every experiment in the repository is reproducible.
 * The core generator is xoshiro256++ (public-domain algorithm by Blackman
 * and Vigna), implemented here from the published recurrence.
 */

#ifndef CHOCOQ_COMMON_RNG_HPP
#define CHOCOQ_COMMON_RNG_HPP

#include <cstdint>
#include <vector>

namespace chocoq
{

/** Seeded xoshiro256++ generator with convenience distributions. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit output. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n), n > 0. */
    std::uint64_t below(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    int intIn(int lo, int hi);

    /** Standard normal via Box-Muller. */
    double normal();

    /** Bernoulli trial with success probability p. */
    bool chance(double p);

    /**
     * Sample an index from an unnormalized non-negative weight vector.
     * @param weights Unnormalized weights; at least one must be positive.
     * @return The sampled index.
     */
    std::size_t discrete(const std::vector<double> &weights);

    /** Shuffle a vector in place (Fisher-Yates). */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = below(i);
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    std::uint64_t s_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

/**
 * Derive an independent sub-stream seed from a master seed (splitmix64
 * finalizer over seed + stream * golden-ratio). Components that need
 * several decorrelated deterministic streams from one job/user seed
 * (optimizer restarts, HEA initial angles, final sampling) share this
 * one audited recipe.
 */
std::uint64_t deriveSeed(std::uint64_t seed, std::uint64_t stream);

} // namespace chocoq

#endif // CHOCOQ_COMMON_RNG_HPP
