#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace chocoq
{

namespace
{

/** splitmix64 step, used only for seed expansion. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
deriveSeed(std::uint64_t seed, std::uint64_t stream)
{
    std::uint64_t x = seed + stream * 0x9e3779b97f4a7c15ull;
    return splitmix64(x);
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
    // Avoid the all-zero state (splitmix64 of any seed cannot produce it
    // four times in a row, but keep the guard for clarity).
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    CHOCOQ_ASSERT(n > 0, "Rng::below requires n > 0");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
    std::uint64_t x;
    do {
        x = next();
    } while (x >= limit);
    return x % n;
}

int
Rng::intIn(int lo, int hi)
{
    CHOCOQ_ASSERT(lo <= hi, "Rng::intIn requires lo <= hi");
    return lo + static_cast<int>(below(static_cast<std::uint64_t>(hi - lo)
                                       + 1));
}

double
Rng::normal()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    spare_ = r * std::sin(theta);
    haveSpare_ = true;
    return r * std::cos(theta);
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

std::size_t
Rng::discrete(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights)
        total += w;
    CHOCOQ_ASSERT(total > 0.0, "Rng::discrete requires positive total weight");
    double r = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        r -= weights[i];
        if (r <= 0.0)
            return i;
    }
    return weights.size() - 1;
}

} // namespace chocoq
