/**
 * @file
 * Error-reporting macros shared across all Choco-Q modules.
 *
 * Follows the gem5 fatal/panic split: CHOCOQ_FATAL is for conditions that
 * are the caller's fault (bad problem definition, invalid arguments) and
 * throws a std::runtime_error that API users may catch; CHOCOQ_ASSERT is
 * for internal invariants that should never fail regardless of input.
 */

#ifndef CHOCOQ_COMMON_ERROR_HPP
#define CHOCOQ_COMMON_ERROR_HPP

#include <sstream>
#include <stdexcept>
#include <string>

namespace chocoq
{

/** Exception type thrown for user-facing (recoverable) errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {}
};

/** Exception type thrown for violated internal invariants. */
class InternalError : public std::logic_error
{
  public:
    explicit InternalError(const std::string &what_arg)
        : std::logic_error(what_arg)
    {}
};

} // namespace chocoq

/** Throw a chocoq::FatalError with a streamed message. User's fault. */
#define CHOCOQ_FATAL(msg)                                                   \
    do {                                                                    \
        std::ostringstream chocoq_oss_;                                     \
        chocoq_oss_ << "fatal: " << msg << " (" << __FILE__ << ":"          \
                    << __LINE__ << ")";                                     \
        throw chocoq::FatalError(chocoq_oss_.str());                        \
    } while (0)

/** Check an internal invariant; throws chocoq::InternalError on failure. */
#define CHOCOQ_ASSERT(cond, msg)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::ostringstream chocoq_oss_;                                 \
            chocoq_oss_ << "internal error: " << msg << " [" << #cond       \
                        << "] (" << __FILE__ << ":" << __LINE__ << ")";     \
            throw chocoq::InternalError(chocoq_oss_.str());                 \
        }                                                                   \
    } while (0)

#endif // CHOCOQ_COMMON_ERROR_HPP
