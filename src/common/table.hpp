/**
 * @file
 * Console table printer used by the benchmark harness to emit rows in the
 * same layout as the paper's tables and figure series.
 */

#ifndef CHOCOQ_COMMON_TABLE_HPP
#define CHOCOQ_COMMON_TABLE_HPP

#include <string>
#include <vector>

namespace chocoq
{

/** Accumulates rows of strings and prints an aligned ASCII table. */
class Table
{
  public:
    /** Construct with column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator line. */
    void addRule();

    /** Render the table to a string. */
    std::string str() const;

    /** Print the table to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    // Separator rows are encoded as empty vectors.
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p digits significant decimals, trimming zeros. */
std::string fmtNum(double v, int digits = 3);

/** Format a rate in percent, e.g. 0.671 -> "67.1". */
std::string fmtPct(double v, int digits = 2);

/** Format either a percentage or the paper's failure marker (x). */
std::string fmtPctOrFail(double v, double fail_below = 1e-6, int digits = 2);

} // namespace chocoq

#endif // CHOCOQ_COMMON_TABLE_HPP
