/**
 * @file
 * Header-only LRU map under a byte budget — the retention core shared
 * by the compile cache (service/compile_cache.hpp) and the problem
 * registry (spec/registry.hpp).
 *
 * Both callers keep the same shape: an unordered key -> payload map, a
 * recency list (front = most recently used), per-entry byte estimates
 * summed against a budget, and an eviction sweep that walks the cold
 * end. What differs between them stays in the caller: the compile
 * cache's single-flight futures and generation checks, the registry's
 * tombstones and eviction generation. This class is deliberately not
 * thread-safe — each owner already serializes access under its own
 * mutex, and the policies they layer on top (skip-in-flight eviction,
 * tombstoning inside the sweep) need to run under that same lock.
 */

#ifndef CHOCOQ_COMMON_LRU_HPP
#define CHOCOQ_COMMON_LRU_HPP

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

namespace chocoq::common
{

/**
 * LRU-ordered map of Key -> Value with per-entry byte accounting.
 * find() touches (promotes to most-recent); peek() does not. Eviction
 * only happens when the owner asks (evictOverBudget) so callers control
 * exactly where in their critical sections entries may disappear.
 */
template <class Key, class Value>
class LruMap
{
  public:
    struct Options
    {
        /** Byte budget (0 = unbounded: evictOverBudget never evicts). */
        std::size_t maxBytes = 0;
        /** Never evict below this population, regardless of budget —
         * the registry keeps 1 so the entry being inserted survives
         * even when it alone exceeds the budget. */
        std::size_t minEntries = 0;
    };

    LruMap() = default;
    explicit LruMap(Options opts) : opts_(opts) {}

    std::size_t size() const { return map_.size(); }
    bool empty() const { return map_.empty(); }
    /** Sum of the per-entry byte estimates currently held. */
    std::size_t bytes() const { return bytes_; }
    std::size_t maxBytes() const { return opts_.maxBytes; }
    /** Entries dropped by evictOverBudget since construction/clear(). */
    std::uint64_t evictions() const { return evictions_; }

    /** Keys in recency order, front = most recently used. */
    const std::list<Key> &keys() const { return lru_; }

    /** Look up and promote to most-recent; nullptr when absent. */
    Value *
    find(const Key &key)
    {
        const auto it = map_.find(key);
        if (it == map_.end())
            return nullptr;
        lru_.splice(lru_.begin(), lru_, it->second.lruPos);
        return &it->second.value;
    }

    /** Look up without touching recency; nullptr when absent. */
    Value *
    peek(const Key &key)
    {
        const auto it = map_.find(key);
        return it == map_.end() ? nullptr : &it->second.value;
    }
    const Value *
    peek(const Key &key) const
    {
        const auto it = map_.find(key);
        return it == map_.end() ? nullptr : &it->second.value;
    }

    /**
     * Insert at most-recent with a byte estimate (replacing any
     * existing entry under the key, keeping accounting consistent).
     * Returns the stored value; the reference stays valid until the
     * entry is erased or evicted. Never evicts — call evictOverBudget
     * when the budget should be enforced.
     */
    Value &
    insert(const Key &key, Value value, std::size_t bytes = 0)
    {
        erase(key);
        lru_.push_front(key);
        Node node;
        node.value = std::move(value);
        node.bytes = bytes;
        node.lruPos = lru_.begin();
        bytes_ += bytes;
        return map_.emplace(key, std::move(node)).first->second.value;
    }

    /** Remove an entry; false when absent. */
    bool
    erase(const Key &key)
    {
        const auto it = map_.find(key);
        if (it == map_.end())
            return false;
        bytes_ -= it->second.bytes;
        lru_.erase(it->second.lruPos);
        map_.erase(it);
        return true;
    }

    /** Re-estimate an entry's footprint (e.g. once a compile-cache
     * entry's artifacts are ready); no-op when absent. */
    void
    setBytes(const Key &key, std::size_t bytes)
    {
        const auto it = map_.find(key);
        if (it == map_.end())
            return;
        bytes_ -= it->second.bytes;
        it->second.bytes = bytes;
        bytes_ += bytes;
    }

    /**
     * Walk the cold end dropping entries until the byte budget holds
     * (or minEntries / the hot end is reached). @p evictable(key, value)
     * guards each candidate — the compile cache skips in-flight entries
     * whose waiters hold the future; skipped entries keep their recency
     * position. @p on_evict(key, value) fires before each drop (the
     * registry tombstones there). Returns how many entries were
     * dropped.
     */
    template <class Evictable, class OnEvict>
    std::size_t
    evictOverBudget(Evictable &&evictable, OnEvict &&on_evict)
    {
        if (opts_.maxBytes == 0)
            return 0;
        std::size_t dropped = 0;
        auto it = lru_.end();
        while (bytes_ > opts_.maxBytes && map_.size() > opts_.minEntries
               && it != lru_.begin()) {
            --it;
            const auto map_it = map_.find(*it);
            if (!evictable(*it, map_it->second.value))
                continue;
            on_evict(*it, map_it->second.value);
            bytes_ -= map_it->second.bytes;
            ++evictions_;
            ++dropped;
            map_.erase(map_it);
            it = lru_.erase(it);
        }
        return dropped;
    }

    /** Budget sweep with every entry evictable and no callback. */
    std::size_t
    evictOverBudget()
    {
        return evictOverBudget(
            [](const Key &, const Value &) { return true; },
            [](const Key &, const Value &) {});
    }

    /** Drop everything and reset byte/eviction accounting. */
    void
    clear()
    {
        map_.clear();
        lru_.clear();
        bytes_ = 0;
        evictions_ = 0;
    }

  private:
    struct Node
    {
        Value value;
        std::size_t bytes = 0;
        typename std::list<Key>::iterator lruPos;
    };

    Options opts_;
    std::unordered_map<Key, Node> map_;
    std::list<Key> lru_;
    std::size_t bytes_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace chocoq::common

#endif // CHOCOQ_COMMON_LRU_HPP
