#include "common/membytes.hpp"

#include <atomic>

namespace chocoq
{

namespace
{

std::atomic<std::size_t> current_bytes{0};
std::atomic<std::size_t> peak_bytes{0};

} // namespace

void
MemBytes::add(std::size_t bytes)
{
    std::size_t now = current_bytes.fetch_add(bytes) + bytes;
    std::size_t prev = peak_bytes.load();
    while (now > prev && !peak_bytes.compare_exchange_weak(prev, now)) {
    }
}

void
MemBytes::sub(std::size_t bytes)
{
    current_bytes.fetch_sub(bytes);
}

std::size_t
MemBytes::current()
{
    return current_bytes.load();
}

std::size_t
MemBytes::peak()
{
    return peak_bytes.load();
}

void
MemBytes::resetPeak()
{
    peak_bytes.store(current_bytes.load());
}

} // namespace chocoq
