#include "obs/roofline.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

namespace chocoq::obs
{

namespace
{

/**
 * The static cost model, indexed by KernelId. Derivations (documented
 * in docs/benchmarks.md "Roofline methodology"):
 *
 * - Mutating sweeps read+write each touched amplitude: 32 bytes.
 *   Reductions read: 16 bytes. Side streams the kernel touches per
 *   amplitude add on top: 8 bytes per double table entry, 2 per
 *   uint16 index entry.
 * - A complex multiply is 6 flops (4 mult + 2 add); the real-structured
 *   pair-rotation update is 6 flops per amplitude (4 mult + 2 add
 *   across the two components); |amp|^2 is 3; sincos is 2.
 * - Per-call setup amortized over the sweep (compressed-phase LUT
 *   builds, mask-phase factor tables) is excluded, as are non-uniform
 *   side streams: the phased-group's index bytes (2 per phased
 *   amplitude only) and mask-phase block products beyond the 3-block
 *   17-24 qubit shape the benchmarks run (+/-6 flops per block).
 */
constexpr std::array<KernelCost, kKernelCount> kCosts = {{
    /* Apply1q */ {32.0, 14.0},
    /* Diagonal1q */ {32.0, 6.0},
    /* Controlled1q */ {32.0, 14.0},
    /* PhaseMask */ {32.0, 6.0},
    /* ParityPhase */ {32.0, 6.0},
    /* PairRotation */ {32.0, 6.0},
    /* PairRotationGroup */ {32.0, 6.0},
    /* PhasedPairRotationGroup */ {32.0, 6.0},
    /* XY */ {32.0, 6.0},
    /* Swap */ {32.0, 0.0},
    /* PhaseTable */ {40.0, 9.0},
    /* PhaseTableCompressed */ {34.0, 6.0},
    /* MaskPhaseProduct */ {32.0, 18.0},
    /* ApplyDiagonal */ {32.0, 6.0},
    /* ExpectationTable */ {24.0, 5.0},
    /* ExpectationTableCompressed */ {18.0, 5.0},
    /* ExpectationDiagonal */ {16.0, 5.0},
}};

constexpr std::array<const char *, kKernelCount> kNames = {{
    "apply1q",
    "diagonal1q",
    "controlled1q",
    "phase_mask",
    "parity_phase",
    "pair_rotation",
    "pair_rotation_group",
    "phased_pair_rotation_group",
    "xy",
    "swap",
    "phase_table",
    "phase_table_compressed",
    "mask_phase_product",
    "apply_diagonal",
    "expectation_table",
    "expectation_table_compressed",
    "expectation_diagonal",
}};

} // namespace

const KernelCost &
kernelCost(KernelId id)
{
    return kCosts[static_cast<std::size_t>(id)];
}

const char *
kernelName(KernelId id)
{
    return kNames[static_cast<std::size_t>(id)];
}

std::uint64_t
KernelCounterSink::totalCalls() const
{
    std::uint64_t total = 0;
    for (const auto &t : tallies_)
        total += t.calls;
    return total;
}

std::uint64_t
KernelCounterSink::totalAmps() const
{
    std::uint64_t total = 0;
    for (const auto &t : tallies_)
        total += t.amps;
    return total;
}

double
KernelCounterSink::totalBytes() const
{
    double total = 0.0;
    for (std::size_t k = 0; k < kKernelCount; ++k)
        total += static_cast<double>(tallies_[k].amps) * kCosts[k].bytesPerAmp;
    return total;
}

double
KernelCounterSink::totalFlops() const
{
    double total = 0.0;
    for (std::size_t k = 0; k < kKernelCount; ++k)
        total += static_cast<double>(tallies_[k].amps) * kCosts[k].flopsPerAmp;
    return total;
}

void
KernelCounterSink::reset()
{
    tallies_.fill(KernelTally{});
}

void
KernelCounterSink::merge(const KernelCounterSink &other)
{
    for (std::size_t k = 0; k < kKernelCount; ++k) {
        tallies_[k].calls += other.tallies_[k].calls;
        tallies_[k].amps += other.tallies_[k].amps;
    }
}

service::Json
KernelCounterSink::toJson() const
{
    service::Json out = service::Json::object();
    for (std::size_t k = 0; k < kKernelCount; ++k) {
        const KernelTally &t = tallies_[k];
        if (t.calls == 0)
            continue;
        service::Json entry = service::Json::object();
        entry.set("calls", static_cast<std::int64_t>(t.calls));
        entry.set("amps", static_cast<std::int64_t>(t.amps));
        entry.set("bytes",
                  static_cast<double>(t.amps) * kCosts[k].bytesPerAmp);
        entry.set("flops",
                  static_cast<double>(t.amps) * kCosts[k].flopsPerAmp);
        out.set(kNames[k], std::move(entry));
    }
    return out;
}

std::string
KernelCounterSink::summary() const
{
    std::ostringstream out;
    bool first = true;
    for (std::size_t k = 0; k < kKernelCount; ++k) {
        const KernelTally &t = tallies_[k];
        if (t.calls == 0)
            continue;
        if (!first)
            out << ' ';
        first = false;
        out << kNames[k] << '=' << t.calls << ':' << t.amps;
    }
    if (!first)
        out << ' ';
    out << "bytes=" << static_cast<std::uint64_t>(totalBytes())
        << " flops=" << static_cast<std::uint64_t>(totalFlops());
    return out.str();
}

namespace
{

std::string
readCpuModel()
{
    std::ifstream in("/proc/cpuinfo");
    std::string line;
    while (std::getline(in, line)) {
        const auto colon = line.find(':');
        if (colon == std::string::npos)
            continue;
        if (line.compare(0, 10, "model name") == 0) {
            std::size_t start = colon + 1;
            while (start < line.size() && line[start] == ' ')
                ++start;
            return line.substr(start);
        }
    }
    return "unknown";
}

std::string
readSysfsLine(const std::string &path)
{
    std::ifstream in(path);
    std::string line;
    if (!std::getline(in, line))
        return "";
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
        line.pop_back();
    return line;
}

std::string
readCacheSummary()
{
    // "L1d=32K L1i=32K L2=1024K L3=36864K" from cpu0's cache indices;
    // data/instruction suffix only where the level splits.
    std::string out;
    for (int idx = 0; idx < 8; ++idx) {
        const std::string base =
            "/sys/devices/system/cpu/cpu0/cache/index" + std::to_string(idx);
        const std::string level = readSysfsLine(base + "/level");
        if (level.empty())
            break;
        const std::string type = readSysfsLine(base + "/type");
        const std::string size = readSysfsLine(base + "/size");
        std::string name = "L" + level;
        if (type == "Data")
            name += "d";
        else if (type == "Instruction")
            name += "i";
        if (!out.empty())
            out += ' ';
        out += name + "=" + (size.empty() ? "?" : size);
    }
    return out;
}

std::string
fnv1a64Hex(const std::string &text)
{
    std::uint64_t h = 14695981039346656037ull;
    for (const unsigned char c : text) {
        h ^= c;
        h *= 1099511628211ull;
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return std::string(buf);
}

} // namespace

MachineInfo
detectMachine()
{
    MachineInfo info;
    info.cpuModel = readCpuModel();
    info.logicalCores =
        static_cast<int>(std::thread::hardware_concurrency());
    info.caches = readCacheSummary();
    info.fingerprint = fnv1a64Hex(info.cpuModel + "|cores="
                                  + std::to_string(info.logicalCores) + "|"
                                  + info.caches);
    return info;
}

namespace
{

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** STREAM triad a[i] = b[i] + s * c[i] over arrays far past any LLC;
 * counted at the STREAM convention of 24 bytes and 2 flops per
 * element. Best-of over passes (first pass warms and pages in). */
double
measureTriadGBps()
{
    const std::size_t n = std::size_t{1} << 21; // 3 x 16 MB
    std::vector<double> a(n, 0.0), b(n, 1.0), c(n, 2.0);
    const double s = 3.0;
    double best = 0.0;
    for (int pass = 0; pass < 6; ++pass) {
        const double t0 = nowSeconds();
        double *__restrict pa = a.data();
        const double *__restrict pb = b.data();
        const double *__restrict pc = c.data();
        for (std::size_t i = 0; i < n; ++i)
            pa[i] = pb[i] + s * pc[i];
        const double dt = nowSeconds() - t0;
        if (dt <= 0.0)
            continue;
        const double gbps =
            24.0 * static_cast<double>(n) / dt / 1e9;
        if (pass > 0 && gbps > best)
            best = gbps;
    }
    // Defeat dead-store elimination across passes.
    volatile double guard = a[n / 2];
    (void)guard;
    return best;
}

/** Eight independent multiply-add chains, the textbook ILP-saturating
 * FLOP probe; 16 flops per inner step. The loop body lives in a macro
 * so the scalar variant can carry its no-vectorize attribute directly
 * (an attribute on a caller would not stop a shared template
 * instantiation from vectorizing). */
#define CHOCOQ_FMA_CHAIN_BODY                                                 \
    double x0 = 1.0, x1 = 1.1, x2 = 1.2, x3 = 1.3;                            \
    double x4 = 1.4, x5 = 1.5, x6 = 1.6, x7 = 1.7;                            \
    const double m = 0.999999;                                                \
    const double d = 1e-9;                                                    \
    const double t0 = nowSeconds();                                           \
    for (std::size_t i = 0; i < steps; ++i) {                                 \
        x0 = x0 * m + d;                                                      \
        x1 = x1 * m + d;                                                      \
        x2 = x2 * m + d;                                                      \
        x3 = x3 * m + d;                                                      \
        x4 = x4 * m + d;                                                      \
        x5 = x5 * m + d;                                                      \
        x6 = x6 * m + d;                                                      \
        x7 = x7 * m + d;                                                      \
    }                                                                         \
    const double dt = nowSeconds() - t0;                                      \
    volatile double guard = x0 + x1 + x2 + x3 + x4 + x5 + x6 + x7;            \
    (void)guard;                                                              \
    if (dt <= 0.0)                                                            \
        return 0.0;                                                           \
    return 16.0 * static_cast<double>(steps) / dt / 1e9;

#if defined(__GNUC__) && !defined(__clang__)
__attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#endif
double
scalarChainGflops(std::size_t steps)
{
    CHOCOQ_FMA_CHAIN_BODY
}

double
simdChainGflops(std::size_t steps)
{
    CHOCOQ_FMA_CHAIN_BODY
}

#undef CHOCOQ_FMA_CHAIN_BODY

} // namespace

MachinePeaks
calibratePeaks()
{
    MachinePeaks peaks;
    peaks.triadGBps = measureTriadGBps();
    const std::size_t steps = std::size_t{1} << 24;
    for (int pass = 0; pass < 3; ++pass) {
        peaks.scalarGflops =
            std::max(peaks.scalarGflops, scalarChainGflops(steps));
        peaks.simdGflops =
            std::max(peaks.simdGflops, simdChainGflops(steps));
    }
    return peaks;
}

RooflinePoint
placeOnRoofline(double bytes_per_amp, double flops_per_amp,
                double ns_per_amp, const MachinePeaks &peaks)
{
    RooflinePoint point;
    if (bytes_per_amp <= 0.0 || ns_per_amp <= 0.0)
        return point;
    point.arithmeticIntensity = flops_per_amp / bytes_per_amp;
    point.computeBound = point.arithmeticIntensity >= peaks.ridgeAI();
    // Roof at this AI in achieved-bytes terms: the memory roof is the
    // triad bandwidth, the compute roof peak_flops / AI bytes per
    // second. Achieved bytes/s falls out of the static model and the
    // measured ns/amp directly, so pct_of_ceiling works even for
    // zero-flop kernels (swap).
    const double achieved_gbps = bytes_per_amp / ns_per_amp; // bytes/ns = GB/s
    double roof_gbps = peaks.triadGBps;
    if (point.arithmeticIntensity > 0.0 && peaks.peakGflops() > 0.0) {
        const double compute_gbps =
            peaks.peakGflops() / point.arithmeticIntensity;
        if (compute_gbps < roof_gbps)
            roof_gbps = compute_gbps;
    }
    if (roof_gbps > 0.0)
        point.pctOfCeiling = 100.0 * achieved_gbps / roof_gbps;
    return point;
}

service::Json
machineJson(const MachineInfo &info, const MachinePeaks &peaks)
{
    service::Json out = service::Json::object();
    out.set("fingerprint", info.fingerprint);
    out.set("cpu_model", info.cpuModel);
    out.set("logical_cores", info.logicalCores);
    out.set("caches", info.caches);
    out.set("triad_gbps", peaks.triadGBps);
    out.set("peak_scalar_gflops", peaks.scalarGflops);
    out.set("peak_simd_gflops", peaks.simdGflops);
    out.set("peak_gflops", peaks.peakGflops());
    out.set("ridge_ai_flops_per_byte", peaks.ridgeAI());
    return out;
}

} // namespace chocoq::obs
