/**
 * @file
 * Per-job trace: a span timeline through the solve pipeline.
 *
 * A job submitted with "trace":true carries one Trace from the
 * front-end through the scheduler and the worker to the result line:
 * parse -> queue -> resolve -> compile -> solve (with the optimizer's
 * checkpoint marks folded into a nested "optimize" span) -> respond.
 * Each span records its start offset (ms since the trace origin) and
 * duration, plus a free-form note ("cache_hit", "checkpoints=40", a
 * cancel reason). tools/trace_view.py renders the timeline;
 * docs/observability.md names every span.
 *
 * Cost contract: tracing is strictly opt-in and zero-cost when
 * unrequested — every recording site is behind a `Trace *` null check,
 * and the service allocates a Trace only for jobs that asked. With
 * tracing on, recording reads the clock and appends to a job-private
 * vector; it never touches seeds, scheduling, or solver state, so
 * solver outputs are bit-identical with tracing on or off (a tested
 * property and bench_service's trace probe).
 *
 * Threading: a Trace is written by one thread at a time — the
 * front-end, then the worker that runs the job, then the thread that
 * serializes the result — with each hand-off ordered by the
 * scheduler's queue and the result callback chain. It needs no lock.
 */

#ifndef CHOCOQ_OBS_TRACE_HPP
#define CHOCOQ_OBS_TRACE_HPP

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

#include "service/json.hpp"

namespace chocoq::obs
{

/** One pipeline stage on a job's timeline. */
struct Span
{
    std::string name;
    /** Milliseconds since the trace origin. */
    double startMs = 0.0;
    double durMs = 0.0;
    /** Annotation: "cache_hit"/"cache_miss", "checkpoints=N", ... */
    std::string note;
};

/** Span timeline of one traced job. */
class Trace
{
  public:
    using Clock = std::chrono::steady_clock;

    /** @p origin anchors offset 0 (the front-end uses the moment
     * parsing of the request line began). */
    explicit Trace(Clock::time_point origin) : origin_(origin) {}

    /** Milliseconds elapsed since the origin. */
    double sinceOriginMs() const
    {
        return std::chrono::duration<double, std::milli>(Clock::now()
                                                         - origin_)
            .count();
    }

    /** Append a span with externally measured bounds (parse and queue
     * spans are measured before the trace reaches the worker). */
    void add(std::string name, double start_ms, double dur_ms,
             std::string note = std::string());

    /** Open a span starting now; returns its index for end(). */
    std::size_t begin(std::string name);

    /** Close the span opened by begin(). */
    void end(std::size_t index, std::string note = std::string());

    /**
     * One optimizer/engine checkpoint fired. The marks fold into a
     * single "optimize" span from the first mark to the last (emitted
     * by closeIterations()) rather than one span per iteration — a
     * 10^4-iteration job must not produce a 10^4-span timeline.
     */
    void markIteration()
    {
        const double now = sinceOriginMs();
        if (iterations_ == 0)
            iterFirstMs_ = now;
        iterLastMs_ = now;
        ++iterations_;
    }

    /** Emit the folded "optimize" span when any checkpoint fired. */
    void closeIterations();

    const std::vector<Span> &spans() const { return spans_; }

    /**
     * {"spans":[{"name","start_ms","dur_ms","note"?}, ...]} with spans
     * sorted by start offset (ties keep record order, so a parent span
     * precedes the nested spans it contains). @p mark_respond appends a
     * synthetic zero-duration "respond" span stamped now — the moment
     * the result serializer read the trace — without mutating the
     * stored timeline (serialization stays idempotent).
     */
    service::Json toJson(bool mark_respond = false) const;

  private:
    Clock::time_point origin_;
    std::vector<Span> spans_;
    double iterFirstMs_ = 0.0;
    double iterLastMs_ = 0.0;
    int iterations_ = 0;
};

} // namespace chocoq::obs

#endif // CHOCOQ_OBS_TRACE_HPP
