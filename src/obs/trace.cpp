#include "obs/trace.hpp"

#include <algorithm>

namespace chocoq::obs
{

void
Trace::add(std::string name, double start_ms, double dur_ms,
           std::string note)
{
    Span s;
    s.name = std::move(name);
    s.startMs = start_ms;
    s.durMs = dur_ms;
    s.note = std::move(note);
    spans_.push_back(std::move(s));
}

std::size_t
Trace::begin(std::string name)
{
    Span s;
    s.name = std::move(name);
    s.startMs = sinceOriginMs();
    spans_.push_back(std::move(s));
    return spans_.size() - 1;
}

void
Trace::end(std::size_t index, std::string note)
{
    Span &s = spans_[index];
    s.durMs = sinceOriginMs() - s.startMs;
    if (!note.empty())
        s.note = std::move(note);
}

void
Trace::closeIterations()
{
    if (iterations_ == 0)
        return;
    add("optimize", iterFirstMs_, iterLastMs_ - iterFirstMs_,
        "checkpoints=" + std::to_string(iterations_));
    iterations_ = 0;
}

service::Json
Trace::toJson(bool mark_respond) const
{
    // Sort a copy by start offset; stable so a span opened before a
    // nested span it contains (same timestamp) stays first.
    std::vector<const Span *> ordered;
    ordered.reserve(spans_.size());
    for (const auto &s : spans_)
        ordered.push_back(&s);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const Span *a, const Span *b) {
                         return a->startMs < b->startMs;
                     });
    service::Json spans = service::Json::array();
    for (const Span *s : ordered) {
        service::Json v = service::Json::object();
        v.set("name", s->name);
        v.set("start_ms", s->startMs);
        v.set("dur_ms", s->durMs);
        if (!s->note.empty())
            v.set("note", s->note);
        spans.push(std::move(v));
    }
    if (mark_respond) {
        service::Json v = service::Json::object();
        v.set("name", std::string("respond"));
        v.set("start_ms", sinceOriginMs());
        v.set("dur_ms", 0.0);
        spans.push(std::move(v));
    }
    service::Json out = service::Json::object();
    out.set("spans", std::move(spans));
    return out;
}

} // namespace chocoq::obs
