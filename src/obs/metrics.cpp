#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>

namespace chocoq::obs
{

namespace
{

/**
 * The boundary table: boundaries[i] is the upper bound of bucket i
 * (bucket 0 is the underflow bucket with upper bound kMinMs). Built
 * once with exp2 so every boundary is exactly kMinMs * 2^(i/4) — the
 * same expression the tests check against — and indexing is a binary
 * search over the table rather than a float log2 whose rounding could
 * flip values sitting exactly on a boundary.
 */
const std::array<double, Histogram::kBuckets - 1> &
boundaries()
{
    static const auto table = [] {
        std::array<double, Histogram::kBuckets - 1> t{};
        for (std::size_t i = 0; i < t.size(); ++i)
            t[i] = Histogram::kMinMs
                   * std::exp2(static_cast<double>(i)
                               / Histogram::kSubBucketsPerOctave);
        return t;
    }();
    return table;
}

void
atomicAddDouble(std::atomic<double> &target, double delta)
{
    double cur = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed))
        ;
}

void
atomicMinDouble(std::atomic<double> &target, double v)
{
    double cur = target.load(std::memory_order_relaxed);
    while (v < cur
           && !target.compare_exchange_weak(cur, v,
                                            std::memory_order_relaxed))
        ;
}

void
atomicMaxDouble(std::atomic<double> &target, double v)
{
    double cur = target.load(std::memory_order_relaxed);
    while (v > cur
           && !target.compare_exchange_weak(cur, v,
                                            std::memory_order_relaxed))
        ;
}

} // namespace

std::size_t
Counter::shardIndex()
{
    // One shard per thread for up to kShards threads, assigned
    // round-robin on first use; beyond that threads share shards, which
    // costs contention, never correctness.
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t shard =
        next.fetch_add(1, std::memory_order_relaxed) % kShards;
    return shard;
}

double
Histogram::bucketUpperBound(std::size_t i)
{
    const auto &b = boundaries();
    if (i >= b.size()) // overflow bucket
        return std::numeric_limits<double>::infinity();
    return b[i];
}

std::size_t
Histogram::bucketIndex(double ms)
{
    const auto &b = boundaries();
    // Bucket i covers [lower, upper): a value exactly on a boundary
    // belongs to the bucket above it. NaN (never produced by the
    // timers) would land in the underflow bucket.
    const auto it = std::upper_bound(b.begin(), b.end(), ms);
    return static_cast<std::size_t>(it - b.begin());
}

void
Histogram::record(double ms)
{
    if (!enabled_)
        return;
    counts_[bucketIndex(ms)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomicAddDouble(sumMs_, ms);
    atomicMinDouble(minMs_, ms);
    atomicMaxDouble(maxMs_, ms);
}

Histogram::Snapshot
Histogram::snapshot() const
{
    Snapshot snap;
    // Bucket counts are the ground truth for reconciliation: sum them
    // rather than trusting count_ to be in sync mid-record (each
    // record() bumps the bucket first, so a concurrent snapshot can see
    // the bucket without the count, never the reverse summing this way).
    for (std::size_t i = 0; i < kBuckets; ++i) {
        const std::uint64_t c = counts_[i].load(std::memory_order_relaxed);
        if (c == 0)
            continue;
        snap.count += c;
        snap.buckets.emplace_back(bucketUpperBound(i), c);
    }
    snap.sumMs = sumMs_.load(std::memory_order_relaxed);
    // min_ starts at +infinity so the CAS floor needs no first-write
    // special case; an empty histogram reports 0, not infinity.
    const double min = minMs_.load(std::memory_order_relaxed);
    snap.minMs = std::isfinite(min) ? min : 0.0;
    snap.maxMs = maxMs_.load(std::memory_order_relaxed);
    return snap;
}

double
Histogram::Snapshot::quantileMs(double q) const
{
    if (count == 0)
        return 0.0;
    q = std::min(1.0, std::max(0.0, q));
    // Rank of the q-quantile observation, 1-based: ceil(q * count),
    // clamped to [1, count] so q=0 reads the first observation's bucket
    // and q=1 the last's.
    const auto rank = static_cast<std::uint64_t>(std::max(
        1.0, std::ceil(q * static_cast<double>(count))));
    std::uint64_t cumulative = 0;
    for (const auto &[upper, c] : buckets) {
        cumulative += c;
        if (cumulative >= rank)
            return upper;
    }
    return buckets.back().first;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = counters_.find(name);
    if (it != counters_.end())
        return *it->second;
    counterStore_.emplace_back();
    counterStore_.back().enabled_ = enabled_;
    counters_.emplace(name, &counterStore_.back());
    return counterStore_.back();
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = gauges_.find(name);
    if (it != gauges_.end())
        return *it->second;
    gaugeStore_.emplace_back();
    gaugeStore_.back().enabled_ = enabled_;
    gauges_.emplace(name, &gaugeStore_.back());
    return gaugeStore_.back();
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = histograms_.find(name);
    if (it != histograms_.end())
        return *it->second;
    histogramStore_.emplace_back();
    histogramStore_.back().enabled_ = enabled_;
    histograms_.emplace(name, &histogramStore_.back());
    return histogramStore_.back();
}

service::Json
histogramToJson(const Histogram::Snapshot &snap)
{
    service::Json h = service::Json::object();
    h.set("count", static_cast<double>(snap.count));
    h.set("sum_ms", snap.sumMs);
    h.set("avg_ms", snap.avgMs());
    h.set("min_ms", snap.minMs);
    h.set("max_ms", snap.maxMs);
    h.set("p50_ms", snap.quantileMs(0.50));
    h.set("p99_ms", snap.quantileMs(0.99));
    h.set("p999_ms", snap.quantileMs(0.999));
    service::Json buckets = service::Json::array();
    for (const auto &[upper, c] : snap.buckets) {
        service::Json pair = service::Json::array();
        // The overflow bucket's bound is infinity, which JSON cannot
        // carry as a number; emit -1 as the documented sentinel.
        pair.push(std::isfinite(upper) ? upper : -1.0);
        pair.push(static_cast<double>(c));
        buckets.push(std::move(pair));
    }
    h.set("buckets", std::move(buckets));
    return h;
}

service::Json
MetricsRegistry::toJson() const
{
    std::lock_guard<std::mutex> lock(mu_);
    service::Json out = service::Json::object();
    service::Json counters = service::Json::object();
    for (const auto &[name, c] : counters_)
        counters.set(name, static_cast<double>(c->value()));
    out.set("counters", std::move(counters));
    service::Json gauges = service::Json::object();
    for (const auto &[name, g] : gauges_)
        gauges.set(name, g->value());
    out.set("gauges", std::move(gauges));
    service::Json histograms = service::Json::object();
    for (const auto &[name, h] : histograms_)
        histograms.set(name, histogramToJson(h->snapshot()));
    out.set("histograms", std::move(histograms));
    return out;
}

} // namespace chocoq::obs
