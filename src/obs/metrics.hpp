/**
 * @file
 * Always-on service metrics: a registry of monotonic counters, gauges,
 * and fixed-bucket log-scale latency histograms.
 *
 * Design goals, in order:
 *
 * 1. Cheap enough to leave on in production (<2% jobs/sec overhead,
 *    measured by bench_service's observability probe). Counters are
 *    sharded across cache lines so concurrent workers never contend on
 *    one atomic; histogram recording is a handful of relaxed atomic
 *    RMWs against a precomputed boundary table.
 * 2. Exact reconciliation. Every metric is updated with plain
 *    monotonic increments — no sampling, no decay — so after a load
 *    completes, histogram counts equal the job counters bit-for-bit
 *    (a tested property and the {"type":"stats"} probe's contract).
 * 3. Zero influence on results. Metrics read clocks and bump atomics;
 *    they never touch seeds, scheduling decisions, or solver state.
 *
 * Registration (name -> metric) takes a mutex and happens once per
 * metric at service construction; the hot path works through stable
 * references and never locks. A registry constructed disabled turns
 * every record into an early-return — that is the bench baseline for
 * the overhead probe, not an operational mode.
 */

#ifndef CHOCOQ_OBS_METRICS_HPP
#define CHOCOQ_OBS_METRICS_HPP

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "service/json.hpp"

namespace chocoq::obs
{

/**
 * Monotonic counter, sharded to keep concurrent increments off one
 * cache line. Each thread hashes to a fixed shard; value() sums the
 * shards (reads are stats-probe-rate, writes are job-rate, so the sum
 * cost sits on the cold side).
 */
class Counter
{
  public:
    static constexpr std::size_t kShards = 8;

    void add(std::uint64_t n = 1)
    {
        if (!enabled_)
            return;
        shards_[shardIndex()].value.fetch_add(n,
                                              std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        std::uint64_t total = 0;
        for (const auto &s : shards_)
            total += s.value.load(std::memory_order_relaxed);
        return total;
    }

  private:
    friend class MetricsRegistry;

    /** One shard per cache line: false sharing would put every worker's
     * increment on the same line and show up as probe overhead. */
    struct alignas(64) Shard
    {
        std::atomic<std::uint64_t> value{0};
    };

    static std::size_t shardIndex();

    std::array<Shard, kShards> shards_;
    bool enabled_ = true;
};

/** Last-write-wins instantaneous value (queue depth, bytes held). */
class Gauge
{
  public:
    void set(double v)
    {
        if (enabled_)
            value_.store(v, std::memory_order_relaxed);
    }

    void add(double delta)
    {
        if (!enabled_)
            return;
        double cur = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(cur, cur + delta,
                                             std::memory_order_relaxed))
            ;
    }

    double value() const { return value_.load(std::memory_order_relaxed); }

  private:
    friend class MetricsRegistry;
    std::atomic<double> value_{0.0};
    bool enabled_ = true;
};

/**
 * Fixed-bucket log-scale latency histogram over milliseconds.
 *
 * Buckets are geometric with kSubBucketsPerOctave sub-buckets per
 * doubling, spanning [kMinMs, kMaxMs): boundary(i) = kMinMs * 2^(i/4)
 * exactly (the boundary table is precomputed once; indexing is a
 * binary search over it, so a value equal to a boundary lands in the
 * bucket *above* it deterministically — no float-log rounding at the
 * edges, a tested property). One underflow bucket catches values below
 * kMinMs and one overflow bucket values at or above kMaxMs, so count()
 * always equals the number of record() calls.
 *
 * Quantiles read out of the recorded counts: quantile(q) returns the
 * upper boundary of the first bucket whose cumulative count reaches
 * ceil(q * count) — an upper bound on the true quantile that is exact
 * to bucket resolution (~19% worst-case width at 4 sub-buckets per
 * octave) and, unlike a sampled estimator, never drops an observation.
 */
class Histogram
{
  public:
    static constexpr double kMinMs = 1e-3; // 1 microsecond
    static constexpr int kSubBucketsPerOctave = 4;
    static constexpr int kOctaves = 26; // up to ~67 s
    /** underflow + log-scale range + overflow */
    static constexpr std::size_t kBuckets =
        std::size_t{2} + kSubBucketsPerOctave * kOctaves;

    /** Upper boundary of bucket @p i (inclusive-exclusive ranges; the
     * overflow bucket reports infinity). Exposed for the boundary
     * exactness tests and trace_view's bucket rendering. */
    static double bucketUpperBound(std::size_t i);

    /** Bucket index a value of @p ms lands in (total order, exact at
     * boundaries: ms == bucketUpperBound(i) lands in bucket i+1). */
    static std::size_t bucketIndex(double ms);

    void record(double ms);

    /** Point-in-time copy of the distribution. */
    struct Snapshot
    {
        std::uint64_t count = 0;
        double sumMs = 0.0;
        double minMs = 0.0;
        double maxMs = 0.0;
        /** (upper bound, count) of every non-empty bucket, ascending. */
        std::vector<std::pair<double, std::uint64_t>> buckets;

        double avgMs() const
        {
            return count == 0 ? 0.0
                              : sumMs / static_cast<double>(count);
        }

        /** Upper bound of the bucket holding the q-quantile
         * observation (q in [0, 1]); 0 when empty. */
        double quantileMs(double q) const;
    };

    Snapshot snapshot() const;

  private:
    friend class MetricsRegistry;

    std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sumMs_{0.0};
    /** min/max as atomic doubles maintained by CAS loops; min starts
     * at +infinity (snapshot maps an empty histogram back to 0). */
    std::atomic<double> minMs_{std::numeric_limits<double>::infinity()};
    std::atomic<double> maxMs_{0.0};
    bool enabled_ = true;
};

/**
 * Named metrics, one instance per service. Metric objects are created
 * on first lookup and never move or disappear (deque storage), so the
 * references handed out stay valid for the registry's lifetime and the
 * hot path needs no further name lookups.
 */
class MetricsRegistry
{
  public:
    /** @p enabled=false turns every metric into a no-op recorder: the
     * bench overhead probe's baseline. Operationally metrics are
     * always-on. */
    explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    bool enabled() const { return enabled_; }

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /**
     * Cumulative snapshot as JSON: {"counters":{name:value},
     * "gauges":{name:value}, "histograms":{name:{count,sum_ms,avg_ms,
     * min_ms,max_ms,p50_ms,p99_ms,p999_ms,buckets:[[upper_ms,count]]}}}.
     * Names emit in lexicographic order so snapshots diff cleanly.
     */
    service::Json toJson() const;

  private:
    bool enabled_;
    mutable std::mutex mu_; // registration + snapshot only
    std::map<std::string, Counter *> counters_;
    std::map<std::string, Gauge *> gauges_;
    std::map<std::string, Histogram *> histograms_;
    /** Stable storage behind the name maps. */
    std::deque<Counter> counterStore_;
    std::deque<Gauge> gaugeStore_;
    std::deque<Histogram> histogramStore_;
};

/** JSON shape of one histogram snapshot (shared by the registry dump
 * and any probe that emits a single histogram). */
service::Json histogramToJson(const Histogram::Snapshot &snap);

} // namespace chocoq::obs

#endif // CHOCOQ_OBS_METRICS_HPP
