/**
 * @file
 * Roofline telemetry: a static per-kernel cost model, a per-job kernel
 * counter sink, and a machine-peak calibration probe.
 *
 * Three pieces, layered exactly like the rest of obs/:
 *
 * 1. **Cost model.** Every state-vector kernel (scalar and SoA-batched)
 *    has an analytically derived KernelCost {bytes per amplitude, flops
 *    per amplitude} keyed by KernelId. "Amplitude" means an amplitude
 *    the kernel actually touches (lane-amplitudes for the batched
 *    kernels) — the same normalization bench_micro's ns_per_amp uses
 *    for the subspace kernels' own support-dependent touch counts.
 *    Derivations are documented per-kernel in docs/benchmarks.md; the
 *    differential suite in tests/test_roofline.cpp pins instrumented
 *    totals to this model exactly.
 *
 * 2. **KernelCounterSink.** An optional, zero-cost-when-null sink
 *    threaded through StateVector / BatchedStateVector the same way
 *    Trace* is threaded through the service: a null pointer costs one
 *    predictable branch per kernel *invocation* (never per amplitude),
 *    so uninstrumented runs are bit-identical and measurably unchanged.
 *    record() is called once per kernel call on the calling thread
 *    before any OpenMP region opens, so the sink needs no atomics: one
 *    sink per job/worker, merged into the MetricsRegistry afterwards.
 *
 * 3. **Machine peaks.** detectMachine() reads a stable hardware
 *    fingerprint (cpu model, logical cores, sysfs cache sizes — no
 *    measured rates, so the fingerprint is reproducible across runs on
 *    the same box); calibratePeaks() measures STREAM-triad bandwidth
 *    and peak scalar/SIMD FLOP rates. Together they place every
 *    benchmark on the roofline (memory- vs compute-bound, percent of
 *    ceiling) following the HPC AI500 methodology, and key the
 *    committed perf baselines in bench/baselines/<fingerprint>.json.
 */

#ifndef CHOCOQ_OBS_ROOFLINE_HPP
#define CHOCOQ_OBS_ROOFLINE_HPP

#include <array>
#include <cstdint>
#include <string>

#include "service/json.hpp"

namespace chocoq::obs
{

/** Every instrumented state-vector kernel, scalar and batched. */
enum class KernelId : int
{
    Apply1q = 0,
    Diagonal1q,
    Controlled1q,
    PhaseMask,
    ParityPhase,
    PairRotation,
    PairRotationGroup,
    PhasedPairRotationGroup,
    XY,
    Swap,
    PhaseTable,
    PhaseTableCompressed,
    MaskPhaseProduct,
    ApplyDiagonal,
    ExpectationTable,
    ExpectationTableCompressed,
    ExpectationDiagonal,
    kCount,
};

constexpr std::size_t kKernelCount = static_cast<std::size_t>(KernelId::kCount);

/**
 * Analytic per-touched-amplitude cost. Conventions (derivations in
 * docs/benchmarks.md): a Cplx is 16 bytes; every touched amplitude is
 * read and written (32 bytes) by mutating kernels and read (16) by
 * reductions; real multiply/add/sub count 1 flop each (complex multiply
 * = 6), sin/cos count 1 each; integer index arithmetic, popcounts and
 * branch tests count 0. Per-call O(|distinct|) or O(256 x terms) table
 * builds amortized over the 2^n sweep are excluded, as are the byte
 * streams noted per-kernel in the docs.
 */
struct KernelCost
{
    double bytesPerAmp;
    double flopsPerAmp;
};

/** The static cost model entry for @p id. */
const KernelCost &kernelCost(KernelId id);

/** Stable snake_case name ("pair_rotation", ...) used in metrics
 * (kernels.<name>.calls), trace notes, and JSON output. */
const char *kernelName(KernelId id);

/** Per-kernel running totals. */
struct KernelTally
{
    std::uint64_t calls = 0;
    std::uint64_t amps = 0;
};

/**
 * Per-job kernel-mix accumulator. Plain (non-atomic) counters: record()
 * fires once per kernel invocation on the calling thread before the
 * kernel's OpenMP region opens, and a sink is only ever attached to the
 * states of one job at a time. Derived bytes/flops are amps times the
 * static KernelCost — by construction, not measurement — so the
 * differential test can pin them exactly.
 */
class KernelCounterSink
{
  public:
    void record(KernelId id, std::uint64_t amps) noexcept
    {
        KernelTally &t = tallies_[static_cast<std::size_t>(id)];
        ++t.calls;
        t.amps += amps;
    }

    const KernelTally &tally(KernelId id) const
    {
        return tallies_[static_cast<std::size_t>(id)];
    }

    std::uint64_t totalCalls() const;
    std::uint64_t totalAmps() const;
    /** Sum over kernels of amps * cost.bytesPerAmp. */
    double totalBytes() const;
    /** Sum over kernels of amps * cost.flopsPerAmp. */
    double totalFlops() const;

    bool empty() const { return totalCalls() == 0; }
    void reset();
    void merge(const KernelCounterSink &other);

    /** {"<kernel>": {"calls": c, "amps": a, "bytes": B, "flops": F}}
     * for every kernel with calls > 0, in KernelId order. */
    service::Json toJson() const;

    /** Compact one-line mix for trace-span notes:
     * "name=calls:amps ..." over the non-zero kernels, followed by
     * "bytes=<total> flops=<total>". */
    std::string summary() const;

  private:
    std::array<KernelTally, kKernelCount> tallies_{};
};

/**
 * Stable hardware identity. Everything here comes from /proc/cpuinfo
 * and sysfs — never from a measured rate — so the same box always
 * produces the same fingerprint and perf baselines key on hardware,
 * not on the noise of the run that created them.
 */
struct MachineInfo
{
    std::string cpuModel;        ///< "model name" from /proc/cpuinfo.
    int logicalCores = 0;        ///< std::thread::hardware_concurrency.
    /** "L1d=32K L1i=32K L2=1M L3=8M"-style summary of
     * /sys/devices/system/cpu/cpu0/cache (empty when sysfs absent). */
    std::string caches;
    /** 16-hex-digit FNV-1a of the fields above; the baseline filename. */
    std::string fingerprint;
};

MachineInfo detectMachine();

/** Measured machine ceilings (best-of over repeated passes). */
struct MachinePeaks
{
    double triadGBps = 0.0;     ///< STREAM triad bandwidth, GB/s.
    double scalarGflops = 0.0;  ///< Peak FLOP rate, vectorization off.
    double simdGflops = 0.0;    ///< Peak FLOP rate, FMA-chain, SIMD on.

    /** The roof used for ceilings: max of the two FLOP rates. */
    double peakGflops() const
    {
        return simdGflops > scalarGflops ? simdGflops : scalarGflops;
    }

    /** Arithmetic intensity (flops/byte) where the memory and compute
     * roofs cross; below it a kernel is memory-bound. */
    double ridgeAI() const
    {
        return triadGBps > 0.0 ? peakGflops() / triadGBps : 0.0;
    }
};

/**
 * Measure the peaks on this machine. ~100-300 ms: the triad streams
 * three arrays well past any LLC, the FLOP probes run unrolled
 * independent FMA chains; each reports its best pass.
 */
MachinePeaks calibratePeaks();

/** Where a measured kernel sits against the calibrated roofs. */
struct RooflinePoint
{
    double arithmeticIntensity = 0.0; ///< flops / bytes.
    bool computeBound = false;        ///< AI at or above the ridge.
    /** Achieved fraction (0-100) of the roof at this AI:
     * min(peak_flops, AI * triad_bw). */
    double pctOfCeiling = 0.0;
};

/** Place a kernel measured at @p ns_per_amp with the given per-amp
 * costs on the roofline. */
RooflinePoint placeOnRoofline(double bytes_per_amp, double flops_per_amp,
                              double ns_per_amp, const MachinePeaks &peaks);

/** The BENCH_kernels.json "machine" block (and the --calibrate dump):
 * fingerprint + identity fields + measured peaks + ridge point. */
service::Json machineJson(const MachineInfo &info, const MachinePeaks &peaks);

} // namespace chocoq::obs

#endif // CHOCOQ_OBS_ROOFLINE_HPP
