/**
 * @file
 * Differential accounting tests for the kernel roofline telemetry
 * (obs/roofline.hpp): every instrumented kernel — scalar and batched —
 * must record exactly the analytically expected call and amplitude
 * counts, the sink's byte/flop totals must equal the static cost model
 * applied to those counts, and attaching a sink must not perturb the
 * simulation by a single bit. The counts are hand-derived from the
 * kernels' documented touch sets (full sweeps touch 2^n amplitudes,
 * masked sweeps 2^(n-popcount), pair sweeps 2^(n-k+1), batched sweeps
 * the scalar count times the lane width), so a kernel that silently
 * changes its traffic shape fails here before it skews a roofline.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdint>
#include <cstring>
#include <vector>

#include "obs/roofline.hpp"
#include "sim/batched.hpp"
#include "sim/parallel.hpp"
#include "sim/statevector.hpp"

using namespace chocoq;
using linalg::Cplx;

namespace
{

constexpr int kQubits = 6;
constexpr std::size_t kDim = std::size_t{1} << kQubits;

/** Two-bit support masks used by every masked kernel below. */
constexpr Basis kMask2 = 0b000101;   // popcount 2
constexpr Basis kSupport = 0b001100; // popcount 2
constexpr Basis kVBitsA = 0b000100;
constexpr Basis kVBitsB = 0b001000;

struct Tables
{
    std::vector<double> table;
    std::vector<double> distinct;
    std::vector<std::uint16_t> index;
    std::vector<Cplx> phases;
};

Tables
makeTables()
{
    Tables t;
    t.table.resize(kDim);
    t.index.resize(kDim);
    t.distinct = {-1.5, 0.25, 2.0, 3.75};
    for (std::size_t i = 0; i < kDim; ++i) {
        t.index[i] = static_cast<std::uint16_t>(i % t.distinct.size());
        t.table[i] = t.distinct[t.index[i]];
    }
    t.phases.resize(t.distinct.size());
    for (std::size_t v = 0; v < t.distinct.size(); ++v)
        t.phases[v] = Cplx{std::cos(0.4 * t.distinct[v]),
                           -std::sin(0.4 * t.distinct[v])};
    return t;
}

/**
 * One call to every scalar kernel, fixed angles. The expected
 * amplitude count per kernel (dim = 2^6 = 64):
 *   full sweeps ............................ 64
 *   Controlled1q / PhaseMask (2 fixed bits)  16
 *   PairRotation / XY / Swap (pair sweeps) . 32
 *   PairRotationGroup (2 terms) ............ 64
 *   PhasedPairRotationGroup (gather+2 terms) 128
 */
void
runScalarScript(sim::StateVector &sv, const Tables &t)
{
    const Cplx d0{std::cos(0.3), std::sin(0.3)};
    const Cplx d1 = std::conj(d0);
    const Basis vbits[2] = {kVBitsA, kVBitsB};
    const Basis masks[2] = {kMask2, kSupport};
    const Cplx mphases[2] = {d0, d1};
    std::vector<Cplx> scratch;

    sv.apply1q(2, 0.6, 0.8, 0.8, -0.6);
    sv.applyDiagonal1q(1, d0, d1);
    sv.applyControlled1q(kMask2, 4, 0.0, 1.0, 1.0, 0.0);
    sv.applyPhaseMask(kMask2, 0.4);
    sv.applyParityPhase(kMask2, d0, d1);
    sv.applyPairRotation(kSupport, kVBitsA, 0.55, 0.45);
    sv.applyPairRotationGroup(kSupport, vbits, 2, 0.55, 0.45);
    sv.applyPhasedPairRotationGroup(kSupport, vbits, 2, 0.55, 0.45,
                                    t.phases.data(), t.index.data());
    sv.applyXY(0, 4, 0.6);
    sv.applySwap(0, 4);
    sv.applyPhaseTable(t.table, 0.4);
    sv.applyPhaseTableCompressed(t.distinct, t.index, 0.4, scratch);
    sv.applyMaskPhaseProduct(masks, mphases, 2, Cplx{1.0, 0.0});
    sv.applyDiagonal([](Basis i) {
        return Cplx{std::cos(0.01 * static_cast<double>(i)),
                    std::sin(0.01 * static_cast<double>(i))};
    });
    double e = sv.expectationTable(t.table);
    e += sv.expectationTableCompressed(t.distinct, t.index);
    e += sv.expectationDiagonal(
        [](Basis i) { return static_cast<double>(i & 3); });
    ASSERT_TRUE(std::isfinite(e));
}

/** Expected per-kernel amplitude counts for one runScalarScript pass. */
std::uint64_t
expectedScalarAmps(obs::KernelId id)
{
    using K = obs::KernelId;
    switch (id) {
    case K::Controlled1q:
    case K::PhaseMask:
        return kDim >> 2; // two fixed bits
    case K::PairRotation:
    case K::XY:
    case K::Swap:
        return kDim >> 1; // pair sweeps touch half the index space
    case K::PairRotationGroup:
        return 2 * (kDim >> 1); // two terms per group sweep
    case K::PhasedPairRotationGroup:
        return kDim + 2 * (kDim >> 1); // phase gather + two terms
    default:
        return kDim; // every full sweep / reduction
    }
}

void
checkScalarAccounting(const obs::KernelCounterSink &sink)
{
    double bytes = 0.0;
    double flops = 0.0;
    std::uint64_t amps = 0;
    for (std::size_t k = 0; k < obs::kKernelCount; ++k) {
        const auto id = static_cast<obs::KernelId>(k);
        const auto &tally = sink.tally(id);
        EXPECT_EQ(tally.calls, 1u) << obs::kernelName(id);
        EXPECT_EQ(tally.amps, expectedScalarAmps(id)) << obs::kernelName(id);
        const auto &cost = obs::kernelCost(id);
        bytes += static_cast<double>(tally.amps) * cost.bytesPerAmp;
        flops += static_cast<double>(tally.amps) * cost.flopsPerAmp;
        amps += tally.amps;
    }
    EXPECT_EQ(sink.totalCalls(), obs::kKernelCount);
    EXPECT_EQ(sink.totalAmps(), amps);
    EXPECT_DOUBLE_EQ(sink.totalBytes(), bytes);
    EXPECT_DOUBLE_EQ(sink.totalFlops(), flops);
}

} // namespace

TEST(RooflineAccounting, ScalarKernelsMatchAnalyticModel)
{
    const Tables t = makeTables();
    for (int threads : {1, 3}) {
        sim::setSimThreads(threads);
        sim::StateVector sv(kQubits);
        obs::KernelCounterSink sink;
        sv.setCounterSink(&sink);
        runScalarScript(sv, t);
        checkScalarAccounting(sink);
    }
    sim::setSimThreads(0);
}

TEST(RooflineAccounting, BatchedKernelsScaleByLaneCount)
{
    const Tables t = makeTables();
    for (std::size_t lanes : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
        sim::BatchedStateVector batch;
        batch.resizeScratch(kQubits, lanes);
        batch.reset(1);
        obs::KernelCounterSink sink;
        batch.setCounterSink(&sink);

        const Basis vbits[2] = {kVBitsA, kVBitsB};
        const Basis masks[2] = {kMask2, kSupport};
        std::vector<double> gammas(lanes), phis(lanes), cc(lanes), ss(lanes);
        std::vector<Cplx> d0(lanes), d1(lanes), mphases(2 * lanes),
            global(lanes), scratch;
        std::vector<double> out(lanes);
        for (std::size_t b = 0; b < lanes; ++b) {
            const double a = 0.3 + 0.01 * static_cast<double>(b);
            gammas[b] = a;
            phis[b] = a + 0.1;
            cc[b] = std::cos(a);
            ss[b] = std::sin(a);
            d0[b] = Cplx{std::cos(a), std::sin(a)};
            d1[b] = std::conj(d0[b]);
            mphases[0 * lanes + b] = d0[b];
            mphases[1 * lanes + b] = d1[b];
            global[b] = Cplx{1.0, 0.0};
        }

        batch.applyPhaseTable(t.table, gammas.data());
        batch.applyPhaseTableCompressed(t.distinct, t.index, gammas.data(),
                                        scratch);
        batch.applyPhaseMask(kMask2, phis.data());
        batch.applyDiagonal1q(1, d0.data(), d1.data());
        batch.applyParityPhase(kMask2, d0.data(), d1.data());
        batch.applyPairRotation(kSupport, kVBitsA, cc.data(), ss.data());
        batch.applyPairRotationGroup(kSupport, vbits, 2, cc.data(),
                                     ss.data());
        batch.applyPhasedPairRotationGroup(kSupport, vbits, 2, cc.data(),
                                           ss.data(), d0.data(),
                                           t.index.data());
        batch.applyMaskPhaseProduct(masks, mphases.data(), 2, global.data());
        batch.expectationTable(t.table, out.data());
        batch.expectationTableCompressed(t.distinct, t.index, out.data());
        batch.expectationDiagonal(
            [](Basis i) { return static_cast<double>(i & 3); }, out.data());

        using K = obs::KernelId;
        const std::uint64_t L = lanes;
        const struct
        {
            K id;
            std::uint64_t amps;
        } expected[] = {
            {K::PhaseTable, kDim * L},
            {K::PhaseTableCompressed, kDim * L},
            {K::PhaseMask, (kDim >> 2) * L},
            {K::Diagonal1q, kDim * L},
            {K::ParityPhase, kDim * L},
            {K::PairRotation, (kDim >> 1) * L},
            {K::PairRotationGroup, 2 * (kDim >> 1) * L},
            {K::PhasedPairRotationGroup, (kDim + 2 * (kDim >> 1)) * L},
            {K::MaskPhaseProduct, kDim * L},
            {K::ExpectationTable, kDim * L},
            {K::ExpectationTableCompressed, kDim * L},
            {K::ExpectationDiagonal, kDim * L},
        };
        double bytes = 0.0;
        double flops = 0.0;
        for (const auto &e : expected) {
            const auto &tally = sink.tally(e.id);
            EXPECT_EQ(tally.calls, 1u)
                << obs::kernelName(e.id) << " lanes=" << lanes;
            EXPECT_EQ(tally.amps, e.amps)
                << obs::kernelName(e.id) << " lanes=" << lanes;
            const auto &cost = obs::kernelCost(e.id);
            bytes += static_cast<double>(e.amps) * cost.bytesPerAmp;
            flops += static_cast<double>(e.amps) * cost.flopsPerAmp;
        }
        EXPECT_EQ(sink.totalCalls(), std::size(expected));
        EXPECT_DOUBLE_EQ(sink.totalBytes(), bytes);
        EXPECT_DOUBLE_EQ(sink.totalFlops(), flops);
    }
}

TEST(RooflineAccounting, AttachedSinkIsBitIdenticalToNullSink)
{
    const Tables t = makeTables();
    sim::StateVector plain(kQubits);
    sim::StateVector traced(kQubits);
    obs::KernelCounterSink sink;
    traced.setCounterSink(&sink);
    runScalarScript(plain, t);
    runScalarScript(traced, t);
    ASSERT_EQ(plain.amplitudes().size(), traced.amplitudes().size());
    EXPECT_EQ(std::memcmp(plain.amplitudes().data(),
                          traced.amplitudes().data(),
                          plain.amplitudes().size() * sizeof(Cplx)),
              0);
    EXPECT_FALSE(sink.empty());
}

TEST(RooflineSink, ResetMergeAndSummary)
{
    obs::KernelCounterSink a;
    obs::KernelCounterSink b;
    EXPECT_TRUE(a.empty());
    a.record(obs::KernelId::Apply1q, 64);
    a.record(obs::KernelId::Apply1q, 64);
    b.record(obs::KernelId::Swap, 32);
    EXPECT_FALSE(a.empty());

    a.merge(b);
    EXPECT_EQ(a.tally(obs::KernelId::Apply1q).calls, 2u);
    EXPECT_EQ(a.tally(obs::KernelId::Apply1q).amps, 128u);
    EXPECT_EQ(a.tally(obs::KernelId::Swap).calls, 1u);
    EXPECT_EQ(a.totalCalls(), 3u);
    EXPECT_EQ(a.totalAmps(), 160u);

    const std::string s = a.summary();
    EXPECT_NE(s.find("apply1q=2:128"), std::string::npos) << s;
    EXPECT_NE(s.find("swap=1:32"), std::string::npos) << s;

    const auto j = a.toJson();
    ASSERT_NE(j.find("apply1q"), nullptr);
    EXPECT_EQ(j.find("apply1q")->getNumber("amps", 0.0), 128.0);
    EXPECT_EQ(j.find("apply1q")->getNumber("bytes", 0.0),
              128.0 * obs::kernelCost(obs::KernelId::Apply1q).bytesPerAmp);

    a.reset();
    EXPECT_TRUE(a.empty());
    EXPECT_EQ(a.totalBytes(), 0.0);
}

TEST(RooflineModel, PlacementAndMachineBlock)
{
    obs::MachinePeaks peaks;
    peaks.triadGBps = 10.0;
    peaks.scalarGflops = 5.0;
    peaks.simdGflops = 20.0;
    EXPECT_DOUBLE_EQ(peaks.peakGflops(), 20.0);
    EXPECT_DOUBLE_EQ(peaks.ridgeAI(), 2.0);

    // Memory-bound point: AI 0.5 < ridge 2, roof = 10 GB/s; moving
    // 32 B/amp at 6.4 ns/amp achieves 5 GB/s = 50% of the roof.
    const auto mem = obs::placeOnRoofline(32.0, 16.0, 6.4, peaks);
    EXPECT_DOUBLE_EQ(mem.arithmeticIntensity, 0.5);
    EXPECT_FALSE(mem.computeBound);
    EXPECT_NEAR(mem.pctOfCeiling, 50.0, 1e-9);

    // Compute-bound point: AI 4 > ridge 2; the byte roof at AI 4 is
    // 20 GF/s / 4 = 5 GB/s of bytes, so 2.5 GB/s achieved is 50%.
    const auto cmp = obs::placeOnRoofline(8.0, 32.0, 3.2, peaks);
    EXPECT_DOUBLE_EQ(cmp.arithmeticIntensity, 4.0);
    EXPECT_TRUE(cmp.computeBound);
    EXPECT_NEAR(cmp.pctOfCeiling, 50.0, 1e-9);

    obs::MachineInfo info = obs::detectMachine();
    EXPECT_EQ(info.fingerprint.size(), 16u);
    const auto j = obs::machineJson(info, peaks);
    EXPECT_EQ(j.getString("fingerprint", ""), info.fingerprint);
    EXPECT_DOUBLE_EQ(j.getNumber("triad_gbps", 0.0), 10.0);
    EXPECT_DOUBLE_EQ(j.getNumber("ridge_ai_flops_per_byte", 0.0), 2.0);
}
