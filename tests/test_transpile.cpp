/**
 * @file
 * Transpiler correctness: every lowering rule must reproduce the original
 * gate's unitary up to a global phase, including the ancilla-based
 * V-chain lowering of multi-controlled phase gates.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/transpile.hpp"
#include "common/rng.hpp"
#include "linalg/matrix.hpp"
#include "sim/unitary.hpp"

using namespace chocoq;
using circuit::Circuit;
using circuit::Gate;
using circuit::GateType;
using linalg::Matrix;

namespace
{

/** Unitary restricted to ancillas-in-|0> columns/rows. */
Matrix
dataBlock(const Circuit &c, int data_qubits)
{
    const Matrix full = sim::circuitUnitary(c);
    const std::size_t dim = std::size_t{1} << data_qubits;
    Matrix out(dim, dim);
    for (std::size_t r = 0; r < dim; ++r)
        for (std::size_t col = 0; col < dim; ++col)
            out.at(r, col) = full.at(r, col);
    return out;
}

/** Check lowering of a single-gate circuit against its own unitary. */
void
expectLoweringExact(const Gate &g, int n, double tol = 1e-9)
{
    Circuit original(n);
    original.add(g);
    const Matrix expect = sim::circuitUnitary(original);
    const Circuit lowered = circuit::transpile(original);
    ASSERT_TRUE(circuit::isLowered(lowered)) << circuit::gateName(g.type);
    const Matrix got = dataBlock(lowered, n);
    EXPECT_LT(linalg::phaseDistance(expect, got), tol)
        << "lowering broke " << circuit::gateName(g.type);
}

} // namespace

TEST(Transpile, SingleQubitGates)
{
    for (GateType t : {GateType::H, GateType::X, GateType::Y, GateType::Z,
                       GateType::S, GateType::Sdg, GateType::T,
                       GateType::Tdg})
        expectLoweringExact({t, {0}, 0.0}, 1);
}

TEST(Transpile, RotationGates)
{
    Rng rng(2);
    for (GateType t : {GateType::RX, GateType::RY, GateType::RZ,
                       GateType::P})
        for (int i = 0; i < 4; ++i)
            expectLoweringExact({t, {0}, rng.uniform(-3.0, 3.0)}, 1);
}

TEST(Transpile, TwoQubitGates)
{
    Rng rng(3);
    expectLoweringExact({GateType::CX, {0, 1}, 0.0}, 2);
    expectLoweringExact({GateType::CZ, {0, 1}, 0.0}, 2);
    expectLoweringExact({GateType::SWAP, {0, 1}, 0.0}, 2);
    for (int i = 0; i < 3; ++i) {
        expectLoweringExact({GateType::CP, {0, 1}, rng.uniform(-3, 3)}, 2);
        expectLoweringExact({GateType::RZZ, {0, 1}, rng.uniform(-3, 3)}, 2);
        expectLoweringExact({GateType::XY, {0, 1}, rng.uniform(-2, 2)}, 2);
    }
}

TEST(Transpile, ReversedOperandOrder)
{
    expectLoweringExact({GateType::CX, {1, 0}, 0.0}, 2);
    expectLoweringExact({GateType::CP, {1, 0}, 0.9}, 2);
}

TEST(Transpile, Toffoli)
{
    expectLoweringExact({GateType::CCX, {0, 1, 2}, 0.0}, 3);
    expectLoweringExact({GateType::CCX, {2, 0, 1}, 0.0}, 3);
}

/** MCP must be exact for every control count (the P(beta) of Lemma 2). */
class TranspileMcp : public ::testing::TestWithParam<int>
{
};

TEST_P(TranspileMcp, ExactForKControls)
{
    const int k = GetParam();
    Rng rng(100 + k);
    std::vector<int> qs(k);
    for (int i = 0; i < k; ++i)
        qs[i] = i;
    expectLoweringExact({GateType::MCP, qs, rng.uniform(-3, 3)}, k);
    expectLoweringExact({GateType::MCX, qs, 0.0}, k);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TranspileMcp, ::testing::Range(1, 7));

TEST(Transpile, McpAncillasReturnToZero)
{
    // After the V-chain uncompute, all ancillas must be |0> on every
    // input basis state.
    Circuit c(4);
    c.mcp({0, 1, 2, 3}, 1.1);
    const Circuit lowered = circuit::transpile(c);
    ASSERT_GT(lowered.numQubits(), 4);
    const Matrix u = sim::circuitUnitary(lowered);
    // Columns with ancilla inputs |0>: rows with non-zero entries must
    // also have ancillas |0>.
    const std::size_t data_dim = 16;
    for (std::size_t col = 0; col < data_dim; ++col)
        for (std::size_t row = 0; row < u.rows(); ++row)
            if (std::abs(u.at(row, col)) > 1e-12)
                EXPECT_LT(row, data_dim);
}

TEST(Transpile, AncillasAreSharedAcrossGates)
{
    // Two MCP gates must reuse the same ancilla pool, not allocate twice.
    Circuit one(5);
    one.mcp({0, 1, 2, 3, 4}, 0.4);
    Circuit two(5);
    two.mcp({0, 1, 2, 3, 4}, 0.4);
    two.mcp({0, 1, 2, 3, 4}, -0.4);
    const int anc_one = circuit::transpile(one).numQubits() - 5;
    const int anc_two = circuit::transpile(two).numQubits() - 5;
    EXPECT_EQ(anc_one, anc_two);
    EXPECT_EQ(anc_one, 3); // k-2 ancillas for k=5
}

TEST(Transpile, NativeCzOptionKeepsCz)
{
    Circuit c(2);
    c.cz(0, 1);
    circuit::TranspileOptions opts;
    opts.nativeCz = true;
    const Circuit lowered = circuit::transpile(c, opts);
    ASSERT_EQ(lowered.gateCount(), 1u);
    EXPECT_EQ(lowered.gates()[0].type, GateType::CZ);
    EXPECT_TRUE(circuit::isLowered(lowered, opts));
    EXPECT_FALSE(circuit::isLowered(lowered));
}

TEST(Transpile, CompositeCircuitEndToEnd)
{
    Rng rng(9);
    Circuit c(3);
    c.h(0);
    c.ry(1, 0.3);
    c.xy(0, 2, 0.8);
    c.mcp({0, 1, 2}, -1.2);
    c.swap(1, 2);
    const Matrix expect = sim::circuitUnitary(c);
    const Circuit lowered = circuit::transpile(c);
    ASSERT_TRUE(circuit::isLowered(lowered));
    EXPECT_LT(linalg::phaseDistance(expect, dataBlock(lowered, 3)), 1e-9);
}

TEST(Transpile, LinearDepthForMcpChain)
{
    // Depth of a lowered k-control MCP grows linearly in k (Sec. IV-B).
    std::vector<int> depth;
    for (int k = 3; k <= 9; ++k) {
        Circuit c(k);
        std::vector<int> qs(k);
        for (int i = 0; i < k; ++i)
            qs[i] = i;
        c.mcp(qs, 0.5);
        depth.push_back(circuit::transpile(c).depth());
    }
    for (std::size_t i = 1; i < depth.size(); ++i) {
        EXPECT_GT(depth[i], depth[i - 1]);
        EXPECT_LT(depth[i] - depth[i - 1], 60);
    }
}
