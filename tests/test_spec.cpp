/**
 * @file
 * Inline problem-spec tests: wire-level parsing with per-field errors,
 * canonicalization (sign normalization, dedup, row-order-invariant
 * content hash), exact round-tripping of registry cases, resource
 * guards, the ProblemRegistry LRU, and the end-to-end service behavior
 * the protocol promises — an inline spec and the equivalent registry
 * case produce bitwise-identical results, row-permuted resubmissions
 * are compile-cache hits, and problem_ref misses fail cleanly — in
 * both batch and socket modes, plus the socket front-end's bounded
 * wait queue (--queue-wait).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "problems/suite.hpp"
#include "service/compile_cache.hpp"
#include "service/job.hpp"
#include "service/server.hpp"
#include "service/service.hpp"
#include "spec/registry.hpp"
#include "spec/spec.hpp"

using namespace chocoq;

namespace
{

spec::ProblemSpec
parseSpec(const std::string &text, const spec::SpecLimits &limits = {})
{
    return spec::parseProblemSpec(service::Json::parse(text), limits);
}

/** Expect parseProblemSpec to throw with @p needle in the message. */
void
expectSpecError(const std::string &text, const std::string &needle,
                const spec::SpecLimits &limits = {})
{
    try {
        parseSpec(text, limits);
        FAIL() << "spec must be rejected: " << text;
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "message '" << e.what() << "' should contain '" << needle
            << "'";
    }
}

/** A 4-var instance with distinguishable rows, used across the
 * canonicalization tests. */
const char *kBaseSpec =
    R"({"vars":4,"sense":"min","objective":[3,1,4,1],)"
    R"("constraints":{"A":[[1,1,0,0],[0,0,1,1]],"b":[1,1]}})";

} // namespace

// -------------------------------------------------------------- parsing

TEST(SpecParse, MinimalSpecAndDefaults)
{
    const auto s = parseSpec(kBaseSpec);
    EXPECT_EQ(s.vars, 4);
    EXPECT_EQ(s.sense, model::Sense::Minimize);
    ASSERT_EQ(s.rows.size(), 2u);
    EXPECT_EQ(s.rows[0].coeffs, (std::vector<int>{1, 1, 0, 0}));
    EXPECT_EQ(s.rows[0].rhs, 1);
    EXPECT_EQ(s.hashHex.size(), 16u);
    EXPECT_TRUE(spec::validProblemRef(s.hashHex));

    const auto p = s.lower();
    EXPECT_EQ(p.numVars(), 4);
    EXPECT_EQ(p.name(), "inline:" + s.hashHex);
    EXPECT_DOUBLE_EQ(p.objectiveOf(0b0101), 7.0); // x0 + x2: 3 + 4

    // "sense" defaults to min; "max" flips it.
    const auto max = parseSpec(
        R"({"vars":2,"sense":"max","objective":[1,2],)"
        R"("constraints":{"A":[[1,1]],"b":[1]}})");
    EXPECT_EQ(max.sense, model::Sense::Maximize);
    EXPECT_NE(max.hash, parseSpec(
        R"({"vars":2,"objective":[1,2],)"
        R"("constraints":{"A":[[1,1]],"b":[1]}})").hash)
        << "sense is part of the canonical identity";
}

TEST(SpecParse, DenseAndTermObjectivesAgree)
{
    // The dense coefficient array and the equivalent term objects are
    // the same polynomial, hence the same canonical hash.
    const auto dense = parseSpec(kBaseSpec);
    const auto terms = parseSpec(
        R"({"vars":4,"sense":"min","objective":[)"
        R"({"vars":[0],"coeff":3},{"vars":[1],"coeff":1},)"
        R"({"vars":[2],"coeff":4},{"vars":[3],"coeff":1}],)"
        R"("constraints":{"A":[[1,1,0,0],[0,0,1,1]],"b":[1,1]}})");
    EXPECT_EQ(dense.hash, terms.hash);

    // Term objects carry what dense cannot: constants and products.
    const auto quad = parseSpec(
        R"({"vars":2,"objective":[{"vars":[],"coeff":-1.5},)"
        R"({"vars":[0,1],"coeff":2}],)"
        R"("constraints":{"A":[[1,1]],"b":[1]}})");
    EXPECT_DOUBLE_EQ(quad.lower().objectiveOf(0b11), -1.5 + 2.0);
}

TEST(SpecParse, PerFieldErrorsNameTheOffendingField)
{
    // vars
    expectSpecError(R"({"constraints":{"A":[[1]],"b":[1]}})",
                    "problem.vars is required");
    expectSpecError(R"({"vars":0,"constraints":{"A":[[1]],"b":[1]}})",
                    "problem.vars");
    expectSpecError(R"({"vars":2.5,"constraints":{"A":[[1,1]],"b":[1]}})",
                    "must be an integer");
    expectSpecError(R"({"vars":"four","constraints":{"A":[[1]],"b":[1]}})",
                    "must be a number, got a string");

    // objective
    expectSpecError(R"({"vars":2,"objective":7,)"
                    R"("constraints":{"A":[[1,1]],"b":[1]}})",
                    "problem.objective must be an array");
    expectSpecError(R"({"vars":2,"objective":[1e999],)"
                    R"("constraints":{"A":[[1,1]],"b":[1]}})",
                    "problem.objective[0] must be finite");
    expectSpecError(R"({"vars":2,"objective":[1,2,3],)"
                    R"("constraints":{"A":[[1,1]],"b":[1]}})",
                    "3 coefficients for 2 variables");
    expectSpecError(R"({"vars":2,"objective":[{"vars":[2],"coeff":1}],)"
                    R"("constraints":{"A":[[1,1]],"b":[1]}})",
                    "problem.objective[0].vars[0]");
    expectSpecError(R"({"vars":2,"objective":[{"vars":[0,0],"coeff":1}],)"
                    R"("constraints":{"A":[[1,1]],"b":[1]}})",
                    "repeats x0");
    expectSpecError(R"({"vars":2,"objective":[{"coeff":1}],)"
                    R"("constraints":{"A":[[1,1]],"b":[1]}})",
                    "needs both \"vars\" and \"coeff\"");
    expectSpecError(R"({"vars":2,"objective":[1,{"vars":[0],"coeff":1}],)"
                    R"("constraints":{"A":[[1,1]],"b":[1]}})",
                    "cannot be mixed");
    expectSpecError(R"({"vars":2,"objective":["x"],)"
                    R"("constraints":{"A":[[1,1]],"b":[1]}})",
                    "a number (dense form) or a term object");

    // constraints
    expectSpecError(R"({"vars":2})", "problem.constraints is required");
    expectSpecError(R"({"vars":2,"constraints":{"A":[[1,1]]}})",
                    "problem.constraints.b");
    expectSpecError(R"({"vars":2,"constraints":{"A":[[1,1]],"b":[1,2]}})",
                    "1 rows but b has 2");
    expectSpecError(R"({"vars":2,"constraints":{"A":[],"b":[]}})",
                    "at least one row");
    expectSpecError(R"({"vars":3,"constraints":{"A":[[1,1]],"b":[1]}})",
                    "has 2 entries, expected 3");
    expectSpecError(R"({"vars":2,"constraints":{"A":[[1,0.5]],"b":[1]}})",
                    "problem.constraints.A[0][1] must be an integer");
    expectSpecError(R"({"vars":2,"constraints":{"A":[[1,1]],"b":[1.5]}})",
                    "problem.constraints.b[0] must be an integer");

    // degenerate and infeasible systems
    expectSpecError(R"({"vars":2,"constraints":{"A":[[0,0]],"b":[1]}})",
                    "infeasible");
    expectSpecError(R"({"vars":2,"constraints":{"A":[[0,0]],"b":[0]}})",
                    "degenerate");
    expectSpecError(R"({"vars":2,"constraints":{"A":[[1,1]],"b":[3]}})",
                    "can never be satisfied");
    expectSpecError(R"({"vars":2,"constraints":{"A":[[1,-1]],"b":[2]}})",
                    "can never be satisfied");
    expectSpecError(
        R"({"vars":2,"constraints":{"A":[[1,1],[1,1]],"b":[1,2]}})",
        "contradicts row 0");
    // ...including a contradiction hidden behind a sign flip.
    expectSpecError(
        R"({"vars":2,"constraints":{"A":[[1,1],[-1,-1]],"b":[1,-2]}})",
        "contradicts row 0");

    // unknown fields are typos, not extensions
    expectSpecError(R"({"vars":2,"constrains":{"A":[[1,1]],"b":[1]}})",
                    "not a recognized field");
}

TEST(SpecParse, ResourceGuardsReject)
{
    spec::SpecLimits limits;
    limits.maxQubits = 3;
    expectSpecError(R"({"vars":4,"constraints":{"A":[[1,1,1,1]],"b":[1]}})",
                    "outside [1, 3]", limits);

    limits = {};
    limits.maxConstraints = 1;
    expectSpecError(
        R"({"vars":2,"constraints":{"A":[[1,1],[1,0]],"b":[1,1]}})",
        "more than the cap of 1", limits);

    limits = {};
    limits.maxCoeff = 10;
    expectSpecError(R"({"vars":2,"constraints":{"A":[[11,1]],"b":[1]}})",
                    "outside [-10, 10]", limits);
    expectSpecError(R"({"vars":2,"constraints":{"A":[[1,1]],"b":[-11]}})",
                    "outside [-10, 10]", limits);
    expectSpecError(R"({"vars":2,"objective":[100,0],)"
                    R"("constraints":{"A":[[1,1]],"b":[1]}})",
                    "exceeds the coefficient cap", limits);

    limits = {};
    limits.maxSpecBytes = 40;
    expectSpecError(kBaseSpec, "bytes serialized, more than the cap",
                    limits);

    // The hard ceiling holds even when the configured cap is raised.
    limits = {};
    limits.maxQubits = 100;
    expectSpecError(R"({"vars":63,"constraints":{"A":[[1]],"b":[1]}})",
                    "outside [1, 62]", limits);
}

// ----------------------------------------------------- canonicalization

TEST(SpecCanonical, HashInvariantUnderRowPermutationAndSign)
{
    const auto base = parseSpec(kBaseSpec);
    const auto permuted = parseSpec(
        R"({"vars":4,"sense":"min","objective":[3,1,4,1],)"
        R"("constraints":{"A":[[0,0,1,1],[1,1,0,0]],"b":[1,1]}})");
    const auto flipped = parseSpec(
        R"({"vars":4,"sense":"min","objective":[3,1,4,1],)"
        R"("constraints":{"A":[[-1,-1,0,0],[0,0,1,1]],"b":[-1,1]}})");
    EXPECT_EQ(base.hash, permuted.hash)
        << "row order must not change the canonical identity";
    EXPECT_EQ(base.hash, flipped.hash)
        << "a row and its negation are the same equality";

    // Different structure means a different identity.
    const auto other = parseSpec(
        R"({"vars":4,"sense":"min","objective":[3,1,4,1],)"
        R"("constraints":{"A":[[1,1,0,0],[0,1,1,1]],"b":[1,1]}})");
    EXPECT_NE(base.hash, other.hash);
    const auto coeffs = parseSpec(
        R"({"vars":4,"sense":"min","objective":[3,1,4,2],)"
        R"("constraints":{"A":[[1,1,0,0],[0,0,1,1]],"b":[1,1]}})");
    EXPECT_NE(base.hash, coeffs.hash);
}

TEST(SpecCanonical, DuplicateRowsDedupToOneEvenPermutedOrFlipped)
{
    const auto dup = parseSpec(
        R"({"vars":4,"objective":[3,1,4,1],"constraints":)"
        R"({"A":[[0,0,1,1],[1,1,0,0],[0,0,1,1],[0,0,-1,-1]],)"
        R"("b":[1,1,1,-1]}})");
    EXPECT_EQ(dup.rows.size(), 2u)
        << "exact and sign-flipped duplicates must be dropped";
    EXPECT_EQ(dup.hash, parseSpec(kBaseSpec).hash)
        << "a spec with redundant duplicate rows is the same problem";
}

TEST(SpecCanonical, RegistryCasesRoundTripExactly)
{
    // problemToSpecJson -> parse -> lower must reproduce the original
    // instance bit for bit (rows in order, exact objective bits): this
    // is what makes an inline transcription of a registry case share
    // the registry job's compile-cache entry and results.
    for (const auto scale :
         {problems::Scale::F1, problems::Scale::G1, problems::Scale::K1}) {
        const auto p = problems::makeCase(scale, 0);
        const auto s = spec::parseProblemSpec(spec::problemToSpecJson(p));
        const auto q = s.lower();
        ASSERT_EQ(q.numVars(), p.numVars()) << problems::scaleName(scale);
        ASSERT_EQ(q.constraints().size(), p.constraints().size());
        for (std::size_t i = 0; i < p.constraints().size(); ++i)
            EXPECT_EQ(q.constraints()[i], p.constraints()[i])
                << problems::scaleName(scale) << " row " << i;
        EXPECT_EQ(q.objective().terms(), p.objective().terms());
        const core::ChocoQOptions opts;
        EXPECT_EQ(service::compileKey(q, opts), service::compileKey(p, opts))
            << problems::scaleName(scale)
            << ": transcribed spec must share the compile-cache entry";
    }
}

// ------------------------------------------------------------- registry

TEST(ProblemRegistry, PutResolvesEquivalentSubmissionsToFirstInstance)
{
    spec::ProblemRegistry registry;
    const auto a = parseSpec(kBaseSpec);
    const auto first = registry.put(a.hashHex, [&] { return a.lower(); });

    // A permuted re-submission resolves to the first-registered
    // instance — pointer-identical, so downstream structural keys
    // (compile cache) collapse too.
    const auto permuted = parseSpec(
        R"({"vars":4,"sense":"min","objective":[3,1,4,1],)"
        R"("constraints":{"A":[[0,0,1,1],[1,1,0,0]],"b":[1,1]}})");
    ASSERT_EQ(permuted.hashHex, a.hashHex);
    const auto second =
        registry.put(permuted.hashHex, [&] { return permuted.lower(); });
    EXPECT_EQ(first.get(), second.get());

    EXPECT_EQ(registry.get(a.hashHex).get(), first.get());
    EXPECT_EQ(registry.get("0123456789abcdef"), nullptr);

    const auto stats = registry.stats();
    EXPECT_EQ(stats.inserted, 1u);
    EXPECT_EQ(stats.reused, 1u);
    EXPECT_EQ(stats.refHits, 1u);
    EXPECT_EQ(stats.refMisses, 1u);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_GT(stats.bytes, 0u);
}

TEST(ProblemRegistry, LruEvictsUnderByteBudgetAndRefsThenMiss)
{
    const auto a = parseSpec(kBaseSpec);
    const auto b = parseSpec(
        R"({"vars":3,"objective":[1,2,3],)"
        R"("constraints":{"A":[[1,1,1]],"b":[1]}})");
    const auto c = parseSpec(
        R"({"vars":3,"objective":[3,2,1],)"
        R"("constraints":{"A":[[1,1,0]],"b":[1]}})");
    const std::size_t bytes_a = spec::problemMemoryBytes(a.lower());
    const std::size_t bytes_b = spec::problemMemoryBytes(b.lower());
    const std::size_t bytes_c = spec::problemMemoryBytes(c.lower());

    spec::ProblemRegistry registry(
        spec::ProblemRegistryOptions{bytes_a + bytes_b + bytes_c - 1});
    registry.put(a.hashHex, [&] { return a.lower(); });
    registry.put(b.hashHex, [&] { return b.lower(); });
    EXPECT_NE(registry.get(a.hashHex), nullptr); // touch: b is coldest
    registry.put(c.hashHex, [&] { return c.lower(); });

    EXPECT_EQ(registry.stats().evictions, 1u);
    EXPECT_NE(registry.get(a.hashHex), nullptr);
    EXPECT_EQ(registry.get(b.hashHex), nullptr)
        << "coldest entry must be evicted; its problem_ref now misses";
    EXPECT_NE(registry.get(c.hashHex), nullptr);
}

TEST(ProblemRegistry, HashCollisionGuardVerifiesCanonicalIdentity)
{
    // canonicallyEqual is the registry's collision guard: the 64-bit
    // hash indexes, this proves. Equivalent re-encodings pass, any
    // genuinely different model fails.
    const auto base = parseSpec(kBaseSpec);
    const auto permuted = parseSpec(
        R"({"vars":4,"sense":"min","objective":[3,1,4,1],)"
        R"("constraints":{"A":[[0,0,-1,-1],[1,1,0,0]],"b":[-1,1]}})");
    EXPECT_TRUE(spec::canonicallyEqual(base, base.lower()));
    EXPECT_TRUE(spec::canonicallyEqual(permuted, base.lower()));
    EXPECT_TRUE(spec::canonicallyEqual(base, permuted.lower()));

    const auto other = parseSpec(
        R"({"vars":4,"sense":"min","objective":[3,1,4,2],)"
        R"("constraints":{"A":[[1,1,0,0],[0,0,1,1]],"b":[1,1]}})");
    EXPECT_FALSE(spec::canonicallyEqual(other, base.lower()));
    EXPECT_FALSE(spec::canonicallyEqual(
        base, problems::makeCase(problems::Scale::F1, 0)));

    // put() reports reuse so the service knows when to run the guard.
    spec::ProblemRegistry registry;
    bool reused = true;
    registry.put(base.hashHex, [&] { return base.lower(); }, &reused);
    EXPECT_FALSE(reused);
    registry.put(permuted.hashHex, [&] { return permuted.lower(); },
                 &reused);
    EXPECT_TRUE(reused);
}

// ------------------------------------------------------------ job model

TEST(JobModel, InlineProblemAndRefAreMutuallyExclusiveWithScale)
{
    const std::string spec_json =
        std::string(R"({"id":"j","problem":)") + kBaseSpec + "}";
    const auto job = service::jobFromJsonLine(spec_json);
    ASSERT_NE(job.problem, nullptr);
    EXPECT_EQ(job.problem->vars, 4);

    EXPECT_THROW(service::jobFromJsonLine(
                     std::string(R"({"scale":"F1","problem":)") + kBaseSpec
                     + "}"),
                 FatalError);
    EXPECT_THROW(service::jobFromJsonLine(
                     std::string(R"({"problem_ref":"0123456789abcdef",)")
                     + R"("problem":)" + kBaseSpec + "}"),
                 FatalError);
    EXPECT_THROW(
        service::jobFromJsonLine(
            R"({"case":1,"problem_ref":"0123456789abcdef"})"),
        FatalError);
    // Malformed refs: wrong length, uppercase, non-hex.
    EXPECT_THROW(service::jobFromJsonLine(R"({"problem_ref":"abc"})"),
                 FatalError);
    EXPECT_THROW(
        service::jobFromJsonLine(R"({"problem_ref":"0123456789ABCDEF"})"),
        FatalError);
    EXPECT_THROW(
        service::jobFromJsonLine(R"({"problem_ref":"0123456789abcdeg"})"),
        FatalError);

    // The request serializer round-trips all three namings.
    const auto back = service::jobFromJsonLine(
        service::jobToJsonRequest(job).dump());
    ASSERT_NE(back.problem, nullptr);
    EXPECT_EQ(back.problem->hashHex, job.problem->hashHex);
    service::SolveJob ref;
    ref.problemRef = job.problem->hashHex;
    EXPECT_EQ(service::jobFromJsonLine(
                  service::jobToJsonRequest(ref).dump())
                  .problemRef,
              job.problem->hashHex);
}

// ---------------------------------------------------- service behavior

namespace
{

service::SolveJob
inlineJob(const std::string &id, const std::string &spec_text,
          const std::string &solver = "choco-q")
{
    service::SolveJob job;
    job.id = id;
    job.solver = solver;
    job.problem = std::make_shared<const spec::ProblemSpec>(
        parseSpec(spec_text));
    job.seed = 11;
    job.maxIterations = 10;
    return job;
}

} // namespace

TEST(SolveServiceSpec, InlineMatchesRegistryCaseBitwiseForEverySolver)
{
    // The acceptance criterion: an inline spec transcribing a registry
    // case and the registry job itself must be bit-identical — for all
    // four solver designs — and the choco-q pair must share one
    // compilation.
    const auto spec_json =
        spec::problemToSpecJson(problems::makeCase(problems::Scale::F1, 0))
            .dump();
    service::SolveService svc{service::ServiceOptions{}};
    service::WorkerContext ctx;
    for (const char *solver : {"choco-q", "penalty", "cyclic", "hea"}) {
        service::SolveJob reg;
        reg.id = std::string("reg-") + solver;
        reg.solver = solver;
        reg.scale = "F1";
        reg.seed = 11;
        reg.maxIterations = 10;
        const auto reg_result = svc.execute(reg, ctx);
        ASSERT_EQ(reg_result.status, "ok") << reg_result.error;

        const auto inline_result = svc.execute(
            inlineJob(std::string("inline-") + solver, spec_json, solver),
            ctx);
        ASSERT_EQ(inline_result.status, "ok")
            << solver << ": " << inline_result.error;
        EXPECT_EQ(inline_result.distHash, reg_result.distHash)
            << solver << ": inline spec must be bit-identical";
        EXPECT_EQ(0, std::memcmp(&inline_result.bestCost,
                                 &reg_result.bestCost, sizeof(double)))
            << solver;
        EXPECT_EQ(inline_result.evaluations, reg_result.evaluations)
            << solver;
        EXPECT_EQ(inline_result.problemRef,
                  service::jobFromJsonLine(
                      std::string(R"({"problem":)") + spec_json + "}")
                      .problem->hashHex)
            << "ok results must echo the canonical hash";
    }
    // choco-q ran the registry case first (miss), then the identical
    // inline structure (hit).
    EXPECT_GE(svc.cacheStats().hits, 1u);
}

TEST(SolveServiceSpec, PermutedResubmissionIsACompileCacheHit)
{
    service::SolveService svc{service::ServiceOptions{}};
    service::WorkerContext ctx;

    const auto first = svc.execute(inlineJob("a", kBaseSpec), ctx);
    ASSERT_EQ(first.status, "ok") << first.error;
    EXPECT_FALSE(first.cacheHit);

    const auto permuted = svc.execute(
        inlineJob("b",
                  R"({"vars":4,"sense":"min","objective":[3,1,4,1],)"
                  R"("constraints":{"A":[[0,0,-1,-1],[1,1,0,0]],)"
                  R"("b":[-1,1]}})"),
        ctx);
    ASSERT_EQ(permuted.status, "ok") << permuted.error;
    EXPECT_TRUE(permuted.cacheHit)
        << "row-permuted, sign-flipped resubmission must share the "
           "compiled artifacts via the canonical hash";
    EXPECT_EQ(permuted.problemRef, first.problemRef);
    EXPECT_EQ(permuted.distHash, first.distHash);
    EXPECT_EQ(svc.registryStats().reused, 1u);
}

TEST(SolveServiceSpec, ProblemRefRunsSharedInstanceAndMissFailsCleanly)
{
    service::SolveService svc{service::ServiceOptions{}};
    service::WorkerContext ctx;

    // Miss before any submission.
    service::SolveJob ref;
    ref.id = "miss";
    ref.problemRef = "0123456789abcdef";
    const auto miss = svc.execute(ref, ctx);
    EXPECT_EQ(miss.status, "error");
    EXPECT_NE(miss.error.find("unknown problem_ref"), std::string::npos);

    const auto first = svc.execute(inlineJob("a", kBaseSpec), ctx);
    ASSERT_EQ(first.status, "ok");
    ref.id = "hit";
    ref.problemRef = first.problemRef;
    ref.seed = 11;
    ref.maxIterations = 10;
    const auto hit = svc.execute(ref, ctx);
    ASSERT_EQ(hit.status, "ok") << hit.error;
    EXPECT_EQ(hit.distHash, first.distHash);
    EXPECT_TRUE(hit.cacheHit);
    EXPECT_EQ(hit.problemRef, first.problemRef);
}

TEST(SolveServiceSpec, EvictedProblemRefMissesAndResubmissionRecovers)
{
    // A registry budget that holds exactly one problem: registering a
    // second evicts the first, whose problem_ref must then fail with
    // the resubmission hint, and a full resubmission must recover.
    const auto a = parseSpec(kBaseSpec);
    service::ServiceOptions options;
    options.registryMaxBytes = spec::problemMemoryBytes(a.lower());
    service::SolveService svc(options);
    service::WorkerContext ctx;

    const auto first = svc.execute(inlineJob("a", kBaseSpec), ctx);
    ASSERT_EQ(first.status, "ok");
    const auto other = svc.execute(
        inlineJob("b", R"({"vars":3,"objective":[1,2,3],)"
                       R"("constraints":{"A":[[1,1,1]],"b":[1]}})"),
        ctx);
    ASSERT_EQ(other.status, "ok");
    EXPECT_GE(svc.registryStats().evictions, 1u);

    service::SolveJob ref;
    ref.id = "stale";
    ref.problemRef = first.problemRef;
    const auto stale = svc.execute(ref, ctx);
    EXPECT_EQ(stale.status, "error");
    // A ref the server once held fails with the machine-checkable
    // ref_expired prefix; a ref it never saw stays "unknown".
    EXPECT_EQ(stale.error.rfind("ref_expired:", 0), 0u) << stale.error;
    EXPECT_NE(stale.error.find("evicted"), std::string::npos);
    service::SolveJob never;
    never.id = "never";
    never.problemRef = "0123456789abcdef";
    const auto unknown = svc.execute(never, ctx);
    EXPECT_EQ(unknown.status, "error");
    EXPECT_NE(unknown.error.find("unknown problem_ref"),
              std::string::npos);
    EXPECT_EQ(unknown.error.find("ref_expired"), std::string::npos);

    const auto again = svc.execute(inlineJob("a2", kBaseSpec), ctx);
    ASSERT_EQ(again.status, "ok");
    EXPECT_EQ(again.distHash, first.distHash);
    EXPECT_TRUE(again.refreshed)
        << "re-registering an evicted problem must report the refresh";
    const auto stats = svc.registryStats();
    EXPECT_GE(stats.refExpired, 1u);
    EXPECT_GE(stats.refreshes, 1u);
    EXPECT_GE(stats.generation, 1u);
}

TEST(ProblemRegistry, TombstonesDistinguishEvictedFromUnknown)
{
    const auto a = parseSpec(kBaseSpec);
    const auto b = parseSpec(
        R"({"vars":3,"objective":[1,2,3],)"
        R"("constraints":{"A":[[1,1,1]],"b":[1]}})");
    spec::ProblemRegistry registry(
        spec::ProblemRegistryOptions{spec::problemMemoryBytes(a.lower())});
    registry.put(a.hashHex, [&] { return a.lower(); });
    EXPECT_EQ(registry.generation(), 0u);
    registry.put(b.hashHex, [&] { return b.lower(); }); // evicts a

    spec::ProblemRegistry::RefOutcome outcome;
    EXPECT_EQ(registry.get(a.hashHex, &outcome), nullptr);
    EXPECT_EQ(outcome, spec::ProblemRegistry::RefOutcome::Expired);
    EXPECT_EQ(registry.get("0123456789abcdef", &outcome), nullptr);
    EXPECT_EQ(outcome, spec::ProblemRegistry::RefOutcome::Unknown);
    EXPECT_GE(registry.generation(), 1u)
        << "every eviction bumps the generation counter";

    // Re-registering the evicted problem clears its tombstone and
    // reports the refresh exactly once.
    bool reused = true, refreshed = false;
    registry.put(a.hashHex, [&] { return a.lower(); }, &reused,
                 &refreshed);
    EXPECT_FALSE(reused);
    EXPECT_TRUE(refreshed);
    EXPECT_NE(registry.get(a.hashHex, &outcome), nullptr);
    EXPECT_EQ(outcome, spec::ProblemRegistry::RefOutcome::Hit);
    // The one-entry budget pushed b out in turn: expired, not unknown.
    EXPECT_EQ(registry.get(b.hashHex, &outcome), nullptr);
    EXPECT_EQ(outcome, spec::ProblemRegistry::RefOutcome::Expired);
    const auto stats = registry.stats();
    EXPECT_GE(stats.refExpired, 2u);
    EXPECT_EQ(stats.refreshes, 1u);
}

// --------------------------------------------------------- batch stream

TEST(BatchStreamSpec, InlineJobsRunAndAdversarialSpecsFailPerLine)
{
    std::string input;
    input += std::string(R"({"id":"good","problem":)") + kBaseSpec
             + R"(,"seed":11,"iters":10})" + "\n";
    // Ragged matrix, non-finite coefficient, over-cap qubits: each
    // fails its own line with a field-path error, never the stream.
    input += R"({"id":"ragged","problem":{"vars":3,)"
             R"("constraints":{"A":[[1,1]],"b":[1]}}})" "\n";
    input += R"({"id":"inf","problem":{"vars":2,"objective":[1e999,0],)"
             R"("constraints":{"A":[[1,1]],"b":[1]}}})" "\n";
    input += R"({"id":"big","problem":{"vars":40,)"
             R"("constraints":{"A":[[1]],"b":[1]}}})" "\n";
    input += R"({"id":"ref-miss","problem_ref":"ffffffffffffffff"})" "\n";

    std::istringstream in(input);
    std::ostringstream out;
    service::SolveService svc{service::ServiceOptions{}};
    const auto stats = service::runJsonlStream(in, out, svc, {});

    EXPECT_EQ(stats.submitted, 2); // good + ref-miss reach the scheduler
    EXPECT_EQ(stats.failed, 4);

    std::map<std::string, service::Json> by_id;
    std::istringstream lines(out.str());
    std::string line;
    while (std::getline(lines, line))
        by_id.emplace(service::Json::parse(line).getString("id", ""),
                      service::Json::parse(line));
    ASSERT_EQ(by_id.size(), 5u);
    EXPECT_EQ(by_id.at("good").getString("status", ""), "ok");
    EXPECT_EQ(by_id.at("good").getString("problem", "").substr(0, 7),
              "inline:");
    EXPECT_NE(by_id.at("line-2").getString("error", "")
                  .find("problem.constraints.A[0] has 2 entries"),
              std::string::npos);
    EXPECT_NE(by_id.at("line-3").getString("error", "")
                  .find("must be finite"),
              std::string::npos);
    EXPECT_NE(by_id.at("line-4").getString("error", "").find("outside"),
              std::string::npos);
    EXPECT_NE(by_id.at("ref-miss").getString("error", "")
                  .find("unknown problem_ref"),
              std::string::npos);
}

TEST(BatchStreamSpec, SpecByteCapRejectsPerLineUnderTheLineLimit)
{
    // The spec cap is tighter than the line cap: the line parses, the
    // spec is rejected with the cap message.
    service::StreamLimits limits;
    limits.spec.maxSpecBytes = 64;
    std::istringstream in(std::string(R"({"id":"fat","problem":)")
                          + kBaseSpec + "}\n");
    std::ostringstream out;
    service::SolveService svc{service::ServiceOptions{}};
    const auto stats = service::runJsonlStream(in, out, svc, limits);
    EXPECT_EQ(stats.failed, 1);
    EXPECT_NE(out.str().find("more than the cap of 64"), std::string::npos);
}

// --------------------------------------------------------- socket mode

TEST(SocketServerSpec, InlineThenRefIsBitIdenticalAndSharesCompile)
{
    service::SolveService svc{service::ServiceOptions{}};
    service::Server server(svc, service::ServerOptions{});
    server.start();

    service::JsonlClient client(server.port());
    client.sendLine(std::string(R"({"id":"a","problem":)") + kBaseSpec
                    + R"(,"seed":11,"iters":10})");
    std::string line;
    ASSERT_TRUE(client.readLine(line, 60000));
    const auto first = service::Json::parse(line);
    ASSERT_EQ(first.getString("status", ""), "ok")
        << first.getString("error", "");
    const std::string ref = first.getString("problem_ref", "");
    ASSERT_TRUE(spec::validProblemRef(ref)) << ref;

    // Follow-up by reference: no matrix resent, same bits, cache hit.
    client.sendLine(R"({"id":"b","problem_ref":")" + ref
                    + R"(","seed":11,"iters":10})");
    ASSERT_TRUE(client.readLine(line, 60000));
    const auto second = service::Json::parse(line);
    ASSERT_EQ(second.getString("status", ""), "ok")
        << second.getString("error", "");
    EXPECT_EQ(second.getString("dist_hash", ""),
              first.getString("dist_hash", ""));
    EXPECT_TRUE(second.getBool("cache_hit", false));
    server.drain();
}

TEST(SocketServerSpec, SpecLimitsRejectPerLineOnTheWire)
{
    service::SolveService svc{service::ServiceOptions{}};
    service::ServerOptions opts;
    opts.specLimits.maxQubits = 3;
    service::Server server(svc, opts);
    server.start();

    service::JsonlClient client(server.port());
    client.sendLine(std::string(R"({"id":"big","problem":)") + kBaseSpec
                    + "}");
    std::string line;
    ASSERT_TRUE(client.readLine(line, 60000));
    const auto v = service::Json::parse(line);
    EXPECT_EQ(v.getString("status", ""), "error");
    EXPECT_NE(v.getString("error", "").find("outside [1, 3]"),
              std::string::npos);

    // The connection survives; a within-cap job still runs.
    client.sendLine(
        R"({"id":"ok","problem":{"vars":2,"objective":[1,2],)"
        R"("constraints":{"A":[[1,1]],"b":[1]}},"iters":5})");
    ASSERT_TRUE(client.readLine(line, 60000));
    EXPECT_EQ(service::Json::parse(line).getString("status", ""), "ok");
    server.drain();
}

TEST(SocketServerSpec, QueueWaitHoldsOverCapacityJobsUntilDeadline)
{
    // One worker, in-flight bound 1, wait queue on: while the slow job
    // occupies the worker, a patient request waits for the slot and
    // runs; a request whose deadline would expire in queue is rejected
    // after (only) that deadline.
    service::ServiceOptions so;
    so.workers = 1;
    service::SolveService svc(so);
    service::ServerOptions opts;
    opts.maxInflight = 1;
    opts.queueWaitMs = 60000;
    service::Server server(svc, opts);
    server.start();

    service::JsonlClient client(server.port());
    std::string burst;
    // patient shares slow's structure (cached compile) and runs long
    // enough that it cannot finish before the reader thread reaches
    // hasty — otherwise hasty would race into the freed slot and
    // expire mid-admission instead of in the wait queue.
    burst += R"({"id":"slow","scale":"K3","iters":200})" "\n";
    burst += R"({"id":"patient","scale":"K3","iters":1000})" "\n";
    burst += R"({"id":"hasty","scale":"F1","iters":5,"deadline_ms":0.01})"
             "\n";
    client.sendRaw(burst);
    client.shutdownWrite();

    std::map<std::string, std::string> status;
    for (int i = 0; i < 3; ++i) {
        std::string line;
        ASSERT_TRUE(client.readLine(line, 120000)) << "response " << i;
        const auto v = service::Json::parse(line);
        status[v.getString("id", "")] = v.getString("status", "");
        if (v.getString("id", "") == "hasty")
            EXPECT_NE(v.getString("error", "").find("wait queue timed out"),
                      std::string::npos);
    }
    EXPECT_EQ(status.at("slow"), "ok");
    EXPECT_EQ(status.at("patient"), "ok")
        << "a patient over-capacity job must wait for the slot, not be "
           "rejected";
    EXPECT_EQ(status.at("hasty"), "rejected")
        << "a job whose deadline expires in queue is rejected after it";
    server.drain();
    EXPECT_EQ(server.stats().queueWaited, 1);
    EXPECT_EQ(server.stats().rejected, 1);
}
