/**
 * @file
 * Property tests for the paper's two lemmas.
 *
 * Lemma 1 (Sec. IV-A): replacing exp(-i beta H_d) by the serialized
 * product of term unitaries preserves the constraint-operator expectation
 * (and in fact the feasible subspace), even though the two unitaries
 * differ (e^{A+B} != e^A e^B).
 *
 * Lemma 2 (Sec. IV-B): the circuit G-dagger P(beta) X1 P(-beta) X1 G is
 * exactly exp(-i beta Hc(u)), for every support size, both before and
 * after transpilation to basic gates.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/transpile.hpp"
#include "common/rng.hpp"
#include "core/circuits.hpp"
#include "core/commute.hpp"
#include "core/movebasis.hpp"
#include "linalg/expm.hpp"
#include "model/exact.hpp"
#include "problems/suite.hpp"
#include "sim/executor.hpp"
#include "sim/unitary.hpp"

using namespace chocoq;
using core::CommuteTerm;
using linalg::Cplx;
using linalg::Matrix;

namespace
{

std::vector<int>
randomMove(Rng &rng, int n, int min_support = 1)
{
    while (true) {
        std::vector<int> u(n, 0);
        int nz = 0;
        for (int i = 0; i < n; ++i) {
            u[i] = rng.intIn(-1, 1);
            nz += u[i] != 0;
        }
        if (nz >= min_support)
            return u;
    }
}

/** Pad a circuit unitary to the full register when ancillas were added:
 * project onto ancillas staying |0> (valid because the V-chain returns
 * them to |0>). */
Matrix
dataUnitary(const circuit::Circuit &c, int data_qubits)
{
    const Matrix full = sim::circuitUnitary(c);
    const std::size_t dim = std::size_t{1} << data_qubits;
    Matrix out(dim, dim);
    for (std::size_t r = 0; r < dim; ++r)
        for (std::size_t col = 0; col < dim; ++col)
            out.at(r, col) = full.at(r, col);
    return out;
}

} // namespace

TEST(Lemma1, ExponentialDoesNotFactorizeNaively)
{
    // The motivating inequality of Sec. IV-A with u1=[-1,0], u2=[-1,1].
    const auto t1 = core::makeCommuteTerm(std::vector<int>{-1, 0});
    const auto t2 = core::makeCommuteTerm(std::vector<int>{-1, 1});
    const double beta = 0.8;
    const Matrix sum = core::denseTerm(t1, 2) + core::denseTerm(t2, 2);
    const Matrix joint = linalg::expUnitary(sum, beta);
    const Matrix serial = linalg::expUnitary(core::denseTerm(t2, 2), beta)
                          * linalg::expUnitary(core::denseTerm(t1, 2), beta);
    EXPECT_GT(joint.maxAbsDiff(serial), 1e-3);
}

/** Lemma 1 on random constraint systems drawn from the suite. */
class Lemma1Property : public ::testing::TestWithParam<int>
{
};

TEST_P(Lemma1Property, SerializationPreservesConstraintExpectation)
{
    Rng rng(500 + GetParam());
    // Small random problem: 2 constraints over 4-6 variables in {-1,0,1}.
    const int n = rng.intIn(4, 6);
    model::Problem p(n);
    model::Polynomial f;
    for (int i = 0; i < n; ++i)
        f.addTerm({i}, rng.intIn(1, 5));
    p.setObjective(std::move(f));
    for (int k = 0; k < 2; ++k) {
        std::vector<int> coeffs(n, 0);
        int nz = 0;
        for (int i = 0; i < n; ++i) {
            coeffs[i] = rng.intIn(-1, 1);
            nz += coeffs[i] != 0;
        }
        if (nz == 0)
            coeffs[k] = 1;
        // Choose an achievable rhs from a random assignment.
        const Basis some = rng.next() & ((Basis{1} << n) - 1);
        int rhs = 0;
        for (int i = 0; i < n; ++i)
            rhs += coeffs[i] * getBit(some, i);
        p.addEquality(coeffs, rhs);
    }

    const core::MoveBasis basis = core::computeMoveBasis(p);
    if (basis.moves.empty())
        GTEST_SKIP() << "rank-n system has no moves";
    const auto terms = core::makeCommuteTerms(basis.moves);
    const double beta = rng.uniform(0.1, 1.5);

    const Matrix hd = core::denseDriver(terms, n);
    const Matrix joint = linalg::expUnitary(hd, beta);
    Matrix serial = Matrix::identity(std::size_t{1} << n);
    for (const auto &t : terms)
        serial = linalg::expUnitary(core::denseTerm(t, n), beta) * serial;

    // Both evolutions preserve <C-hat> for every constraint row, from a
    // random feasible start.
    const auto x0 = model::findFeasible(p);
    if (!x0)
        GTEST_SKIP() << "infeasible random system";
    linalg::CVec psi(std::size_t{1} << n, Cplx{0, 0});
    psi[*x0] = 1.0;
    const auto out_joint = joint.apply(psi);
    const auto out_serial = serial.apply(psi);

    for (const auto &con : p.constraints()) {
        const Matrix chat = core::denseConstraintOperator(con.coeffs, n);
        const auto expect = [&](const linalg::CVec &v) {
            const auto cv = chat.apply(v);
            return linalg::dot(v, cv).real();
        };
        const double before = expect(psi);
        EXPECT_NEAR(expect(out_joint), before, 1e-9);
        EXPECT_NEAR(expect(out_serial), before, 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma1Property, ::testing::Range(0, 15));

/** Stronger-than-Lemma-1 property used by Choco-Q: the serialized driver
 * keeps all probability mass inside the feasible subspace. */
class FeasibleSubspaceProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(FeasibleSubspaceProperty, SerializedDriverKeepsFeasibleMass)
{
    const auto scales = problems::allScales();
    const auto scale = scales[GetParam() % 4]; // F1, F2 too big: use small
    const auto small = std::vector<problems::Scale>{
        problems::Scale::F1, problems::Scale::G1, problems::Scale::K1,
        problems::Scale::K2};
    const auto p = problems::makeCase(small[GetParam() % small.size()],
                                      GetParam() / 4);
    (void)scale;
    const int n = p.numVars();
    if (n > 14)
        GTEST_SKIP() << "dense check limited";

    const core::MoveBasis basis = core::computeMoveBasis(p);
    const auto terms = core::makeCommuteTerms(basis.moves);
    const auto x0 = model::findFeasible(p);
    ASSERT_TRUE(x0.has_value());

    sim::StateVector state(n);
    state.reset(*x0);
    Rng rng(GetParam());
    for (int round = 0; round < 3; ++round)
        for (const auto &t : terms)
            core::applyCommuteExact(state, t, rng.uniform(0.1, 1.2));

    double feasible_mass = 0.0;
    for (const auto &[x, prob] : state.distribution())
        if (p.isFeasible(x))
            feasible_mass += prob;
    EXPECT_NEAR(feasible_mass, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Cases, FeasibleSubspaceProperty,
                         ::testing::Range(0, 12));

/** Lemma 2: the decomposition is exactly the term unitary. */
class Lemma2Property : public ::testing::TestWithParam<int>
{
};

TEST_P(Lemma2Property, CircuitEqualsExpm)
{
    Rng rng(900 + GetParam());
    const int n = rng.intIn(2, 6);
    const auto u = randomMove(rng, n, 1);
    const CommuteTerm t = core::makeCommuteTerm(u);
    const double beta = rng.uniform(-2.0, 2.0);

    const Matrix expect = linalg::expUnitary(core::denseTerm(t, n), beta);
    const circuit::Circuit c = core::commuteTermCircuit(t, n, beta);
    const Matrix got = sim::circuitUnitary(c);
    EXPECT_LT(linalg::phaseDistance(expect, got), 1e-9)
        << "support " << t.support.size() << " beta " << beta;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma2Property, ::testing::Range(0, 25));

/** Lemma 2 survives transpilation to {H, X, RZ, CX}. */
class Lemma2Transpiled : public ::testing::TestWithParam<int>
{
};

TEST_P(Lemma2Transpiled, LoweredCircuitEqualsExpm)
{
    Rng rng(1300 + GetParam());
    const int n = rng.intIn(2, 5);
    const CommuteTerm t = core::makeCommuteTerm(randomMove(rng, n, 1));
    const double beta = rng.uniform(-1.5, 1.5);

    const Matrix expect = linalg::expUnitary(core::denseTerm(t, n), beta);
    circuit::Circuit c = core::commuteTermCircuit(t, n, beta);
    const circuit::Circuit lowered = circuit::transpile(c);
    ASSERT_TRUE(circuit::isLowered(lowered));
    const Matrix got = dataUnitary(lowered, n);
    EXPECT_LT(linalg::phaseDistance(expect, got), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma2Transpiled, ::testing::Range(0, 15));

TEST(Lemma2, ConvertGatesMapEigenstatesToBasis)
{
    // Eq. (14): G|x+> = |0 1...1>, G|x-> = |1 1...1> (up to the v1 sign
    // convention discussed in Sec. IV-B).
    Rng rng(4);
    const int n = 4;
    const CommuteTerm t = core::makeCommuteTerm(randomMove(rng, n, 2));
    circuit::Circuit c(n);
    core::appendConvertGates(c, t);

    sim::StateVector plus(n);
    linalg::CVec psi(std::size_t{1} << n, Cplx{0, 0});
    psi[t.vBits] = 1.0 / std::sqrt(2.0);
    psi[t.vBits ^ t.supportMask] = 1.0 / std::sqrt(2.0);
    plus.amplitudes() = psi;
    sim::execute(plus, c);

    // All support qubits except the first must read 1; the first must be
    // deterministic (0 for |x+> up to the v1 convention).
    Basis expect_ones = 0;
    for (std::size_t i = 1; i < t.support.size(); ++i)
        expect_ones |= Basis{1} << t.support[i];
    double mass = 0.0;
    for (const auto &[x, prob] : plus.distribution())
        if ((x & expect_ones) == expect_ones)
            mass += prob;
    EXPECT_NEAR(mass, 1.0, 1e-9);
    EXPECT_EQ(plus.distinctStates(1e-9), 1u);
}

TEST(Lemma2, DepthIsLinearInSupport)
{
    // Sec. IV-B: decomposition time and circuit depth are O(n).
    std::vector<int> depths;
    for (int k = 2; k <= 10; ++k) {
        std::vector<int> u(k, 1);
        for (int i = 0; i < k; i += 2)
            u[i] = -1;
        const CommuteTerm t = core::makeCommuteTerm(u);
        circuit::Circuit c = core::commuteTermCircuit(t, k, 0.7);
        const circuit::Circuit lowered = circuit::transpile(c);
        depths.push_back(lowered.depth());
    }
    // Fit: depth growth per qubit stays bounded (linear, not exponential).
    for (std::size_t i = 1; i < depths.size(); ++i) {
        const int delta = depths[i] - depths[i - 1];
        EXPECT_GT(delta, 0);
        EXPECT_LT(delta, 80) << "depth jump too large at k="
                             << (i + 2);
    }
}

TEST(Lemma2, SerializedDriverMatchesSequentialExpm)
{
    // The full driver layer circuit equals the product of term unitaries.
    Rng rng(77);
    const int n = 4;
    const auto moves = std::vector<std::vector<int>>{
        {-1, 1, -1, 0}, {0, -1, 0, 1}};
    const auto terms = core::makeCommuteTerms(moves);
    const double beta = 0.9;

    circuit::Circuit c(n);
    core::appendDriverLayer(c, terms, beta);
    const Matrix got = sim::circuitUnitary(c);

    Matrix expect = Matrix::identity(16);
    for (const auto &t : terms)
        expect = linalg::expUnitary(core::denseTerm(t, n), beta) * expect;
    EXPECT_LT(linalg::phaseDistance(expect, got), 1e-9);
}
